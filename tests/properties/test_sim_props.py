"""Property-based tests pinning the simulator invariants.

The two guarantees the issue names, over *arbitrary* operation
streams, not just the traces our apps happen to produce:

- blocking replay == the machine's aggregate cost accounting,
  **bitwise** (per-processor clocks and makespan);
- makespan >= the maximum per-processor busy time, in both modes;

plus the overlap bound: a split-phase replay never finishes later
than the blocking replay of the same trace.
"""

from hypothesis import given, settings, strategies as st

from repro.machine import (
    CostModel,
    IPSC860,
    Machine,
    MODERN_CLUSTER,
    PARAGON,
    ProcessorArray,
    ZERO_COST,
)
from repro.sim import EventLog, record, simulate

NPROCS = 4
MODELS = (PARAGON, IPSC860, MODERN_CLUSTER, ZERO_COST,
          CostModel(alpha=1e-3, beta=1e-6, flop_rate=1e3, name="toy"))

_rank = st.integers(0, NPROCS - 1)
_msg = st.tuples(_rank, _rank, st.integers(0, 10_000))

#: one network operation: ("send", s, d, n) | ("exchange", [msgs]) |
#: ("compute", r, flops) | ("sync",)
_op = st.one_of(
    st.tuples(st.just("send"), _rank, _rank, st.integers(0, 10_000)),
    st.tuples(st.just("exchange"), st.lists(_msg, max_size=6)),
    st.tuples(
        st.just("compute"), _rank,
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    ),
    st.tuples(st.just("sync")),
)

_program = st.lists(_op, max_size=30)
_model = st.sampled_from(MODELS)


def _run(program, model):
    machine = Machine(ProcessorArray("P", (NPROCS,)), cost_model=model)
    log = EventLog()
    with record(machine, log):
        for op in program:
            if op[0] == "send":
                machine.network.send(op[1], op[2], op[3])
            elif op[0] == "exchange":
                machine.network.exchange(list(op[1]))
            elif op[0] == "compute":
                machine.network.compute(op[1], op[2])
            else:
                machine.network.synchronize()
    return machine, log


@given(_program, _model)
@settings(max_examples=150, deadline=None)
def test_blocking_replay_is_bitwise_identical(program, model):
    machine, log = _run(program, model)
    timeline = simulate(log, model, NPROCS, overlap=False)
    assert timeline.clocks == machine.network.clocks
    assert timeline.makespan == machine.time


@given(_program, _model, st.booleans())
@settings(max_examples=150, deadline=None)
def test_makespan_at_least_max_busy(program, model, overlap):
    _machine, log = _run(program, model)
    timeline = simulate(log, model, NPROCS, overlap=overlap)
    max_busy = max(timeline.busy(r) for r in range(NPROCS))
    assert timeline.makespan >= max_busy - 1e-12 * max(1.0, max_busy)


@given(_program, _model)
@settings(max_examples=150, deadline=None)
def test_split_phase_never_slower_than_blocking(program, model):
    _machine, log = _run(program, model)
    blocking = simulate(log, model, NPROCS, overlap=False)
    split = simulate(log, model, NPROCS, overlap=True)
    assert split.makespan <= blocking.makespan * (1 + 1e-9) + 1e-15


@given(_program, _model, st.booleans())
@settings(max_examples=100, deadline=None)
def test_intervals_are_monotone_and_bounded(program, model, overlap):
    _machine, log = _run(program, model)
    timeline = simulate(log, model, NPROCS, overlap=overlap)
    for p in timeline.procs:
        t = 0.0
        for iv in p.intervals:
            assert iv.start >= t - 1e-18
            assert iv.end >= iv.start
            t = iv.end
        assert t <= timeline.makespan + 1e-18
