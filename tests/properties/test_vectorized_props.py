"""Property tests pinning every vectorized hot path to its reference.

The PR-4 contract: each array-oriented production path is **bitwise
identical** to the per-element / per-event implementation it replaces —
values, remote-read counts, recorded events, per-processor clocks —
across Hypothesis-generated distributions, bodies and traces:

- batched forall  ==  per-element forall;
- plan-based distributed line sweep  ==  per-line sweep;
- array-backed blocking replay  ==  event-loop blocking simulate
  (and hence the machine's aggregate accounting);
- single-phase split-phase fast replay  ==  event-loop split-phase
  simulate.
"""

from functools import partial

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.tridiag import thomas_const
from repro.compiler.codegen import LineSweepKernel
from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import dist_type
from repro.machine import (
    CostModel,
    IPSC860,
    Machine,
    MODERN_CLUSTER,
    PARAGON,
    ProcessorArray,
    ZERO_COST,
)
from repro.runtime.batched import forall_batched
from repro.runtime.engine import Engine
from repro.runtime.forall import forall
from repro.sim import (
    EventLog,
    record,
    replay_blocking,
    replay_split_exchange,
    simulate,
)

NPROCS = 4
MODELS = (PARAGON, IPSC860, MODERN_CLUSTER, ZERO_COST,
          CostModel(alpha=1e-3, beta=1e-6, flop_rate=1e3, name="toy"))
_model = st.sampled_from(MODELS)


# -- distribution strategies -------------------------------------------------

def _genblock_sizes(n, p, draw):
    cuts = sorted(draw(st.lists(st.integers(0, n), min_size=p - 1,
                                max_size=p - 1)))
    bounds = [0, *cuts, n]
    return [b - a for a, b in zip(bounds, bounds[1:])]


@st.composite
def _dist_1d(draw, n):
    kind = draw(st.sampled_from(["block", "cyclic", "genblock"]))
    if kind == "block":
        return dist_type(Block())
    if kind == "cyclic":
        return dist_type(Cyclic(draw(st.integers(1, 3))))
    return dist_type(GenBlock(_genblock_sizes(n, NPROCS, draw)))


@st.composite
def _dimdist_2d(draw, n, slots):
    kind = draw(st.sampled_from(["block", "cyclic", "genblock"]))
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic(draw(st.integers(1, 3)))
    return GenBlock(_genblock_sizes(n, slots, draw))


# -- batched forall == per-element forall ------------------------------------

def _forall_pair(n, dist, shift, scale, wrap):
    """A scalar body and its batched counterpart (same reads, same
    order, same arithmetic)."""
    hi = n - 1

    def scalar(i, read):
        j = (i[0] + shift) % n if wrap else min(max(i[0] + shift, 0), hi)
        return read("B", (j,)) * scale + read("A", i)

    def batched(cols, read):
        j = (cols[0] + shift) % n if wrap else np.clip(cols[0] + shift, 0, hi)
        return read("B", (j,)) * scale + read("A", cols)

    return scalar, batched


@given(
    st.integers(5, 24),
    st.data(),
    st.integers(-3, 3),
    st.floats(-2.0, 2.0, allow_nan=False),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_batched_forall_matches_reference_1d(n, data, shift, scale, wrap):
    dist_a = data.draw(_dist_1d(n))
    dist_b = data.draw(_dist_1d(n))
    seed_vals = np.arange(n, dtype=float) * 0.75 - 3.0

    def run(which):
        machine = Machine(ProcessorArray("R", (NPROCS,)), cost_model=IPSC860)
        engine = Engine(machine)
        a = engine.declare("A", (n,), dist=dist_a)
        b = engine.declare("B", (n,), dist=dist_b)
        a.from_global(seed_vals[::-1].copy())
        b.from_global(seed_vals)
        scalar, batched = _forall_pair(n, dist_b, shift, scale, wrap)
        log = EventLog()
        with record(machine, log):
            if which == "reference":
                counts = forall(a, scalar, reads={"B": b})
            else:
                counts = forall_batched(a, batched, reads={"B": b})
        return a.to_global(), counts, log.events, machine.network.clocks

    v1, c1, e1, clk1 = run("reference")
    v2, c2, e2, clk2 = run("batched")
    assert np.array_equal(v1, v2)
    assert c1 == c2
    assert e1 == e2
    assert clk1 == clk2


@given(st.integers(4, 12), st.integers(4, 12), st.data(), st.integers(-2, 2))
@settings(max_examples=40, deadline=None)
def test_batched_forall_matches_reference_2d(nr, nc, data, shift):
    dd0 = data.draw(_dimdist_2d(nr, 2))
    dd1 = data.draw(_dimdist_2d(nc, 2))
    dist = dist_type(dd0, dd1)
    vals = np.linspace(-1.0, 1.0, nr * nc).reshape(nr, nc)

    def run(which):
        machine = Machine(ProcessorArray("R", (2, 2)), cost_model=PARAGON)
        engine = Engine(machine)
        a = engine.declare("A", (nr, nc), dist=dist)
        b = engine.declare("B", (nr, nc), dist=dist)
        b.from_global(vals)
        log = EventLog()
        with record(machine, log):
            if which == "reference":
                counts = forall(
                    a,
                    lambda i, read: read(
                        "B", ((i[0] + shift) % nr, i[1])
                    ) - read("B", (i[0], (i[1] + shift) % nc)),
                    reads={"B": b},
                )
            else:
                counts = forall_batched(
                    a,
                    lambda cols, read: read(
                        "B", ((cols[0] + shift) % nr, cols[1])
                    ) - read("B", (cols[0], (cols[1] + shift) % nc)),
                    reads={"B": b},
                )
        return a.to_global(), counts, log.events, machine.network.clocks

    v1, c1, e1, clk1 = run("reference")
    v2, c2, e2, clk2 = run("batched")
    assert np.array_equal(v1, v2)
    assert c1 == c2 and e1 == e2 and clk1 == clk2


# -- plan-based line sweep == per-line sweep ---------------------------------

@given(st.integers(6, 16), st.integers(3, 10), st.data(), st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_sweep_plan_matches_per_line_reference(n0, n1, data, dim):
    dd0 = data.draw(_dimdist_2d(n0, NPROCS))
    dist = dist_type(dd0, ":")
    rng_vals = np.sin(np.arange(n0 * n1, dtype=float)).reshape(n0, n1)

    def run(reference):
        machine = Machine(ProcessorArray("R", (NPROCS,)), cost_model=IPSC860)
        engine = Engine(machine)
        a = engine.declare("A", (n0, n1), dist=dist)
        a.from_global(rng_vals)
        kernel = LineSweepKernel(
            a, dim, partial(thomas_const, a=-1.0, b=4.0),
            plan_cache=engine.plan_cache,
        )
        log = EventLog()
        with record(machine, log):
            stats = kernel.sweep(reference=reference)
        return a.to_global(), stats, log.events, machine.network.clocks

    v1, s1, e1, clk1 = run(True)
    v2, s2, e2, clk2 = run(False)
    assert np.array_equal(v1, v2)
    assert s1 == s2 and e1 == e2 and clk1 == clk2


# -- array-backed blocking replay == event-loop simulate ---------------------

_rank = st.integers(0, NPROCS - 1)
_msg = st.tuples(_rank, _rank, st.integers(0, 10_000))
_op = st.one_of(
    st.tuples(st.just("send"), _rank, _rank, st.integers(0, 10_000)),
    st.tuples(st.just("exchange"), st.lists(_msg, max_size=6)),
    st.tuples(
        st.just("compute"), _rank,
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    ),
    st.tuples(st.just("sync")),
)
_program = st.lists(_op, max_size=30)


def _run_program(program, model):
    machine = Machine(ProcessorArray("P", (NPROCS,)), cost_model=model)
    log = EventLog()
    with record(machine, log):
        for op in program:
            if op[0] == "send":
                machine.network.send(op[1], op[2], op[3])
            elif op[0] == "exchange":
                machine.network.exchange(list(op[1]))
            elif op[0] == "compute":
                machine.network.compute(op[1], op[2])
            else:
                machine.network.synchronize()
    return machine, log


@given(_program, _model)
@settings(max_examples=150, deadline=None)
def test_array_replay_is_bitwise_identical_to_event_loop(program, model):
    machine, log = _run_program(program, model)
    loop = simulate(log, model, NPROCS, overlap=False)
    fast = replay_blocking(log.to_arrays(), model, NPROCS)
    assert fast.clocks == loop.clocks
    assert fast.clocks == machine.network.clocks
    assert fast.makespan == loop.makespan
    assert fast.barriers == loop.barriers


# -- split-phase single-phase fast path == event-loop simulate ---------------

@st.composite
def _transfer_matrix(draw):
    p = draw(st.integers(2, 8))
    flat = draw(
        st.lists(st.integers(0, 40_000), min_size=p * p, max_size=p * p)
    )
    T = np.asarray(flat, dtype=np.int64).reshape(p, p)
    np.fill_diagonal(T, 0)
    return p, T


@given(_transfer_matrix(), _model)
@settings(max_examples=120, deadline=None)
def test_split_exchange_fast_path_matches_event_loop(pt, model):
    p, T = pt
    s, d = np.nonzero(T)
    nb = T[s, d]
    log = EventLog()
    phase = log.begin_phase("redistribute:plan")
    for q, r, b in zip(s, d, nb):
        log.message(int(q), int(r), int(b), "redistribute:plan", phase=phase)
    log.barrier()
    loop = simulate(log, model, p, overlap=True)
    fast = replay_split_exchange(
        s.astype(np.int64), d.astype(np.int64), nb.astype(np.int64), model, p
    )
    assert fast == loop.makespan
