"""Property-based tests for the load balancer and the query algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.load_balance import balance_greedy, block_loads, imbalance
from repro.compiler.partial_eval import (
    dim_implies,
    dim_overlaps,
    pattern_implies,
    pattern_overlaps,
    refine_pattern,
)
from repro.core.dimdist import Block, Cyclic, GenBlock, NoDist
from repro.core.distribution import DistributionType
from repro.core.query import ANY, TypePattern, Wild


# -- balance ----------------------------------------------------------------

@given(
    st.lists(st.floats(0, 100), min_size=4, max_size=80),
    st.integers(1, 8),
)
@settings(max_examples=150, deadline=None)
def test_balance_is_a_partition(weights, p):
    w = np.asarray(weights)
    sizes = balance_greedy(w, p)
    assert len(sizes) == p
    assert sum(sizes) == len(w)
    assert all(s >= 0 for s in sizes)


@given(
    st.lists(st.floats(0.1, 100), min_size=8, max_size=80),
    st.integers(2, 8),
)
@settings(max_examples=100, deadline=None)
def test_balance_bottleneck_bound(weights, p):
    """Greedy bottleneck <= mean + max single weight (the classical
    guarantee for prefix-target cutting)."""
    w = np.asarray(weights)
    if p > len(w):
        return
    sizes = balance_greedy(w, p)
    loads = block_loads(w, sizes)
    bound = w.sum() / p + w.max() * 2
    assert loads.max() <= bound + 1e-9


@given(
    st.lists(st.floats(0, 50), min_size=4, max_size=60),
    st.integers(1, 6),
)
@settings(max_examples=100, deadline=None)
def test_imbalance_at_least_one(weights, p):
    w = np.asarray(weights)
    sizes = balance_greedy(w, p)
    assert imbalance(w, sizes) >= 1.0 - 1e-12


# -- pattern algebra ------------------------------------------------------------

def dim_pattern_strategy():
    return st.sampled_from(
        [
            Block(),
            Cyclic(1),
            Cyclic(2),
            Cyclic(3),
            GenBlock([2, 2]),
            NoDist(),
            ANY,
            Wild(Cyclic),
            Wild(Block),
            Wild(GenBlock),
        ]
    )


def concrete_dim_strategy():
    return st.sampled_from(
        [Block(), Cyclic(1), Cyclic(2), Cyclic(3), GenBlock([2, 2]), NoDist()]
    )


@given(dim_pattern_strategy(), dim_pattern_strategy())
@settings(max_examples=200, deadline=None)
def test_dim_implies_subset_of_overlaps(a, b):
    """implies(a, b) -> overlaps(a, b) (a non-empty a is assumed:
    every generated pattern admits at least one concrete instance)."""
    if dim_implies(a, b):
        assert dim_overlaps(a, b)


@given(dim_pattern_strategy(), dim_pattern_strategy())
@settings(max_examples=200, deadline=None)
def test_dim_overlaps_symmetric(a, b):
    assert dim_overlaps(a, b) == dim_overlaps(b, a)


@given(concrete_dim_strategy(), dim_pattern_strategy())
@settings(max_examples=200, deadline=None)
def test_dim_implies_agrees_with_matching(c, p):
    """For a concrete dim c: implies(c, p) iff p matches c."""
    from repro.core.query import _dim_matches

    assert dim_implies(c, p) == _dim_matches(p, c)


@given(
    st.lists(dim_pattern_strategy(), min_size=1, max_size=3),
    st.lists(dim_pattern_strategy(), min_size=1, max_size=3),
)
@settings(max_examples=200, deadline=None)
def test_refine_sound(dims_a, dims_b):
    """refine(a, b) implies both a and b."""
    a, b = TypePattern(dims_a), TypePattern(dims_b)
    r = refine_pattern(a, b)
    if r is not None:
        assert pattern_overlaps(r, a)
        assert pattern_overlaps(r, b)
        # refinement is at least as specific as each side
        assert pattern_implies(r, a) or pattern_implies(r, b)


@given(
    st.lists(concrete_dim_strategy(), min_size=1, max_size=3),
    st.lists(dim_pattern_strategy(), min_size=1, max_size=3),
)
@settings(max_examples=200, deadline=None)
def test_concrete_match_is_implies(dims_c, dims_p):
    c = TypePattern(dims_c)
    p = TypePattern(dims_p)
    t = DistributionType(dims_c)
    assert p.matches(t) == pattern_implies(c, p)
