"""Property-based tests of redistribution invariants.

The central correctness property of the DISTRIBUTE implementation:
data is preserved bit-for-bit by any chain of redistributions, and the
vectorized transfer-set computation agrees with the per-element oracle.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import DistributionType, NoDist, dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import (
    communicate,
    transfer_matrix,
    transfer_matrix_naive,
)

P = 4
R = ProcessorArray("R", (P,))


@st.composite
def dist_1d(draw, n):
    kind = draw(st.sampled_from(["block", "cyclic", "genblock"]))
    if kind == "block":
        return dist_type(Block(), ":")
    if kind == "cyclic":
        return dist_type(Cyclic(draw(st.integers(1, 5))), ":")
    cuts = sorted(draw(st.lists(st.integers(0, n), min_size=P - 1, max_size=P - 1)))
    bounds = [0] + cuts + [n]
    return dist_type(GenBlock([b - a for a, b in zip(bounds, bounds[1:])]), ":")


@given(st.data(), st.integers(4, 24))
@settings(max_examples=60, deadline=None)
def test_transfer_matrix_matches_naive(data, n):
    old = data.draw(dist_1d(n)).apply((n, 3), R)
    new = data.draw(dist_1d(n)).apply((n, 3), R)
    T_fast = transfer_matrix(old, new, P)
    T_slow = transfer_matrix_naive(old, new, P)
    assert (T_fast == T_slow).all()


@given(st.data(), st.integers(4, 24))
@settings(max_examples=60, deadline=None)
def test_transfer_matrix_conservation(data, n):
    """Row sums = elements leaving a proc; they never exceed what the
    old distribution placed there, and total moved + kept = n*3."""
    old = data.draw(dist_1d(n)).apply((n, 3), R)
    new = data.draw(dist_1d(n)).apply((n, 3), R)
    T = transfer_matrix(old, new, P)
    for rank in range(P):
        assert T[rank].sum() <= old.local_size(rank)
    kept = int(
        (np.asarray(old.rank_map()) == np.asarray(new.rank_map())).sum()
    )
    assert T.sum() + kept == n * 3


@given(st.data(), st.integers(4, 20))
@settings(max_examples=40, deadline=None)
def test_redistribution_chain_preserves_data(data, n):
    machine = Machine(R)
    engine = Engine(machine)
    first = data.draw(dist_1d(n))
    arr = engine.declare("A", (n, 3), dist=first, dynamic=True)
    values = np.random.default_rng(n).standard_normal((n, 3))
    arr.from_global(values)
    for _ in range(3):
        t = data.draw(dist_1d(n))
        communicate(arr, t.apply((n, 3), R))
        assert np.array_equal(arr.to_global(), values)


@given(st.data(), st.integers(4, 20))
@settings(max_examples=40, deadline=None)
def test_identity_redistribution_always_free(data, n):
    t = data.draw(dist_1d(n))
    d = t.apply((n, 3), R)
    assert transfer_matrix(d, d, P).sum() == 0


@given(st.data(), st.integers(4, 20))
@settings(max_examples=40, deadline=None)
def test_report_accounting_consistent(data, n):
    machine = Machine(R)
    engine = Engine(machine)
    arr = engine.declare("A", (n, 3), dist=data.draw(dist_1d(n)), dynamic=True)
    arr.fill(1.0)
    rep = communicate(arr, data.draw(dist_1d(n)).apply((n, 3), R))
    assert rep.bytes == rep.elements_moved * arr.itemsize
    assert 0 <= rep.elements_kept <= arr.size
    assert rep.elements_moved + rep.elements_kept == arr.size
