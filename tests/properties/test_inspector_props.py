"""Property-based tests of the inspector/executor.

Invariants: gathers return exactly the requested global values
regardless of distribution; message pairs aggregate per processor
pair; scatter_add accumulates linearly.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dimdist import Block, Cyclic, GenBlock, Indirect
from repro.core.distribution import DistributionType
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine

P = 4
R = ProcessorArray("R", (P,))


@st.composite
def dist_and_requests(draw):
    n = draw(st.integers(4, 40))
    kind = draw(st.sampled_from(["block", "cyclic", "indirect"]))
    if kind == "block":
        dd = Block()
    elif kind == "cyclic":
        dd = Cyclic(draw(st.integers(1, 4)))
    else:
        dd = Indirect(
            draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
        )
    requests = {
        p: np.asarray(
            draw(
                st.lists(st.integers(0, n - 1), min_size=0, max_size=12)
            ),
            dtype=np.int64,
        ).reshape(-1, 1)
        for p in range(P)
    }
    return DistributionType((dd,)), n, requests


@given(dist_and_requests())
@settings(max_examples=80, deadline=None)
def test_gather_returns_requested_values(dnr):
    dtype, n, requests = dnr
    machine = Machine(R)
    engine = Engine(machine)
    arr = engine.declare("X", (n,), dist=dtype, dynamic=True)
    values = np.random.default_rng(n).standard_normal(n)
    arr.from_global(values)
    insp = engine.inspector("X")
    sched = insp.inspect(requests)
    out = insp.gather(sched)
    for p, idx in requests.items():
        assert np.array_equal(out[p], values[idx[:, 0]])


@given(dist_and_requests())
@settings(max_examples=60, deadline=None)
def test_message_pairs_bounded(dnr):
    dtype, n, requests = dnr
    machine = Machine(R)
    engine = Engine(machine)
    engine.declare("X", (n,), dist=dtype, dynamic=True)
    insp = engine.inspector("X")
    sched = insp.inspect(requests)
    pairs = sched.message_pairs()
    # at most one aggregated entry per ordered pair, never self-pairs
    assert all(q != p for (q, p) in pairs)
    assert len(pairs) <= P * (P - 1)
    # counts match the nonlocal tally
    by_requester: dict[int, int] = {}
    for (q, p), c in pairs.items():
        by_requester[p] = by_requester.get(p, 0) + c
    assert by_requester == {
        p: c for p, c in sched.nonlocal_counts().items() if c
    }


@given(dist_and_requests())
@settings(max_examples=60, deadline=None)
def test_scatter_add_linear(dnr):
    dtype, n, requests = dnr
    machine = Machine(R)
    engine = Engine(machine)
    arr = engine.declare("X", (n,), dist=dtype, dynamic=True)
    arr.fill(0.0)
    insp = engine.inspector("X")
    sched = insp.inspect(requests)
    contributions = {
        p: np.ones(len(idx), dtype=float) for p, idx in requests.items()
    }
    insp.scatter_add(sched, contributions)
    expected = np.zeros(n)
    for p, idx in requests.items():
        np.add.at(expected, idx[:, 0], 1.0)
    assert np.array_equal(arr.to_global(), expected)
