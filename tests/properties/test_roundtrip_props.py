"""Property test: distribution-expression text round-trips.

``repr`` of a concrete :class:`DistributionType` is valid Vienna
Fortran surface syntax, and parsing it back yields an equal type —
the invariant that lets descriptors, logs and bench tables be read
back into programs.
"""

from hypothesis import given, settings, strategies as st

from repro.core.dimdist import Block, Cyclic, GenBlock, Indirect, NoDist, SBlock
from repro.core.distribution import DistributionType
from repro.lang.parser import parse_dist_expr


@st.composite
def concrete_dimdist(draw):
    kind = draw(
        st.sampled_from(
            ["block", "blockm", "cyclic", "cyclick", "genblock", "sblock",
             "indirect", "nodist"]
        )
    )
    if kind == "block":
        return Block()
    if kind == "blockm":
        return Block(draw(st.integers(1, 9)))
    if kind == "cyclic":
        return Cyclic(1)
    if kind == "cyclick":
        return Cyclic(draw(st.integers(2, 9)))
    if kind == "genblock":
        return GenBlock(
            draw(st.lists(st.integers(0, 9), min_size=1, max_size=5))
        )
    if kind == "sblock":
        cuts = sorted(draw(st.lists(st.integers(0, 9), min_size=0, max_size=4)))
        return SBlock([0] + cuts)
    if kind == "indirect":
        return Indirect(
            draw(st.lists(st.integers(0, 3), min_size=1, max_size=12))
        )
    return NoDist()


@given(st.lists(concrete_dimdist(), min_size=1, max_size=4))
@settings(max_examples=200, deadline=None)
def test_repr_parses_back_to_equal_type(dims):
    t = DistributionType(dims)
    parsed = parse_dist_expr(repr(t))
    assert parsed == t


@given(st.lists(concrete_dimdist(), min_size=1, max_size=3))
@settings(max_examples=100, deadline=None)
def test_double_roundtrip_stable(dims):
    t = DistributionType(dims)
    once = parse_dist_expr(repr(t))
    twice = parse_dist_expr(repr(once))
    assert once == twice == t
