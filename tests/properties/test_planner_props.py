"""Property-based tests of the distribution planner.

The central invariant: a planned schedule's modeled cost is **never
worse than the best static (no-redistribution) layout** — every static
layout is a path in the phase x layout lattice, so the DP must match
or beat it.  Checked over random phase sequences (access kinds,
sweep dims, repeats, loads), random candidate lattices and random
machine cost models; the greedy fallback is held to the weaker (but
still required) bound of never losing to *staying put*.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.ir import AccessKind, ArrayRef
from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import dist_type
from repro.machine import CostModel, Machine, ProcessorArray
from repro.planner.costs import CostEngine
from repro.planner.phases import ArrayLoad, Phase
from repro.planner.search import greedy_schedule, plan_array

P = 4
N = 16  # array extent per dimension


@st.composite
def cost_models(draw):
    alpha = draw(st.floats(0.0, 1e-3))
    beta = draw(st.floats(0.0, 1e-6))
    flop_rate = draw(st.sampled_from([1e6, 1e8, 1e10]))
    return CostModel(alpha=alpha, beta=beta, flop_rate=flop_rate, name="h")


@st.composite
def dim_dists(draw):
    kind = draw(st.sampled_from(["block", "cyclic", "genblock"]))
    if kind == "block":
        return Block()
    if kind == "cyclic":
        return Cyclic(draw(st.integers(1, 4)))
    cuts = sorted(
        draw(st.lists(st.integers(0, N), min_size=P - 1, max_size=P - 1))
    )
    bounds = [0] + cuts + [N]
    return GenBlock([b - a for a, b in zip(bounds, bounds[1:])])


@st.composite
def candidate_sets(draw, machine):
    n = draw(st.integers(2, 5))
    seen = set()
    out = []
    for _ in range(n):
        if draw(st.booleans()):
            dt = dist_type(draw(dim_dists()), ":")
        else:
            dt = dist_type(":", draw(dim_dists()))
        if dt not in seen:
            seen.add(dt)
            out.append(dt.apply((N, N), machine.full_section()))
    return out


@st.composite
def phases(draw):
    out = []
    for i in range(draw(st.integers(1, 6))):
        refs = []
        for _ in range(draw(st.integers(0, 3))):
            kind = draw(
                st.sampled_from(
                    [AccessKind.IDENTITY, AccessKind.SHIFT, AccessKind.ROW_SWEEP]
                )
            )
            if kind == AccessKind.SHIFT:
                refs.append(
                    ArrayRef(
                        "A",
                        kind,
                        offsets=(
                            draw(st.integers(-2, 2)),
                            draw(st.integers(-2, 2)),
                        ),
                    )
                )
            elif kind == AccessKind.ROW_SWEEP:
                refs.append(ArrayRef("A", kind, dim=draw(st.integers(0, 1))))
            else:
                refs.append(ArrayRef("A", kind))
        load = None
        if draw(st.booleans()):
            weights = tuple(
                float(w)
                for w in draw(
                    st.lists(
                        st.integers(0, 50), min_size=N, max_size=N
                    )
                )
            )
            load = ArrayLoad(
                "A",
                draw(st.integers(0, 1)),
                weights,
                flops_per_unit=draw(st.floats(0.1, 100.0)),
                boundary_bytes_per_unit=draw(st.floats(0.0, 64.0)),
            )
        out.append(
            Phase(
                f"p{i}",
                tuple(refs),
                repeat=draw(st.integers(1, 20)),
                work=draw(st.floats(0.0, 1e4)),
                load=load,
            )
        )
    return out


@given(st.data(), cost_models())
@settings(max_examples=50, deadline=None)
def test_planned_never_worse_than_best_static(data, cm):
    machine = Machine(ProcessorArray("P", (P,)), cost_model=cm)
    cands = data.draw(candidate_sets(machine))
    phs = data.draw(phases())
    initial = data.draw(st.sampled_from(cands + [None]))
    engine = CostEngine(machine)
    plan = plan_array("A", phs, cands, engine, initial=initial)
    assert plan.static
    best_static = min(plan.static.values())
    assert plan.total_cost <= best_static + 1e-12 + 1e-9 * abs(best_static)


@given(st.data(), cost_models())
@settings(max_examples=30, deadline=None)
def test_plan_structure_invariants(data, cm):
    machine = Machine(ProcessorArray("P", (P,)), cost_model=cm)
    cands = data.draw(candidate_sets(machine))
    phs = data.draw(phases())
    initial = data.draw(st.sampled_from(cands))
    engine = CostEngine(machine)
    plan = plan_array("A", phs, cands, engine, initial=initial)
    # one step per phase, chained prev pointers, consistent totals
    assert len(plan.steps) == len(phs)
    prev = initial
    acc = 0.0
    for step in plan.steps:
        assert step.prev == prev
        assert step.dist in plan.static
        acc += step.phase_cost + step.transition_cost
        prev = step.dist
    assert abs(acc - plan.total_cost) <= 1e-12 + 1e-9 * abs(acc)
    # every recorded redistribution is a genuine layout change
    for _, frm, to in plan.redistributions:
        assert frm != to


@given(st.data(), cost_models())
@settings(max_examples=30, deadline=None)
def test_greedy_never_worse_than_staying_put(data, cm):
    machine = Machine(ProcessorArray("P", (P,)), cost_model=cm)
    cands = data.draw(candidate_sets(machine))
    phs = data.draw(phases())
    initial = data.draw(st.sampled_from(cands))
    engine = CostEngine(machine)
    _, total = greedy_schedule("A", phs, cands, engine, initial)
    stay = engine.static_cost(phs, "A", initial)
    assert total <= stay + 1e-12 + 1e-9 * abs(stay)


@given(st.data(), cost_models())
@settings(max_examples=30, deadline=None)
def test_greedy_plan_never_worse_than_best_static(data, cm):
    """The headline bound must hold for the greedy fallback too: via
    plan_array a greedy result is clamped to the best static layout."""
    machine = Machine(ProcessorArray("P", (P,)), cost_model=cm)
    cands = data.draw(candidate_sets(machine))
    phs = data.draw(phases())
    initial = data.draw(st.sampled_from(cands + [None]))
    engine = CostEngine(machine)
    plan = plan_array("A", phs, cands, engine, initial=initial,
                      method="greedy")
    best_static = min(plan.static.values())
    assert plan.total_cost <= best_static + 1e-12 + 1e-9 * abs(best_static)


@given(st.data(), cost_models())
@settings(max_examples=15, deadline=None)
def test_greedy_accepts_initial_outside_lattice(data, cm):
    """A current layout not in the candidate list is admitted as an
    extra candidate instead of crashing."""
    machine = Machine(ProcessorArray("P", (P,)), cost_model=cm)
    cands = data.draw(candidate_sets(machine))
    phs = data.draw(phases())
    outside = dist_type(":", Cyclic(5)).apply((N, N), machine.full_section())
    engine = CostEngine(machine)
    steps, total = greedy_schedule("A", phs, cands, engine, outside)
    assert len(steps) == len(phs)
    assert total <= engine.static_cost(phs, "A", outside) + 1e-9
