"""Backend conformance: MultiprocessBackend == SerialBackend, bitwise.

The multiprocess backend executes transfer plans, halo exchanges and
kernels in real worker processes over a real message-passing
transport; its *only* contract is that nobody can tell from the
results.  Property: for random programs over random distributions,
array contents after every operation are bitwise-identical to the
serial reference, and the simulated-network accounting is identical
too.  All four §4 apps are smoke-covered under both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import MultiprocessBackend
from repro.core.dimdist import Block, Cyclic, GenBlock, Replicated
from repro.core.distribution import dist_type
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.runtime.engine import Engine

P = 3
R = ProcessorArray("R", (P,))


@st.composite
def dist_2d(draw, n):
    """A random distribution of an (n, 3) array over the 1-D array R:
    the distributed dimension, its distribution kind, and parameters
    all vary."""
    dim = draw(st.sampled_from([0, 1]))
    extent = n if dim == 0 else 3
    kind = draw(
        st.sampled_from(["block", "cyclic", "genblock", "replicated"])
    )
    if kind == "block":
        dd = Block()
    elif kind == "cyclic":
        dd = Cyclic(draw(st.integers(1, 4)))
    elif kind == "replicated":
        dd = Replicated()
    else:
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(0, extent), min_size=P - 1, max_size=P - 1
                )
            )
        )
        bounds = [0] + cuts + [extent]
        dd = GenBlock([b - a for a, b in zip(bounds, bounds[1:])])
    dims = [":", ":"]
    dims[dim] = dd
    return dist_type(*dims)


def _run_program(n, layouts, values, backend):
    """Declare, fill, and chain-redistribute; return contents + stats."""
    machine = Machine(R, cost_model=PARAGON)
    if backend is not None:
        backend.attach(machine)
    engine = Engine(machine)
    arr = engine.declare("A", (n, 3), dist=layouts[0], dynamic=True)
    arr.from_global(values)
    snapshots = [arr.to_global().copy()]
    for layout in layouts[1:]:
        engine.distribute("A", layout)
        snapshots.append(arr.to_global().copy())
    return snapshots, machine.stats(), engine.reports


@given(st.data(), st.integers(4, 16))
@settings(max_examples=12, deadline=None)
def test_random_redistribution_chains_bitwise_identical(data, n):
    layouts = [
        data.draw(dist_2d(n)) for _ in range(data.draw(st.integers(2, 4)))
    ]
    values = np.random.default_rng(n).standard_normal((n, 3))

    backend = MultiprocessBackend(timeout=60.0)
    try:
        mp_snaps, mp_stats, mp_reports = _run_program(
            n, layouts, values, backend
        )
    finally:
        backend.close()
    ser_snaps, ser_stats, ser_reports = _run_program(
        n, layouts, values, None
    )

    assert len(mp_snaps) == len(ser_snaps)
    for mp_s, ser_s in zip(mp_snaps, ser_snaps):
        assert np.array_equal(mp_s, ser_s)  # bitwise, not allclose
    assert mp_stats.messages == ser_stats.messages
    assert mp_stats.bytes == ser_stats.bytes
    assert mp_stats.time == ser_stats.time
    for mp_r, ser_r in zip(mp_reports, ser_reports):
        assert mp_r.messages == ser_r.messages
        assert mp_r.elements_moved == ser_r.elements_moved
        assert mp_r.elements_kept == ser_r.elements_kept


# -- app smoke coverage: every §4 workload, both backends ----------------

def test_adi_conformance_all_strategies():
    from repro.apps.adi import run_adi

    for strategy in ("dynamic", "planned", "static_cols", "two_arrays"):
        serial = run_adi(
            Machine(ProcessorArray("R", (4,)), cost_model=PARAGON),
            16, 16, 2, strategy, seed=1,
        )
        multi = run_adi(
            Machine(ProcessorArray("R", (4,)), cost_model=PARAGON),
            16, 16, 2, strategy, seed=1, backend="multiprocess",
        )
        assert np.array_equal(serial.solution, multi.solution), strategy
        assert serial.total_messages == multi.total_messages
        assert serial.total_time == multi.total_time


def test_pic_conformance():
    from repro.apps.pic import PICConfig, run_pic

    cfg = PICConfig(
        strategy="bblock", ncell=32, npart=400, max_time=12,
        nprocs=4, seed=5,
    )
    serial = run_pic(
        Machine(ProcessorArray("P", (4,)), cost_model=PARAGON), cfg
    )
    multi = run_pic(
        Machine(ProcessorArray("P", (4,)), cost_model=PARAGON), cfg,
        backend="multiprocess",
    )
    assert serial.redistributions == multi.redistributions
    assert serial.total_time == multi.total_time
    for s, m in zip(serial.steps, multi.steps):
        assert s.imbalance == m.imbalance
        assert s.motion_messages == m.motion_messages


def test_pic_explicit_rng_is_deterministic():
    from repro.apps.pic import PICConfig, run_pic

    cfg = PICConfig(
        strategy="bblock", ncell=32, npart=400, max_time=8, nprocs=4,
        seed=9,
    )
    runs = []
    for backend in (None, "multiprocess"):
        rng = np.random.default_rng(1234)  # overrides config.seed
        r = run_pic(
            Machine(ProcessorArray("P", (4,)), cost_model=PARAGON),
            cfg, rng=rng, backend=backend,
        )
        runs.append([s.imbalance for s in r.steps])
    assert runs[0] == runs[1]


def test_smoothing_conformance_both_distributions():
    from repro.apps.smoothing import run_smoothing

    for distribution, nprocs in (("columns", 4), ("blocks2d", 4)):
        serial = run_smoothing(
            16, 3, distribution, nprocs, PARAGON, seed=2
        )
        multi = run_smoothing(
            16, 3, distribution, nprocs, PARAGON, seed=2,
            backend="multiprocess",
        )
        assert np.array_equal(serial.solution, multi.solution)
        assert serial.messages == multi.messages
        assert serial.time == multi.time


def test_irregular_conformance():
    networkx = pytest.importorskip("networkx")  # noqa: F841
    from repro.apps.irregular import make_mesh, run_relaxation
    from repro.backend.base import attached_backend

    mesh = make_mesh(40, seed=4)
    results = []
    for backend in (None, "multiprocess"):
        machine = Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)
        with attached_backend(machine, backend):
            results.append(
                run_relaxation(machine, mesh, "partitioned", sweeps=2, seed=4)
            )
    serial, multi = results
    assert np.array_equal(serial.solution, multi.solution)
    assert serial.messages == multi.messages
    assert serial.cut_edges == multi.cut_edges
