"""Property-based tests of the distribution model's core invariants.

Definition 1 requires delta_A to be a *total* function into the
non-empty powerset of processor indices; for the exclusive intrinsics
it must partition the domain.  These properties are checked over
randomly generated distributions, extents and processor grids.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.dimdist import Block, Cyclic, GenBlock, Indirect, NoDist, SBlock
from repro.core.distribution import Distribution, DistributionType
from repro.machine.topology import ProcessorArray


@st.composite
def dim_extent_slots(draw):
    """A (dimdist, extent, slots) triple valid by construction."""
    n = draw(st.integers(1, 40))
    p = draw(st.integers(1, 6))
    kind = draw(st.sampled_from(["block", "cyclic", "genblock", "sblock", "indirect"]))
    if kind == "block":
        return Block(), n, p
    if kind == "cyclic":
        return Cyclic(draw(st.integers(1, 7))), n, p
    if kind == "genblock":
        cuts = sorted(
            draw(
                st.lists(
                    st.integers(0, n), min_size=p - 1, max_size=p - 1
                )
            )
        )
        bounds = [0] + cuts + [n]
        return GenBlock([b - a for a, b in zip(bounds, bounds[1:])]), n, p
    if kind == "sblock":
        cuts = sorted(
            draw(st.lists(st.integers(0, n), min_size=p - 1, max_size=p - 1))
        )
        return SBlock([0] + cuts), n, p
    owners = draw(
        st.lists(st.integers(0, p - 1), min_size=n, max_size=n)
    )
    return Indirect(owners), n, p


class TestDimDistProperties:
    @given(dim_extent_slots())
    @settings(max_examples=150, deadline=None)
    def test_partition(self, dns):
        dd, n, p = dns
        seen = np.zeros(n, dtype=int)
        for s in range(p):
            seen[dd.indices_of(s, n, p)] += 1
        assert (seen == 1).all()

    @given(dim_extent_slots())
    @settings(max_examples=150, deadline=None)
    def test_owners_vec_total_and_in_range(self, dns):
        dd, n, p = dns
        vec = dd.owners_vec(n, p)
        assert len(vec) == n
        assert vec.min() >= 0 and vec.max() < p

    @given(dim_extent_slots())
    @settings(max_examples=100, deadline=None)
    def test_loc_map_bijective_per_slot(self, dns):
        """global_to_local is a bijection onto [0, local_count)."""
        dd, n, p = dns
        for s in range(p):
            owned = dd.indices_of(s, n, p)
            locs = [dd.global_to_local(s, int(g), n, p) for g in owned]
            assert sorted(locs) == list(range(len(owned)))

    @given(dim_extent_slots())
    @settings(max_examples=100, deadline=None)
    def test_local_to_global_inverse(self, dns):
        dd, n, p = dns
        for s in range(p):
            cnt = dd.local_count(s, n, p)
            for li in range(cnt):
                g = dd.local_to_global(s, li, n, p)
                assert dd.global_to_local(s, g, n, p) == li
                assert dd.owner_of(g, n, p) == s


@st.composite
def bound_distribution(draw):
    """A random valid 1-D or 2-D bound Distribution."""
    ndim = draw(st.integers(1, 2))
    dims, shape = [], []
    proc_shape = []
    for _ in range(ndim):
        dd, n, p = draw(dim_extent_slots())
        if isinstance(dd, NoDist):  # not generated, but keep guard
            continue
        distribute_this = draw(st.booleans())
        if distribute_this:
            dims.append(dd)
            proc_shape.append(p)
        else:
            dims.append(NoDist())
        shape.append(n)
    if not proc_shape:  # ensure at least one distributed dim
        dd, n, p = draw(dim_extent_slots())
        dims[0] = dd
        shape[0] = n
        proc_shape.append(p)
    R = ProcessorArray("R", tuple(proc_shape))
    return DistributionType(dims).apply(tuple(shape), R)


class TestDistributionProperties:
    @given(bound_distribution())
    @settings(max_examples=80, deadline=None)
    def test_rank_map_matches_pointwise_owner(self, dist):
        rm = np.asarray(dist.rank_map())
        rng = np.random.default_rng(0)
        for _ in range(10):
            idx = tuple(int(rng.integers(0, s)) for s in dist.shape)
            assert rm[idx] == dist.owner(idx)

    @given(bound_distribution())
    @settings(max_examples=80, deadline=None)
    def test_local_sizes_partition_domain(self, dist):
        total = sum(dist.local_size(r) for r in range(dist.target.parent.size))
        assert total == dist.domain.size

    @given(bound_distribution())
    @settings(max_examples=50, deadline=None)
    def test_local_index_arrays_consistent_with_owner(self, dist):
        for rank in range(dist.target.parent.size):
            arrs = dist.local_index_arrays(rank)
            if arrs is None:
                continue
            # sample the cartesian product instead of enumerating it
            rng = np.random.default_rng(rank)
            for _ in range(5):
                if any(len(a) == 0 for a in arrs):
                    break
                idx = tuple(
                    int(a[rng.integers(0, len(a))]) for a in arrs
                )
                assert dist.owner(idx) == rank

    @given(bound_distribution())
    @settings(max_examples=50, deadline=None)
    def test_global_local_roundtrip(self, dist):
        for rank in range(dist.target.parent.size):
            arrs = dist.local_index_arrays(rank)
            if arrs is None or any(len(a) == 0 for a in arrs):
                continue
            gidx = tuple(int(a[0]) for a in arrs)
            lidx = dist.global_to_local(rank, gidx)
            assert dist.local_to_global(rank, lidx) == gidx
