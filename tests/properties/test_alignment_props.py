"""Property-based tests for alignments and CONSTRUCT.

The defining property (Definition 2 + CONSTRUCT): aligned elements are
co-located — for every source index i, the owners of A(i) under
CONSTRUCT(alpha, delta_B) are exactly the owners of B(alpha(i)).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.alignment import Alignment, AxisMap, construct
from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import DistributionType, NoDist
from repro.core.index_domain import IndexDomain
from repro.machine.topology import ProcessorArray


@st.composite
def target_distribution_2d(draw):
    """A 2-D distribution of B with at least one distributed dim."""
    n0 = draw(st.integers(2, 16))
    n1 = draw(st.integers(2, 16))
    choices = [Block(), Cyclic(draw(st.integers(1, 4)))]
    d0 = draw(st.sampled_from(choices + [NoDist()]))
    d1 = draw(st.sampled_from(choices + [NoDist()]))
    if isinstance(d0, NoDist) and isinstance(d1, NoDist):
        d0 = Block()
    proc_shape = tuple(
        draw(st.integers(1, 3))
        for d in (d0, d1)
        if not isinstance(d, NoDist)
    )
    R = ProcessorArray("R", proc_shape if proc_shape else (1,))
    if not proc_shape:
        R = ProcessorArray("R", (1,))
    return DistributionType((d0, d1)).apply((n0, n1), R)


@st.composite
def alignment_for(draw, db):
    """A valid affine alignment into db's domain, with source domain."""
    n0, n1 = db.shape
    kind = draw(st.sampled_from(["identity", "transpose", "shift", "embed"]))
    if kind == "identity":
        return Alignment.identity(2), IndexDomain((n0, n1))
    if kind == "transpose":
        return Alignment.permutation((1, 0)), IndexDomain((n1, n0))
    if kind == "shift":
        o0 = draw(st.integers(0, max(0, n0 - 2)))
        o1 = draw(st.integers(0, max(0, n1 - 2)))
        return (
            Alignment.shift(2, (o0, o1)),
            IndexDomain((n0 - o0, n1 - o1)),
        )
    # embed: A(i) WITH B(i, c)
    c = draw(st.integers(0, n1 - 1))
    return (
        Alignment(1, [AxisMap(0), AxisMap(None, offset=c)]),
        IndexDomain((n0,)),
    )


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_construct_colocates(data):
    db = data.draw(target_distribution_2d())
    alignment, source_domain = data.draw(alignment_for(db))
    da = construct(alignment, db, source_domain)
    rng = np.random.default_rng(0)
    for _ in range(8):
        idx = tuple(int(rng.integers(0, s)) for s in source_domain.shape)
        target_idx = alignment.map_index(idx)
        assert da.owner(idx) == db.owner(target_idx)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_construct_total(data):
    """delta_A is total: every source element has an owner."""
    db = data.draw(target_distribution_2d())
    alignment, source_domain = data.draw(alignment_for(db))
    da = construct(alignment, db, source_domain)
    rm = np.asarray(da.rank_map())
    assert rm.shape == source_domain.shape
    assert rm.min() >= 0


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_identity_alignment_preserves_type(data):
    """CONSTRUCT over identity keeps the distribution *type* — the
    invariant the connect classes rely on ('the distribution type of
    A1 and A2 will always be the same as that of B4')."""
    db = data.draw(target_distribution_2d())
    da = construct(Alignment.identity(2), db, db.domain)
    assert da.dtype == db.dtype
