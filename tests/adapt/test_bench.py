"""The E16 bench: gates, artifacts, trajectory, the adapt sentinel."""

import copy
import json

import pytest

from repro.adapt import run_adapt_bench
from repro.adapt.bench import ADAPT_SCHEMA, SMOKE_SCENARIOS
from repro.obs import TrajectoryStore, compare_adapt_reports
from repro.obs.compare import EXIT_HARD, EXIT_SOFT, resolve_baseline


@pytest.fixture(scope="module")
def smoke_report(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("adapt_bench")
    out = tmp / "BENCH_ADAPT.json"
    coverage = tmp / "ADAPT_COVERAGE.json"
    trajectory = tmp / "BENCH_TRAJECTORY.jsonl"
    report = run_adapt_bench(
        smoke=True, out=str(out), coverage_out=str(coverage),
        check=True, trajectory=str(trajectory), quiet=True,
    )
    return report, out, coverage, trajectory


def test_smoke_report_passes_every_gate(smoke_report):
    report, _, _, _ = smoke_report
    assert report["schema"] == ADAPT_SCHEMA
    assert report["smoke"] is True
    assert report["pass"] is True
    assert len(report["scenarios"]) == len(SMOKE_SCENARIOS)
    for scenario in report["scenarios"]:
        assert scenario["pass"], scenario["gates"]
        assert scenario["speedup_vs_best_static"] > 1.0
        assert scenario["speedup_vs_offline"] > 1.0
        assert len(scenario["replans"]) >= 1
        assert scenario["checkpoints"] >= 1


def test_artifacts_are_written_and_loadable(smoke_report):
    report, out, coverage, _ = smoke_report
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == ADAPT_SCHEMA
    assert on_disk["pass"] is True
    cov = json.loads(coverage.read_text())
    assert cov["schema"] == "repro-adapt-coverage/1"
    assert cov["complete"] is True


def test_trajectory_records_the_adapt_kind(smoke_report):
    _, _, _, trajectory = smoke_report
    entries = TrajectoryStore(str(trajectory)).entries(kind="adapt")
    assert len(entries) == 1
    assert entries[0]["report"]["schema"] == ADAPT_SCHEMA


def test_resolve_baseline_prefers_the_trajectory(smoke_report):
    report, _, _, trajectory = smoke_report
    baseline, source = resolve_baseline(
        report, kind="adapt", trajectory=TrajectoryStore(str(trajectory)),
    )
    assert baseline["schema"] == ADAPT_SCHEMA
    assert "latest adapt entry" in source


def test_compare_adapt_clean_on_a_passing_report(smoke_report):
    report, _, _, _ = smoke_report
    comparison = compare_adapt_reports(report, report)
    assert comparison.exit_code == 0
    assert "VERDICT: clean" in comparison.summary()


def test_compare_adapt_hard_fails_on_a_doctored_gate(smoke_report):
    report, _, _, _ = smoke_report
    doctored = copy.deepcopy(report)
    doctored["scenarios"][0]["gates"]["adaptive_beats_offline"] = False
    comparison = compare_adapt_reports(report, doctored)
    assert comparison.exit_code == EXIT_HARD
    assert "offline" in comparison.summary()


def test_compare_adapt_soft_fails_when_the_loop_never_fired(smoke_report):
    report, _, _, _ = smoke_report
    doctored = copy.deepcopy(report)
    for scenario in doctored["scenarios"]:
        scenario["gates"]["adaptive_replanned"] = False
    comparison = compare_adapt_reports(report, doctored)
    assert comparison.exit_code == EXIT_SOFT


def test_compare_adapt_hard_fails_on_an_empty_report(smoke_report):
    report, _, _, _ = smoke_report
    comparison = compare_adapt_reports(report, {"scenarios": []})
    assert comparison.exit_code == EXIT_HARD


def test_check_gate_exits_2_on_failure(tmp_path, monkeypatch):
    import repro.adapt.bench as bench_mod

    broken = copy.deepcopy(list(SMOKE_SCENARIOS))
    # zero drift and a huge window: nothing to adapt to, so the
    # adaptive arm cannot beat anything and the gates must fail
    broken[0]["params"].update(drift=0.0, diffusion=0.0)
    monkeypatch.setattr(bench_mod, "SMOKE_SCENARIOS", (broken[0],))
    with pytest.raises(SystemExit) as exc:
        bench_mod.run_adapt_bench(
            smoke=True, out=str(tmp_path / "b.json"),
            coverage_out=None, check=True, quiet=True,
        )
    assert exc.value.code == 2
