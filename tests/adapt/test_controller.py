"""AdaptiveController: determinism, wins, checkpoints, observability."""

import numpy as np
import pytest

from repro.adapt import AdaptiveController, MODES, supported_workloads
from repro.adapt.controller import PIC_PROBE
from repro.obs import metrics as obs_metrics
from repro.obs.flight import flight_recorder

# CI-sized but drifting hard enough for the loop to fire
PIC_PARAMS = dict(
    ncell=48, npart=1500, steps=24, window=4,
    drift=0.02, diffusion=0.012, cluster_width=0.06,
)
IRR_PARAMS = dict(n=96, sweeps=20, window=4, drift=0.045, amp=6.0, width=0.06)


@pytest.fixture
def pic():
    return AdaptiveController("pic", nprocs=4, seed=0, params=PIC_PARAMS)


def test_constructor_validation():
    assert supported_workloads() == ("irregular", "pic")
    with pytest.raises(ValueError):
        AdaptiveController("adi")
    with pytest.raises(ValueError):
        AdaptiveController("pic", nprocs=0)
    with pytest.raises(ValueError):
        AdaptiveController("pic", cost_model="NotAMachine")
    with pytest.raises(ValueError):
        AdaptiveController("pic", window=0)
    # unknown params are a TypeError, matching Session.workload()
    with pytest.raises(TypeError):
        AdaptiveController("pic", params={"not_a_param": 1})


def test_run_rejects_unknown_mode(pic):
    with pytest.raises(ValueError):
        pic.run("turbo")


def test_fixed_seed_adaptive_runs_are_bitwise_identical(pic):
    a = pic.run("adaptive")
    b = pic.run("adaptive")
    assert np.array_equal(a.solution, b.solution)
    assert a.solution_digest() == b.solution_digest()
    # ... and so is the decision trail, not just the physics
    assert a.decision_log() == b.decision_log()
    assert a.decision_digest() == b.decision_digest()
    assert [r.to_json() for r in a.replans] == [
        r.to_json() for r in b.replans
    ]


def test_solution_is_layout_invariant(pic):
    # the distribution decides *where* data lives, never *what* is
    # computed: every mode must produce the same answer bit for bit
    digests = {mode: pic.run(mode).solution_digest() for mode in MODES}
    assert len(set(digests.values())) == 1


def test_adaptive_beats_fixed_layouts_under_drift(pic):
    runs = {mode: pic.run(mode) for mode in MODES}
    adaptive = runs["adaptive"]
    assert adaptive.replans, "the feedback loop never fired"
    best_static = min(runs["static"].makespan, runs["balanced"].makespan)
    assert adaptive.makespan < best_static
    assert adaptive.makespan < runs["offline"].makespan


def test_static_mode_never_replans_and_observes_every_window(pic):
    run = pic.run("static")
    assert run.replans == []
    assert run.decisions == []  # no policy consulted outside adaptive
    assert len(run.samples) == PIC_PARAMS["steps"] // PIC_PARAMS["window"]


def test_checkpoints_land_on_window_boundaries(pic):
    run = pic.run("adaptive")
    assert len(run.checkpoints) == len(run.samples)
    window = PIC_PARAMS["window"]
    for cp in run.checkpoints:
        assert cp.step % window == 0
        assert sum(cp.sizes) == PIC_PARAMS["ncell"]
        assert len(cp.state_digest) == 64
    # checkpointed clocks are monotonically non-decreasing
    times = [cp.time for cp in run.checkpoints]
    assert times == sorted(times)


def test_replan_records_audit_the_transfer(pic):
    run = pic.run("adaptive")
    for rec in run.replans:
        assert rec.old_sizes != rec.new_sizes
        assert sum(rec.new_sizes) == PIC_PARAMS["ncell"]
        assert rec.transfer_bytes > 0
        assert rec.step % PIC_PARAMS["window"] == 0


def test_irregular_driver_wins_too():
    ctl = AdaptiveController("irregular", nprocs=4, seed=0, params=IRR_PARAMS)
    runs = {m: ctl.run(m) for m in ("static", "balanced", "adaptive")}
    adaptive = runs["adaptive"]
    assert adaptive.replans
    assert adaptive.makespan < min(
        runs["static"].makespan, runs["balanced"].makespan
    )
    digests = {m: r.solution_digest() for m, r in runs.items()}
    assert len(set(digests.values())) == 1


def test_probe_is_small_and_fast(pic):
    run = pic.probe(drift=0.02)
    assert run.params["ncell"] == PIC_PROBE["ncell"]
    assert run.steps == PIC_PROBE["steps"]
    # without drift only diffusion remains, so the loop fires less
    calm = pic.probe(drift=0.0)
    assert len(calm.replans) < len(pic.probe(drift=0.02).replans)


def test_run_to_json_is_self_contained(pic):
    doc = pic.run("adaptive").to_json()
    assert doc["workload"] == "pic"
    assert doc["mode"] == "adaptive"
    assert doc["solution_digest"] and doc["decision_digest"]
    assert len(doc["samples"]) == len(doc["checkpoints"])
    assert isinstance(doc["replans"], list) and doc["replans"]


def test_every_decision_leaves_a_flight_note_and_metrics(pic):
    obs_metrics.enable()
    flight_recorder.reset()
    try:
        run = pic.run("adaptive")
        notes = flight_recorder.notes(kind="adapt.decision")
        assert len(notes) == len(run.decisions)
        replan_notes = flight_recorder.notes(kind="adapt.replan")
        assert len(replan_notes) == len(run.replans)
        snap = obs_metrics.registry.snapshot()
        replans = snap["repro_adapt_replans_total"]["samples"]
        fired = sum(
            s["value"] for s in replans
            if s["labels"].get("workload") == "pic"
        )
        assert fired >= len(run.replans)
        drift = snap["repro_adapt_drift"]["samples"]
        assert any(s["labels"].get("workload") == "pic" for s in drift)
    finally:
        obs_metrics.disable()
        flight_recorder.reset()
