"""PolicyLibrary: tiers, serialization, and the registry coverage sweep."""

import pytest

from repro.adapt import LoadMonitor, PolicyLibrary
from repro.adapt.policies import (
    COVERAGE_SCHEMA,
    POLICY_SCHEMA,
    Rule,
    TIER_PLANNER,
    TIER_STATIC,
    TIER_THRESHOLD,
)
from repro.api import REGISTRY


def _monitor_at(busy_windows, **kwargs):
    kwargs.setdefault("alpha", 1.0)
    kwargs.setdefault("drift_threshold", 1.1)
    mon = LoadMonitor(len(busy_windows[0]), **kwargs)
    for busy in busy_windows:
        mon.observe(busy)
    return mon


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule("bad-tier", 7)
    with pytest.raises(ValueError):
        Rule("bad-threshold", TIER_THRESHOLD, threshold=0.5)
    with pytest.raises(ValueError):
        Rule("bad-windows", TIER_THRESHOLD, windows=0)
    with pytest.raises(ValueError):
        Rule("bad-strong", TIER_THRESHOLD, strong_factor=0.9)


def test_library_needs_static_tier_and_unique_tiers():
    with pytest.raises(ValueError):
        PolicyLibrary((Rule("t", TIER_THRESHOLD),))
    with pytest.raises(ValueError):
        PolicyLibrary((
            Rule("s", TIER_STATIC), Rule("a", TIER_THRESHOLD),
            Rule("b", TIER_THRESHOLD),
        ))


def test_json_round_trip_preserves_equality():
    lib = PolicyLibrary()
    doc = lib.to_json()
    assert doc["schema"] == POLICY_SCHEMA
    again = PolicyLibrary.from_json(doc)
    assert again == lib
    assert hash(again) == hash(lib)
    with pytest.raises(ValueError):
        PolicyLibrary.from_json({"schema": "nope/9", "rules": []})


def test_static_policy_never_replans():
    lib = PolicyLibrary.static()
    mon = _monitor_at([[5.0, 1.0]] * 4)
    decision = lib.decide(mon)
    assert not decision.replan
    assert decision.tier == TIER_STATIC
    assert decision.reason == "static-only policy"


def test_no_observations_holds_static():
    decision = PolicyLibrary().decide(LoadMonitor(4))
    assert not decision.replan
    assert decision.reason == "no observations yet"


def test_quiet_detector_holds():
    decision = PolicyLibrary().decide(_monitor_at([[1.0, 1.0]] * 3))
    assert not decision.replan
    assert decision.reason == "drift detector quiet"


def test_strong_signal_fires_tier_threshold_without_pricing():
    # imbalance 10/5.5 ~ 1.82 >= 1.2 * 1.5: tier 1 fires even with an
    # oracle available (strong signals skip the pricing tier)
    lib = PolicyLibrary()
    mon = _monitor_at([[10.0, 1.0]] * 2)
    decision = lib.decide(mon, pricing=lambda: -1.0)
    assert decision.replan
    assert decision.tier == TIER_THRESHOLD
    assert "strong signal" in decision.reason


def test_gray_zone_consults_the_pricing_oracle():
    # imbalance ~1.33: above 1.2 but below 1.2*1.5 -> tier 2 prices it
    lib = PolicyLibrary()
    mon = _monitor_at([[2.0, 1.0]] * 2)
    go = lib.decide(mon, pricing=lambda: 5e-4)
    assert go.replan and go.tier == TIER_PLANNER
    assert go.plan_delta == pytest.approx(5e-4)
    hold = lib.decide(mon, pricing=lambda: -5e-4)
    assert not hold.replan and hold.tier == TIER_PLANNER
    # without an oracle the confirmed tier-1 trigger fires directly
    direct = lib.decide(mon)
    assert direct.replan and direct.tier == TIER_THRESHOLD


def test_streak_shorter_than_windows_holds():
    rules = (
        Rule("s", TIER_STATIC),
        Rule("t", TIER_THRESHOLD, threshold=1.2, windows=3),
    )
    lib = PolicyLibrary(rules)
    mon = _monitor_at([[1.0, 1.0], [2.0, 1.0], [2.0, 1.0]])
    decision = lib.decide(mon)
    assert not decision.replan
    assert "streak 2/3" in decision.reason


def test_decision_json_carries_tier_name():
    doc = PolicyLibrary().decide(LoadMonitor(2)).to_json()
    assert doc["tier_name"] == "static"
    assert doc["replan"] is False


def test_coverage_report_spans_the_whole_registry():
    report = PolicyLibrary().coverage_report(seed=0)
    assert report["schema"] == COVERAGE_SCHEMA
    assert report["complete"] is True
    assert report["workloads"] == list(REGISTRY.names())
    covered = {(e["workload"], e["machine"]) for e in report["entries"]}
    want = {
        (n, m) for n in REGISTRY.names() for m in report["machines"]
    }
    assert covered == want
    by_workload = {}
    for entry in report["entries"]:
        by_workload.setdefault(entry["workload"], []).append(entry)
    # unsupported workloads are reported, not silently skipped
    for name, entries in by_workload.items():
        if entries[0]["supported"]:
            continue
        assert all(e["tier_name"] == "unsupported" for e in entries)
    # the supported workloads exercised the controller under drift
    pic = [e for e in by_workload["pic"] if e["drift_scenario"] == "fast"]
    assert any(e["replans"] >= 1 for e in pic)
