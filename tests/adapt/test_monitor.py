"""LoadMonitor: EWMA smoothing, hysteresis, cooldown, the timeline oracle."""

import pytest

from repro.adapt import LoadMonitor
from repro.adapt.monitor import imbalance_of
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.sim import EventLog, record, simulate
from repro.sim.trace import windowed_imbalance


def test_imbalance_of_basics():
    assert imbalance_of([1.0, 1.0, 1.0]) == 1.0
    assert imbalance_of([2.0, 1.0, 1.0]) == pytest.approx(1.5)
    # the Timeline.imbalance() zero-load convention
    assert imbalance_of([0.0, 0.0]) == 1.0
    with pytest.raises(ValueError):
        imbalance_of([])


def test_monitor_validation():
    with pytest.raises(ValueError):
        LoadMonitor(0)
    with pytest.raises(ValueError):
        LoadMonitor(4, alpha=0.0)
    with pytest.raises(ValueError):
        LoadMonitor(4, alpha=1.5)
    with pytest.raises(ValueError):
        LoadMonitor(4, drift_threshold=0.9)
    with pytest.raises(ValueError):
        LoadMonitor(4, hysteresis=-0.1)
    with pytest.raises(ValueError):
        LoadMonitor(4, cooldown=-1)
    with pytest.raises(ValueError):
        LoadMonitor(2).observe([1.0, 1.0, 1.0])


def test_ewma_smooths_single_spike():
    # alpha=0.5: one spiked window must not trip a threshold the
    # smoothed signal never reaches
    mon = LoadMonitor(2, alpha=0.5, drift_threshold=1.4, hysteresis=0.05)
    mon.observe([1.0, 1.0])
    sample = mon.observe([3.0, 1.0])  # raw imbalance 1.5
    assert sample.imbalance == pytest.approx(1.5)
    assert sample.ewma == pytest.approx(0.5 * 1.5 + 0.5 * 1.0)
    assert not sample.drifting


def test_hysteresis_band_prevents_thrash():
    # alpha=1.0 makes the EWMA track the raw signal exactly, so the
    # hysteresis band is the only filter in play
    mon = LoadMonitor(2, alpha=1.0, drift_threshold=1.2, hysteresis=0.1)
    below = mon.observe([1.3, 1.0])                # 1.13 < 1.2: stays off
    assert not below.drifting
    on = mon.observe([2.0, 1.0])                   # imbalance 4/3 > 1.2
    assert on.drifting
    # inside the band (threshold - hysteresis, threshold]: stays ON
    inside = mon.observe([1.3, 1.0])               # 1.13 > 1.2 - 0.1
    assert inside.drifting
    # below the band: turns OFF
    off = mon.observe([1.0, 1.0])
    assert not off.drifting


def test_cooldown_suppresses_verdict_then_expires():
    mon = LoadMonitor(2, alpha=1.0, drift_threshold=1.1, cooldown=2)
    assert mon.observe([2.0, 1.0]).drifting
    mon.notify_replanned()
    s1 = mon.observe([2.0, 1.0])
    assert s1.in_cooldown and not s1.drifting
    s2 = mon.observe([2.0, 1.0])
    assert s2.in_cooldown and not s2.drifting
    s3 = mon.observe([2.0, 1.0])
    assert not s3.in_cooldown and s3.drifting


def test_streak_counts_trailing_windows_only():
    mon = LoadMonitor(2, alpha=1.0, drift_threshold=1.5)
    mon.observe([2.0, 1.0])   # 1.33 > 1.2
    mon.observe([1.0, 1.0])   # 1.0: breaks the streak
    mon.observe([2.0, 1.0])
    mon.observe([2.2, 1.0])
    assert mon.streak(1.2) == 2
    assert mon.streak(2.0) == 0
    assert mon.imbalance_series() == pytest.approx(
        [4.0 / 3.0, 1.0, 4.0 / 3.0, 2.2 / 1.6]
    )


def test_observe_timeline_matches_windowed_imbalance_oracle():
    # a deliberately skewed simulated run: rank 0 computes 3x the rest
    m = Machine(ProcessorArray("P", (3,)), cost_model=PARAGON)
    log = EventLog()
    with record(m, log):
        for _ in range(6):
            m.network.compute(0, 3_000_000, tag="hot")
            for r in (1, 2):
                m.network.compute(r, 1_000_000, tag="cold")
            m.network.synchronize()
    timeline = simulate(log, nprocs=3, cost_model=PARAGON)

    mon = LoadMonitor(3, alpha=1.0, drift_threshold=1.1)
    samples = mon.observe_timeline(timeline, windows=4)
    oracle = windowed_imbalance(timeline, windows=4)
    assert len(samples) == len(oracle) == 4
    for sample, win in zip(samples, oracle):
        assert sample.busy == pytest.approx(tuple(win["busy"]))
        assert sample.imbalance == pytest.approx(win["imbalance"])
    # the skew is persistent, so the detector must have latched on
    assert samples[-1].drifting
    assert mon.latest is samples[-1]


def test_sample_json_round_trips_cleanly():
    mon = LoadMonitor(2)
    sample = mon.observe([2.0, 1.0])
    doc = sample.to_json()
    assert doc["busy"] == [2.0, 1.0]
    assert doc["index"] == 0
    assert set(doc) == {
        "index", "busy", "imbalance", "ewma", "drifting", "in_cooldown"
    }
