"""Unit tests for hash-consing and the owner-map LRU caches (PR 4)."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import dist_type
from repro.core.interning import (
    LRUCache,
    clear_interning_caches,
    intern_dimdist,
    intern_distribution,
    owners_cache_stats,
    owners_vec_cached,
    rank_map_cached,
)
from repro.machine import ProcessorArray
from repro.runtime.redistribute import PlanCache

R = ProcessorArray("R", (4,))


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_interning_caches()
    yield
    clear_interning_caches()


class TestLRUCache:
    def test_get_put_and_counters(self):
        c = LRUCache(capacity=2)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.hits == 1 and c.misses == 1

    def test_eviction_is_least_recently_used(self):
        c = LRUCache(capacity=2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")      # refresh a: b becomes LRU
        c.put("c", 3)   # evicts b
        assert "a" in c and "c" in c and "b" not in c

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_clear_resets(self):
        c = LRUCache(capacity=2)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.hits == 0 and c.misses == 0

    def test_get_or_compute(self):
        c = LRUCache(capacity=2)
        assert c.get_or_compute("k", lambda: 7) == 7
        assert c.get_or_compute("k", lambda: 8) == 7  # cached


class TestInterning:
    def test_equal_dimdists_intern_to_one_object(self):
        a, b = Cyclic(3), Cyclic(3)
        assert a is not b
        assert intern_dimdist(a) is intern_dimdist(b)

    def test_distinct_dimdists_stay_distinct(self):
        assert intern_dimdist(Cyclic(2)) is not intern_dimdist(Cyclic(3))
        assert intern_dimdist(Block()) is not intern_dimdist(Cyclic(1))

    def test_equal_distributions_intern_to_one_object(self):
        d1 = dist_type("BLOCK", ":").apply((16, 4), R)
        d2 = dist_type("BLOCK", ":").apply((16, 4), R)
        assert d1 is not d2 and d1 == d2
        assert intern_distribution(d1) is intern_distribution(d2)
        assert d1.interned() is d2.interned()

    def test_interning_preserves_equality_semantics(self):
        d1 = dist_type("BLOCK", ":").apply((16, 4), R)
        d3 = dist_type(":", "BLOCK").apply((16, 4), R)
        assert intern_distribution(d1) != intern_distribution(d3)


class TestOwnersVecLRU:
    def test_cached_equals_direct(self):
        for dd in (Block(), Cyclic(2), GenBlock([5, 3, 0, 4])):
            direct = dd.owners_vec(12, 4)
            cached = owners_vec_cached(dd, 12, 4)
            assert np.array_equal(direct, cached)

    def test_cached_result_is_shared_and_readonly(self):
        v1 = owners_vec_cached(Block(), 12, 4)
        v2 = owners_vec_cached(Block(), 12, 4)  # fresh but equal intrinsic
        assert v1 is v2
        assert not v1.flags.writeable
        with pytest.raises(ValueError):
            v1[0] = 9

    def test_hit_miss_counters(self):
        s0 = owners_cache_stats()
        owners_vec_cached(Cyclic(2), 10, 4)
        owners_vec_cached(Cyclic(2), 10, 4)
        s1 = owners_cache_stats()
        assert s1["owners_vec_misses"] == s0["owners_vec_misses"] + 1
        assert s1["owners_vec_hits"] == s0["owners_vec_hits"] + 1


class TestRankMapLRU:
    def test_rank_map_shared_across_equal_instances(self):
        d1 = dist_type("BLOCK", ":").apply((16, 4), R)
        d2 = dist_type("BLOCK", ":").apply((16, 4), R)
        rm1 = d1.rank_map()
        rm2 = d2.rank_map()
        assert rm1 is rm2  # served from the shared LRU
        assert np.array_equal(np.asarray(rm1), np.asarray(d1._compute_rank_map()))

    def test_rank_map_readonly(self):
        d = dist_type("BLOCK", ":").apply((16, 4), R)
        with pytest.raises(ValueError):
            np.asarray(d.rank_map())[0, 0] = 3

    def test_hit_miss_counters(self):
        d1 = dist_type("CYCLIC", ":").apply((16, 4), R)
        d2 = dist_type("CYCLIC", ":").apply((16, 4), R)
        s0 = owners_cache_stats()
        d1.rank_map()
        d2.rank_map()
        d2.rank_map()  # instance cache: no LRU traffic
        s1 = owners_cache_stats()
        assert s1["rank_map_misses"] == s0["rank_map_misses"] + 1
        assert s1["rank_map_hits"] == s0["rank_map_hits"] + 1


class TestStatsSurfacedThroughPlanCache:
    """The satellite requirement: the owners_vec/rank_map LRU hit/miss
    stats are observable through PlanCache.stats()."""

    def test_plan_cache_stats_carries_lru_counters(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(old, new, 4)
        s = cache.stats()
        for key in (
            "owners_vec_hits", "owners_vec_misses", "owners_vec_size",
            "rank_map_hits", "rank_map_misses", "rank_map_size",
            "interned_dimdists", "interned_distributions",
        ):
            assert key in s
        # computing the transfer matrix touched both owner-map caches
        assert s["rank_map_misses"] >= 2
        assert s["owners_vec_misses"] >= 1

    def test_lru_hits_grow_on_recomputation(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(old, new, 4)
        before = cache.stats()
        # structurally equal pair, fresh objects, fresh PlanCache: the
        # transfer matrix is recomputed but the owner maps come from
        # the shared LRU
        cache2 = PlanCache()
        old2 = dist_type("BLOCK", ":").apply((16, 4), R)
        new2 = dist_type(":", "BLOCK").apply((16, 4), R)
        cache2.transfer_matrix(old2, new2, 4)
        after = cache2.stats()
        assert after["rank_map_hits"] > before["rank_map_hits"]
