"""Tests for per-dimension distribution intrinsics (paper §2.2)."""

import numpy as np
import pytest

from repro.core.dimdist import (
    Block,
    Cyclic,
    GenBlock,
    Indirect,
    NoDist,
    Replicated,
    SBlock,
)

ALL_EXCLUSIVE = [
    (Block(), 10, 4),
    (Block(), 7, 3),
    (Block(), 4, 8),      # more slots than elements
    (Cyclic(1), 10, 4),
    (Cyclic(3), 17, 4),
    (Cyclic(5), 10, 3),   # chunk larger than n/p
    (GenBlock([3, 0, 5, 2]), 10, 4),
    (SBlock([0, 3, 3, 8]), 10, 4),
    (Indirect([0, 2, 1, 1, 0, 2, 3, 3, 0, 1]), 10, 4),
]


@pytest.mark.parametrize("dd,n,p", ALL_EXCLUSIVE)
class TestPartitionInvariants:
    """Every exclusive distribution partitions the index range."""

    def test_every_index_owned_exactly_once(self, dd, n, p):
        seen = np.zeros(n, dtype=int)
        for s in range(p):
            seen[dd.indices_of(s, n, p)] += 1
        assert (seen == 1).all()

    def test_owners_vec_consistent_with_indices_of(self, dd, n, p):
        vec = dd.owners_vec(n, p)
        for s in range(p):
            idx = dd.indices_of(s, n, p)
            assert (vec[idx] == s).all()

    def test_local_count_matches(self, dd, n, p):
        for s in range(p):
            assert dd.local_count(s, n, p) == len(dd.indices_of(s, n, p))

    def test_counts_sum_to_extent(self, dd, n, p):
        assert sum(dd.local_count(s, n, p) for s in range(p)) == n

    def test_global_local_roundtrip(self, dd, n, p):
        for s in range(p):
            for li, gi in enumerate(dd.indices_of(s, n, p)):
                assert dd.global_to_local(s, int(gi), n, p) == li
                assert dd.local_to_global(s, li, n, p) == gi

    def test_global_to_local_rejects_foreign_index(self, dd, n, p):
        vec = dd.owners_vec(n, p)
        for s in range(p):
            foreign = np.nonzero(vec != s)[0]
            if len(foreign):
                with pytest.raises(IndexError):
                    dd.global_to_local(s, int(foreign[0]), n, p)

    def test_indices_sorted(self, dd, n, p):
        for s in range(p):
            idx = dd.indices_of(s, n, p)
            assert (np.diff(idx) > 0).all() if len(idx) > 1 else True

    def test_owner_of_bounds(self, dd, n, p):
        with pytest.raises(IndexError):
            dd.owner_of(n, n, p)
        with pytest.raises(IndexError):
            dd.owner_of(-1, n, p)


class TestBlock:
    def test_even_split(self):
        assert list(Block().owners_vec(8, 4)) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_ceil_block_length(self):
        # 10 over 4 -> blocks of 3: [3, 3, 3, 1]
        counts = [Block().local_count(s, 10, 4) for s in range(4)]
        assert counts == [3, 3, 3, 1]

    def test_empty_trailing_blocks(self):
        # 4 over 8 -> block length 1: slots 4..7 own nothing
        counts = [Block().local_count(s, 4, 8) for s in range(8)]
        assert counts == [1, 1, 1, 1, 0, 0, 0, 0]

    def test_contiguity(self):
        idx = Block().indices_of(1, 10, 4)
        assert list(idx) == [3, 4, 5]

    def test_paper_example1(self):
        # delta_C(i,j,k) = R(ceil(i/5), ceil(j/5)): 10 elements on 2 slots
        vec = Block().owners_vec(10, 2)
        assert list(vec) == [0] * 5 + [1] * 5


class TestCyclic:
    def test_round_robin(self):
        assert list(Cyclic(1).owners_vec(6, 3)) == [0, 1, 2, 0, 1, 2]

    def test_chunked(self):
        assert list(Cyclic(2).owners_vec(8, 2)) == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            Cyclic(0)

    def test_equality_by_k(self):
        assert Cyclic(2) == Cyclic(2)
        assert Cyclic(2) != Cyclic(3)

    def test_local_count_closed_form_matches_enumeration(self):
        for n in (1, 7, 12, 30):
            for p in (1, 2, 5):
                for k in (1, 2, 4):
                    dd = Cyclic(k)
                    for s in range(p):
                        assert dd.local_count(s, n, p) == len(
                            dd.indices_of(s, n, p)
                        )

    def test_repr(self):
        assert repr(Cyclic(1)) == "CYCLIC"
        assert repr(Cyclic(3)) == "CYCLIC(3)"


class TestGenBlock:
    def test_sizes_must_match_slots(self):
        with pytest.raises(ValueError):
            GenBlock([5, 5]).validate(10, 3)

    def test_sizes_must_sum_to_extent(self):
        with pytest.raises(ValueError):
            GenBlock([5, 4]).validate(10, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            GenBlock([5, -1, 6])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GenBlock([])

    def test_zero_size_block_owns_nothing(self):
        dd = GenBlock([3, 0, 7])
        assert dd.local_count(1, 10, 3) == 0
        assert len(dd.indices_of(1, 10, 3)) == 0

    def test_irregular_blocks(self):
        dd = GenBlock([1, 5, 4])
        assert list(dd.indices_of(0, 10, 3)) == [0]
        assert list(dd.indices_of(1, 10, 3)) == [1, 2, 3, 4, 5]
        assert list(dd.indices_of(2, 10, 3)) == [6, 7, 8, 9]

    def test_equality_by_sizes(self):
        assert GenBlock([2, 3]) == GenBlock([2, 3])
        assert GenBlock([2, 3]) != GenBlock([3, 2])


class TestSBlock:
    def test_equivalent_to_genblock(self):
        s = SBlock([0, 3, 3, 8])
        g = GenBlock([3, 0, 5, 2])
        assert (s.owners_vec(10, 4) == g.owners_vec(10, 4)).all()

    def test_starts_must_begin_at_zero(self):
        with pytest.raises(ValueError):
            SBlock([1, 5])

    def test_starts_must_be_monotone(self):
        with pytest.raises(ValueError):
            SBlock([0, 5, 3])

    def test_start_past_extent_rejected(self):
        with pytest.raises(ValueError):
            SBlock([0, 12]).validate(10, 2)

    def test_to_genblock(self):
        assert SBlock([0, 4]).to_genblock(10) == GenBlock([4, 6])


class TestIndirect:
    def test_arbitrary_mapping(self):
        dd = Indirect([2, 0, 2, 1])
        assert list(dd.owners_vec(4, 3)) == [2, 0, 2, 1]
        assert list(dd.indices_of(2, 4, 3)) == [0, 2]

    def test_length_must_match_extent(self):
        with pytest.raises(ValueError):
            Indirect([0, 1]).validate(3, 2)

    def test_owner_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Indirect([0, 5]).validate(2, 2)

    def test_negative_owner_rejected(self):
        with pytest.raises(ValueError):
            Indirect([0, -1])

    def test_owner_array_immutable(self):
        dd = Indirect([0, 1])
        with pytest.raises(ValueError):
            dd.owners[0] = 1

    def test_equality_by_contents(self):
        assert Indirect([0, 1, 0]) == Indirect([0, 1, 0])
        assert Indirect([0, 1, 0]) != Indirect([0, 1, 1])


class TestNoDist:
    def test_does_not_consume_proc_dim(self):
        assert not NoDist().consumes_proc_dim
        assert Block().consumes_proc_dim

    def test_all_indices_local(self):
        dd = NoDist()
        assert list(dd.indices_of(0, 5, 1)) == [0, 1, 2, 3, 4]
        assert dd.local_count(0, 5, 1) == 5

    def test_identity_local_map(self):
        dd = NoDist()
        assert dd.global_to_local(0, 3, 5, 1) == 3
        assert dd.local_to_global(0, 3, 5, 1) == 3


class TestReplicated:
    def test_not_exclusive(self):
        assert not Replicated().exclusive
        assert Block().exclusive

    def test_all_slots_own_everything(self):
        dd = Replicated()
        assert dd.all_owners_of(2, 5, 3) == (0, 1, 2)
        for s in range(3):
            assert dd.local_count(s, 5, 3) == 5

    def test_primary_owner_is_slot_zero(self):
        assert Replicated().owner_of(4, 5, 3) == 0


class TestEqualityAcrossClasses:
    def test_different_classes_never_equal(self):
        assert Block() != Cyclic(1)
        assert NoDist() != Replicated()
        assert Block() != NoDist()

    def test_hashable(self):
        s = {Block(), Cyclic(1), Cyclic(2), NoDist(), Replicated()}
        assert len(s) == 5
