"""Tests for the parameterized BLOCK(m) form and the BLOCK(*) wildcard
(used verbatim in the paper's §2.5.2: ``IDT(B3,(BLOCK(*)))``)."""

import numpy as np
import pytest

from repro.core.dimdist import Block
from repro.core.distribution import dist_type
from repro.core.query import Wild, idt
from repro.lang.parser import VFSyntaxError, parse_dist_expr, parse_pattern
from repro.machine.topology import ProcessorArray


class TestBlockM:
    def test_fixed_block_length(self):
        dd = Block(3)
        assert list(dd.owners_vec(10, 4)) == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]

    def test_plain_block_unchanged(self):
        assert list(Block().owners_vec(8, 4)) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_must_cover_dimension(self):
        with pytest.raises(ValueError, match="covers only"):
            Block(2).validate(10, 4)

    def test_m_positive(self):
        with pytest.raises(ValueError):
            Block(0)

    def test_equality_includes_m(self):
        assert Block(3) == Block(3)
        assert Block(3) != Block()
        assert Block(3) != Block(4)

    def test_partition_invariants(self):
        dd = Block(4)
        seen = np.zeros(10, dtype=int)
        for s in range(4):
            seen[dd.indices_of(s, 10, 4)] += 1
        assert (seen == 1).all()
        for s in range(4):
            for li, gi in enumerate(dd.indices_of(s, 10, 4)):
                assert dd.global_to_local(s, int(gi), 10, 4) == li
                assert dd.local_to_global(s, li, 10, 4) == gi

    def test_repr(self):
        assert repr(Block(3)) == "BLOCK(3)"
        assert repr(Block()) == "BLOCK"

    def test_bound_distribution(self):
        R = ProcessorArray("R", (4,))
        d = dist_type(Block(3)).apply((10,), R)
        assert d.local_shape(0) == (3,)
        assert d.local_shape(3) == (1,)


class TestBlockSyntax:
    def test_parse_block_m(self):
        t = parse_dist_expr("(BLOCK(5), :)")
        assert t.dims[0] == Block(5)

    def test_parse_block_m_env(self):
        t = parse_dist_expr("(BLOCK(M))", env={"M": 7})
        assert t.dims[0] == Block(7)

    def test_parse_block_star_pattern(self):
        p = parse_pattern("(BLOCK(*), CYCLIC)")
        assert p.dims[0] == Wild(Block)

    def test_block_star_rejected_in_concrete(self):
        with pytest.raises(VFSyntaxError):
            parse_dist_expr("(BLOCK(*))")

    def test_paper_252_idt_with_block_star(self):
        """IF (IDT(B3,(BLOCK(*)))) — Example 4's second clause."""
        t3 = dist_type(Block(5), "CYCLIC")
        assert idt(t3, parse_pattern("(BLOCK(*), *)"))
        assert idt(dist_type("BLOCK", "CYCLIC"), parse_pattern("(BLOCK(*), *)"))
        assert not idt(dist_type("CYCLIC", "CYCLIC"), parse_pattern("(BLOCK(*), *)"))

    def test_block_m_matches_block_star_not_plain(self):
        p_star = parse_pattern("(BLOCK(*))")
        p_plain = parse_pattern("(BLOCK)")
        assert p_star.matches(dist_type(Block(3)))
        assert not p_plain.matches(dist_type(Block(3)))
