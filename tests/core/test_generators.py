"""Tests for external distribution generators (§3.2 interface)."""

import numpy as np
import pytest

from repro.core.dimdist import GenBlock, Indirect
from repro.core.distribution import DistributionType, NoDist
from repro.core.generators import (
    DistributionGenerator,
    get_generator,
    register_generator,
    registry,
)
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine


class TestRegistry:
    def test_builtins_registered(self):
        assert "weighted_block" in registry
        assert "block_cyclic_hybrid" in registry
        assert "random_owner" in registry

    def test_get_unknown(self):
        with pytest.raises(KeyError, match="no distribution generator"):
            get_generator("nope")

    def test_register_decorator(self):
        @register_generator("test_everything_to_zero")
        def gen(extent, slots):
            return np.zeros(extent, dtype=int)

        try:
            dd = get_generator("test_everything_to_zero")(6, 3)
            assert isinstance(dd, Indirect)
            assert (dd.owners == 0).all()
        finally:
            del registry["test_everything_to_zero"]


class TestGeneratorInvocation:
    def test_owner_array_wrapped(self):
        gen = DistributionGenerator("g", lambda n, p: [i % p for i in range(n)])
        dd = gen(6, 3)
        assert isinstance(dd, Indirect)
        assert list(dd.owners) == [0, 1, 2, 0, 1, 2]

    def test_dimdist_passthrough(self):
        gen = DistributionGenerator("g", lambda n, p: GenBlock([n - p + 1] + [1] * (p - 1)))
        dd = gen(10, 4)
        assert isinstance(dd, GenBlock)

    def test_invalid_shape_rejected(self):
        gen = DistributionGenerator("g", lambda n, p: [0, 1])
        with pytest.raises(ValueError, match="shape"):
            gen(5, 2)

    def test_out_of_range_owner_rejected(self):
        gen = DistributionGenerator("g", lambda n, p: [p] * n)
        with pytest.raises(ValueError):
            gen(4, 2)


class TestBuiltins:
    def test_weighted_block_balances(self):
        w = np.ones(16)
        w[:4] = 50.0
        dd = get_generator("weighted_block")(16, 4, weights=w)
        assert isinstance(dd, GenBlock)
        # the heavy prefix is split, so the first block is small
        assert dd.sizes[0] < 4

    def test_weighted_block_default_uniform(self):
        dd = get_generator("weighted_block")(16, 4)
        assert dd.sizes == (4, 4, 4, 4)

    def test_weighted_block_length_checked(self):
        with pytest.raises(ValueError):
            get_generator("weighted_block")(16, 4, weights=[1.0, 2.0])

    def test_block_cyclic_hybrid_valid(self):
        dd = get_generator("block_cyclic_hybrid")(22, 4, chunk=3)
        dd.validate(22, 4)
        # every slot owns something for this size
        for s in range(4):
            assert dd.local_count(s, 22, 4) > 0

    def test_random_owner_deterministic(self):
        d1 = get_generator("random_owner")(20, 4, seed=7)
        d2 = get_generator("random_owner")(20, 4, seed=7)
        assert (d1.owners == d2.owners).all()


class TestGeneratorWithEngine:
    def test_distribute_with_generated_distribution(self):
        """The full loop: run-time weights -> generator -> DISTRIBUTE."""
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        arr = engine.declare(
            "F", (16, 2), dist=DistributionType(("BLOCK", ":")), dynamic=True
        )
        arr.from_global(np.arange(32.0).reshape(16, 2))
        weights = np.ones(16)
        weights[12:] = 30.0
        dd = get_generator("weighted_block")(16, 4, weights=weights)
        engine.distribute("F", DistributionType((dd, NoDist())))
        assert np.array_equal(arr.to_global(), np.arange(32.0).reshape(16, 2))
        # heavy tail got its own small blocks
        assert arr.dist.local_shape(3)[0] <= 2
