"""Tests for index domains (paper §2.1)."""

import pytest

from repro.core.index_domain import IndexDomain


class TestIndexDomain:
    def test_basic(self):
        d = IndexDomain((10, 10, 10))
        assert d.ndim == 3
        assert d.size == 1000

    def test_int_promoted(self):
        d = IndexDomain(5)
        assert d.shape == (5,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IndexDomain(())

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError):
            IndexDomain((3, 0))

    def test_contains(self):
        d = IndexDomain((2, 3))
        assert (0, 0) in d
        assert (1, 2) in d
        assert (2, 0) not in d
        assert (0, -1) not in d
        assert (0,) not in d  # wrong arity

    def test_check_normalizes_int(self):
        d = IndexDomain((5,))
        assert d.check(3) == (3,)

    def test_check_raises(self):
        d = IndexDomain((5,))
        with pytest.raises(IndexError):
            d.check(5)

    def test_iteration_row_major(self):
        d = IndexDomain((2, 2))
        assert list(d) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_iteration_count(self):
        d = IndexDomain((3, 4))
        assert len(list(d)) == 12

    def test_equality_hash(self):
        assert IndexDomain((2, 3)) == IndexDomain((2, 3))
        assert IndexDomain((2, 3)) != IndexDomain((3, 2))
        assert hash(IndexDomain((2, 3))) == hash(IndexDomain((2, 3)))
