"""Tests for DYNAMIC arrays and the connect relation (paper §2.3)."""

import pytest

from repro.core.alignment import Alignment
from repro.core.distribution import dist_type
from repro.core.dynamic import Aligned, ConnectClass, DynamicAttr, Extraction
from repro.core.index_domain import IndexDomain
from repro.machine.topology import ProcessorArray


class TestDynamicAttr:
    def test_bare_dynamic_unrestricted(self):
        d = DynamicAttr()
        assert d.range.unrestricted
        assert d.initial is None

    def test_range_list_coerced(self):
        d = DynamicAttr(range_=[("BLOCK",)])
        assert not d.range.unrestricted

    def test_initial_must_satisfy_range(self):
        with pytest.raises(ValueError):
            DynamicAttr(range_=[("BLOCK",)], initial=dist_type("CYCLIC"))

    def test_initial_ok(self):
        d = DynamicAttr(range_=[("BLOCK", "*")], initial=dist_type("BLOCK", ":"))
        assert d.initial == dist_type("BLOCK", ":")

    def test_repr_mentions_parts(self):
        d = DynamicAttr(range_=[("BLOCK",)], initial=dist_type("BLOCK"))
        assert "DYNAMIC" in repr(d) and "RANGE" in repr(d)


class TestExtraction:
    def test_same_type_same_target(self):
        R = ProcessorArray("R", (4,))
        db = dist_type("BLOCK", ":").apply((8, 8), R)
        da = Extraction().derive(db, IndexDomain((12, 4)))
        assert da.dtype == db.dtype
        assert da.target == db.target
        assert da.domain == IndexDomain((12, 4))

    def test_rank_mismatch_rejected(self):
        R = ProcessorArray("R", (4,))
        db = dist_type("BLOCK").apply((8,), R)
        with pytest.raises(ValueError):
            Extraction().derive(db, IndexDomain((8, 8)))

    def test_equality(self):
        assert Extraction() == Extraction()


class TestAligned:
    def test_identity_alignment_connection(self):
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK", ":").apply((8, 8), R)
        conn = Aligned(Alignment.identity(2))
        da = conn.derive(db, IndexDomain((8, 8)))
        assert da.dtype == db.dtype

    def test_equality_by_alignment(self):
        assert Aligned(Alignment.identity(2)) == Aligned(Alignment.identity(2))
        assert Aligned(Alignment.identity(2)) != Aligned(
            Alignment.permutation((1, 0))
        )


class TestConnectClass:
    def make_class(self):
        cls = ConnectClass("B4", IndexDomain((8, 8)))
        cls.add_secondary("A1", IndexDomain((8, 8)), Extraction())
        cls.add_secondary(
            "A2", IndexDomain((8, 8)), Aligned(Alignment.identity(2))
        )
        return cls

    def test_members_primary_first(self):
        cls = self.make_class()
        assert cls.members == ["B4", "A1", "A2"]
        assert cls.secondaries == ["A1", "A2"]

    def test_contains(self):
        cls = self.make_class()
        assert "B4" in cls and "A1" in cls and "X" not in cls

    def test_primary_cannot_be_secondary(self):
        cls = self.make_class()
        with pytest.raises(ValueError):
            cls.add_secondary("B4", IndexDomain((8, 8)), Extraction())

    def test_duplicate_secondary_rejected(self):
        cls = self.make_class()
        with pytest.raises(ValueError):
            cls.add_secondary("A1", IndexDomain((8, 8)), Extraction())

    def test_extraction_rank_checked_eagerly(self):
        cls = ConnectClass("B", IndexDomain((8,)))
        with pytest.raises(ValueError):
            cls.add_secondary("A", IndexDomain((8, 8)), Extraction())

    def test_derive_all_maintains_connection(self):
        """Paper: 'the connections specified ensure that the distribution
        type of A1 and A2 will always be the same as that of B4'."""
        cls = self.make_class()
        R = ProcessorArray("R", (2, 2))
        for t in (
            dist_type("BLOCK", "BLOCK"),
            dist_type("CYCLIC", "CYCLIC"),
        ):
            db = t.apply((8, 8), R)
            dists = cls.derive_all(db)
            assert set(dists) == {"B4", "A1", "A2"}
            assert dists["A1"].dtype == t
            assert dists["A2"].dtype == t

    def test_derive_single(self):
        cls = self.make_class()
        R = ProcessorArray("R", (2, 2))
        db = dist_type("BLOCK", "CYCLIC").apply((8, 8), R)
        da = cls.derive("A1", db)
        assert da.dtype == db.dtype

    def test_connection_of(self):
        cls = self.make_class()
        assert isinstance(cls.connection_of("A1"), Extraction)
        assert isinstance(cls.connection_of("A2"), Aligned)

    def test_repr(self):
        assert "C(B4)" in repr(self.make_class())
