"""Tests for wildcards, RANGE, IDT and DCASE (paper §2.3, §2.5)."""

import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.distribution import dist_type
from repro.core.query import (
    ANY,
    DCase,
    DEFAULT,
    QueryList,
    Range,
    TypePattern,
    Wild,
    idt,
)
from repro.machine.topology import ProcessorArray


class TestTypePattern:
    def test_exact_match(self):
        p = TypePattern(("BLOCK", Cyclic(2)))
        assert p.matches(dist_type("BLOCK", Cyclic(2)))
        assert not p.matches(dist_type("BLOCK", Cyclic(3)))

    def test_star_dim(self):
        p = TypePattern(("BLOCK", ANY))
        assert p.matches(dist_type("BLOCK", "CYCLIC"))
        assert p.matches(dist_type("BLOCK", ":"))
        assert not p.matches(dist_type("CYCLIC", "CYCLIC"))

    def test_star_string_accepted(self):
        p = TypePattern(("BLOCK", "*"))
        assert p.matches(dist_type("BLOCK", "BLOCK"))

    def test_any_type(self):
        p = TypePattern(ANY)
        assert p.matches(dist_type("BLOCK"))
        assert p.matches(dist_type(":", Cyclic(7), "BLOCK"))

    def test_wild_family(self):
        p = TypePattern((Wild(Cyclic),))
        assert p.matches(dist_type(Cyclic(1)))
        assert p.matches(dist_type(Cyclic(99)))
        assert not p.matches(dist_type("BLOCK"))

    def test_rank_mismatch_never_matches(self):
        p = TypePattern(("BLOCK",))
        assert not p.matches(dist_type("BLOCK", "BLOCK"))

    def test_is_concrete_and_to_type(self):
        p = TypePattern((Block(), Cyclic(2)))
        assert p.is_concrete()
        assert p.to_type() == dist_type("BLOCK", Cyclic(2))

    def test_to_type_rejects_wildcards(self):
        p = TypePattern((Block(), ANY))
        assert not p.is_concrete()
        with pytest.raises(ValueError):
            p.to_type()

    def test_wild_requires_dimdist_class(self):
        with pytest.raises(TypeError):
            Wild(int)  # type: ignore[arg-type]

    def test_equality(self):
        assert TypePattern(("BLOCK", ANY)) == TypePattern(("BLOCK", "*"))
        assert TypePattern(ANY) == TypePattern(ANY)


class TestRange:
    def test_unrestricted(self):
        r = Range(None)
        assert r.unrestricted
        assert r.admits(dist_type("BLOCK"))

    def test_admits_member(self):
        r = Range([("BLOCK", "BLOCK"), (ANY, "CYCLIC")])
        assert r.admits(dist_type("BLOCK", "BLOCK"))
        assert r.admits(dist_type(Cyclic(4), "CYCLIC"))
        assert not r.admits(dist_type("BLOCK", Cyclic(2)))

    def test_check_raises_with_array_name(self):
        r = Range([("BLOCK",)])
        with pytest.raises(ValueError, match="B3"):
            r.check(dist_type("CYCLIC"), "B3")

    def test_concrete_types(self):
        r = Range([("BLOCK", "BLOCK"), ("BLOCK", Cyclic(2))])
        types = r.concrete_types()
        assert types is not None and len(types) == 2

    def test_concrete_types_none_when_wild(self):
        r = Range([("BLOCK", ANY)])
        assert r.concrete_types() is None

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Range([])


class TestIDT:
    """The IDT intrinsic (§2.5.2)."""

    def test_type_only(self):
        assert idt(dist_type("CYCLIC"), ("CYCLIC",))
        assert not idt(dist_type("CYCLIC"), ("BLOCK",))

    def test_bound_distribution(self):
        R = ProcessorArray("R", (4,))
        d = dist_type("BLOCK").apply((8,), R)
        assert idt(d, ("BLOCK",))
        assert idt(d, (ANY,))

    def test_section_test(self):
        R = ProcessorArray("R", (4,))
        d = dist_type("BLOCK").apply((8,), R)
        assert idt(d, ("BLOCK",), R)
        other = ProcessorArray("Q", (4,))
        assert not idt(d, ("BLOCK",), other)

    def test_section_subsection_mismatch(self):
        R = ProcessorArray("R", (4,))
        sub = R.section(slice(0, 2))
        d = dist_type("BLOCK").apply((8,), sub)
        assert idt(d, ("BLOCK",), sub)
        assert not idt(d, ("BLOCK",), R)

    def test_section_with_unbound_type_rejected(self):
        with pytest.raises(ValueError):
            idt(dist_type("BLOCK"), ("BLOCK",), ProcessorArray("R", (2,)))

    def test_composable_in_boolean_expressions(self):
        # paper: IF (IDT(B1,(CYCLIC))) .AND. (IDT(B3,(BLOCK(*)))) THEN
        t1 = dist_type("CYCLIC")
        t3 = dist_type("BLOCK", "CYCLIC")
        assert idt(t1, ("CYCLIC",)) and idt(t3, ("BLOCK", ANY))


class TestQueryList:
    def test_positional(self):
        ql = QueryList([("BLOCK",), ("BLOCK",)])
        assert ql.matches(
            ["B1", "B2"], [dist_type("BLOCK"), dist_type("BLOCK")]
        )
        assert not ql.matches(
            ["B1", "B2"], [dist_type("BLOCK"), dist_type("CYCLIC")]
        )

    def test_positional_implicit_star_for_trailing(self):
        ql = QueryList([("BLOCK",)])
        assert ql.matches(
            ["B1", "B2"], [dist_type("BLOCK"), dist_type("CYCLIC")]
        )

    def test_positional_too_many_queries(self):
        ql = QueryList([("BLOCK",), ("BLOCK",)])
        with pytest.raises(ValueError):
            ql.matches(["B1"], [dist_type("BLOCK")])

    def test_name_tagged_order_irrelevant(self):
        ql = QueryList({"B3": ("BLOCK", ANY), "B1": ("CYCLIC",)})
        names = ["B1", "B2", "B3"]
        types = [
            dist_type("CYCLIC"),
            dist_type(Cyclic(5)),  # unmentioned: implicit '*'
            dist_type("BLOCK", Cyclic(7)),
        ]
        assert ql.matches(names, types)

    def test_name_tagged_unknown_selector(self):
        ql = QueryList({"NOPE": ("BLOCK",)})
        with pytest.raises(KeyError):
            ql.matches(["B1"], [dist_type("BLOCK")])


class TestDCase:
    """The DCASE construct (§2.5.1, Example 4)."""

    def _types(self):
        # paper Example 4 configuration
        t1 = dist_type("BLOCK")
        t2 = dist_type("BLOCK")
        t3 = dist_type(Cyclic(2), "CYCLIC")
        return t1, t2, t3

    def test_first_matching_arm_runs(self):
        t1, t2, t3 = self._types()
        log = []
        dc = DCase([("B1", t1), ("B2", t2), ("B3", t3)])
        dc.case(
            [("BLOCK",), ("BLOCK",), (Cyclic(2), "CYCLIC")],
            lambda: log.append("a1") or "a1",
        )
        dc.case({"B1": ("CYCLIC",), "B3": ("BLOCK", ANY)}, lambda: "a2")
        result = dc.execute()
        assert result == "a1"
        assert dc.last_matched == 0
        assert log == ["a1"]

    def test_name_tagged_arm(self):
        dc = DCase(
            [
                ("B1", dist_type("CYCLIC")),
                ("B2", dist_type("BLOCK")),
                ("B3", dist_type("BLOCK", Cyclic(9))),
            ]
        )
        dc.case([("BLOCK",)], lambda: "a1")
        dc.case({"B1": ("CYCLIC",), "B3": ("BLOCK", ANY)}, lambda: "a2")
        assert dc.execute() == "a2"
        assert dc.last_matched == 1

    def test_default_always_matches(self):
        dc = DCase([("B1", dist_type("BLOCK"))])
        dc.case([(Cyclic(1),)], lambda: "no")
        dc.default(lambda: "default")
        assert dc.execute() == "default"

    def test_no_match_runs_nothing(self):
        dc = DCase([("B1", dist_type("BLOCK"))])
        dc.case([("CYCLIC",)], lambda: "no")
        assert dc.execute() is None
        assert dc.last_matched is None

    def test_at_most_one_arm(self):
        runs = []
        dc = DCase([("B1", dist_type("BLOCK"))])
        dc.case([("BLOCK",)], lambda: runs.append(1))
        dc.case([("BLOCK",)], lambda: runs.append(2))
        dc.case(DEFAULT, lambda: runs.append(3))
        dc.execute()
        assert runs == [1]

    def test_needs_selectors(self):
        with pytest.raises(ValueError):
            DCase([])

    def test_selector_needs_distribution(self):
        with pytest.raises(TypeError):
            DCase([("B1", "not-a-type")])  # type: ignore[list-item]

    def test_bound_distribution_selectors(self):
        R = ProcessorArray("R", (2,))
        d = dist_type("BLOCK").apply((8,), R)
        dc = DCase([("B1", d)])
        dc.case([("BLOCK",)], lambda: True)
        assert dc.execute() is True

    def test_paper_example4_full(self):
        """All four arms of Example 4, against three configurations."""
        def build(t1, t2, t3):
            dc = DCase([("B1", t1), ("B2", t2), ("B3", t3)])
            dc.case([("BLOCK",), ("BLOCK",), (Cyclic(2), "CYCLIC")], lambda: "a1")
            dc.case({"B1": ("CYCLIC",), "B3": ("BLOCK", ANY)}, lambda: "a2")
            dc.case({"B3": ("BLOCK", "CYCLIC")}, lambda: "a3")
            dc.case(DEFAULT, lambda: "a4")
            return dc.execute()

        # matches arm 1
        assert build(
            dist_type("BLOCK"), dist_type("BLOCK"), dist_type(Cyclic(2), "CYCLIC")
        ) == "a1"
        # matches arm 2 (t2 arbitrary, t3=(BLOCK, t'))
        assert build(
            dist_type("CYCLIC"), dist_type(Cyclic(3)), dist_type("BLOCK", GenBlock([4, 4]))
        ) == "a2"
        # matches arm 3 (t1, t2 irrelevant)
        assert build(
            dist_type("BLOCK"), dist_type("BLOCK"), dist_type("BLOCK", "CYCLIC")
        ) == "a3"
        # falls through to DEFAULT
        assert build(
            dist_type("BLOCK"), dist_type("BLOCK"), dist_type("CYCLIC", "CYCLIC")
        ) == "a4"
