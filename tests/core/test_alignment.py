"""Tests for alignments and CONSTRUCT (Definitions 1-2, Example 1)."""

import numpy as np
import pytest

from repro.core.alignment import Alignment, AxisMap, construct
from repro.core.dimdist import Cyclic, Indirect, NoDist
from repro.core.distribution import dist_type
from repro.core.index_domain import IndexDomain
from repro.machine.topology import ProcessorArray


class TestAxisMap:
    def test_affine_eval(self):
        m = AxisMap(dim=0, stride=2, offset=1)
        assert m.eval_scalar((3,)) == 7

    def test_constant(self):
        m = AxisMap(dim=None, offset=4)
        assert m.eval_scalar((0, 0)) == 4

    def test_vec(self):
        m = AxisMap(dim=0, stride=3, offset=1)
        assert list(m.eval_vec(3)) == [1, 4, 7]

    def test_zero_stride_rejected(self):
        with pytest.raises(ValueError):
            AxisMap(dim=0, stride=0)

    def test_constant_has_no_vec(self):
        with pytest.raises(ValueError):
            AxisMap(dim=None, offset=2).eval_vec(3)

    def test_is_identity(self):
        assert AxisMap(0).is_identity()
        assert not AxisMap(0, 2).is_identity()
        assert not AxisMap(0, 1, 1).is_identity()
        assert not AxisMap(None, offset=0).is_identity()


class TestAlignmentConstruction:
    def test_identity(self):
        a = Alignment.identity(3)
        assert a.map_index((1, 2, 3)) == (1, 2, 3)

    def test_permutation_paper_example1(self):
        # ALIGN D(I,J,K) WITH C(J,I,K): (i,j,k) -> (j,i,k)
        a = Alignment.permutation((1, 0, 2))
        assert a.map_index((1, 2, 3)) == (2, 1, 3)

    def test_shift(self):
        a = Alignment.shift(2, (1, -1))
        assert a.map_index((5, 5)) == (6, 4)

    def test_bad_permutation(self):
        with pytest.raises(ValueError):
            Alignment.permutation((0, 0))

    def test_source_dim_used_twice_rejected(self):
        with pytest.raises(ValueError):
            Alignment(1, [AxisMap(0), AxisMap(0)])

    def test_source_dim_out_of_range(self):
        with pytest.raises(ValueError):
            Alignment(1, [AxisMap(2)])

    def test_wrong_arity_index(self):
        a = Alignment.identity(2)
        with pytest.raises(ValueError):
            a.map_index((1,))

    def test_check_domains_rejects_out_of_range(self):
        a = Alignment.shift(1, (5,))
        with pytest.raises(ValueError):
            a.check_domains(IndexDomain((10,)), IndexDomain((10,)))

    def test_check_domains_accepts_fit(self):
        a = Alignment.shift(1, (5,))
        a.check_domains(IndexDomain((5,)), IndexDomain((10,)))


class TestConstruct:
    """delta_A(i) = U_{j in alpha(i)} delta_B(j)."""

    def test_identity_preserves_type_and_owners(self):
        R = ProcessorArray("R", (4,))
        db = dist_type("BLOCK", ":").apply((8, 8), R)
        da = construct(Alignment.identity(2), db, (8, 8))
        assert da.dtype == db.dtype
        for i in range(8):
            for j in range(8):
                assert da.owner((i, j)) == db.owner((i, j))

    def test_paper_example1_transpose(self):
        # REAL C(10,10,10) DIST(BLOCK,BLOCK,:); D ALIGN D(I,J,K) WITH C(J,I,K)
        R = ProcessorArray("R", (2, 2))
        dc = dist_type("BLOCK", "BLOCK", ":").apply((10, 10, 10), R)
        alignment = Alignment.permutation((1, 0, 2))
        dd = construct(alignment, dc, (10, 10, 10))
        # aligned elements co-located: D(i,j,k) with C(j,i,k)
        rng = np.random.default_rng(1)
        for _ in range(30):
            i, j, k = rng.integers(0, 10, 3)
            assert dd.owner((i, j, k)) == dc.owner((j, i, k))

    def test_transpose_2d_full_check(self):
        R = ProcessorArray("R", (2, 3))
        db = dist_type("BLOCK", "CYCLIC").apply((6, 6), R)
        da = construct(Alignment.permutation((1, 0)), db, (6, 6))
        for i in range(6):
            for j in range(6):
                assert da.owner((i, j)) == db.owner((j, i))

    def test_shift_alignment_colocates(self):
        R = ProcessorArray("R", (4,))
        db = dist_type("BLOCK").apply((12,), R)
        da = construct(Alignment.shift(1, (2,)), db, (10,))
        for i in range(10):
            assert da.owner((i,)) == db.owner((i + 2,))

    def test_shift_produces_indirect(self):
        R = ProcessorArray("R", (4,))
        db = dist_type("BLOCK").apply((12,), R)
        da = construct(Alignment.shift(1, (2,)), db, (10,))
        assert isinstance(da.dtype.dims[0], Indirect)

    def test_stride_alignment(self):
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK").apply((10,), R)
        a = Alignment(1, [AxisMap(0, 2, 0)])  # A(i) with B(2i)
        da = construct(a, db, (5,))
        for i in range(5):
            assert da.owner((i,)) == db.owner((2 * i,))

    def test_constant_embedding_pins_processor_dim(self):
        R = ProcessorArray("R", (2, 2))
        db = dist_type("BLOCK", "BLOCK").apply((8, 8), R)
        # A(i) WITH B(i, 6): column 6 lives on slot 1 of section dim 1
        a = Alignment(1, [AxisMap(0), AxisMap(None, offset=6)])
        da = construct(a, db, (8,))
        for i in range(8):
            assert da.owner((i,)) == db.owner((i, 6))

    def test_unmentioned_source_dim_undistributed(self):
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK").apply((8,), R)
        # A(i, j) WITH B(i): j rides along
        a = Alignment(2, [AxisMap(0)])
        da = construct(a, db, (8, 4))
        assert isinstance(da.dtype.dims[1], NoDist)
        for i in range(8):
            for j in range(4):
                assert da.owner((i, j)) == db.owner((i,))

    def test_target_undistributed_dim_gives_nodist(self):
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK", ":").apply((8, 8), R)
        da = construct(Alignment.identity(2), db, (8, 8))
        assert isinstance(da.dtype.dims[1], NoDist)

    def test_smaller_source_identity_extent_mismatch(self):
        # A(6) WITH B(10) under identity: falls back to Indirect but
        # still co-locates.
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK").apply((10,), R)
        da = construct(Alignment.identity(1), db, (6,))
        for i in range(6):
            assert da.owner((i,)) == db.owner((i,))

    def test_misfit_alignment_rejected(self):
        R = ProcessorArray("R", (2,))
        db = dist_type("BLOCK").apply((8,), R)
        with pytest.raises(ValueError):
            construct(Alignment.shift(1, (4,)), db, (8,))  # maps past 8

    def test_cyclic_target_transpose(self):
        R = ProcessorArray("R", (3, 2))
        db = dist_type(Cyclic(2), "BLOCK").apply((6, 6), R)
        da = construct(Alignment.permutation((1, 0)), db, (6, 6))
        for i in range(6):
            for j in range(6):
                assert da.owner((i, j)) == db.owner((j, i))


class TestAlignmentEquality:
    def test_eq_hash(self):
        a = Alignment.permutation((1, 0))
        b = Alignment.permutation((1, 0))
        assert a == b and hash(a) == hash(b)
        assert a != Alignment.identity(2)

    def test_repr_readable(self):
        a = Alignment.permutation((1, 0, 2))
        assert "WITH" in repr(a)
