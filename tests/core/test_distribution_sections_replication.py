"""Cross-feature coverage: replication x sections x parameterized BLOCK."""

import numpy as np

from repro.core.dimdist import Block, Replicated
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.communication import shift_exchange
from repro.runtime.engine import Engine
from repro.runtime.redistribute import transfer_matrix, transfer_matrix_naive


class TestReplicationOnSections:
    def test_replicated_onto_subsection(self):
        R = ProcessorArray("R", (4,))
        sec = R.section(slice(1, 3))  # ranks 1 and 2
        d = dist_type(Replicated()).apply((6,), sec)
        assert d.owners((0,)) == (1, 2)
        assert d.local_shape(1) == (6,)
        assert d.local_shape(0) == (0,)

    def test_owner_rank_maps_on_section(self):
        R = ProcessorArray("R", (4,))
        sec = R.section(slice(1, 3))
        d = dist_type(Replicated()).apply((6,), sec)
        maps = list(d.owner_rank_maps())
        assert len(maps) == 2
        owners_at_0 = {int(m[0]) for m in maps}
        assert owners_at_0 == {1, 2}

    def test_transfer_into_replicated_section(self):
        R = ProcessorArray("R", (4,))
        old = dist_type(Block()).apply((8,), R)
        new = dist_type(Replicated()).apply((8,), R.section(slice(0, 2)))
        T = transfer_matrix(old, new, 4)
        assert (T == transfer_matrix_naive(old, new, 4)).all()
        # ranks 2, 3 ship their blocks to both replicas; ranks 0, 1
        # ship only to each other
        assert T[2].sum() == 4  # 2 elements x 2 replicas
        assert T[0, 1] == 2 and T[0, 0] == 0


class TestBlockMWithRuntime:
    def test_block_m_shift_exchange(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        arr = engine.declare("A", (10,), dist=dist_type(Block(3)))
        arr.from_global(np.arange(10.0))
        recv = shift_exchange(arr, 0)
        # rank 3 owns only [9]; its lower neighbour is rank 2 ([6..8])
        assert recv[3]["lo"][0] == 8.0
        assert recv[2]["hi"][0] == 9.0

    def test_block_m_redistribution(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        arr = engine.declare(
            "A", (10,), dist=dist_type(Block(3)), dynamic=True
        )
        arr.from_global(np.arange(10.0))
        engine.distribute("A", dist_type(Block()))
        assert np.array_equal(arr.to_global(), np.arange(10.0))
        # ceil(10/4) = 3: same layout, so nothing should have moved
        assert engine.reports[-1].elements_moved == 0
