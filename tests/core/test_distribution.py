"""Tests for bound distributions (Definition 1)."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock, NoDist, Replicated
from repro.core.distribution import Distribution, DistributionType, dist_type
from repro.core.index_domain import IndexDomain
from repro.machine.topology import ProcessorArray


class TestDistributionType:
    def test_string_coercion(self):
        t = dist_type("BLOCK", "CYCLIC", ":")
        assert t.dims == (Block(), Cyclic(1), NoDist())

    def test_distributed_dims(self):
        t = dist_type(":", "BLOCK", ":", Cyclic(2))
        assert t.distributed_dims == (1, 3)

    def test_equality(self):
        assert dist_type("BLOCK", ":") == dist_type("BLOCK", ":")
        assert dist_type("BLOCK", ":") != dist_type(":", "BLOCK")

    def test_bad_spec_rejected(self):
        with pytest.raises(TypeError):
            dist_type("WAT")
        with pytest.raises(ValueError):
            DistributionType(())

    def test_repr(self):
        assert repr(dist_type("BLOCK", ":")) == "(BLOCK, :)"


class TestBindingValidation:
    def test_rank_mismatch_with_domain(self):
        R = ProcessorArray("R", (4,))
        with pytest.raises(ValueError):
            dist_type("BLOCK").apply((10, 10), R)

    def test_distributed_dims_must_match_section_rank(self):
        R = ProcessorArray("R", (2, 2))
        with pytest.raises(ValueError):
            dist_type("BLOCK", ":").apply((10, 10), R)

    def test_bad_genblock_fails_at_bind(self):
        R = ProcessorArray("R", (4,))
        with pytest.raises(ValueError):
            dist_type(GenBlock([5, 5, 5, 5])).apply((10,), R)

    def test_bad_dim_map_rejected(self):
        R = ProcessorArray("R", (2, 2))
        with pytest.raises(ValueError):
            dist_type("BLOCK", "BLOCK").apply((4, 4), R, dim_map=(0, 0))


class TestOwnership2D:
    """The paper's Example 1: (BLOCK, BLOCK, :) on R(2, 2)."""

    @pytest.fixture
    def dist(self):
        R = ProcessorArray("R", (2, 2))
        return dist_type("BLOCK", "BLOCK", ":").apply((10, 10, 10), R)

    def test_example1_owner(self, dist):
        # delta_C(i,j,k) = {R(ceil(i/5), ceil(j/5))} for all k (0-based)
        R = ProcessorArray("R", (2, 2))
        for i, j, k in [(0, 0, 0), (4, 9, 3), (7, 2, 9), (9, 9, 9)]:
            expect = R.rank_of((i // 5, j // 5))
            assert dist.owner((i, j, k)) == expect

    def test_third_dim_irrelevant(self, dist):
        owners = {dist.owner((3, 7, k)) for k in range(10)}
        assert len(owners) == 1

    def test_every_element_owned(self, dist):
        rm = dist.rank_map()
        assert rm.shape == (10, 10, 10)
        assert rm.min() >= 0 and rm.max() < 4

    def test_rank_map_matches_owner(self, dist):
        rm = dist.rank_map()
        rng = np.random.default_rng(0)
        for _ in range(20):
            idx = tuple(rng.integers(0, 10, 3))
            assert rm[idx] == dist.owner(idx)

    def test_local_shape(self, dist):
        for rank in range(4):
            assert dist.local_shape(rank) == (5, 5, 10)

    def test_local_sizes_sum_to_domain(self, dist):
        assert sum(dist.local_size(r) for r in range(4)) == 1000

    def test_global_to_local_roundtrip(self, dist):
        for rank in range(4):
            idx = dist.local_index_arrays(rank)
            gidx = (int(idx[0][2]), int(idx[1][4]), int(idx[2][7]))
            lidx = dist.global_to_local(rank, gidx)
            assert dist.local_to_global(rank, lidx) == gidx

    def test_segment_contiguous(self, dist):
        seg = dist.segment(0)
        assert seg == ((0, 5), (0, 5), (0, 10))


class TestCyclicDistribution:
    def test_cyclic_not_contiguous_segment(self):
        R = ProcessorArray("R", (2,))
        d = dist_type(Cyclic(1)).apply((8,), R)
        assert d.segment(0) is None

    def test_cyclic_ownership(self):
        R = ProcessorArray("R", (3,))
        d = dist_type(Cyclic(2)).apply((12,), R)
        assert d.owner((0,)) == 0
        assert d.owner((2,)) == 1
        assert d.owner((4,)) == 2
        assert d.owner((6,)) == 0

    def test_cyclic_local_indices(self):
        R = ProcessorArray("R", (2,))
        d = dist_type(Cyclic(1)).apply((6,), R)
        assert list(d.local_index_arrays(0)[0]) == [0, 2, 4]
        assert list(d.local_index_arrays(1)[0]) == [1, 3, 5]


class TestSectionTargets:
    def test_distribution_to_subsection(self):
        R = ProcessorArray("R", (4,))
        sec = R.section(slice(1, 3))  # ranks 1 and 2 only
        d = dist_type("BLOCK").apply((10,), sec)
        assert set(np.unique(d.rank_map())) == {1, 2}
        assert d.local_shape(0) == (0,)
        assert d.local_index_arrays(0) is None

    def test_strided_section(self):
        R = ProcessorArray("R", (4,))
        sec = R.section(slice(0, 4, 2))  # ranks 0, 2
        d = dist_type("BLOCK").apply((4,), sec)
        assert d.owner((0,)) == 0
        assert d.owner((3,)) == 2

    def test_fully_undistributed_on_collapsed_section(self):
        R = ProcessorArray("R", (2, 2))
        sec = R.section(1, 0)  # the single processor (1, 0) = rank 2
        d = dist_type(":", ":").apply((3, 3), sec)
        assert d.owner((1, 2)) == 2
        assert (np.asarray(d.rank_map()) == 2).all()
        assert d.local_shape(2) == (3, 3)


class TestDimMap:
    def test_transposed_dim_map(self):
        R = ProcessorArray("R", (2, 3))
        # first distributed dim -> section dim 1, second -> section dim 0
        d = dist_type("BLOCK", "BLOCK").apply((6, 4), R, dim_map=(1, 0))
        # array dim 0 (extent 6) -> section dim 1 (3 slots, block len 2);
        # array dim 1 (extent 4) -> section dim 0 (2 slots, block len 2)
        assert d.owner((0, 0)) == R.rank_of((0, 0))
        assert d.owner((5, 0)) == R.rank_of((0, 2))
        assert d.owner((0, 3)) == R.rank_of((1, 0))
        assert d.owner((3, 2)) == R.rank_of((1, 1))

    def test_dim_map_roundtrip_local(self):
        R = ProcessorArray("R", (2, 3))
        d = dist_type("BLOCK", "BLOCK").apply((6, 6), R, dim_map=(1, 0))
        total = sum(d.local_size(r) for r in range(6))
        assert total == 36
        for rank in range(6):
            arrs = d.local_index_arrays(rank)
            for i in arrs[0]:
                for j in arrs[1]:
                    assert d.owner((int(i), int(j))) == rank


class TestReplication:
    def test_owners_multiple(self):
        R = ProcessorArray("R", (3,))
        d = dist_type(Replicated()).apply((5,), R)
        assert d.owners((2,)) == (0, 1, 2)
        assert d.is_replicated()

    def test_mixed_replicated_block(self):
        R = ProcessorArray("R", (2, 2))
        d = dist_type("BLOCK", Replicated()).apply((4, 4), R)
        owners = d.owners((0, 0))
        assert len(owners) == 2
        assert d.owner((0, 0)) == owners[0]

    def test_owner_rank_maps_cover_all_owners(self):
        R = ProcessorArray("R", (2, 2))
        d = dist_type("BLOCK", Replicated()).apply((4, 4), R)
        maps = list(d.owner_rank_maps())
        assert len(maps) == 2
        for idx in ((0, 0), (3, 3), (1, 2)):
            from_maps = {int(m[idx]) for m in maps}
            assert from_maps == set(d.owners(idx))

    def test_exclusive_yields_single_map(self):
        R = ProcessorArray("R", (4,))
        d = dist_type("BLOCK").apply((8,), R)
        assert len(list(d.owner_rank_maps())) == 1


class TestEquality:
    def test_equal_distributions(self):
        R = ProcessorArray("R", (4,))
        a = dist_type("BLOCK", ":").apply((8, 8), R)
        b = dist_type("BLOCK", ":").apply((8, 8), R)
        assert a == b and hash(a) == hash(b)

    def test_different_targets_unequal(self):
        a = dist_type("BLOCK").apply((8,), ProcessorArray("R", (4,)))
        b = dist_type("BLOCK").apply((8,), ProcessorArray("Q", (4,)))
        assert a != b

    def test_different_domains_unequal(self):
        R = ProcessorArray("R", (4,))
        assert dist_type("BLOCK").apply((8,), R) != dist_type("BLOCK").apply(
            (9,), R
        )


class TestErrorPaths:
    def test_owner_checks_domain(self):
        R = ProcessorArray("R", (4,))
        d = dist_type("BLOCK").apply((8,), R)
        with pytest.raises(IndexError):
            d.owner((8,))

    def test_global_to_local_outside_section(self):
        R = ProcessorArray("R", (4,))
        sec = R.section(slice(0, 2))
        d = dist_type("BLOCK").apply((8,), sec)
        with pytest.raises(IndexError):
            d.global_to_local(3, (0,))
