"""Tests for run-time array descriptors (paper §3.2.1)."""

import pytest

from repro.core.descriptor import ArrayDescriptor, DistributionUndefinedError
from repro.core.distribution import dist_type
from repro.core.dynamic import DynamicAttr
from repro.core.index_domain import IndexDomain
from repro.machine.topology import ProcessorArray

R = ProcessorArray("R", (4,))


def make_static():
    d = ArrayDescriptor("A", IndexDomain((8, 8)))
    d.set_dist(dist_type("BLOCK", ":").apply((8, 8), R))
    return d


class TestStaticDescriptor:
    def test_static_association_invariant(self):
        """§2.3: a static array's distribution association is invariant."""
        d = make_static()
        with pytest.raises(ValueError, match="static"):
            d.set_dist(dist_type(":", "BLOCK").apply((8, 8), R))

    def test_dist_type_accessor(self):
        assert make_static().dist_type == dist_type("BLOCK", ":")

    def test_version_counts(self):
        d = make_static()
        assert d.version == 1

    def test_is_flags(self):
        d = make_static()
        assert d.is_distributed and not d.is_dynamic


class TestDynamicDescriptor:
    def test_access_before_distribution_illegal(self):
        """§2.3: no initial distribution + no DISTRIBUTE = illegal access."""
        d = ArrayDescriptor("B1", IndexDomain((8,)), dynamic=DynamicAttr())
        assert not d.is_distributed
        with pytest.raises(DistributionUndefinedError):
            _ = d.dist

    def test_redistribution_allowed(self):
        d = ArrayDescriptor("V", IndexDomain((8, 8)), dynamic=DynamicAttr())
        d.set_dist(dist_type(":", "BLOCK").apply((8, 8), R))
        d.set_dist(dist_type("BLOCK", ":").apply((8, 8), R))
        assert d.version == 2

    def test_range_enforced_on_set(self):
        d = ArrayDescriptor(
            "V",
            IndexDomain((8, 8)),
            dynamic=DynamicAttr(range_=[(":", "BLOCK"), ("BLOCK", ":")]),
        )
        d.set_dist(dist_type(":", "BLOCK").apply((8, 8), R))
        with pytest.raises(ValueError, match="RANGE"):
            d.set_dist(dist_type("CYCLIC", ":").apply((8, 8), R))

    def test_domain_mismatch_rejected(self):
        d = ArrayDescriptor("V", IndexDomain((8, 8)), dynamic=DynamicAttr())
        with pytest.raises(ValueError):
            d.set_dist(dist_type(":", "BLOCK").apply((8, 9), R))


class TestAccessFunctions:
    def test_loc_map(self):
        d = make_static()
        # element (3, 5) lives on rank 1 (block length 2), offset (1, 5)
        assert d.owner((3, 5)) == 1
        assert d.loc_map(1, (3, 5)) == (1, 5)

    def test_segment(self):
        d = make_static()
        assert d.segment(0) == ((0, 2), (0, 8))

    def test_repr_states(self):
        d = ArrayDescriptor("X", IndexDomain((4,)), dynamic=DynamicAttr())
        assert "undistributed" in repr(d)
        d.set_dist(dist_type("BLOCK").apply((4,), R))
        assert "BLOCK" in repr(d)
