"""End-to-end acceptance: all four §4 applications through the
simulator, plus the ``repro trace`` / ``--json`` CLI surfaces."""

import json

import pytest

from repro.machine import Machine, PARAGON, ProcessorArray
from repro.sim import EventLog, record, simulate


def _trace(app: str):
    m_kw = dict(cost_model=PARAGON)
    log = EventLog()
    if app == "adi":
        from repro.apps.adi import run_adi

        machine = Machine(ProcessorArray("R", (4,)), **m_kw)
        with record(machine, log):
            run_adi(machine, 24, 24, 2, strategy="dynamic", seed=0)
    elif app == "smoothing":
        from repro.apps.smoothing import run_smoothing

        machine = Machine((4,), **m_kw)
        with record(machine, log):
            run_smoothing(
                24, 4, "columns", 4, PARAGON, seed=0, machine=machine
            )
    elif app == "pic":
        from repro.apps.pic import PICConfig, run_pic

        machine = Machine(ProcessorArray("P", (4,)), **m_kw)
        with record(machine, log):
            run_pic(
                machine,
                PICConfig(
                    strategy="bblock", ncell=32, npart=256, max_time=5,
                    nprocs=4, seed=0,
                ),
            )
    else:
        from repro.apps.irregular import make_mesh, run_relaxation

        machine = Machine(ProcessorArray("P", (4,)), **m_kw)
        with record(machine, log):
            run_relaxation(
                machine, make_mesh(96, seed=0), "partitioned",
                sweeps=3, seed=0,
            )
    return machine, log


APPS = ("adi", "smoothing", "pic", "irregular")


@pytest.mark.parametrize("app", APPS)
class TestAppTraces:
    def test_blocking_reproduces_aggregate_accounting_bitwise(self, app):
        machine, log = _trace(app)
        tl = simulate(log, machine.cost_model, machine.nprocs)
        assert tl.clocks == machine.network.clocks
        assert tl.makespan == machine.time

    def test_split_phase_never_slower(self, app):
        machine, log = _trace(app)
        blocking = simulate(log, machine.cost_model, machine.nprocs)
        split = simulate(
            log, machine.cost_model, machine.nprocs, overlap=True
        )
        assert split.makespan <= blocking.makespan * (1 + 1e-9)

    def test_recorded_message_count_matches_machine(self, app):
        machine, log = _trace(app)
        assert len(log.messages()) == machine.stats().messages


def test_multiprocess_backend_trace_is_bitwise_identical():
    """The backend seam: SPMD backends drive the same master-side
    accounting, so a recorded trace replays bitwise regardless of
    which backend physically moved the data."""
    from repro.apps.adi import run_adi

    machine = Machine(ProcessorArray("R", (2,)), cost_model=PARAGON)
    log = EventLog()
    with record(machine, log):
        run_adi(machine, 16, 16, 1, "dynamic", seed=0,
                backend="multiprocess")
    tl = simulate(log, machine.cost_model, machine.nprocs)
    assert tl.clocks == machine.network.clocks
    assert len(log.messages()) == machine.stats().messages


def test_split_phase_strictly_reduces_on_adi_and_smoothing():
    for app in ("adi", "smoothing"):
        machine, log = _trace(app)
        blocking = simulate(log, machine.cost_model, machine.nprocs)
        split = simulate(
            log, machine.cost_model, machine.nprocs, overlap=True
        )
        assert split.makespan < blocking.makespan, app


class TestTraceCli:
    @pytest.mark.parametrize("app", APPS)
    def test_trace_smoke(self, app, capsys):
        from repro.__main__ import main

        main(
            ["trace", app, "--nprocs", "4", "--size", "24",
             "--iterations", "1", "--steps", "3", "--width", "48"]
        )
        out = capsys.readouterr().out
        assert "matches aggregate accounting bit for bit: True" in out
        assert "split-phase" in out and "critical path" in out

    def test_trace_json(self, capsys):
        from repro.__main__ import main

        main(["trace", "smoothing", "--size", "16", "--steps", "2",
              "--json", "--compact"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["matches_aggregate_accounting"] is True
        b = doc["blocking"]["metrics"]["makespan"]
        s = doc["split_phase"]["metrics"]["makespan"]
        assert s <= b
        assert "processors" not in doc["blocking"]  # --compact

    def test_trace_json_full_intervals(self, capsys):
        from repro.__main__ import main

        main(["trace", "irregular", "--size", "64", "--steps", "2",
              "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["blocking"]["processors"]) == 4


class TestRunPlanJsonCli:
    def test_run_json(self, capsys):
        from repro.__main__ import main

        main(["run", "smoothing", "--size", "16", "--steps", "2",
              "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["workload"] == "smoothing"
        assert doc["backend"] == "serial"
        # headline metrics live in their own object since the v1.5
        # session facade (workload-controlled names cannot collide
        # with the fixed report fields)
        assert doc["headline"]["modeled_time_ms"] > 0
        assert doc["modeled_time_s"] > 0

    def test_plan_json(self, capsys):
        from repro.__main__ import main

        main(["plan", "adi", "--iterations", "2", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["cost_mode"] == "model"
        assert doc["plan"]["steps"]
        assert doc["plan"]["total_cost"] >= 0

    def test_plan_json_simulated_mode(self, capsys):
        from repro.__main__ import main

        main(["plan", "adi", "--iterations", "2", "--json",
              "--cost-mode", "simulated"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["cost_mode"] == "simulated"
        assert doc["plan"]["total_cost"] >= 0
