"""Critical-path extraction from simulated timelines."""

from repro.machine import Machine, PARAGON, ProcessorArray
from repro.sim import EventLog, critical_path, record, simulate


def _machine(n=4):
    return Machine(ProcessorArray("P", (n,)), cost_model=PARAGON)


def _simulated(m, log, overlap=False):
    return simulate(log, m.cost_model, m.nprocs, overlap=overlap)


class TestCriticalPath:
    def test_empty_timeline(self):
        m = _machine()
        cp = critical_path(_simulated(m, EventLog()))
        assert len(cp) == 0 and cp.makespan == 0.0

    def test_single_kernel_path(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.compute(2, 500.0)
        cp = critical_path(_simulated(m, log))
        assert cp.ranks() == [2]
        assert cp.breakdown() == {"compute": m.cost_model.compute_time(500.0)}

    def test_path_is_chronological_and_anchored(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 64), (1, 2, 64)])
            m.network.synchronize()
            m.network.compute(3, 9999.0)
            m.network.synchronize()
        tl = _simulated(m, log)
        cp = critical_path(tl)
        starts = [iv.start for _r, iv in cp.steps]
        assert starts == sorted(starts)
        assert cp.steps[0][1].start == 0.0
        assert cp.steps[-1][1].end == tl.makespan

    def test_path_crosses_ranks_through_barrier(self):
        """The bottleneck before a barrier pulls the path to its rank."""
        m = _machine(2)
        log = EventLog()
        with record(m, log):
            m.network.compute(1, 10000.0)  # bottleneck
            m.network.synchronize()
            m.network.compute(0, 10.0)     # finisher after the barrier
        cp = critical_path(_simulated(m, log))
        assert set(cp.ranks()) == {0, 1}
        # the long kernel on rank 1 must be on the path
        assert any(
            r == 1 and iv.kind == "compute" for r, iv in cp.steps
        )

    def test_blocking_send_couples_receiver_to_sender(self):
        m = _machine(2)
        log = EventLog()
        with record(m, log):
            m.network.compute(0, 10000.0)
            m.network.send(0, 1, 64)
            m.network.compute(1, 10.0)
        cp = critical_path(_simulated(m, log))
        assert set(cp.ranks()) == {0, 1}
        assert any(iv.kind == "compute" and r == 0 for r, iv in cp.steps)

    def test_breakdown_sums_to_path_time(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 2048)])
            m.network.synchronize()
            m.network.compute(1, 300.0)
        cp = critical_path(_simulated(m, log))
        assert abs(sum(cp.breakdown().values())
                   - sum(iv.duration for _r, iv in cp.steps)) < 1e-15

    def test_summary_and_to_dict(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 64)])
            m.network.synchronize()
        cp = critical_path(_simulated(m, log))
        assert "critical path" in cp.summary()
        d = cp.to_dict()
        assert d["makespan"] == cp.makespan
        assert len(d["steps"]) == len(cp)

    def test_split_phase_path_contains_posts_or_waits(self):
        m = _machine(2)
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 10**6)])
            m.network.synchronize()
            m.network.compute(0, 10.0)
            m.network.compute(1, 10.0)
            m.network.synchronize()
        cp = critical_path(_simulated(m, log, overlap=True))
        kinds = {iv.kind for _r, iv in cp.steps}
        assert kinds & {"post", "wait"}
