"""Blocking replay: bit-for-bit equivalence with the aggregate
accounting, plus timeline bookkeeping."""

from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray
from repro.sim import EventLog, record, simulate


def _machine(n=4, cm=PARAGON):
    return Machine(ProcessorArray("P", (n,)), cost_model=cm)


def _replay(m, log):
    return simulate(log, m.cost_model, m.nprocs, overlap=False)


class TestBlockingEquivalence:
    def test_sequential_sends(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.send(0, 1, 100)
            m.network.send(1, 2, 50)
            m.network.send(3, 2, 10)
        tl = _replay(m, log)
        assert tl.clocks == m.network.clocks

    def test_exchange_phase(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange(
                [(0, 1, 8), (1, 0, 8), (1, 2, 16), (2, 3, 999)]
            )
        tl = _replay(m, log)
        assert tl.clocks == m.network.clocks

    def test_compute_and_barrier(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.compute(0, 123.0)
            m.network.compute(2, 456.0)
            m.network.synchronize()
        tl = _replay(m, log)
        assert tl.clocks == m.network.clocks
        assert tl.barriers == [m.time]

    def test_mixed_program(self):
        m = _machine(5, IPSC860)
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 64), (1, 2, 64), (4, 0, 3)])
            m.network.synchronize()
            m.network.compute(1, 1000.0)
            m.network.send(1, 3, 8, tag="elem:V")
            m.network.exchange([(3, 4, 128, "redistribute:V")])
            m.network.synchronize()
            m.network.compute(4, 10.0)
        tl = _replay(m, log)
        assert tl.clocks == m.network.clocks
        assert tl.makespan == m.time

    def test_empty_log(self):
        m = _machine()
        tl = _replay(m, EventLog())
        assert tl.clocks == [0.0] * 4
        assert tl.makespan == 0.0
        assert tl.imbalance() == 1.0 and tl.efficiency() == 1.0


class TestTimelineBookkeeping:
    def test_intervals_are_contiguous_per_rank(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 64), (2, 3, 8)])
            m.network.synchronize()
            m.network.compute(0, 100.0)
            m.network.synchronize()
        tl = _replay(m, log)
        for p in tl.procs:
            for a, b in zip(p.intervals, p.intervals[1:]):
                assert a.end == b.start
            if p.intervals:
                assert p.intervals[0].start == 0.0
                assert p.intervals[-1].end == p.time

    def test_makespan_at_least_max_busy(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.send(0, 1, 500)
            m.network.compute(2, 2000.0)
            m.network.synchronize()
        tl = _replay(m, log)
        assert tl.makespan >= max(tl.busy(r) for r in range(tl.nprocs))

    def test_wait_intervals_account_for_idle(self):
        m = _machine(2)
        log = EventLog()
        with record(m, log):
            m.network.compute(0, 10000.0)
            m.network.synchronize()
        tl = _replay(m, log)
        # rank 1 idled for exactly rank 0's compute time
        waits = [iv for iv in tl.procs[1].intervals if iv.kind == "wait"]
        assert len(waits) == 1
        assert waits[0].duration == tl.makespan

    def test_metrics_record(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 64)])
            m.network.compute(0, 100.0)
            m.network.synchronize()
        metrics = _replay(m, log).metrics()
        assert metrics["makespan"] == m.time
        assert metrics["compute_time"] > 0 and metrics["comm_time"] > 0
        assert metrics["barriers"] == 1 and not metrics["overlap"]

    def test_summary_mentions_mode_and_model(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.synchronize()
        s = _replay(m, log).summary()
        assert "blocking" in s and "Paragon" in s
