"""Split-phase semantics: relaxed barriers, overlap, invariants."""

from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray
from repro.sim import (
    EventLog,
    overlappable_phases,
    record,
    relaxed_barriers,
    simulate,
)


def _machine(n=4, cm=PARAGON):
    return Machine(ProcessorArray("P", (n,)), cost_model=cm)


def _halo_then_kernel_log(m, steps=3, nbytes=4096, flops=200000.0):
    """The stencil shape: exchange / barrier / kernels / barrier."""
    log = EventLog()
    with record(m, log):
        for _ in range(steps):
            m.network.exchange(
                [(0, 1, nbytes), (1, 0, nbytes), (1, 2, nbytes),
                 (2, 1, nbytes), (2, 3, nbytes), (3, 2, nbytes)],
            )
            m.network.synchronize()
            for r in range(m.nprocs):
                m.network.compute(r, flops)
            m.network.synchronize()
    return log


class TestRelaxedBarriers:
    def test_comm_only_barrier_is_relaxed(self):
        m = _machine()
        log = _halo_then_kernel_log(m, steps=2)
        relaxed = relaxed_barriers(log)
        # barriers alternate: comm-only (relaxed), post-kernel (kept)
        assert relaxed == {0, 2}

    def test_kernel_barrier_kept(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.compute(0, 10.0)
            m.network.synchronize()
        assert relaxed_barriers(log) == frozenset()

    def test_empty_segment_barrier_kept(self):
        m = _machine()
        log = EventLog()
        with record(m, log):
            m.network.synchronize()
            m.network.synchronize()
        assert relaxed_barriers(log) == frozenset()

    def test_overlappable_phases(self):
        m = _machine()
        log = _halo_then_kernel_log(m, steps=2)
        hideable = overlappable_phases(log)
        assert len(hideable) == 2 and all(hideable.values())
        # a phase closed by a kept barrier is not hideable
        log2 = EventLog()
        with record(m, log2):
            m.network.exchange([(0, 1, 8)])
            m.network.compute(0, 1.0)
            m.network.synchronize()
        assert overlappable_phases(log2) == {0: False}


class TestSplitPhaseSemantics:
    def test_overlap_hides_halo_transfers(self):
        m = _machine(4, IPSC860)  # high beta: transfers dominate
        log = _halo_then_kernel_log(m)
        blocking = simulate(log, m.cost_model, m.nprocs)
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        assert split.makespan < blocking.makespan
        assert split.relaxed == 3
        assert blocking.relaxed == 0

    def test_perfect_overlap_bound(self):
        """With compute >> comm the split-phase makespan approaches
        pure compute plus the post overheads."""
        m = _machine(2, PARAGON)
        log = EventLog()
        flops = 5e6  # 0.1 s at 50 MFLOPS -- dwarfs one 8 KB transfer
        with record(m, log):
            m.network.exchange([(0, 1, 8192), (1, 0, 8192)])
            m.network.synchronize()
            m.network.compute(0, flops)
            m.network.compute(1, flops)
            m.network.synchronize()
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        compute = m.cost_model.compute_time(flops)
        posts = 2 * m.cost_model.alpha  # one send + one recv post each
        assert abs(split.makespan - (compute + posts)) < 1e-12

    def test_waits_happen_at_kept_barriers(self):
        """With comm >> compute the wait reappears at the kept barrier."""
        m = _machine(2, IPSC860)
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 10**6)])  # ~0.36 s transfer
            m.network.synchronize()
            m.network.compute(0, 10.0)
            m.network.compute(1, 10.0)
            m.network.synchronize()
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        waits = [
            iv
            for p in split.procs
            for iv in p.intervals
            if iv.kind == "wait" and iv.tag == "msg-wait"
        ]
        assert waits, "transfer must be awaited at the kept barrier"
        # makespan is still bounded by the transfer completion
        assert split.makespan >= m.cost_model.beta * 10**6

    def test_end_of_trace_drains_pending(self):
        m = _machine(2, PARAGON)
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, 10**6)])
            m.network.synchronize()  # relaxed: comm-only
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        assert split.makespan >= m.cost_model.beta * 10**6

    def test_in_order_link_delivery(self):
        """Two transfers on one link serialize their beta terms."""
        m = _machine(2, PARAGON)
        nbytes = 10**5
        log = EventLog()
        with record(m, log):
            m.network.exchange([(0, 1, nbytes), (0, 1, nbytes)])
            m.network.synchronize()
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        assert split.makespan >= 2 * m.cost_model.beta * nbytes

    def test_overlap_never_slower_on_stencil_traces(self):
        for cm in (PARAGON, IPSC860):
            m = _machine(4, cm)
            log = _halo_then_kernel_log(m, steps=4, nbytes=256, flops=50.0)
            blocking = simulate(log, m.cost_model, m.nprocs)
            split = simulate(log, m.cost_model, m.nprocs, overlap=True)
            assert split.makespan <= blocking.makespan * (1 + 1e-12)

    def test_sequential_send_posts_split_phase(self):
        m = _machine(2, PARAGON)
        log = EventLog()
        with record(m, log):
            m.network.send(0, 1, 10**5, tag="elem:V")
            m.network.compute(0, 1000.0)
            m.network.synchronize()
        blocking = simulate(log, m.cost_model, m.nprocs)
        split = simulate(log, m.cost_model, m.nprocs, overlap=True)
        assert split.makespan <= blocking.makespan
