"""Trace export: Gantt, JSON, Chrome tracing, report helpers."""

import json

import pytest

from repro.machine import (
    Machine,
    PARAGON,
    ProcessorArray,
    timeline_summary,
    timeline_table,
)
from repro.sim import (
    EventLog,
    critical_path,
    dump_json,
    gantt,
    record,
    simulate,
    to_chrome_trace,
    to_json,
)


@pytest.fixture
def timeline():
    m = Machine(ProcessorArray("P", (3,)), cost_model=PARAGON)
    log = EventLog()
    with record(m, log):
        m.network.exchange([(0, 1, 512), (1, 2, 512)])
        m.network.synchronize()
        m.network.compute(0, 4000.0, tag="stencil:U")
        m.network.compute(1, 2000.0, tag="stencil:U")
        m.network.synchronize()
    return simulate(log, m.cost_model, m.nprocs)


class TestGantt:
    def test_one_row_per_processor(self, timeline):
        lines = gantt(timeline, width=40).splitlines()
        assert len(lines) == 1 + timeline.nprocs
        assert lines[1].startswith("P0") and lines[3].startswith("P2")

    def test_rows_have_requested_width(self, timeline):
        for line in gantt(timeline, width=40).splitlines()[1:]:
            assert len(line) == len("P0   ") + 40

    def test_glyphs_cover_kinds(self, timeline):
        chart = gantt(timeline, width=64)
        assert "#" in chart and "~" in chart

    def test_zero_makespan(self):
        m = Machine(ProcessorArray("P", (2,)))
        tl = simulate(EventLog(), m.cost_model, m.nprocs)
        chart = gantt(tl, width=16)
        assert "." * 16 in chart

    def test_width_validated(self, timeline):
        with pytest.raises(ValueError):
            gantt(timeline, width=4)


class TestJson:
    def test_to_json_roundtrips_through_json(self, timeline):
        doc = to_json(timeline, critical=critical_path(timeline))
        text = json.dumps(doc)
        back = json.loads(text)
        assert back["metrics"]["makespan"] == timeline.makespan
        assert len(back["processors"]) == timeline.nprocs
        assert back["critical_path"]["makespan"] == timeline.makespan

    def test_compact_form_drops_intervals(self, timeline):
        doc = to_json(timeline, intervals=False)
        assert "processors" not in doc and "metrics" in doc

    def test_dump_json_to_path(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        dump_json(timeline, str(path))
        doc = json.loads(path.read_text())
        assert doc["metrics"]["nprocs"] == timeline.nprocs

    def test_dump_json_to_file_object(self, timeline, tmp_path):
        path = tmp_path / "trace.json"
        with open(path, "w") as fh:
            dump_json(timeline, fh, intervals=False)
        assert json.loads(path.read_text())["metrics"]["overlap"] is False


class TestChromeTrace:
    def test_trace_events_shape(self, timeline):
        doc = to_chrome_trace(timeline)
        assert doc["traceEvents"]
        ev = doc["traceEvents"][0]
        assert ev["ph"] == "X" and ev["ts"] >= 0 and ev["dur"] >= 0
        assert {e["tid"] for e in doc["traceEvents"]} <= set(
            range(timeline.nprocs)
        )
        json.dumps(doc)  # serializable

    def test_kernel_tags_become_names(self, timeline):
        doc = to_chrome_trace(timeline)
        assert any(e["name"] == "stencil:U" for e in doc["traceEvents"])


class TestTimelineReports:
    def test_timeline_table_has_row_per_rank(self, timeline):
        table = timeline_table(timeline)
        lines = table.splitlines()
        assert len(lines) == 2 + timeline.nprocs
        assert "util" in lines[0]

    def test_timeline_summary_compares_makespan_and_bound(self, timeline):
        s = timeline_summary(timeline)
        assert "makespan" in s and "summed-cost bound" in s

    def test_timeline_summary_with_machine(self):
        m = Machine(ProcessorArray("P", (2,)), cost_model=PARAGON)
        log = EventLog()
        with record(m, log):
            m.network.compute(0, 100.0)
            m.network.synchronize()
        tl = simulate(log, m.cost_model, m.nprocs)
        s = timeline_summary(tl, m)
        assert "machine aggregate clock" in s
