"""Unit tests for the array-backed simulator replay (PR 4)."""

import numpy as np
import pytest

from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray
from repro.sim import (
    EventArrays,
    EventKind,
    EventLog,
    record,
    replay_blocking,
    replay_split_exchange,
    simulate,
)
from repro.sim.events import KIND_CODES


class TestEventArrays:
    def test_from_events_packs_all_fields(self):
        log = EventLog()
        log.kernel(1, 250.0, "k")
        log.message(0, 2, 64, "m")
        log.barrier()
        arr = EventArrays.from_events(log.events)
        assert len(arr) == 4  # kernel + send + recv + barrier
        assert arr.kind[0] == KIND_CODES[EventKind.KERNEL]
        assert arr.kind[1] == KIND_CODES[EventKind.SEND]
        assert arr.kind[2] == KIND_CODES[EventKind.RECV]
        assert arr.kind[3] == KIND_CODES[EventKind.BARRIER]
        assert arr.rank[1] == 0 and arr.peer[1] == 2 and arr.nbytes[1] == 64
        assert arr.flops[0] == 250.0

    def test_log_to_arrays_is_cached_and_invalidated(self):
        log = EventLog()
        log.kernel(0, 1.0)
        a1 = log.to_arrays()
        assert log.to_arrays() is a1  # cached
        log.barrier()
        a2 = log.to_arrays()           # appended: rebuilt
        assert a2 is not a1 and len(a2) == 2
        log.clear()
        assert len(log.to_arrays()) == 0

    def test_exchange_constructor(self):
        s = np.array([0, 1]); d = np.array([1, 2]); nb = np.array([8, 16])
        arr = EventArrays.exchange(s, d, nb)
        assert len(arr) == 3
        assert (arr.kind[:2] == KIND_CODES[EventKind.SEND]).all()
        assert arr.kind[2] == KIND_CODES[EventKind.BARRIER]
        assert (arr.phase[:2] == 0).all()


class TestReplayBlocking:
    def test_empty_trace(self):
        r = replay_blocking(EventArrays.from_events([]), PARAGON, 3)
        assert r.clocks == [0.0, 0.0, 0.0] and r.makespan == 0.0

    def test_matches_network_on_app_trace(self):
        from repro.apps.adi import run_adi

        machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        log = EventLog()
        with record(machine, log):
            run_adi(machine, 16, 16, 2, "dynamic", seed=0)
        fast = replay_blocking(log.to_arrays(), PARAGON, 4)
        assert fast.clocks == machine.network.clocks

    def test_matches_event_loop_including_barriers(self):
        machine = Machine(ProcessorArray("R", (3,)), cost_model=IPSC860)
        log = EventLog()
        with record(machine, log):
            net = machine.network
            net.compute(0, 500.0)
            net.send(0, 1, 100)
            net.exchange([(0, 1, 8), (1, 2, 16), (2, 0, 24)])
            net.synchronize()
            net.compute(2, 123.0)
            net.synchronize()
        loop = simulate(log, IPSC860, 3, overlap=False)
        fast = replay_blocking(log.to_arrays(), IPSC860, 3)
        assert fast.clocks == loop.clocks
        assert fast.barriers == loop.barriers
        assert fast.makespan == loop.makespan


class TestReplaySplitExchange:
    def test_empty_phase_costs_nothing(self):
        z = np.empty(0, dtype=np.int64)
        assert replay_split_exchange(z, z, z, PARAGON, 4) == 0.0

    def test_duplicate_links_rejected(self):
        s = np.array([0, 0]); d = np.array([1, 1]); nb = np.array([8, 8])
        with pytest.raises(ValueError, match="duplicate directed links"):
            replay_split_exchange(s, d, nb, PARAGON, 2)

    def test_matches_event_loop(self):
        T = np.array([[0, 10, 0], [5, 0, 7], [0, 3, 0]], dtype=np.int64)
        s, d = np.nonzero(T)
        nb = T[s, d]
        log = EventLog()
        phase = log.begin_phase("redistribute:x")
        for q, r, b in zip(s, d, nb):
            log.message(int(q), int(r), int(b), "redistribute:x", phase=phase)
        log.barrier()
        loop = simulate(log, IPSC860, 3, overlap=True)
        fast = replay_split_exchange(s, d, nb, IPSC860, 3)
        assert fast == loop.makespan


class TestSimulatedCostEngineFastPath:
    def _dists(self):
        from repro.core.distribution import dist_type

        R = ProcessorArray("R", (4,))
        return (
            dist_type("BLOCK", ":").apply((32, 32), R),
            dist_type(":", "BLOCK").apply((32, 32), R),
        )

    @pytest.mark.parametrize("overlap", [True, False])
    def test_fast_replay_equals_event_loop_reference(self, overlap):
        from repro.planner import SimulatedCostEngine

        old, new = self._dists()
        fast = SimulatedCostEngine(
            Machine(ProcessorArray("R", (4,)), cost_model=PARAGON),
            overlap=overlap,
        )
        ref = SimulatedCostEngine(
            Machine(ProcessorArray("R", (4,)), cost_model=PARAGON),
            overlap=overlap, fast_replay=False,
        )
        assert fast.transition_cost(old, new) == ref.transition_cost(old, new)

    def test_trace_memo_shares_identical_transfer_matrices(self):
        from repro.planner import SimulatedCostEngine

        old, new = self._dists()
        engine = SimulatedCostEngine(
            Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        )
        engine.transition_cost(old, new)
        assert len(engine._trace_memo) == 1
        # a structurally equal pair built fresh: pair memo misses, the
        # trace memo hits (same transfer matrix content)
        from repro.core.distribution import dist_type

        R = ProcessorArray("R", (4,))
        old2 = dist_type("BLOCK", ":").apply((32, 32), R)
        new2 = dist_type(":", "BLOCK").apply((32, 32), R)
        before = len(engine._trace_memo)
        engine.transition_cost(old2, new2)
        assert len(engine._trace_memo) == before  # no new simulation
