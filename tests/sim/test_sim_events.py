"""Typed events and the network recording seam."""

import pytest

from repro.machine import Machine, PARAGON, ProcessorArray
from repro.sim import Event, EventKind, EventLog, classify_tag, record


class TestEventLog:
    def test_kernel_event(self):
        log = EventLog()
        log.kernel(2, 100.0, "stencil:U")
        (ev,) = log.events
        assert ev.kind is EventKind.KERNEL
        assert ev.rank == 2 and ev.flops == 100.0 and ev.tag == "stencil:U"

    def test_message_pairs_send_recv(self):
        log = EventLog()
        log.message(0, 1, 64, "shift:U:d0")
        send, recv = log.events
        assert send.kind is EventKind.SEND and recv.kind is EventKind.RECV
        assert send.rank == 0 and send.peer == 1
        assert recv.rank == 1 and recv.peer == 0
        assert send.msg == recv.msg
        assert send.phase == -1  # sequential by default

    def test_phase_groups_messages(self):
        log = EventLog()
        pid = log.begin_phase("shift:U:d0")
        log.message(0, 1, 8, "shift:U:d0", phase=pid)
        log.message(1, 0, 8, "shift:U:d0", phase=pid)
        assert all(ev.phase == pid for ev in log.events)
        pid2 = log.begin_phase("shift:U:d1")
        assert pid2 != pid

    def test_collective_markers(self):
        log = EventLog()
        log.begin_phase("redistribute:V")
        assert log.events[-1].kind is EventKind.REDIST
        log.begin_phase("gather:V")
        assert log.events[-1].kind is EventKind.ALLGATHER
        n = len(log)
        log.begin_phase("shift:V:d0")  # p2p: no marker
        assert len(log) == n

    def test_counts_and_messages(self):
        log = EventLog()
        log.kernel(0, 1.0)
        log.message(0, 1, 8)
        log.barrier()
        assert log.counts() == {"kernel": 1, "send": 1, "recv": 1, "barrier": 1}
        assert [ev.rank for ev in log.messages()] == [0]

    def test_clear(self):
        log = EventLog()
        log.message(0, 1, 8)
        log.clear()
        assert len(log) == 0

    def test_event_to_dict_roundtrips_kind(self):
        ev = Event(0, EventKind.SEND, 0, peer=1, nbytes=8)
        d = ev.to_dict()
        assert d["kind"] == "send" and d["peer"] == 1


class TestClassifyTag:
    @pytest.mark.parametrize(
        "tag,expected",
        [
            ("redistribute:V", EventKind.REDIST),
            ("assign", EventKind.REDIST),
            ("pic:reassign", EventKind.REDIST),
            ("gather:V", EventKind.ALLGATHER),
            ("scatter:V", EventKind.ALLGATHER),
            ("reduce", EventKind.ALLGATHER),
            ("shift:U:d0", None),
            ("sweep:gather", None),  # line pieces are point-to-point
            ("", None),
        ],
    )
    def test_classification(self, tag, expected):
        assert classify_tag(tag) is expected


class TestNetworkSeam:
    def test_network_records_all_operation_kinds(self):
        m = Machine(ProcessorArray("P", (3,)), cost_model=PARAGON)
        log = EventLog()
        with record(m, log):
            m.network.send(0, 1, 16, tag="elem:V")
            m.network.exchange(
                [(0, 1, 8, "redistribute:V"), (1, 2, 8, "redistribute:V")]
            )
            m.network.compute(2, 50.0, tag="kernel:V")
            m.network.synchronize()
        kinds = [ev.kind for ev in log]
        assert kinds == [
            EventKind.SEND, EventKind.RECV,           # sequential send
            EventKind.REDIST,                          # phase marker
            EventKind.SEND, EventKind.RECV,
            EventKind.SEND, EventKind.RECV,
            EventKind.KERNEL,
            EventKind.BARRIER,
        ]
        # phase grouping: the two exchange messages share a phase id
        phases = {ev.phase for ev in log if ev.phase >= 0}
        assert len(phases) == 1

    def test_self_messages_not_recorded(self):
        m = Machine(ProcessorArray("P", (2,)))
        log = EventLog()
        with record(m, log):
            m.network.send(1, 1, 64)
            m.network.exchange([(0, 0, 8), (0, 1, 8)])
        assert len(log.messages()) == 1

    def test_record_restores_previous_recorder(self):
        m = Machine(ProcessorArray("P", (2,)))
        assert m.network.recorder is None
        with record(m) as log:
            assert m.network.recorder is log
            m.network.send(0, 1, 8)
        assert m.network.recorder is None
        assert len(log.messages()) == 1

    def test_reset_clears_recorded_events(self):
        m = Machine(ProcessorArray("P", (2,)))
        log = EventLog()
        with record(m, log):
            m.network.send(0, 1, 8)
            m.reset_network()
            m.network.send(1, 0, 8)
        # only the post-reset message survives, clocks stay replayable
        assert len(log.messages()) == 1
        assert log.messages()[0].rank == 1

    def test_engine_record_events_seam(self):
        from repro.core.distribution import dist_type
        from repro.runtime.engine import Engine

        m = Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)
        vfe = Engine(m)
        v = vfe.declare("V", (16,), dist=dist_type("BLOCK"), dynamic=True)
        with vfe.record_events() as log:
            vfe.distribute("V", dist_type("CYCLIC"))
        assert any(ev.kind is EventKind.REDIST for ev in log)
        assert any(ev.kind is EventKind.BARRIER for ev in log)
        del v
