"""Edge cases: windowed imbalance series + critical path on thin timelines."""

import pytest

from repro.sim import Timeline, critical_path
from repro.sim.clock import ProcClock
from repro.sim.trace import to_json, windowed_imbalance


def _timeline(nprocs, build):
    procs = [ProcClock(r) for r in range(nprocs)]
    build(procs)
    return Timeline(
        nprocs=nprocs, cost_model="zero", overlap=False, procs=procs
    )


def test_handcrafted_two_phase_skew():
    # rank 0: busy [0, 2); rank 1: busy [0, 1) then idle — the second
    # half of the makespan is all rank 0
    def build(procs):
        procs[0].occupy(2.0, "compute")
        procs[1].occupy(1.0, "compute")

    tl = _timeline(2, build)
    wins = windowed_imbalance(tl, windows=2)
    assert len(wins) == 2
    assert wins[0]["busy"] == pytest.approx([1.0, 1.0])
    assert wins[0]["imbalance"] == pytest.approx(1.0)
    assert wins[1]["busy"] == pytest.approx([1.0, 0.0])
    assert wins[1]["imbalance"] == pytest.approx(2.0)
    # window edges tile the makespan exactly
    assert wins[0]["start"] == 0.0
    assert wins[-1]["end"] == pytest.approx(tl.makespan)


def test_interval_split_across_window_boundary():
    # one 3s interval over 3 windows: each bin sees exactly its overlap
    def build(procs):
        procs[0].occupy(3.0, "compute")
        procs[1].occupy(1.0, "compute")

    wins = windowed_imbalance(_timeline(2, build), windows=3)
    assert [w["busy"][0] for w in wins] == pytest.approx([1.0, 1.0, 1.0])
    assert [w["busy"][1] for w in wins] == pytest.approx([1.0, 0.0, 0.0])


def test_non_busy_kinds_are_excluded():
    def build(procs):
        procs[0].occupy(1.0, "compute")
        procs[0].occupy(1.0, "wait")  # idle: not busy
        procs[1].occupy(2.0, "comm")  # occupancy: busy

    wins = windowed_imbalance(_timeline(2, build), windows=1)
    assert wins[0]["busy"] == pytest.approx([1.0, 2.0])


def test_single_proc_is_always_balanced():
    def build(procs):
        procs[0].occupy(1.0, "compute")
        procs[0].occupy(2.0, "comm")

    tl = _timeline(1, build)
    wins = windowed_imbalance(tl, windows=4)
    assert all(w["imbalance"] == pytest.approx(1.0) for w in wins)
    assert tl.imbalance() == pytest.approx(1.0)


def test_empty_timeline_yields_unit_imbalance_windows():
    tl = _timeline(2, lambda procs: None)
    assert tl.makespan == 0.0
    assert tl.imbalance() == 1.0  # the zero-load convention
    wins = windowed_imbalance(tl, windows=3)
    assert len(wins) == 3
    for w in wins:
        assert w["busy"] == [0.0, 0.0]
        assert w["imbalance"] == 1.0
        assert w["start"] == w["end"] == 0.0


def test_zero_duration_intervals_contribute_nothing():
    def build(procs):
        procs[0].occupy(0.0, "compute")  # degenerate
        procs[0].occupy(1.0, "compute")
        procs[1].occupy(0.0, "compute")
        procs[1].occupy(1.0, "compute")

    wins = windowed_imbalance(_timeline(2, build), windows=2)
    assert wins[0]["busy"] == pytest.approx([0.5, 0.5])
    assert wins[-1]["imbalance"] == pytest.approx(1.0)


def test_windows_below_one_raise():
    tl = _timeline(1, lambda procs: procs[0].occupy(1.0, "compute"))
    with pytest.raises(ValueError):
        windowed_imbalance(tl, windows=0)
    with pytest.raises(ValueError):
        windowed_imbalance(tl, windows=-3)


def test_trace_json_exposes_the_series():
    def build(procs):
        procs[0].occupy(2.0, "compute")
        procs[1].occupy(1.0, "compute")

    doc = to_json(_timeline(2, build), intervals=False)
    series = doc["windowed_imbalance"]
    assert len(series) == 8  # the default window count
    assert series[-1]["imbalance"] > 1.0
    assert set(series[0]) == {"window", "start", "end", "busy", "imbalance"}


def test_critical_path_on_empty_timeline():
    cp = critical_path(_timeline(2, lambda procs: None))
    assert len(cp) == 0
    assert cp.makespan == 0.0
    assert cp.breakdown() == {}
    assert cp.to_dict()["steps"] == []
    assert "0 intervals" in cp.summary()


def test_critical_path_single_proc_chains_whole_history():
    def build(procs):
        procs[0].occupy(1.0, "compute")
        procs[0].occupy(0.5, "comm")

    cp = critical_path(_timeline(1, build))
    assert cp.ranks() == [0, 0]
    assert cp.breakdown() == pytest.approx({"compute": 1.0, "comm": 0.5})


def test_critical_path_with_zero_duration_interval():
    def build(procs):
        procs[0].occupy(1.0, "compute")
        procs[0].occupy(0.0, "comm")  # degenerate tail interval

    cp = critical_path(_timeline(1, build))
    assert len(cp) == 2
    assert cp.makespan == pytest.approx(1.0)
    assert cp.breakdown()["comm"] == 0.0


def test_critical_path_follows_cross_proc_pred_links():
    # rank 1 waits on rank 0's send: the path must hop processors
    def build(procs):
        send = procs[0].occupy(2.0, "comm", tag="send")
        procs[1].occupy(0.5, "compute")
        procs[1].advance_to(2.0, tag="blocked", pred=send)
        procs[1].occupy(1.0, "compute")

    cp = critical_path(_timeline(2, build))
    assert cp.ranks()[0] == 0  # the chain starts at the blocking send
    assert cp.ranks()[-1] == 1
    assert cp.makespan == pytest.approx(3.0)
