"""Satellite guarantee: ``drift=0`` is the historical code path, bitwise.

The drifting-load knobs exist so the adaptive controller has something
to chase; they must not perturb the established workloads when off.
"""

import numpy as np
import pytest

nx = pytest.importorskip("networkx")

from repro.api import session
from repro.apps.irregular import (
    drifting_weights,
    make_mesh,
    run_relaxation,
)
from repro.machine import Machine, PARAGON, ProcessorArray


def _machine(nprocs=4):
    return Machine(ProcessorArray("P", (nprocs,)), cost_model=PARAGON)


def test_irregular_drift_zero_is_bitwise_historical():
    graph = make_mesh(48, seed=3)
    baseline = run_relaxation(_machine(), graph, sweeps=6, seed=3)
    explicit = run_relaxation(_machine(), graph, sweeps=6, seed=3, drift=0.0)
    assert np.array_equal(baseline.solution, explicit.solution)
    assert baseline.messages == explicit.messages
    assert baseline.time == explicit.time
    assert baseline.cut_edges == explicit.cut_edges


def test_irregular_drift_changes_timing_not_values():
    graph = make_mesh(48, seed=3)
    still = run_relaxation(_machine(), graph, sweeps=6, seed=3)
    moving = run_relaxation(_machine(), graph, sweeps=6, seed=3, drift=0.05)
    # the hot spot is a cost-model effect: arithmetic is untouched
    assert np.array_equal(still.solution, moving.solution)
    assert moving.time != still.time


def test_irregular_registry_path_honors_drift_parity():
    with session(nprocs=4, cost_model="Paragon") as sess:
        default = sess.workload("irregular", size=32, steps=5).run()
        explicit = sess.workload(
            "irregular", size=32, steps=5, drift=0.0
        ).run()
        drifting = sess.workload(
            "irregular", size=32, steps=5, drift=0.05
        ).run()
    assert np.array_equal(default.solution, explicit.solution)
    assert default.headline == explicit.headline
    assert np.array_equal(default.solution, drifting.solution)
    assert (
        drifting.headline["modeled_time_ms"]
        != default.headline["modeled_time_ms"]
    )


def test_drifting_weights_contract():
    flat = drifting_weights(64, sweep=7, drift=0.0)
    assert np.array_equal(flat, np.ones(64))
    w0 = drifting_weights(64, sweep=0, drift=0.01)
    w5 = drifting_weights(64, sweep=5, drift=0.01)
    assert w0.shape == (64,)
    assert (w0 >= 1.0).all()  # baseline load plus the hot spot
    assert not np.array_equal(w0, w5)  # the spot moved
    # deterministic: same sweep, same weights
    assert np.array_equal(w0, drifting_weights(64, sweep=0, drift=0.01))


def test_pic_registry_drift_default_is_historical():
    with session(nprocs=4, cost_model="Paragon") as sess:
        default = sess.workload("pic", size=32, steps=6).run()
        explicit = sess.workload(
            "pic", size=32, steps=6, drift=0.004
        ).run()  # the PICConfig default, passed explicitly
        faster = sess.workload("pic", size=32, steps=6, drift=0.02).run()
    assert np.array_equal(default.solution, explicit.solution)
    assert default.headline == explicit.headline
    assert not np.array_equal(default.solution, faster.solution)
