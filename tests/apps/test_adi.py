"""Tests for the ADI workload (Figure 1) — the E2 reproduction core."""

import numpy as np
import pytest

from repro.apps.adi import adi_reference, run_adi
from repro.machine import Machine, PARAGON, ProcessorArray


def machine(procs=4):
    return Machine(ProcessorArray("R", (procs,)), cost_model=PARAGON)


class TestCorrectness:
    @pytest.mark.parametrize(
        "strategy", ["dynamic", "static_cols", "static_rows", "two_arrays"]
    )
    def test_matches_sequential_reference(self, strategy):
        grid = np.random.default_rng(0).standard_normal((16, 16))
        ref = adi_reference(grid, 2, -1.0, 4.0)
        r = run_adi(machine(), 16, 16, 2, strategy, grid=grid.copy())
        assert np.allclose(r.solution, ref)

    def test_rectangular_grid(self):
        grid = np.random.default_rng(1).standard_normal((12, 20))
        ref = adi_reference(grid, 1, -1.0, 4.0)
        r = run_adi(machine(), 12, 20, 1, "dynamic", grid=grid.copy())
        assert np.allclose(r.solution, ref)

    def test_strategies_agree_with_each_other(self):
        results = [
            run_adi(machine(), 16, 16, 3, s, seed=7).solution
            for s in ("dynamic", "static_cols", "static_rows", "two_arrays")
        ]
        for r in results[1:]:
            assert np.allclose(results[0], r)


class TestFigure1Claims:
    def test_dynamic_sweeps_are_communication_free(self):
        """'all the communication is confined to the redistribution'."""
        r = run_adi(machine(), 32, 32, 2, "dynamic", seed=0)
        assert r.x_sweep.messages == 0
        assert r.y_sweep.messages == 0
        assert r.redistribution.messages > 0

    def test_static_pays_in_one_sweep_direction(self):
        r = run_adi(machine(), 32, 32, 1, "static_cols", seed=0)
        assert r.x_sweep.messages == 0     # columns are local
        assert r.y_sweep.messages > 0      # rows cross processors
        assert r.redistribution.messages == 0

    def test_static_rows_is_the_mirror_image(self):
        rc = run_adi(machine(), 32, 32, 1, "static_cols", seed=0)
        rr = run_adi(machine(), 32, 32, 1, "static_rows", seed=0)
        assert rr.x_sweep.messages == rc.y_sweep.messages
        assert rr.y_sweep.messages == rc.x_sweep.messages

    def test_dynamic_beats_static_in_modeled_time(self):
        """The whole point: redistribution wins despite its cost."""
        rd = run_adi(machine(), 64, 64, 2, "dynamic", seed=0)
        rs = run_adi(machine(), 64, 64, 2, "static_cols", seed=0)
        assert rd.total_time < rs.total_time

    def test_dynamic_moves_fewer_bytes_than_static_sweeps(self):
        rd = run_adi(machine(), 64, 64, 2, "dynamic", seed=0)
        rs = run_adi(machine(), 64, 64, 2, "static_cols", seed=0)
        dyn_bytes = rd.redistribution.bytes
        static_bytes = rs.y_sweep.bytes
        assert dyn_bytes < static_bytes

    def test_two_arrays_wastes_storage(self):
        """'this approach, clearly, wastes storage space'."""
        r1 = run_adi(machine(), 32, 32, 1, "dynamic", seed=0)
        r2 = run_adi(machine(), 32, 32, 1, "two_arrays", seed=0)
        assert r2.peak_memory >= 2 * r1.peak_memory

    def test_two_arrays_same_traffic_shape_as_dynamic(self):
        r1 = run_adi(machine(), 32, 32, 1, "dynamic", seed=0)
        r2 = run_adi(machine(), 32, 32, 1, "two_arrays", seed=0)
        assert r2.sweep_messages == 0
        # two_arrays copies twice per iteration (there and back), the
        # dynamic first iteration redistributes once
        assert r2.redistribution.messages == 2 * r1.redistribution.messages


class TestResultRecord:
    def test_row_fields(self):
        r = run_adi(machine(), 16, 16, 1, "dynamic", seed=0)
        row = r.row()
        assert row["strategy"] == "dynamic"
        assert row["procs"] == 4
        assert row["msgs_sweep"] == 0

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            run_adi(machine(), 8, 8, 1, "magic")

    def test_grid_shape_validated(self):
        with pytest.raises(ValueError):
            run_adi(machine(), 8, 8, 1, "dynamic", grid=np.zeros((4, 4)))
