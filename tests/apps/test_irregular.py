"""Tests for the unstructured-mesh workload (PARTI scenario)."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.irregular import (
    edge_cut,
    make_mesh,
    partition_bfs,
    relaxation_reference,
    run_relaxation,
)
from repro.machine import IPSC860, Machine, ProcessorArray


def machine(p=4):
    return Machine(ProcessorArray("P", (p,)), cost_model=IPSC860)


class TestMakeMesh:
    def test_connected(self):
        g = make_mesh(150, seed=2)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 150

    def test_ring_variant(self):
        g = make_mesh(60, seed=1, kind="ring")
        assert nx.is_connected(g)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_mesh(10, kind="donut")

    def test_deterministic(self):
        g1 = make_mesh(80, seed=3)
        g2 = make_mesh(80, seed=3)
        assert set(g1.edges) == set(g2.edges)


class TestPartitionBFS:
    def test_every_node_assigned(self):
        g = make_mesh(120, seed=0)
        owner = partition_bfs(g, 4)
        assert (owner >= 0).all() and (owner < 4).all()

    def test_balanced(self):
        g = make_mesh(120, seed=0)
        owner = partition_bfs(g, 4)
        counts = np.bincount(owner, minlength=4)
        assert counts.max() <= -(-120 // 4) + 2

    def test_beats_block_order_on_geometric_mesh(self):
        """The whole point: a partition-aware owner table cuts fewer
        edges than distributing node ids blockwise."""
        from repro.core.dimdist import Block

        g = make_mesh(300, seed=4)
        n = g.number_of_nodes()
        owner_part = partition_bfs(g, 4, seed=4)
        owner_block = Block().owners_vec(n, 4)
        assert edge_cut(g, owner_part) < edge_cut(g, np.asarray(owner_block))

    def test_validation(self):
        g = make_mesh(10, seed=0)
        with pytest.raises(ValueError):
            partition_bfs(g, 0)
        with pytest.raises(ValueError):
            partition_bfs(g, 11)

    def test_single_part(self):
        g = make_mesh(30, seed=0)
        owner = partition_bfs(g, 1)
        assert (owner == 0).all()
        assert edge_cut(g, owner) == 0


class TestRunRelaxation:
    @pytest.mark.parametrize("distribution", ["block", "partitioned"])
    def test_matches_sequential(self, distribution):
        g = make_mesh(150, seed=1)
        vals = np.random.default_rng(0).standard_normal(150)
        ref = relaxation_reference(g, vals, 3)
        r = run_relaxation(machine(), g, distribution, sweeps=3, seed=0)
        assert np.allclose(r.solution, ref)

    def test_partitioned_less_traffic(self):
        g = make_mesh(250, seed=2)
        rb = run_relaxation(machine(), g, "block", sweeps=2, seed=0)
        rp = run_relaxation(machine(), g, "partitioned", sweeps=2, seed=0)
        assert rp.cut_edges < rb.cut_edges
        assert rp.bytes < rb.bytes
        assert np.allclose(rp.solution, rb.solution)

    def test_traffic_proportional_to_cut(self):
        """Per sweep, gathered off-processor elements ~ directed cut."""
        g = make_mesh(200, seed=3)
        r = run_relaxation(machine(), g, "partitioned", sweeps=1, seed=0)
        # every cut edge is gathered from both sides once per sweep
        assert r.bytes == 2 * r.cut_edges * 8

    def test_messages_aggregated(self):
        g = make_mesh(200, seed=3)
        r = run_relaxation(machine(), g, "partitioned", sweeps=1, seed=0)
        p = 4
        assert r.messages <= p * (p - 1)

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            run_relaxation(machine(), make_mesh(20), "scattered")
