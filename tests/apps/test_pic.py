"""Tests for the PIC workload (Figure 2) — the E3 reproduction core."""

import numpy as np
import pytest

from repro.apps.pic import PICConfig, initpos, run_pic
from repro.machine import Machine, PARAGON, ProcessorArray


def machine(p=4):
    return Machine(ProcessorArray("R", (p,)), cost_model=PARAGON)


def small_config(**kw):
    defaults = dict(ncell=64, npart=1500, max_time=25, nprocs=4, seed=3)
    defaults.update(kw)
    return PICConfig(**defaults)


class TestInitpos:
    def test_positions_in_domain(self):
        cfg = small_config()
        pos = initpos(cfg, np.random.default_rng(0))
        assert (pos >= 0).all() and (pos < 1).all()
        assert len(pos) == cfg.npart

    def test_clustered(self):
        cfg = small_config()
        pos = initpos(cfg, np.random.default_rng(0))
        # most particles near x=0.2
        assert np.median(np.abs(pos - 0.2)) < 3 * cfg.cluster_width


class TestRunPic:
    def test_step_records_complete(self):
        r = run_pic(machine(), small_config())
        assert len(r.steps) == 25
        assert all(s.imbalance >= 1.0 for s in r.steps)

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            run_pic(machine(), small_config(strategy="magic"))

    def test_proc_count_validation(self):
        with pytest.raises(ValueError):
            run_pic(machine(8), small_config(nprocs=4))

    def test_static_never_redistributes(self):
        r = run_pic(machine(), small_config(strategy="static"))
        assert r.redistributions == 0
        assert all(not s.redistributed for s in r.steps)

    def test_bblock_initial_balance_good(self):
        """balance() + B_BLOCK makes the first step nearly balanced."""
        r = run_pic(machine(), small_config(strategy="bblock"))
        assert r.steps[0].imbalance < 1.3

    def test_static_starts_imbalanced(self):
        """The clustered initpos makes uniform BLOCK badly imbalanced."""
        r = run_pic(machine(), small_config(strategy="static"))
        assert r.steps[0].imbalance > 1.8

    def test_figure2_claim_rebalancing_wins(self):
        """B_BLOCK + periodic rebalance maintains lower imbalance than
        static BLOCK as particles drift (the paper's §4 motivation)."""
        cfg_b = small_config(strategy="bblock", max_time=40)
        cfg_s = small_config(strategy="static", max_time=40)
        r_b = run_pic(machine(), cfg_b)
        r_s = run_pic(machine(), cfg_s)
        assert r_b.mean_imbalance < r_s.mean_imbalance
        assert r_b.max_imbalance < r_s.max_imbalance

    def test_rebalance_only_on_schedule(self):
        """Figure 2 rebalances only every 10th step."""
        cfg = small_config(strategy="bblock", rebalance_every=10, max_time=30)
        r = run_pic(machine(), cfg)
        for s in r.steps:
            if s.redistributed:
                assert s.step % 10 == 0

    def test_rebalance_threshold_respected(self):
        """With an infinite threshold, rebalance() never fires."""
        cfg = small_config(
            strategy="bblock", imbalance_threshold=float("inf"), max_time=30
        )
        r = run_pic(machine(), cfg)
        assert r.redistributions == 0

    def test_rebalancing_reduces_imbalance_at_that_step(self):
        cfg = small_config(strategy="bblock", max_time=40, drift=0.008)
        r = run_pic(machine(), cfg)
        rebal_steps = [s for s in r.steps if s.redistributed]
        if rebal_steps:  # drift strong enough to trigger at least one
            for s in rebal_steps:
                assert s.imbalance < cfg.imbalance_threshold * 1.5

    def test_motion_messages_accounted(self):
        r = run_pic(machine(), small_config(max_time=30, drift=0.01))
        assert any(s.motion_messages > 0 for s in r.steps)
        assert all(
            s.motion_bytes % 32 == 0 for s in r.steps
        )  # particle payloads

    def test_deterministic_given_seed(self):
        r1 = run_pic(machine(), small_config())
        r2 = run_pic(machine(), small_config())
        assert [s.imbalance for s in r1.steps] == [
            s.imbalance for s in r2.steps
        ]

    def test_time_monotone(self):
        r = run_pic(machine(), small_config())
        times = [s.time for s in r.steps]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_redistribution_bytes_recorded(self):
        cfg = small_config(strategy="bblock", max_time=40, drift=0.01)
        r = run_pic(machine(), cfg)
        if r.redistributions:
            assert r.redistribution_bytes_total > 0
