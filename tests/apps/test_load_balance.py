"""Tests for the balance routine (Figure 2's load balancer)."""

import numpy as np
import pytest

from repro.apps.load_balance import (
    balance_greedy,
    balance_optimal,
    block_loads,
    imbalance,
)


class TestBalanceGreedy:
    def test_uniform_weights_even_split(self):
        sizes = balance_greedy(np.ones(16), 4)
        assert sizes == [4, 4, 4, 4]

    def test_sizes_sum_to_cells(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(4, 100))
            p = int(rng.integers(1, 8))
            w = rng.uniform(0, 10, n)
            sizes = balance_greedy(w, p)
            assert sum(sizes) == n
            assert len(sizes) == p

    def test_every_block_nonempty_when_enough_cells(self):
        rng = np.random.default_rng(1)
        w = rng.uniform(0, 1, 40)
        sizes = balance_greedy(w, 8)
        assert all(s >= 1 for s in sizes)

    def test_skewed_weights_shrink_hot_blocks(self):
        w = np.ones(16)
        w[:4] = 100.0  # hot region at the left
        sizes = balance_greedy(w, 4)
        # the hot cells get split across processors: first block small
        assert sizes[0] < 4
        assert imbalance(w, sizes) < imbalance(w, [4, 4, 4, 4])

    def test_cluster_balanced_better_than_block(self):
        """The PIC scenario: a particle cluster in few cells."""
        cells = np.zeros(64)
        cells[10:16] = 500  # clustered particles
        cells += 1
        greedy = balance_greedy(cells, 4)
        uniform = [16] * 4
        assert imbalance(cells, greedy) < imbalance(cells, uniform)

    def test_more_procs_than_cells(self):
        sizes = balance_greedy(np.ones(3), 5)
        assert sizes == [1, 1, 1, 0, 0]

    def test_zero_weights_ok(self):
        sizes = balance_greedy(np.zeros(8), 4)
        assert sum(sizes) == 8

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            balance_greedy(np.array([1.0, -1.0]), 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            balance_greedy(np.array([]), 2)
        with pytest.raises(ValueError):
            balance_greedy(np.ones(4), 0)
        with pytest.raises(ValueError):
            balance_greedy(np.ones((2, 2)), 2)


class TestBalanceOptimal:
    def test_never_worse_than_greedy(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            w = rng.uniform(0, 10, 50)
            p = 4
            g = balance_greedy(w, p)
            o = balance_optimal(w, p)
            assert sum(o) == 50
            assert block_loads(w, o).max() <= block_loads(w, g).max() + 1e-9

    def test_exact_on_known_case(self):
        w = np.array([10.0, 1.0, 1.0, 1.0, 1.0, 10.0])
        o = balance_optimal(w, 2)
        # optimal bottleneck is 13 ([10,1,1,1] | [1,10]) or symmetric
        assert block_loads(w, o).max() <= 13.0 + 1e-9

    def test_uniform(self):
        o = balance_optimal(np.ones(12), 3)
        assert block_loads(np.ones(12), o).max() == 4


class TestHelpers:
    def test_block_loads(self):
        w = np.arange(6, dtype=float)
        assert list(block_loads(w, [2, 4])) == [1.0, 14.0]

    def test_block_loads_size_mismatch(self):
        with pytest.raises(ValueError):
            block_loads(np.ones(5), [2, 2])

    def test_imbalance_perfect(self):
        assert imbalance(np.ones(8), [4, 4]) == 1.0

    def test_imbalance_worst(self):
        w = np.zeros(8)
        w[0] = 8.0
        assert imbalance(w, [4, 4]) == 2.0

    def test_imbalance_zero_weights(self):
        assert imbalance(np.zeros(4), [2, 2]) == 1.0
