"""Tests for the smoothing workload (§4) — the E1 reproduction core."""

import numpy as np
import pytest

from repro.apps.smoothing import (
    best_distribution,
    predicted_step_cost,
    run_smoothing,
    smoothing_reference,
)
from repro.machine.cost_model import IPSC860, MODERN_CLUSTER, CostModel


class TestCorrectness:
    @pytest.mark.parametrize("distribution", ["columns", "blocks2d"])
    def test_matches_sequential(self, distribution):
        g = np.random.default_rng(0).standard_normal((32, 32))
        ref = smoothing_reference(g, 4)
        r = run_smoothing(32, 4, distribution, 4, IPSC860, grid=g.copy())
        assert np.allclose(r.solution, ref)

    def test_distributions_agree(self):
        r1 = run_smoothing(32, 3, "columns", 4, IPSC860, seed=5)
        r2 = run_smoothing(32, 3, "blocks2d", 4, IPSC860, seed=5)
        assert np.allclose(r1.solution, r2.solution)


class TestPaperMessageCounts:
    def test_columns_interior_two_messages_per_proc(self):
        """'2 messages per processor, each of size N, per step'."""
        r = run_smoothing(32, 1, "columns", 4, IPSC860, seed=0)
        # 3 interior boundaries x 2 directions = 6 total messages;
        # interior processors send/receive 2 each
        assert r.messages == 6
        # message size = N elements
        assert r.bytes == 6 * 32 * 8

    def test_blocks2d_four_messages_per_interior_proc(self):
        """'4 messages of size N/p each' (2 per distributed dim here
        on a 2x2 grid where every processor has 1 neighbour per dim)."""
        r = run_smoothing(32, 1, "blocks2d", 4, IPSC860, seed=0)
        # 2x2 grid: 4 boundaries total (2 per dim) x 2 directions = 8
        assert r.messages == 8
        assert r.bytes == 8 * 16 * 8  # N/p = 16 elements per message

    def test_larger_grid_3x3(self):
        r = run_smoothing(36, 1, "blocks2d", 9, IPSC860, seed=0)
        # 3x3: per dim 6 boundaries x 2 dirs = 12, two dims -> 24
        assert r.messages == 24

    def test_blocks_needs_square_proc_count(self):
        with pytest.raises(ValueError):
            run_smoothing(16, 1, "blocks2d", 6, IPSC860)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            run_smoothing(16, 1, "rows", 4, IPSC860)


class TestPredictedCost:
    def test_columns_formula(self):
        c = predicted_step_cost(64, 4, "columns", IPSC860)
        assert c == pytest.approx(2 * IPSC860.message_time(64 * 8))

    def test_blocks_formula(self):
        c = predicted_step_cost(64, 4, "blocks2d", IPSC860)
        assert c == pytest.approx(4 * IPSC860.message_time(32 * 8))

    def test_crossover_in_n(self):
        """§4: the ratio N/p determines the most appropriate
        distribution — small N favours columns (fewer startups), large
        N favours 2-D blocks (less volume)."""
        model = CostModel(alpha=1e-4, beta=1e-6, flop_rate=1e6)
        p = 16
        small = best_distribution(8, p, model)
        large = best_distribution(4096, p, model)
        assert small == "columns"
        assert large == "blocks2d"

    def test_crossover_point_formula(self):
        # cost_col = 2(a + bN8) ; cost_blk = 4(a + bN8/sqrt(p))
        # crossover N* = a / (b*8*(1 - 2/sqrt(p)))  [cols cheaper below]
        model = CostModel(alpha=1e-4, beta=1e-6, flop_rate=1e6)
        p = 16
        n_star = model.alpha / (model.beta * 8 * (1 - 2 / 4))
        below = int(n_star * 0.8)
        above = int(n_star * 1.25)
        assert best_distribution(below, p, model) == "columns"
        assert best_distribution(above, p, model) == "blocks2d"

    def test_machine_balance_shifts_the_crossover(self):
        """The crossover N* = alpha/(beta*w*(1 - 2/sqrt(p))) grows with
        the machine's alpha/beta ratio: the latency-dominated modern
        cluster (n_1/2 = 20 kB) sticks with columns far longer than the
        bandwidth-starved iPSC/860 (n_1/2 = 210 B)."""
        n = 64
        p = 16
        assert best_distribution(n, p, IPSC860) == "blocks2d"
        assert best_distribution(n, p, MODERN_CLUSTER) == "columns"
        # very large grids favour blocks everywhere
        assert best_distribution(40000, p, MODERN_CLUSTER) == "blocks2d"

    def test_nonsquare_p_falls_back_to_columns(self):
        assert best_distribution(64, 6, IPSC860) == "columns"


class TestMeasuredMatchesPredictedShape:
    def test_winner_agrees_with_model(self):
        """Measured per-step times must pick the same winner as the
        closed-form model (on machines where the margin is clear)."""
        n, p = 256, 16
        for model in (IPSC860, MODERN_CLUSTER):
            pred_col = predicted_step_cost(n, p, "columns", model)
            pred_blk = predicted_step_cost(n, p, "blocks2d", model)
            r_col = run_smoothing(n, 2, "columns", p, model, seed=1)
            r_blk = run_smoothing(n, 2, "blocks2d", p, model, seed=1)
            if pred_col < pred_blk:
                assert r_col.time <= r_blk.time * 1.5
            else:
                assert r_blk.time <= r_col.time * 1.5
