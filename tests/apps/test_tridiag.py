"""Tests for the Thomas solvers (TRIDIAG of Figure 1)."""

import numpy as np
import pytest

from repro.apps.tridiag import thomas, thomas_const, tridiag_matvec


class TestThomasConst:
    def test_solves_system(self):
        rng = np.random.default_rng(0)
        rhs = rng.standard_normal(50)
        x = thomas_const(rhs, a=-1.0, b=4.0)
        assert np.allclose(tridiag_matvec(x, -1.0, 4.0), rhs)

    def test_identity_system(self):
        rhs = np.array([1.0, 2.0, 3.0])
        assert np.allclose(thomas_const(rhs, a=0.0, b=1.0), rhs)

    def test_scalar_system(self):
        assert np.allclose(thomas_const(np.array([6.0]), a=-1.0, b=2.0), [3.0])

    def test_empty(self):
        assert len(thomas_const(np.array([]), a=-1.0, b=4.0)) == 0

    def test_zero_diagonal_rejected(self):
        with pytest.raises(ZeroDivisionError):
            thomas_const(np.ones(4), a=1.0, b=0.0)

    def test_input_not_modified(self):
        rhs = np.ones(10)
        thomas_const(rhs, a=-1.0, b=4.0)
        assert (rhs == 1.0).all()

    def test_diagonal_dominance_stability(self):
        # large system stays accurate when diagonally dominant
        rng = np.random.default_rng(1)
        rhs = rng.standard_normal(2000)
        x = thomas_const(rhs, a=-1.0, b=2.5)
        assert np.allclose(tridiag_matvec(x, -1.0, 2.5), rhs, atol=1e-10)


class TestThomasGeneral:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(2)
        n = 30
        lower = rng.uniform(-1, 0, n - 1)
        upper = rng.uniform(-1, 0, n - 1)
        diag = 4.0 + rng.uniform(0, 1, n)
        rhs = rng.standard_normal(n)
        x = thomas(lower, diag, upper, rhs)
        A = np.diag(diag) + np.diag(lower, -1) + np.diag(upper, 1)
        assert np.allclose(A @ x, rhs)

    def test_agrees_with_const_variant(self):
        rhs = np.random.default_rng(3).standard_normal(20)
        x1 = thomas_const(rhs, a=-1.0, b=4.0)
        x2 = thomas(
            np.full(19, -1.0), np.full(20, 4.0), np.full(19, -1.0), rhs
        )
        assert np.allclose(x1, x2)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            thomas(np.ones(3), np.ones(3), np.ones(2), np.ones(3))

    def test_zero_pivot_detected(self):
        with pytest.raises(ZeroDivisionError):
            thomas(np.array([1.0]), np.array([1.0, 1.0]), np.array([1.0]),
                   np.array([1.0, 1.0]))


class TestMatvec:
    def test_tridiagonal_structure(self):
        x = np.array([1.0, 0.0, 0.0, 0.0])
        y = tridiag_matvec(x, a=2.0, b=3.0)
        assert list(y) == [3.0, 2.0, 0.0, 0.0]
