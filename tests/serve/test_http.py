"""The asyncio HTTP front end: real sockets, byte-identical round trips."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import PlanningService, ServerThread


@pytest.fixture(scope="module")
def server():
    thread = ServerThread(PlanningService()).start()
    yield thread
    thread.stop()


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def _post(url: str, payload: dict):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers or {}), exc.read()


def test_healthz_over_http(server):
    status, headers, body = _get(f"{server.url}/healthz")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert json.loads(body)["ok"] is True


def test_http_matches_in_process_dispatch_bytewise(server):
    target = "/run?workload=adi&size=16&iterations=1&seed=3"
    status, _, body = _get(f"{server.url}{target}")
    assert status == 200
    inproc = server.service.dispatch("GET", target)
    assert body.decode() == inproc.body


def test_get_and_post_byte_identical_over_http(server):
    payload = {"workload": "smoothing", "size": 16, "steps": 2, "seed": 9,
               "compact": True}
    query = "&".join(f"{k}={json.dumps(v)}" for k, v in payload.items())
    s1, h1, b1 = _get(f"{server.url}/trace?{query}")
    s2, h2, b2 = _post(f"{server.url}/trace", payload)
    assert s1 == s2 == 200
    assert b1 == b2
    assert {h1["X-Repro-Cache"], h2["X-Repro-Cache"]} <= {"hit", "miss"}


def test_http_error_statuses(server):
    status, _, body = _get(f"{server.url}/nope")
    assert status == 404
    status, _, body = _get(f"{server.url}/run?workload=adi&sizzle=1")
    assert status == 400
    assert "sizzle" in json.loads(body)["error"]


def test_cache_header_rides_the_wire(server):
    target = f"{server.url}/plan?workload=pic&size=16&seed=42"
    _, first, _ = _get(target)
    _, second, _ = _get(target)
    assert first["X-Repro-Cache"] in ("miss", "hit")
    assert second["X-Repro-Cache"] == "hit"
    assert first["X-Repro-Fingerprint"] == second["X-Repro-Fingerprint"]


def test_keep_alive_connection_serves_many_requests(server):
    # urllib opens a new connection per request; talk HTTP/1.1 by hand
    # to prove one connection survives a request sequence
    import socket

    with socket.create_connection(("127.0.0.1", server.port), timeout=30) as sock:
        fh = sock.makefile("rb")
        for _ in range(3):
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n"
                b"Host: localhost\r\nContent-Length: 0\r\n\r\n"
            )
            status_line = fh.readline()
            assert b"200" in status_line
            length = None
            while True:
                line = fh.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":")[1])
            assert length is not None
            body = fh.read(length)
            assert json.loads(body)["ok"] is True


def test_server_thread_context_manager():
    with ServerThread(PlanningService()) as url:
        status, _, _ = _get(f"{url}/healthz")
        assert status == 200
