"""The serving tier's degradation ladder (ISSUE 9).

Retry → circuit breaker → 503 + Retry-After, pool eviction of
poisoned sessions, per-request deadlines, injected request faults at
the HTTP front end, and the chaos load test end to end.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.backend import BackendError
from repro.faults import FaultPlan, RequestFault, deactivate, injected
from repro.faults.breaker import CLOSED, OPEN
from repro.obs import compare_chaos_reports, flight_recorder
from repro.serve import PlanningService, run_loadtest
from repro.serve.http import ServerThread
from repro.serve.loadtest import CHAOS_SCHEMA
from repro.serve.service import ServeResponse

from repro.api.config import SessionConfig
from repro.serve.pool import SessionPool


@pytest.fixture(autouse=True)
def _clean_activation():
    deactivate()
    yield
    deactivate()


def _get(url, timeout=30.0):
    req = urllib.request.Request(url, method="GET")
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read()


class TestDegradationLadder:
    def test_recoverable_fault_becomes_503_with_incident(self):
        svc = PlanningService(
            breaker_threshold=2, get_retries=0, observability=False
        )
        with svc:
            svc._stage = _always_broken
            r = svc.dispatch("GET", "/run?workload=adi&size=12")
        assert r.status == 503
        assert "backend unavailable" in r.json["error"]
        assert int(r.headers["Retry-After"]) >= 1
        assert r.headers["X-Repro-Incident-Id"]

    def test_breaker_opens_then_sheds_then_recovers(self):
        svc = PlanningService(
            breaker_threshold=1, breaker_cooldown=0.05,
            get_retries=0, observability=False,
        )
        with svc:
            svc._stage = _always_broken
            first = svc.dispatch("GET", "/run?workload=adi&size=12")
            assert first.status == 503
            assert svc.breaker_stats()["/run"]["state"] == OPEN
            # while open: shed without touching the stage at all
            svc._stage = _must_not_be_called
            shed = svc.dispatch("GET", "/run?workload=adi&size=12")
            assert shed.status == 503
            assert "circuit open" in shed.json["error"]
            assert shed.headers["X-Repro-Incident-Id"]
            # after the cooldown the half-open probe heals the route
            time.sleep(0.06)
            svc._stage = lambda endpoint, params: ServeResponse(200, "{}")
            probe = svc.dispatch("GET", "/run?workload=adi&size=12")
            assert probe.status == 200
            assert svc.breaker_stats()["/run"]["state"] == CLOSED

    def test_idempotent_get_retries_then_succeeds(self):
        svc = PlanningService(
            get_retries=2, retry_backoff=0.001, observability=False
        )
        with svc:
            calls = []

            def flaky(endpoint, params):
                calls.append(endpoint)
                if len(calls) == 1:
                    raise BackendError("fleet died mid-run", retryable=True)
                return ServeResponse(200, "{}")

            svc._stage = flaky
            retries_before = len(flight_recorder.notes("serve.retry"))
            r = svc.dispatch("GET", "/run?workload=adi&size=12")
        assert r.status == 200
        assert len(calls) == 2
        assert len(flight_recorder.notes("serve.retry")) == retries_before + 1

    def test_post_is_never_retried(self):
        svc = PlanningService(
            breaker_threshold=5, get_retries=2, retry_backoff=0.001,
            observability=False,
        )
        with svc:
            calls = []

            def flaky(endpoint, params):
                calls.append(endpoint)
                raise BackendError("fleet died mid-run", retryable=True)

            svc._stage = flaky
            r = svc.dispatch(
                "POST", "/run", json.dumps({"workload": "adi", "size": 12})
            )
        assert r.status == 503
        assert len(calls) == 1  # non-idempotent: one attempt only

    def test_client_errors_do_not_feed_the_breaker(self):
        svc = PlanningService(breaker_threshold=1, observability=False)
        with svc:
            r = svc.dispatch("GET", "/run?workload=no_such_workload")
            assert r.status == 404
            r2 = svc.dispatch("GET", "/run")  # missing workload param
            assert r2.status == 400
            assert svc.breaker_stats()["/run"]["failures"] == 0
            assert svc.breaker_stats()["/run"]["state"] == CLOSED


class TestPoolEviction:
    def test_poisoned_session_is_evicted_not_restacked(self):
        pool = SessionPool(max_idle=4)
        with pool:
            config = SessionConfig(nprocs=4)
            sess = pool.acquire(config)
            sess.mark_poisoned("fleet died under test")
            evicted_before = len(flight_recorder.notes("pool.evicted"))
            pool.release(sess)
            stats = pool.stats()
            assert stats["evictions"] == 1
            assert stats["discarded"] == 1
            assert stats["idle"] == 0
            assert sess.closed
            notes = flight_recorder.notes("pool.evicted")
            assert len(notes) == evicted_before + 1
            assert notes[-1]["cause"] == "poisoned"
            # the next tenant gets a clean slate, not the poisoned one
            fresh = pool.acquire(config)
            assert pool.stats()["created"] == 2
            pool.release(fresh)

    def test_healthy_session_is_restacked(self):
        pool = SessionPool(max_idle=4)
        with pool:
            config = SessionConfig(nprocs=4)
            sess = pool.acquire(config)
            pool.release(sess)
            assert pool.stats()["evictions"] == 0
            assert pool.stats()["idle"] == 1
            assert pool.acquire(config) is sess


class TestHttpFrontEnd:
    def test_request_deadline_unblocks_the_client(self):
        svc = PlanningService(observability=False)
        svc.dispatch = lambda method, target, body=None: (
            time.sleep(0.5) or ServeResponse(200, "{}")
        )
        with ServerThread(svc, request_deadline=0.1) as url:
            with pytest.raises(urllib.error.HTTPError) as info:
                _get(f"{url}/healthz")
            assert info.value.code == 503
            assert info.value.headers["Retry-After"]
            assert info.value.headers["X-Repro-Incident-Id"]
            assert "deadline" in json.loads(info.value.read())["error"]

    def test_injected_request_faults_delay_error_drop(self):
        plan = FaultPlan([
            RequestFault(route="/healthz", at_request=2, kind="delay",
                         seconds=0.2),
            RequestFault(route="/healthz", at_request=3, kind="error"),
            RequestFault(route="/healthz", at_request=4, kind="drop"),
        ])
        with injected(plan):
            with ServerThread(PlanningService(observability=False)) as url:
                status, _, _ = _get(f"{url}/healthz")  # request 1: clean
                assert status == 200
                t0 = time.perf_counter()
                status, _, _ = _get(f"{url}/healthz")  # request 2: delayed
                assert status == 200
                assert time.perf_counter() - t0 >= 0.2
                with pytest.raises(urllib.error.HTTPError) as info:
                    _get(f"{url}/healthz")             # request 3: 500
                assert info.value.code == 500
                assert info.value.headers["X-Repro-Incident-Id"]
                assert "injected fault" in json.loads(info.value.read())["error"]
                # dropped on the floor: RemoteDisconnected reaches the
                # client raw (it is a ConnectionResetError subclass)
                with pytest.raises((urllib.error.URLError,
                                    ConnectionResetError)):
                    _get(f"{url}/healthz", timeout=5)  # request 4: dropped
                status, _, _ = _get(f"{url}/healthz")  # request 5: clean
                assert status == 200

    def test_faults_off_by_default(self):
        with ServerThread(PlanningService(observability=False)) as url:
            for _ in range(3):
                status, _, _ = _get(f"{url}/healthz")
                assert status == 200


class TestChaosLoadtest:
    def test_chaos_needs_in_process_server(self):
        with pytest.raises(ValueError, match="in-process server"):
            run_loadtest(url="http://127.0.0.1:1", chaos=True, out=None)

    def test_chaos_smoke_passes_the_check_gate(self):
        """The acceptance run: request faults + a worker-crash recovery
        phase, zero byte-identity violations, every 5xx attributable,
        and the recovered multiprocess run identical to serial."""
        report = run_loadtest(
            clients=2, rounds=1, smoke=True, chaos=True, check=True,
            out=None, quiet=True,
        )
        assert report["schema"] == CHAOS_SCHEMA
        assert report["byte_identical"]
        chaos = report["chaos"]
        assert chaos["injected_failures"] >= 1
        assert chaos["uncovered_5xx"] == 0
        assert chaos["recovery"]["identical"]
        assert chaos["recovery"]["fleet_restarts"] >= 1
        assert not chaos["recovery"]["failures"]
        # the sentinel accepts its own artifact
        verdict = compare_chaos_reports(report, report)
        assert verdict.ok


class TestChaosSentinel:
    def _report(self, **over):
        base = {
            "schema": CHAOS_SCHEMA,
            "byte_identical": True,
            "chaos": {
                "uncovered_5xx": 0,
                "recovery": {
                    "failures": 0, "identical": True, "fleet_restarts": 2,
                },
            },
        }
        for key, value in over.items():
            parts = key.split(".")
            node = base
            for p in parts[:-1]:
                node = node[p]
            node[parts[-1]] = value
        return base

    def test_clean_report_passes(self):
        assert compare_chaos_reports(self._report(), self._report()).ok

    def test_byte_divergence_is_a_hard_failure(self):
        bad = self._report(byte_identical=False)
        verdict = compare_chaos_reports(self._report(), bad)
        assert verdict.hard_failures

    def test_uncovered_5xx_is_a_hard_failure(self):
        bad = self._report(**{"chaos.uncovered_5xx": 3})
        assert compare_chaos_reports(self._report(), bad).hard_failures

    def test_recovery_divergence_is_a_hard_failure(self):
        bad = self._report(**{"chaos.recovery.identical": False})
        assert compare_chaos_reports(self._report(), bad).hard_failures

    def test_no_restart_is_a_soft_failure(self):
        meh = self._report(**{"chaos.recovery.fleet_restarts": 0})
        verdict = compare_chaos_reports(self._report(), meh)
        assert not verdict.hard_failures
        assert verdict.soft_failures


def _always_broken(endpoint, params):
    raise BackendError("fleet died mid-run", retryable=True)


def _must_not_be_called(endpoint, params):  # pragma: no cover - guard
    raise AssertionError("stage reached while the circuit was open")
