"""The load-test harness, exercised in smoke mode against an in-process server."""

import json

import pytest

from repro.serve import LoadtestError, run_loadtest


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("serve") / "BENCH_SERVE.json"
    rep = run_loadtest(
        clients=4, rounds=3, smoke=True, out=str(out), check=True, quiet=True,
    )
    return rep, out


def test_report_schema(report):
    rep, _ = report
    assert rep["schema"] == "repro-bench-serve/2"
    assert rep["env"]["repro"]
    assert rep["smoke"] is True
    assert rep["clients"] == 4
    assert rep["rounds"] == 3
    assert [p["name"] for p in rep["phases"]] == ["unique", "repeated"]
    assert rep["in_process_server"] is True


def test_acceptance_properties(report):
    rep, _ = report
    assert rep["total_failures"] == 0
    assert rep["byte_identical"] is True
    # unique phase: fresh seed per request, so nothing can hit
    unique, repeated = rep["phases"]
    assert unique["cache_hits"] == 0
    # repeated phase: each config computed at most once across all
    # clients and rounds — the check gate demands > 50%
    assert repeated["cache_hit_rate"] > 0.5


def test_latency_percentiles_present(report):
    rep, _ = report
    for phase in rep["phases"]:
        lat = phase["latency"]
        assert lat["p50_ms"] > 0
        assert lat["p99_ms"] >= lat["p50_ms"]


def test_server_stats_captured(report):
    rep, _ = report
    stats = rep["server_stats"]
    assert stats["schema"] == "repro-serve-stats/1"
    assert stats["errors"] == 0
    assert stats["sessions"]["reused"] > 0


def test_report_written_to_disk(report):
    rep, out = report
    on_disk = json.loads(out.read_text())
    assert on_disk["total_requests"] == rep["total_requests"]


def test_check_gate_raises_on_violation(monkeypatch):
    # a server that fails every stage request trips the zero-failure gate
    from repro.serve import PlanningService, ServerThread

    class Broken(PlanningService):
        def _stage(self, endpoint, params):
            raise RuntimeError("boom")

    with ServerThread(Broken()) as url:
        with pytest.raises(LoadtestError, match="failed request"):
            run_loadtest(url=url, clients=2, rounds=1, smoke=True,
                         out=None, check=True, quiet=True)


def test_bad_arguments_rejected():
    with pytest.raises(ValueError, match="clients"):
        run_loadtest(clients=0)
    with pytest.raises(ValueError, match="rounds"):
        run_loadtest(rounds=0)
