"""PlanningService dispatch: routing, caching, validation, stats."""

import json

import pytest

from repro.api import REGISTRY
from repro.serve import ENDPOINTS, PlanningService


@pytest.fixture
def service():
    with PlanningService() as svc:
        yield svc


# -- fixed endpoints -------------------------------------------------------


def test_workloads_lists_registry(service):
    resp = service.dispatch("GET", "/workloads")
    assert resp.status == 200
    payload = resp.json
    assert payload["schema"] == "repro-serve-workloads/1"
    names = {w["name"] for w in payload["workloads"]}
    assert names == set(REGISTRY.names())
    for spec in payload["workloads"]:
        assert {"name", "description", "defaults", "plannable"} <= set(spec)


def test_healthz_reports_version(service):
    import repro

    resp = service.dispatch("GET", "/healthz")
    assert resp.status == 200
    payload = resp.json
    assert payload["ok"] is True
    assert payload["version"] == repro.__version__
    assert payload["uptime_seconds"] >= 0


def test_stats_schema(service):
    service.dispatch("GET", "/run?workload=adi&size=16&iterations=1&seed=0")
    resp = service.dispatch("GET", "/stats")
    stats = resp.json
    assert stats["schema"] == "repro-serve-stats/1"
    assert {"plan_cache", "response_cache", "sessions", "requests",
            "errors", "workloads"} <= set(stats)
    assert stats["requests"]["/run"] == 1
    assert stats["sessions"]["created"] == 1


# -- stage endpoints -------------------------------------------------------


def test_run_get_and_post_are_equivalent(service):
    get = service.dispatch(
        "GET", "/run?workload=adi&size=16&iterations=1&seed=7")
    post = service.dispatch(
        "POST", "/run",
        json.dumps({"workload": "adi", "size": 16, "iterations": 1,
                    "seed": 7}))
    assert get.status == post.status == 200
    # same fingerprint, so the POST replays the GET's bytes
    assert get.headers["X-Repro-Cache"] == "miss"
    assert post.headers["X-Repro-Cache"] == "hit"
    assert (get.headers["X-Repro-Fingerprint"]
            == post.headers["X-Repro-Fingerprint"])
    assert get.body == post.body


def test_body_keys_override_query(service):
    resp = service.dispatch(
        "POST", "/run?workload=adi&size=16&seed=1",
        json.dumps({"seed": 2, "iterations": 1}))
    assert resp.status == 200
    assert resp.json["seed"] == 2


def test_plan_response_is_typed_plan_result(service):
    resp = service.dispatch("GET", "/plan?workload=adi&size=16&seed=0")
    assert resp.status == 200
    payload = resp.json
    assert payload["workload"] == "adi"
    assert {"plan", "cost_model", "cost_mode", "method"} <= set(payload)


def test_trace_compact_omits_per_processor_intervals(service):
    full = service.dispatch(
        "GET", "/trace?workload=smoothing&size=16&steps=2&seed=0")
    compact = service.dispatch(
        "GET",
        "/trace?workload=smoothing&size=16&steps=2&seed=0&compact=true")
    assert full.status == compact.status == 200
    assert "processors" in full.json["blocking"]
    assert "processors" not in compact.json["blocking"]
    # different options -> different fingerprints, no false sharing
    assert (full.headers["X-Repro-Fingerprint"]
            != compact.headers["X-Repro-Fingerprint"])


def test_bench_is_never_cached(service):
    target = "/bench?workload=adi&size=16&iterations=1&repeats=1&seed=0"
    first = service.dispatch("GET", target)
    second = service.dispatch("GET", target)
    assert first.status == second.status == 200
    assert first.headers["X-Repro-Cache"] == "bypass"
    assert second.headers["X-Repro-Cache"] == "bypass"


def test_identical_requests_are_byte_identical(service):
    target = "/trace?workload=pic&size=16&steps=2&seed=5"
    bodies = {service.dispatch("GET", target).body for _ in range(3)}
    assert len(bodies) == 1


def test_different_seeds_share_one_pooled_session(service):
    for seed in range(4):
        resp = service.dispatch(
            "GET", f"/run?workload=adi&size=16&iterations=1&seed={seed}")
        assert resp.status == 200
    stats = service.pool.stats()
    assert stats["created"] == 1
    assert stats["reused"] == 3


# -- validation and errors -------------------------------------------------


def test_unknown_endpoint_404(service):
    resp = service.dispatch("GET", "/nope")
    assert resp.status == 404
    for endpoint in ENDPOINTS:
        assert endpoint in resp.json["error"]


def test_unknown_workload_404(service):
    resp = service.dispatch("GET", "/plan?workload=bogus")
    assert resp.status == 404
    assert "bogus" in resp.json["error"]


def test_missing_workload_400(service):
    resp = service.dispatch("GET", "/run")
    assert resp.status == 400
    assert "workload" in resp.json["error"]


def test_unknown_param_400(service):
    resp = service.dispatch("GET", "/run?workload=adi&sizzle=16")
    assert resp.status == 400
    assert "sizzle" in resp.json["error"]


def test_unknown_backend_400(service):
    resp = service.dispatch("GET", "/run?workload=adi&backend=gpu")
    assert resp.status == 400
    assert "gpu" in resp.json["error"]


def test_bad_json_body_400(service):
    resp = service.dispatch("POST", "/run", "{not json")
    assert resp.status == 400
    resp = service.dispatch("POST", "/run", "[1, 2]")
    assert resp.status == 400


def test_method_not_allowed_405(service):
    resp = service.dispatch("DELETE", "/run?workload=adi")
    assert resp.status == 405


def test_errors_counted_in_stats(service):
    service.dispatch("GET", "/nope")
    service.dispatch("GET", "/run")
    assert service.dispatch("GET", "/stats").json["errors"] == 2


# -- the /adapt stage ------------------------------------------------------


ADAPT_TARGET = (
    "/adapt?workload=pic&size=32&npart=400&steps=12"
    "&rebalance_every=4&drift=0.03&seed=0"
)


def test_adapt_endpoint_is_advertised():
    assert "/adapt" in ENDPOINTS


def test_adapt_returns_typed_adapt_result(service):
    resp = service.dispatch("GET", ADAPT_TARGET)
    assert resp.status == 200
    doc = resp.json
    assert doc["workload"] == "pic"
    assert doc["mode"] == "adaptive"
    run = doc["run"]
    assert run["solution_digest"] and run["decision_digest"]
    assert isinstance(run["replans"], list)


def test_adapt_is_cached_and_byte_identical(service):
    first = service.dispatch("GET", ADAPT_TARGET)
    second = service.dispatch("GET", ADAPT_TARGET)
    assert first.headers["X-Repro-Cache"] == "miss"
    assert second.headers["X-Repro-Cache"] == "hit"
    assert first.body == second.body


def test_adapt_matches_the_cli_bytes(service, capsys):
    """The service/CLI consistency contract extends to /adapt."""
    from repro.__main__ import main

    resp = service.dispatch("GET", ADAPT_TARGET)
    main(["adapt", "--workload", "pic", "--size", "32", "--steps", "12",
          "--drift", "0.03", "--seed", "0", "--json"])
    cli = capsys.readouterr().out
    # the CLI maps npart/rebalance_every through the registry defaults,
    # so align the knobs the CLI does not expose via the POST body
    post = service.dispatch(
        "POST", "/adapt",
        json.dumps({"workload": "pic", "size": 32, "steps": 12,
                    "drift": 0.03, "seed": 0}),
    )
    assert post.status == resp.status == 200
    assert post.body == cli.rstrip("\n")


def test_adapt_mode_option_is_honored(service):
    resp = service.dispatch("GET", ADAPT_TARGET + "&mode=static")
    assert resp.status == 200
    doc = resp.json
    assert doc["mode"] == "static"
    assert doc["run"]["replans"] == []


def test_adapt_unsupported_workload_400(service):
    resp = service.dispatch("GET", "/adapt?workload=adi")
    assert resp.status == 400
    assert "no adaptive driver" in resp.json["error"]


def test_adapt_bad_mode_400(service):
    resp = service.dispatch("GET", ADAPT_TARGET + "&mode=turbo")
    assert resp.status == 400
