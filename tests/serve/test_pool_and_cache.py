"""SessionPool checkout/checkin semantics and the fingerprinted ResponseCache."""

import pytest

from repro.api import SessionConfig
from repro.serve import ResponseCache, SessionPool, request_fingerprint


# -- pool ------------------------------------------------------------------


def test_acquire_creates_then_reuses():
    with SessionPool() as pool:
        cfg = SessionConfig(nprocs=4)
        first = pool.acquire(cfg)
        pool.release(first)
        second = pool.acquire(cfg)
        pool.release(second)
        assert second is first
        stats = pool.stats()
        assert stats["created"] == 1
        assert stats["reused"] == 1
        assert stats["idle"] == 1


def test_distinct_configs_get_distinct_sessions():
    with SessionPool() as pool:
        a = pool.acquire(SessionConfig(nprocs=4))
        b = pool.acquire(SessionConfig(nprocs=8))
        assert a is not b
        pool.release(a)
        pool.release(b)
        assert pool.stats()["configs"] == 2


def test_equal_configs_share_even_across_instances():
    # the key is the config *fingerprint*, not object identity
    with SessionPool() as pool:
        a = pool.acquire(SessionConfig(nprocs=4, cost_model="Paragon"))
        pool.release(a)
        b = pool.acquire(SessionConfig(nprocs=4, cost_model="Paragon"))
        assert b is a


def test_max_idle_bounds_the_stack():
    with SessionPool(max_idle=1) as pool:
        cfg = SessionConfig(nprocs=4)
        a, b = pool.acquire(cfg), pool.acquire(cfg)
        pool.release(a)
        pool.release(b)  # over the bound: discarded and closed
        assert pool.stats()["idle"] == 1
        assert pool.stats()["discarded"] == 1
        assert b.closed and not a.closed


def test_closed_sessions_are_not_restacked():
    with SessionPool() as pool:
        cfg = SessionConfig(nprocs=4)
        sess = pool.acquire(cfg)
        sess.close()
        pool.release(sess)
        assert pool.stats()["idle"] == 0
        assert pool.acquire(cfg) is not sess


def test_pool_close_drains_idle_sessions():
    pool = SessionPool()
    sess = pool.acquire(SessionConfig(nprocs=4))
    pool.release(sess)
    pool.close()
    assert sess.closed
    with pytest.raises(RuntimeError, match="closed"):
        pool.acquire(SessionConfig(nprocs=4))


def test_all_pooled_sessions_share_the_plan_cache():
    with SessionPool() as pool:
        a = pool.acquire(SessionConfig(nprocs=4))
        b = pool.acquire(SessionConfig(nprocs=8))
        assert a.plan_cache is pool.plan_cache
        assert b.plan_cache is pool.plan_cache
        pool.release(a)
        pool.release(b)


def test_bad_max_idle_rejected():
    with pytest.raises(ValueError, match="max_idle"):
        SessionPool(max_idle=-1)


# -- response cache --------------------------------------------------------


def test_response_cache_roundtrip_and_stats():
    cache = ResponseCache(capacity=4)
    assert cache.get("fp") is None
    cache.put("fp", "{}")
    assert cache.get("fp") == "{}"
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["hit_rate"] == 0.5
    assert stats["size"] == 1
    assert stats["capacity"] == 4


def test_response_cache_evicts_lru():
    cache = ResponseCache(capacity=2)
    cache.put("a", "1")
    cache.put("b", "2")
    cache.get("a")        # a is now most recently used
    cache.put("c", "3")   # evicts b
    assert cache.get("a") == "1"
    assert cache.get("b") is None
    assert cache.get("c") == "3"


def test_request_fingerprint_is_order_insensitive():
    fp1 = request_fingerprint(
        "run", "adi", nprocs=4, cost_model="Paragon", backend=None,
        seed=0, params={"size": 16, "iterations": 1}, options={})
    fp2 = request_fingerprint(
        "run", "adi", nprocs=4, cost_model="Paragon", backend=None,
        seed=0, params={"iterations": 1, "size": 16}, options={})
    assert fp1 == fp2
    assert len(fp1) == 64  # sha256 hex


def test_request_fingerprint_separates_every_dimension():
    base = dict(nprocs=4, cost_model="Paragon", backend=None, seed=0,
                params={"size": 16}, options={})
    fp = request_fingerprint("run", "adi", **base)
    for variant in (
        request_fingerprint("trace", "adi", **base),
        request_fingerprint("run", "pic", **base),
        request_fingerprint("run", "adi", **{**base, "nprocs": 8}),
        request_fingerprint("run", "adi", **{**base, "seed": 1}),
        request_fingerprint("run", "adi", **{**base, "backend": "serial"}),
        request_fingerprint("run", "adi", **{**base, "params": {"size": 32}}),
        request_fingerprint("run", "adi",
                            **{**base, "options": {"compact": True}}),
    ):
        assert variant != fp
