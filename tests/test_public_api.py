"""Package-surface sanity: every advertised name exists and resolves."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.machine",
    "repro.core",
    "repro.runtime",
    "repro.lang",
    "repro.compiler",
    "repro.planner",
    "repro.backend",
    "repro.apps",
]


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_all_names_resolve(modname):
    mod = importlib.import_module(modname)
    assert hasattr(mod, "__all__"), f"{modname} must declare __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{modname}.{name} missing"


def test_star_import_clean():
    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102 - deliberate smoke test
    for required in ("Engine", "Machine", "ProcessorArray", "dist_type",
                     "DynamicAttr", "DCase", "idt", "communicate"):
        assert required in ns


def test_backend_reexported_from_root():
    """The v1.2.0 surface: the execution-backend tier is one import
    away (ISSUE 2 satellite)."""
    import repro

    assert repro.backend.__name__ == "repro.backend"
    assert repro.Backend is repro.backend.Backend
    assert repro.SerialBackend is repro.backend.SerialBackend
    assert repro.MultiprocessBackend is repro.backend.MultiprocessBackend
    assert repro.calibrate is repro.backend.calibrate  # the module
    assert callable(repro.calibrate.calibrate)
    # the measured-machine types ride along on the machine layer
    assert repro.MeasuredMachine and repro.Calibration

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("Backend", "SerialBackend", "MultiprocessBackend",
                     "MeasuredMachine", "Calibration"):
        assert required in ns


def test_version():
    import repro

    assert repro.__version__ == "1.4.0"


def test_sim_reexported_from_root():
    import repro

    assert repro.sim.__name__ == "repro.sim"
    assert repro.EventLog is repro.sim.EventLog
    assert repro.simulate is repro.sim.simulate
    assert repro.Timeline is repro.sim.Timeline
    assert repro.critical_path is repro.sim.critical_path
    assert "sim" in repro.__all__

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("EventLog", "simulate", "Timeline", "critical_path",
                     "gantt"):
        assert required in ns


def test_main_module_runs(capsys):
    from repro.__main__ import main

    main()
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 2" in out
    assert "dynamic" in out


def test_apps_optional_networkx_flag():
    import repro.apps as apps

    # this environment has networkx, so the mesh workload is exported
    assert apps._HAVE_NETWORKX
    assert hasattr(apps, "run_relaxation")
