"""Package-surface sanity: every advertised name exists and resolves."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.machine",
    "repro.core",
    "repro.runtime",
    "repro.lang",
    "repro.compiler",
    "repro.planner",
    "repro.backend",
    "repro.apps",
    "repro.api",
    "repro.sim",
    "repro.serve",
    "repro.obs",
    "repro.faults",
    "repro.adapt",
]

# The root surface, pinned (ISSUE 5): changing what `from repro import *`
# exposes must be a deliberate edit of this list, not a side effect of a
# subpackage's star-export.  Regenerate with
#   python -c "import repro; print('\n'.join(sorted(repro.__all__)))"
EXPORT_SNAPSHOT = sorted([
    "ALWAYS", "ANY", "AccessKind", "AdaptResult", "AdaptiveController",
    "Aligned", "Alignment",
    "AllocationRecord", "AnalysisResult", "ArrayDescriptor", "ArrayLoad",
    "ArrayRef", "Assign", "Attribution", "AxisMap", "BUSY_KINDS", "Backend",
    "BackendError", "BatchedReadAccessor", "BenchResult", "Block",
    "BlockMeta", "BlockingReplay", "CFG", "CFGEdge", "CFGNode",
    "Calibration", "Call", "CircuitBreaker", "CommEstimate", "CommSchedule",
    "ConnectClass",
    "Connection", "CostEngine", "CostModel", "CriticalPath", "Cyclic",
    "DCase", "DCaseStmt", "DEFAULT", "DEFAULT_SEED", "Declaration",
    "DimDist", "DimTranslationTable", "DistributeStmt", "DistributedArray",
    "Distribution", "DistributionGenerator", "DistributionType",
    "DistributionUndefinedError", "DynamicAttr", "Engine", "Event",
    "EventArrays", "EventKind", "EventLog", "Extraction", "FaultPlan",
    "FleetSupervisor", "FormalArg",
    "GenBlock", "HandDistribute", "IPSC860", "IRProgram", "If",
    "IndexDomain", "Indirect", "Inspector", "Interval", "LineSweepKernel",
    "LoadMonitor", "LocalMemory", "Loop", "MAYBE", "MODERN_CLUSTER",
    "Machine",
    "MeasuredMachine", "MemoryError_", "MemoryEstimate", "MessageRecord",
    "MetricsRegistry",
    "MultiprocessBackend", "NEVER", "Network", "NetworkStats", "NoDist",
    "OptimizeStats", "OverlapManager", "PARAGON", "PRESETS", "Phase",
    "PhaseSequence", "Plan", "PlanCache", "PlanExecutor", "PlanResult",
    "PlanningService",
    "PlausibleSet", "PolicyLibrary", "ProcClock", "ProcDef", "Procedure", "ProcessorArray",
    "ProcessorSection", "QueryList", "Range", "ReachingDistributions",
    "ReadAccessor", "RedistributionReport", "Replicated", "RunResult",
    "SBlock", "ScheduleStep", "Scope", "SerialBackend", "Session",
    "SessionClosedError",
    "SessionConfig", "SessionResult", "SharedSegmentAllocator",
    "SimulatedCostEngine", "StencilKernel", "Stmt", "TOP", "Timeline",
    "TraceResult", "TrajectoryStore",
    "TranslationTable", "Transport", "TransportBroken", "TransportTimeout",
    "TypePattern", "VFProgram", "VFSyntaxError", "WORKLOADS", "Wild",
    "Workload", "WorkloadHandle", "WorkloadRegistry", "WorkloadSpec",
    "ZERO_COST", "__version__", "adapt", "adi_workload", "analyze", "api", "apps",
    "attached_backend", "attribution",
    "available_workloads", "backend", "bind_pattern",
    "broadcast_from", "build_cfg", "calibrate", "classify_tag",
    "clear_interning_caches", "communicate", "compare_adapt_reports",
    "compare_perf_reports",
    "compiler", "config_fingerprint", "construct",
    "critical_path", "decide_pattern", "decide_querylist",
    "default_plan_cache", "dim_implies", "dim_menu", "dim_overlaps",
    "dist_type", "dp_schedule", "dump_json", "enumerate_layouts",
    "estimate_memory", "estimate_ref", "extract_phases", "faults",
    "fit_alpha_beta",
    "flight_recorder",
    "forall", "forall_batched", "forall_gathered", "gantt", "gather_to",
    "get_generator", "get_request_id", "get_trace_id", "get_workload",
    "greedy_schedule", "grid_shapes",
    "hand_schedule_cost", "idt", "infer_overlap", "intern_dimdist",
    "intern_distribution", "lang", "link_matrix", "lower_line_sweep",
    "lower_stencil", "measured_machine", "metrics_registry", "obs",
    "optimize", "overlappable_phases",
    "owners_cache_stats", "parse_alignment", "parse_declaration",
    "parse_dist_expr", "parse_pattern", "parse_processors",
    "parse_program", "parse_section", "pattern_implies",
    "pattern_overlaps", "per_processor_table", "perf", "pic_workload",
    "plan_array", "plan_program", "plan_workload", "planner", "record",
    "reduce_scalar", "refine_pattern", "register_generator",
    "run_adapt_bench",
    "register_workload", "relaxed_barriers", "replay_blocking",
    "replay_split_exchange", "resolve_backend", "run_loadtest",
    "segment_moves", "serve",
    "session", "shift_exchange", "shift_plan", "sim", "simulate",
    "smoothing_workload", "span", "summary", "timeline_summary",
    "timeline_table",
    "to_chrome_trace", "to_json", "transfer_matrix",
    "transfer_matrix_bruteforce", "transfer_matrix_naive", "transfer_plan",
])


@pytest.mark.parametrize("modname", SUBPACKAGES)
def test_all_names_resolve(modname):
    mod = importlib.import_module(modname)
    assert hasattr(mod, "__all__"), f"{modname} must declare __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{modname}.{name} missing"


def test_star_import_clean():
    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102 - deliberate smoke test
    for required in ("Engine", "Machine", "ProcessorArray", "dist_type",
                     "DynamicAttr", "DCase", "idt", "communicate"):
        assert required in ns


def test_backend_reexported_from_root():
    """The v1.2.0 surface: the execution-backend tier is one import
    away (ISSUE 2 satellite)."""
    import repro

    assert repro.backend.__name__ == "repro.backend"
    assert repro.Backend is repro.backend.Backend
    assert repro.SerialBackend is repro.backend.SerialBackend
    assert repro.MultiprocessBackend is repro.backend.MultiprocessBackend
    assert repro.calibrate is repro.backend.calibrate  # the module
    assert callable(repro.calibrate.calibrate)
    # the measured-machine types ride along on the machine layer
    assert repro.MeasuredMachine and repro.Calibration

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("Backend", "SerialBackend", "MultiprocessBackend",
                     "MeasuredMachine", "Calibration"):
        assert required in ns


def test_export_snapshot_pinned():
    """The ISSUE 5 surface snapshot: additions/removals are deliberate."""
    import repro

    assert sorted(repro.__all__) == EXPORT_SNAPSHOT
    assert len(set(repro.__all__)) == len(repro.__all__), "duplicate exports"
    # the one deliberate collision casualty: the compiler IR's Block is
    # NOT at the root (the BLOCK distribution intrinsic is)
    from repro.compiler.ir import Block as IRBlock
    from repro.core.dimdist import Block as CoreBlock

    assert repro.Block is CoreBlock
    assert repro.Block is not IRBlock


def test_session_facade_reexported_from_root():
    """The v1.5.0 surface: the session API is one import away."""
    import repro

    assert repro.api.__name__ == "repro.api"
    assert repro.session is repro.api.session
    assert repro.Session is repro.api.Session
    assert repro.SessionConfig is repro.api.SessionConfig
    assert repro.WorkloadHandle is repro.api.WorkloadHandle
    assert repro.register_workload is repro.api.register_workload
    for result in ("PlanResult", "RunResult", "TraceResult", "BenchResult"):
        assert getattr(repro, result) is getattr(repro.api, result)

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("session", "Session", "SessionConfig",
                     "register_workload", "available_workloads",
                     "RunResult", "DEFAULT_SEED"):
        assert required in ns


def test_version():
    import repro

    assert repro.__version__ == "1.10.0"


def test_sim_reexported_from_root():
    import repro

    assert repro.sim.__name__ == "repro.sim"
    assert repro.EventLog is repro.sim.EventLog
    assert repro.simulate is repro.sim.simulate
    assert repro.Timeline is repro.sim.Timeline
    assert repro.critical_path is repro.sim.critical_path
    assert "sim" in repro.__all__

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("EventLog", "simulate", "Timeline", "critical_path",
                     "gantt"):
        assert required in ns


def test_serve_reexported_from_root():
    """The v1.6.0 surface: the serving tier is one import away (ISSUE 6)."""
    import repro

    assert repro.serve.__name__ == "repro.serve"
    assert repro.PlanningService is repro.serve.PlanningService
    assert repro.run_loadtest is repro.serve.run_loadtest
    assert repro.SessionClosedError is repro.api.SessionClosedError
    assert repro.config_fingerprint is repro.api.config_fingerprint

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("PlanningService", "run_loadtest",
                     "SessionClosedError", "config_fingerprint"):
        assert required in ns


def test_obs_reexported_from_root():
    """The v1.7.0 surface: observability is one import away (ISSUE 7)."""
    import repro

    assert repro.obs.__name__ == "repro.obs"
    assert repro.MetricsRegistry is repro.obs.MetricsRegistry
    assert repro.metrics_registry is repro.obs.registry
    assert repro.span is repro.obs.span
    assert repro.get_request_id is repro.obs.get_request_id
    assert repro.get_trace_id is repro.obs.get_trace_id

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("MetricsRegistry", "metrics_registry", "span",
                     "get_request_id", "get_trace_id"):
        assert required in ns


def test_faults_reexported_from_root():
    """The v1.9.0 surface: fault injection and resilience are one
    import away (ISSUE 9)."""
    import repro

    assert repro.faults.__name__ == "repro.faults"
    assert repro.FaultPlan is repro.faults.FaultPlan
    assert repro.CircuitBreaker is repro.faults.CircuitBreaker
    assert repro.FleetSupervisor is repro.backend.FleetSupervisor
    assert repro.TransportBroken is repro.backend.TransportBroken
    assert issubclass(repro.TransportBroken, repro.TransportTimeout)

    ns: dict = {}
    exec("from repro import *", ns)  # noqa: S102
    for required in ("FaultPlan", "CircuitBreaker", "FleetSupervisor",
                     "TransportBroken"):
        assert required in ns


def test_main_module_runs(capsys):
    from repro.__main__ import main

    main()
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 2" in out
    assert "dynamic" in out


def test_apps_optional_networkx_flag():
    import repro.apps as apps

    # this environment has networkx, so the mesh workload is exported
    assert apps._HAVE_NETWORKX
    assert hasattr(apps, "run_relaxation")
