"""Tests for translation tables (paper §3.2.1)."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock, Indirect
from repro.core.distribution import dist_type
from repro.machine.topology import ProcessorArray
from repro.runtime.translation import DimTranslationTable, TranslationTable

P4 = ProcessorArray("R", (4,))


class TestDimTranslationTable:
    @pytest.mark.parametrize(
        "dd,n,p",
        [
            (Block(), 10, 4),
            (Cyclic(3), 17, 4),
            (GenBlock([3, 0, 5, 2]), 10, 4),
            (Indirect([0, 2, 1, 1, 0, 2, 3, 3]), 8, 4),
        ],
    )
    def test_table_agrees_with_dimdist(self, dd, n, p):
        t = DimTranslationTable(dd, n, p)
        idx = np.arange(n)
        owners, offsets = t.lookup(idx)
        for i in range(n):
            assert owners[i] == dd.owner_of(i, n, p)
            assert offsets[i] == dd.global_to_local(int(owners[i]), i, n, p)

    def test_lookup_out_of_range(self):
        t = DimTranslationTable(Block(), 8, 4)
        with pytest.raises(IndexError):
            t.lookup(np.array([8]))

    def test_tables_immutable(self):
        t = DimTranslationTable(Block(), 8, 4)
        with pytest.raises(ValueError):
            t.owner[0] = 3

    def test_lookup_cost_bounded_by_pages(self):
        t = DimTranslationTable(Block(), 10_000, 4)
        assert t.lookup_cost(3, page_size=1024) == 3
        assert t.lookup_cost(100, page_size=1024) == 10  # page bound
        assert t.lookup_cost(0) == 0

    def test_nbytes(self):
        t = DimTranslationTable(Block(), 100, 4)
        assert t.nbytes == 100 * 8 * 2


class TestTranslationTable:
    def test_full_lookup_matches_distribution(self):
        d = dist_type("BLOCK", Cyclic(2)).apply((8, 8), ProcessorArray("R", (2, 2)))
        t = TranslationTable(d)
        rng = np.random.default_rng(3)
        queries = rng.integers(0, 8, size=(50, 2))
        ranks = t.owner_ranks(queries)
        for q, r in zip(queries, ranks):
            assert r == d.owner(tuple(q))

    def test_offsets_match_loc_map(self):
        d = dist_type("BLOCK", ":").apply((8, 4), P4)
        t = TranslationTable(d)
        queries = np.array([[0, 0], [3, 2], [7, 3]])
        owners, offsets = t.lookup(queries)
        for q in range(len(queries)):
            gidx = tuple(queries[q])
            rank = d.owner(gidx)
            assert tuple(offsets[q]) == d.global_to_local(rank, gidx)

    def test_wrong_arity_rejected(self):
        d = dist_type("BLOCK", ":").apply((8, 4), P4)
        t = TranslationTable(d)
        with pytest.raises(ValueError):
            t.lookup(np.zeros((3, 3), dtype=int))

    def test_1d_queries(self):
        d = dist_type(Cyclic(1)).apply((8,), P4)
        t = TranslationTable(d)
        ranks = t.owner_ranks(np.arange(8).reshape(-1, 1))
        assert list(ranks) == [0, 1, 2, 3, 0, 1, 2, 3]
