"""Tests for overlap (ghost) areas (§3.1, §3.2.1)."""

import numpy as np
import pytest

from repro.core.dimdist import Cyclic
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.overlap import OverlapManager


def make(dist=None, shape=(8, 8), procs=(4,)):
    machine = Machine(ProcessorArray("R", procs))
    engine = Engine(machine)
    arr = engine.declare(
        "A", shape, dist=dist or dist_type("BLOCK", ":"), dynamic=True
    )
    arr.from_global(np.arange(np.prod(shape), dtype=float).reshape(shape))
    return machine, engine, arr


class TestAllocation:
    def test_padded_shape(self):
        _, _, arr = make()
        ov = OverlapManager(arr, (1, 0))
        assert ov.padded(0).shape == (4, 8)  # (2 + 2*1, 8 + 0)

    def test_overlap_memory_kind(self):
        m, _, arr = make()
        OverlapManager(arr, (1, 1))
        assert m.memory(0).used_by_kind("overlap") > 0

    def test_widths_validated(self):
        _, _, arr = make()
        with pytest.raises(ValueError):
            OverlapManager(arr, (1,))
        with pytest.raises(ValueError):
            OverlapManager(arr, (-1, 0))

    def test_noncontiguous_rejected(self):
        _, _, arr = make(dist=dist_type(Cyclic(1), ":"))
        with pytest.raises(ValueError, match="BLOCK-family"):
            OverlapManager(arr, (1, 0))


class TestExchange:
    def test_halo_values_correct(self):
        _, _, arr = make()
        ov = OverlapManager(arr, (1, 0))
        ov.load_interior()
        ov.exchange()
        # rank 1 owns rows 2..3; its low halo row equals global row 1
        pad = ov.padded(1)
        g = arr.to_global()
        assert np.array_equal(pad[0, :], g[1, :])
        assert np.array_equal(pad[3, :], g[4, :])

    def test_boundary_value_at_edges(self):
        _, _, arr = make()
        ov = OverlapManager(arr, (1, 0), boundary=-7.0)
        ov.load_interior()
        ov.exchange()
        assert (ov.padded(0)[0, :] == -7.0).all()  # global edge halo
        assert (ov.padded(3)[-1, :] == -7.0).all()

    def test_interior_roundtrip(self):
        _, _, arr = make()
        ov = OverlapManager(arr, (1, 0))
        ov.load_interior()
        ov.interior(0)[...] += 100.0
        ov.store_interior()
        assert arr.get((0, 0)) == 100.0

    def test_exchange_message_count(self):
        m, _, arr = make()
        ov = OverlapManager(arr, (1, 0))
        ov.load_interior()
        n = ov.exchange()
        assert n == 6  # 3 interior boundaries x 2 directions

    def test_two_dim_halo(self):
        machine = Machine(ProcessorArray("R", (2, 2)))
        engine = Engine(machine)
        arr = engine.declare("A", (8, 8), dist=dist_type("BLOCK", "BLOCK"))
        g = np.arange(64, dtype=float).reshape(8, 8)
        arr.from_global(g)
        ov = OverlapManager(arr, (1, 1))
        ov.load_interior()
        ov.exchange()
        # rank 0 owns [0:4, 0:4]; halo row below is g[4, 0:4]
        pad = ov.padded(0)
        assert np.array_equal(pad[5, 1:5], g[4, 0:4])
        assert np.array_equal(pad[1:5, 5], g[0:4, 4])


class TestInvalidation:
    def test_stale_after_redistribute(self):
        _, engine, arr = make()
        ov = OverlapManager(arr, (1, 0))
        ov.load_interior()
        engine.distribute("A", dist_type(":", "BLOCK"))
        assert ov.invalidated()
        with pytest.raises(RuntimeError, match="stale"):
            ov.exchange()

    def test_load_interior_refreshes(self):
        _, engine, arr = make()
        ov = OverlapManager(arr, (1, 0))
        engine.distribute("A", dist_type(":", "BLOCK"))
        ov.load_interior()  # auto-refresh
        assert not ov.invalidated()
        ov.exchange()  # works again
