"""Tests for the Engine facade — declarations, DISTRIBUTE, queries."""

import numpy as np
import pytest

from repro.core.alignment import Alignment
from repro.core.distribution import dist_type
from repro.core.dynamic import DynamicAttr, Extraction
from repro.core.query import ANY
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine


def make_engine(procs=(4,)):
    return Engine(Machine(ProcessorArray("R", procs)))


class TestDeclare:
    def test_static_needs_distribution(self):
        e = make_engine()
        with pytest.raises(ValueError, match="needs a distribution"):
            e.declare("A", (8,))

    def test_duplicate_name_rejected(self):
        e = make_engine()
        e.declare("A", (8,), dist=dist_type("BLOCK"))
        with pytest.raises(ValueError, match="already declared"):
            e.declare("A", (8,), dist=dist_type("BLOCK"))

    def test_dynamic_without_initial_unallocated(self):
        e = make_engine()
        b1 = e.declare("B1", (8,), dynamic=True)
        assert not b1.descriptor.is_distributed

    def test_dynamic_with_initial(self):
        e = make_engine()
        b2 = e.declare(
            "B2", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK"))
        )
        assert b2.dist.dtype == dist_type("BLOCK")

    def test_declare_to_section(self):
        e = make_engine()
        sec = e.machine.processors.section(slice(0, 2))
        a = e.declare("A", (8,), dist=dist_type("BLOCK"), to=sec)
        assert set(np.unique(a.dist.rank_map())) == {0, 1}

    def test_bound_distribution_with_to_rejected(self):
        e = make_engine()
        d = dist_type("BLOCK").apply((8,), e.machine.processors)
        with pytest.raises(ValueError):
            e.declare("A", (8,), dist=d, to=e.machine.full_section())

    def test_secondary_must_be_dynamic(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=True)
        with pytest.raises(ValueError, match="DYNAMIC"):
            e.declare("A", (8,), connect=("B", Extraction()))

    def test_secondary_cannot_carry_distribution(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=True)
        with pytest.raises(ValueError, match="derived"):
            e.declare(
                "A",
                (8,),
                dist=dist_type("BLOCK"),
                dynamic=True,
                connect=("B", Extraction()),
            )

    def test_secondary_inherits_primary_distribution_at_declare(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        a = e.declare("A", (8,), dynamic=True, connect=("B", Extraction()))
        assert a.dist.dtype == dist_type("BLOCK")

    def test_connect_string_shorthand(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=True)
        a = e.declare("A", (8,), dynamic=True, connect=("B", "="))
        assert "A" in [n.split("::")[-1] for n in e.connect_class_of("B").members] or \
            a.name in e.connect_class_of("B").members

    def test_connect_to_unknown_primary(self):
        e = make_engine()
        with pytest.raises(ValueError, match="unknown primary"):
            e.declare("A", (8,), dynamic=True, connect=("NOPE", Extraction()))

    def test_alignment_connection(self):
        e = make_engine((2, 2))
        e.declare(
            "B",
            (8, 8),
            dynamic=DynamicAttr(initial=dist_type("BLOCK", "BLOCK")),
        )
        a = e.declare(
            "A", (8, 8), dynamic=True, connect=("B", Alignment.permutation((1, 0)))
        )
        b = e.arrays["B"]
        for i in range(8):
            for j in range(8):
                assert a.dist.owner((i, j)) == b.dist.owner((j, i))


class TestDistribute:
    def test_static_array_rejected(self):
        e = make_engine()
        e.declare("A", (8,), dist=dist_type("BLOCK"))
        with pytest.raises(ValueError, match="static"):
            e.distribute("A", dist_type("CYCLIC"))

    def test_secondary_rejected(self):
        """§2.3 item 3: distribute statements apply to primaries only."""
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        e.declare("A", (8,), dynamic=True, connect=("B", Extraction()))
        with pytest.raises(ValueError, match="primary"):
            e.distribute("A", dist_type("CYCLIC"))

    def test_first_distribute_allocates(self):
        e = make_engine()
        b = e.declare("B1", (8,), dynamic=True)
        reports = e.distribute("B1", dist_type("BLOCK"))
        assert b.dist.dtype == dist_type("BLOCK")
        assert reports[0].messages == 0  # nothing to move yet

    def test_redistributes_whole_class(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        a = e.declare("A", (8,), dynamic=True, connect=("B", Extraction()))
        reports = e.distribute("B", dist_type("CYCLIC"))
        assert len(reports) == 2
        assert a.dist.dtype == dist_type("CYCLIC")

    def test_range_violation_rejected(self):
        e = make_engine()
        e.declare(
            "B",
            (8,),
            dynamic=DynamicAttr(
                range_=[("BLOCK",)], initial=dist_type("BLOCK")
            ),
        )
        with pytest.raises(ValueError, match="RANGE"):
            e.distribute("B", dist_type("CYCLIC"))

    def test_notransfer_must_be_secondary(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        with pytest.raises(ValueError, match="NOTRANSFER"):
            e.distribute("B", dist_type("CYCLIC"), notransfer=["B"])

    def test_notransfer_skips_secondary_motion(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        a = e.declare("A", (8,), dynamic=True, connect=("B", Extraction()))
        a.from_global(np.arange(8.0))
        reports = e.distribute(
            "B", dist_type("CYCLIC"), notransfer=["A"]
        )
        by_name = {r.array_name: r for r in reports}
        assert by_name["A"].messages == 0
        assert by_name["A"].bytes == 0
        assert a.dist.dtype == dist_type("CYCLIC")  # descriptor still updated

    def test_data_preserved_through_class_redistribution(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        a = e.declare("A", (8,), dynamic=True, connect=("B", Extraction()))
        b = e.arrays["B"]
        b.from_global(np.arange(8.0))
        a.from_global(np.arange(8.0) * 2)
        e.distribute("B", dist_type("CYCLIC"))
        assert np.array_equal(b.to_global(), np.arange(8.0))
        assert np.array_equal(a.to_global(), np.arange(8.0) * 2)

    def test_distribution_extraction_form(self):
        """DISTRIBUTE B4 :: (=B1) — paper Example 3 extraction."""
        e = make_engine()
        e.declare("B1", (8,), dynamic=DynamicAttr(initial=dist_type("CYCLIC")))
        e.declare("B4", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        e.distribute("B4", "=B1")
        assert e.arrays["B4"].dist.dtype == dist_type("CYCLIC")

    def test_alignment_form(self):
        e = make_engine((2, 2))
        e.declare(
            "B",
            (8, 8),
            dynamic=DynamicAttr(initial=dist_type("BLOCK", "CYCLIC")),
        )
        e.declare(
            "A",
            (8, 8),
            dynamic=DynamicAttr(initial=dist_type("BLOCK", "BLOCK")),
        )
        e.distribute("A", Alignment.permutation((1, 0)), with_array="B")
        a, b = e.arrays["A"], e.arrays["B"]
        for i in range(8):
            for j in range(8):
                assert a.dist.owner((i, j)) == b.dist.owner((j, i))

    def test_unknown_array(self):
        e = make_engine()
        with pytest.raises(KeyError):
            e.distribute("NOPE", dist_type("BLOCK"))

    def test_reports_recorded(self):
        e = make_engine()
        e.declare("B", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK")))
        e.distribute("B", dist_type("CYCLIC"))
        assert len(e.reports) == 1


class TestQueries:
    def test_idt(self):
        e = make_engine()
        e.declare("A", (8, 8), dist=dist_type("BLOCK", ":"))
        assert e.idt("A", ("BLOCK", ANY))
        assert not e.idt("A", ("CYCLIC", ANY))

    def test_dcase_requires_distribution(self):
        e = make_engine()
        e.declare("B1", (8,), dynamic=True)  # never distributed
        with pytest.raises(Exception):
            e.dcase("B1")

    def test_dcase_dispatch(self):
        e = make_engine()
        e.declare("A", (8, 8), dist=dist_type(":", "BLOCK"))
        dc = e.dcase("A")
        dc.case([(":", "BLOCK")], lambda: "cols")
        dc.case([("BLOCK", ":")], lambda: "rows")
        assert dc.execute() == "cols"


class TestForeachOwned:
    def test_visits_every_owner_with_indices(self):
        e = make_engine()
        a = e.declare("A", (8,), dist=dist_type("BLOCK"))
        a.from_global(np.arange(8.0))
        seen = {}

        def visit(rank, local, gidx):
            seen[rank] = (local.copy(), gidx[0].copy())

        e.foreach_owned("A", visit)
        assert set(seen) == {0, 1, 2, 3}
        for rank, (local, gidx) in seen.items():
            assert np.array_equal(local, gidx.astype(float))

    def test_compute_charged(self):
        e = make_engine()
        from repro.machine import IPSC860

        e.machine.network.cost_model = IPSC860
        e.declare("A", (8,), dist=dist_type("BLOCK"))
        e.foreach_owned("A", lambda r, l, g: None, flops_per_element=100.0)
        assert e.machine.time > 0
