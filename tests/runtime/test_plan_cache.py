"""Tests for redistribution-plan caching (§3.2 run-time optimization)."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import PlanCache, communicate, transfer_matrix

R = ProcessorArray("R", (4,))


class TestPlanCache:
    def test_hit_on_repeat(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        T1 = cache.transfer_matrix(old, new, 4)
        T2 = cache.transfer_matrix(old, new, 4)
        assert T1 is T2
        assert cache.hits == 1 and cache.misses == 1

    def test_correctness(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        assert (
            cache.transfer_matrix(old, new, 4)
            == transfer_matrix(old, new, 4)
        ).all()

    def test_distinct_pairs_distinct_plans(self):
        cache = PlanCache()
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        b = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(a, b, 4)
        cache.transfer_matrix(b, a, 4)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_capacity_eviction(self):
        cache = PlanCache(capacity=1)
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        b = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(a, b, 4)
        cache.transfer_matrix(b, a, 4)
        assert len(cache) == 1
        cache.transfer_matrix(a, b, 4)  # evicted: miss again
        assert cache.misses == 3

    def test_clear(self):
        cache = PlanCache()
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        cache.transfer_matrix(a, a, 4)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestPlanCacheStats:
    """Direct coverage of the PR-2 stats() surface (hit/miss counters
    plus resident matrix / move-plan populations)."""

    def test_fresh_cache_stats(self):
        s = PlanCache().stats()
        assert s["hits"] == 0 and s["misses"] == 0
        assert s["matrices"] == 0 and s["moves"] == 0
        assert s["shift_plans"] == 0 and s["sweep_plans"] == 0
        # the shared owner-map LRU counters ride along (process-wide)
        for key in ("owners_vec_hits", "owners_vec_misses",
                    "rank_map_hits", "rank_map_misses"):
            assert key in s

    def test_matrix_lookups_update_counters(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(old, new, 4)
        s = cache.stats()
        assert s["hits"] == 0 and s["misses"] == 1
        assert s["matrices"] == 1 and s["moves"] == 0
        cache.transfer_matrix(old, new, 4)
        cache.transfer_matrix(old, new, 4)
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 1

    def test_segment_moves_share_counters_but_not_population(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.segment_moves(old, new, 4)
        cache.segment_moves(old, new, 4)
        s = cache.stats()
        assert s["hits"] == 1 and s["misses"] == 1
        assert s["matrices"] == 0 and s["moves"] == 1
        # the same (old, new) pair in the matrix cache is a separate miss
        cache.transfer_matrix(old, new, 4)
        s = cache.stats()
        assert s["misses"] == 2 and s["matrices"] == 1

    def test_clear_resets_stats(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(old, new, 4)
        cache.segment_moves(old, new, 4)
        cache.clear()
        s = cache.stats()
        assert s["hits"] == 0 and s["misses"] == 0
        assert s["matrices"] == 0 and s["moves"] == 0
        assert s["shift_plans"] == 0 and s["sweep_plans"] == 0

    def test_engine_summary_reports_cache_stats(self):
        machine = Machine(R)
        engine = Engine(machine)
        v = engine.declare(
            "V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        v.from_global(np.zeros((16, 16)))
        engine.distribute("V", dist_type("BLOCK", ":"))
        text = engine.redistribution_summary()
        s = engine.plan_cache.stats()
        assert f"{s['hits']} hits / {s['misses']} misses" in text
        assert f"{s['matrices']} matrices" in text


class TestRedistributionReportSummary:
    """Direct coverage of the PR-2 report fields (backend name and
    plan-cache hit/miss counts) and their summary() rendering."""

    def test_summary_renders_backend_and_cache_fields(self):
        from repro.runtime.redistribute import RedistributionReport

        rep = RedistributionReport(
            "V", 12, 960, 120, 136, 3.25e-4,
            cache_hits=5, cache_misses=1, backend="multiprocess",
        )
        text = rep.summary()
        assert text.startswith("V: 12 msgs, 960B")
        assert "moved=120" in text and "kept=136" in text
        assert "[backend=multiprocess, plan cache 5 hit / 1 miss]" in text

    def test_communicate_populates_cache_fields(self):
        machine = Machine(R)
        engine = Engine(machine)
        arr = engine.declare(
            "B", (16, 4), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        arr.from_global(np.zeros((16, 4)))
        there = dist_type(":", "BLOCK")
        back = dist_type("BLOCK", ":")
        first = engine.distribute("B", there)[0]
        assert first.backend == "serial"
        assert first.cache_misses == 1 and first.cache_hits == 0
        engine.distribute("B", back)
        repeat = engine.distribute("B", there)[0]
        assert repeat.cache_hits == 1 and repeat.cache_misses == 0
        assert "plan cache 1 hit / 0 miss" in repeat.summary()

    def test_notransfer_report_carries_backend(self):
        machine = Machine(R)
        engine = Engine(machine)
        engine.declare(
            "P", (16,), dist=dist_type("BLOCK"), dynamic=True
        )
        engine.declare("S", (16,), dynamic=True, connect=("P", "="))
        reports = engine.distribute(
            "P", dist_type("CYCLIC"), notransfer=("S",)
        )
        by_name = {r.array_name: r for r in reports}
        assert by_name["S"].messages == 0
        assert by_name["S"].backend == "serial"
        assert "backend=serial" in by_name["S"].summary()


class TestEngineIntegration:
    def test_adi_flips_hit_cache(self):
        """The ADI outer loop reuses two plans after the first lap."""
        machine = Machine(R)
        engine = Engine(machine)
        v = engine.declare(
            "V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        data = np.random.default_rng(0).standard_normal((16, 16))
        v.from_global(data)
        for _ in range(5):
            engine.distribute("V", dist_type("BLOCK", ":"))
            engine.distribute("V", dist_type(":", "BLOCK"))
        assert engine.plan_cache.misses == 2
        assert engine.plan_cache.hits == 8
        assert np.array_equal(v.to_global(), data)

    def test_cached_communicate_preserves_data(self):
        machine = Machine(R)
        engine = Engine(machine)
        arr = engine.declare(
            "A", (16, 4), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        data = np.arange(64.0).reshape(16, 4)
        arr.from_global(data)
        cache = PlanCache()
        for t in (dist_type(":", "BLOCK"), dist_type("BLOCK", ":")) * 3:
            communicate(arr, t.apply((16, 4), R), plan_cache=cache)
            assert np.array_equal(arr.to_global(), data)
        assert cache.hits > 0
