"""Tests for redistribution-plan caching (§3.2 run-time optimization)."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import PlanCache, communicate, transfer_matrix

R = ProcessorArray("R", (4,))


class TestPlanCache:
    def test_hit_on_repeat(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        T1 = cache.transfer_matrix(old, new, 4)
        T2 = cache.transfer_matrix(old, new, 4)
        assert T1 is T2
        assert cache.hits == 1 and cache.misses == 1

    def test_correctness(self):
        cache = PlanCache()
        old = dist_type("BLOCK", ":").apply((16, 4), R)
        new = dist_type(":", "BLOCK").apply((16, 4), R)
        assert (
            cache.transfer_matrix(old, new, 4)
            == transfer_matrix(old, new, 4)
        ).all()

    def test_distinct_pairs_distinct_plans(self):
        cache = PlanCache()
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        b = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(a, b, 4)
        cache.transfer_matrix(b, a, 4)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_capacity_eviction(self):
        cache = PlanCache(capacity=1)
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        b = dist_type(":", "BLOCK").apply((16, 4), R)
        cache.transfer_matrix(a, b, 4)
        cache.transfer_matrix(b, a, 4)
        assert len(cache) == 1
        cache.transfer_matrix(a, b, 4)  # evicted: miss again
        assert cache.misses == 3

    def test_clear(self):
        cache = PlanCache()
        a = dist_type("BLOCK", ":").apply((16, 4), R)
        cache.transfer_matrix(a, a, 4)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestEngineIntegration:
    def test_adi_flips_hit_cache(self):
        """The ADI outer loop reuses two plans after the first lap."""
        machine = Machine(R)
        engine = Engine(machine)
        v = engine.declare(
            "V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        data = np.random.default_rng(0).standard_normal((16, 16))
        v.from_global(data)
        for _ in range(5):
            engine.distribute("V", dist_type("BLOCK", ":"))
            engine.distribute("V", dist_type(":", "BLOCK"))
        assert engine.plan_cache.misses == 2
        assert engine.plan_cache.hits == 8
        assert np.array_equal(v.to_global(), data)

    def test_cached_communicate_preserves_data(self):
        machine = Machine(R)
        engine = Engine(machine)
        arr = engine.declare(
            "A", (16, 4), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        data = np.arange(64.0).reshape(16, 4)
        arr.from_global(data)
        cache = PlanCache()
        for t in (dist_type(":", "BLOCK"), dist_type("BLOCK", ":")) * 3:
            communicate(arr, t.apply((16, 4), R), plan_cache=cache)
            assert np.array_equal(arr.to_global(), data)
        assert cache.hits > 0
