"""Tests for the PARTI-style inspector/executor (§3.2, §4)."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.engine import Engine


def make(n=16, procs=4):
    machine = Machine(ProcessorArray("R", (procs,)), cost_model=IPSC860)
    engine = Engine(machine)
    arr = engine.declare("X", (n,), dist=dist_type("BLOCK"), dynamic=True)
    arr.from_global(np.arange(n, dtype=float) * 10)
    return machine, engine, arr


class TestInspect:
    def test_owner_resolution(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([0, 5, 12])})
        assert list(sched.owner_of[0]) == [0, 1, 3]

    def test_nonlocal_counts(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([0, 1, 5, 12])})
        assert sched.nonlocal_counts() == {0: 2}

    def test_message_pairs_aggregate(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([5, 6, 12]), 1: np.array([0])})
        pairs = sched.message_pairs()
        assert pairs[(1, 0)] == 2  # elements 5, 6 from owner 1 to reader 0
        assert pairs[(3, 0)] == 1
        assert pairs[(0, 1)] == 1

    def test_shape_validation(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        with pytest.raises(ValueError):
            insp.inspect({0: np.zeros((2, 2), dtype=int)})


class TestGather:
    def test_values_correct(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        idx = np.array([3, 7, 11, 15])
        sched = insp.inspect({2: idx})
        vals = insp.gather(sched)
        assert np.array_equal(vals[2], idx * 10.0)

    def test_messages_aggregated(self):
        machine, engine, arr = make()
        insp = engine.inspector("X")
        # rank 0 reads two elements from rank 1 and one from rank 2
        sched = insp.inspect({0: np.array([4, 5, 8])})
        before = machine.stats()
        insp.gather(sched)
        diff = machine.stats() - before
        assert diff.messages == 2  # one per owning processor
        assert diff.bytes == 3 * 8

    def test_local_requests_free(self):
        machine, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({1: np.array([4, 5, 6, 7])})
        before = machine.stats().messages
        insp.gather(sched)
        assert machine.stats().messages == before

    def test_schedule_reuse(self):
        """Executor runs many times on one inspector pass."""
        machine, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([12])})
        v1 = insp.gather(sched)
        arr.set((12,), -1.0)
        v2 = insp.gather(sched)
        assert v1[0][0] == 120.0
        assert v2[0][0] == -1.0

    def test_stale_schedule_rejected_after_redistribute(self):
        """Redistribution invalidates schedules (the §1 bookkeeping cost)."""
        _, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([12])})
        engine.distribute("X", dist_type("CYCLIC"))
        with pytest.raises(RuntimeError, match="stale"):
            insp.gather(sched)

    def test_reinspect_after_redistribute(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        engine.distribute("X", dist_type("CYCLIC"))
        sched = insp.inspect({0: np.array([12])})
        vals = insp.gather(sched)
        assert vals[0][0] == 120.0


class TestScatterAdd:
    def test_accumulation(self):
        _, engine, arr = make()
        arr.fill(0.0)
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([3, 3, 12]), 1: np.array([3])})
        insp.scatter_add(sched, {0: np.array([1.0, 2.0, 5.0]), 1: np.array([4.0])})
        assert arr.get((3,)) == 7.0
        assert arr.get((12,)) == 5.0

    def test_reverse_message_direction(self):
        machine, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([12])})
        machine.reset_network()
        insp.scatter_add(sched, {0: np.array([1.0])})
        # data flows requester 0 -> owner 3
        assert machine.network.link_bytes() == {(0, 3): 8}

    def test_length_mismatch_rejected(self):
        _, engine, arr = make()
        insp = engine.inspector("X")
        sched = insp.inspect({0: np.array([1, 2])})
        with pytest.raises(ValueError):
            insp.scatter_add(sched, {0: np.array([1.0])})
