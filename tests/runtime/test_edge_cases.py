"""Edge-case coverage across the runtime layer."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock, Replicated
from repro.core.distribution import dist_type
from repro.core.dynamic import DynamicAttr
from repro.machine import Machine, MemoryError_, PARAGON, ProcessorArray
from repro.runtime.communication import reduce_scalar, shift_exchange
from repro.runtime.engine import Engine
from repro.runtime.redistribute import communicate


class TestReplicatedArrays:
    def make(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        engine = Engine(machine)
        arr = engine.declare(
            "A", (8,), dist=dist_type(Replicated()), dynamic=True
        )
        return machine, engine, arr

    def test_every_processor_holds_full_copy(self):
        _, _, arr = self.make()
        arr.from_global(np.arange(8.0))
        for rank in range(4):
            assert np.array_equal(arr.local(rank), np.arange(8.0))

    def test_redistribute_replicated_to_block(self):
        machine, engine, arr = self.make()
        arr.from_global(np.arange(8.0))
        rep = communicate(arr, dist_type(Block()).apply((8,), machine.processors))
        assert np.array_equal(arr.to_global(), np.arange(8.0))
        # primary copies already sit on their new owners for 1/4 of
        # the data; no fan-out is needed in this direction
        assert rep.elements_moved <= 8

    def test_redistribute_block_to_replicated_fans_out(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        engine = Engine(machine)
        arr = engine.declare("A", (8,), dist=dist_type(Block()), dynamic=True)
        arr.from_global(np.arange(8.0))
        rep = communicate(
            arr, dist_type(Replicated()).apply((8,), machine.processors)
        )
        assert rep.elements_moved == 8 * 3
        for rank in range(4):
            assert np.array_equal(arr.local(rank), np.arange(8.0))


class TestDegenerateSizes:
    def test_single_processor_machine(self):
        machine = Machine(ProcessorArray("R", (1,)))
        engine = Engine(machine)
        arr = engine.declare("A", (8, 8), dist=dist_type("BLOCK", ":"), dynamic=True)
        arr.from_global(np.eye(8))
        rep = engine.distribute("A", dist_type(Cyclic(3), ":"))[0]
        assert rep.messages == 0  # nowhere to send
        assert np.array_equal(arr.to_global(), np.eye(8))

    def test_single_element_array(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        arr = engine.declare("A", (1,), dist=dist_type("BLOCK"), dynamic=True)
        arr.set((0,), 5.0)
        engine.distribute("A", dist_type(Cyclic(1)))
        assert arr.get((0,)) == 5.0

    def test_more_processors_than_elements(self):
        machine = Machine(ProcessorArray("R", (8,)))
        engine = Engine(machine)
        arr = engine.declare("A", (3,), dist=dist_type("BLOCK"), dynamic=True)
        arr.from_global(np.array([1.0, 2.0, 3.0]))
        assert arr.owning_ranks() == [0, 1, 2]
        engine.distribute("A", dist_type(GenBlock([0, 0, 1, 1, 1, 0, 0, 0])))
        assert np.array_equal(arr.to_global(), [1.0, 2.0, 3.0])
        assert arr.owning_ranks() == [2, 3, 4]

    def test_shift_exchange_single_owner_no_messages(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        arr = engine.declare(
            "A", (3,), dist=dist_type(GenBlock([3, 0, 0, 0])), dynamic=True
        )
        recv = shift_exchange(arr, 0)
        assert machine.stats().messages == 0
        assert recv[0] == {}


class TestMemoryCapacity:
    def test_engine_respects_capacity(self):
        machine = Machine(ProcessorArray("R", (2,)), memory_capacity=100)
        engine = Engine(machine)
        with pytest.raises(MemoryError_):
            engine.declare("BIG", (100, 100), dist=dist_type("BLOCK", ":"))

    def test_two_arrays_exceed_where_one_fits(self):
        # each local segment: 8 elements * 8 B = 64 B; capacity 100
        machine = Machine(ProcessorArray("R", (2,)), memory_capacity=100)
        engine = Engine(machine)
        engine.declare("A", (16,), dist=dist_type("BLOCK"))
        with pytest.raises(MemoryError_):
            engine.declare("B", (16,), dist=dist_type("BLOCK"))


class TestReduceEdge:
    def test_single_processor(self):
        machine = Machine(ProcessorArray("R", (1,)))
        assert reduce_scalar(machine, {0: 42.0}) == 42.0
        assert machine.stats().messages == 0

    def test_nonzero_root(self):
        machine = Machine(ProcessorArray("R", (4,)))
        total = reduce_scalar(
            machine, {r: 1.0 for r in range(4)}, root=2, tree=True
        )
        assert total == 4.0


class TestDynamicLifecycle:
    def test_initial_distribution_reallocated_fresh(self):
        """§2.3: 'An initial distribution is evaluated and associated
        with each Bi each time the array is allocated.'"""
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        a = engine.declare(
            "A", (8,), dynamic=DynamicAttr(initial=dist_type("BLOCK"))
        )
        assert a.dist.dtype == dist_type("BLOCK")
        assert a.version == 1

    def test_distribute_then_access_pattern(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        b1 = engine.declare("B1", (8,), dynamic=True)
        from repro.core.descriptor import DistributionUndefinedError

        with pytest.raises(DistributionUndefinedError):
            b1.get((0,))
        engine.distribute("B1", dist_type("BLOCK"))
        b1.set((0,), 1.0)
        assert b1.get((0,)) == 1.0
