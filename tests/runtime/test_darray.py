"""Tests for distributed arrays (global addressing over segments)."""

import numpy as np
import pytest

from repro.core.dimdist import Cyclic, Replicated
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine


def make(dist=None, shape=(8, 8), procs=(4,), dynamic=False, **kw):
    machine = Machine(ProcessorArray("R", procs))
    engine = Engine(machine)
    dist = dist or dist_type("BLOCK", ":")
    arr = engine.declare("A", shape, dist=dist, dynamic=dynamic, **kw)
    return machine, engine, arr


class TestSegments:
    def test_local_shapes(self):
        _, _, a = make()
        for rank in range(4):
            assert a.local(rank).shape == (2, 8)

    def test_segments_allocated_in_local_memory(self):
        m, _, a = make()
        for rank in range(4):
            assert "array:A" in m.memory(rank)

    def test_empty_owner_zero_size(self):
        # 2 elements over 4 processors: trailing blocks empty
        m, _, a = make(dist=dist_type("BLOCK"), shape=(2,))
        assert a.local(0).size == 1
        assert a.local(3).size == 0

    def test_owning_ranks(self):
        _, _, a = make(dist=dist_type("BLOCK"), shape=(2,))
        assert a.owning_ranks() == [0, 1]


class TestGlobalRoundtrip:
    @pytest.mark.parametrize(
        "dist,shape",
        [
            (dist_type("BLOCK", ":"), (8, 8)),
            (dist_type(":", "BLOCK"), (8, 8)),
            (dist_type(Cyclic(1), ":"), (8, 8)),
            (dist_type(Cyclic(3), ":"), (10, 4)),
            (dist_type("BLOCK"), (17,)),
        ],
    )
    def test_from_to_global(self, dist, shape):
        _, _, a = make(dist=dist, shape=shape)
        g = np.arange(np.prod(shape), dtype=float).reshape(shape)
        a.from_global(g)
        assert np.array_equal(a.to_global(), g)

    def test_from_global_shape_check(self):
        _, _, a = make()
        with pytest.raises(ValueError):
            a.from_global(np.zeros((4, 4)))

    def test_2d_grid(self):
        machine = Machine(ProcessorArray("R", (2, 2)))
        engine = Engine(machine)
        a = engine.declare("A", (6, 6), dist=dist_type("BLOCK", "BLOCK"))
        g = np.random.default_rng(0).standard_normal((6, 6))
        a.from_global(g)
        assert np.array_equal(a.to_global(), g)


class TestElementAccess:
    def test_get_set(self):
        _, _, a = make()
        a.set((3, 5), 42.0)
        assert a.get((3, 5)) == 42.0

    def test_set_writes_owner_segment(self):
        _, _, a = make()
        a.set((3, 5), 7.0)
        rank = a.dist.owner((3, 5))
        lidx = a.dist.global_to_local(rank, (3, 5))
        assert a.local(rank)[lidx] == 7.0

    def test_replicated_set_updates_all_copies(self):
        _, _, a = make(dist=dist_type(Replicated(), ":"), shape=(4, 4))
        a.set((1, 1), 5.0)
        for rank in range(4):
            assert a.local(rank)[1, 1] == 5.0

    def test_bounds_checked(self):
        _, _, a = make()
        with pytest.raises(IndexError):
            a.get((8, 0))


class TestSPMDAccess:
    def test_local_read_free(self):
        m, _, a = make()
        a.set((0, 0), 1.0)
        owner = a.dist.owner((0, 0))
        v = a.read_remote(owner, (0, 0))
        assert v == 1.0
        assert m.stats().messages == 0

    def test_remote_read_costs_one_element_message(self):
        m, _, a = make()
        a.set((0, 0), 2.0)
        owner = a.dist.owner((0, 0))
        reader = (owner + 1) % 4
        v = a.read_remote(reader, (0, 0))
        assert v == 2.0
        s = m.stats()
        assert s.messages == 1
        assert s.bytes == a.itemsize

    def test_replicated_read_prefers_local_copy(self):
        m, _, a = make(dist=dist_type(Replicated(), ":"), shape=(4, 4))
        a.set((2, 2), 3.0)
        assert a.read_remote(3, (2, 2)) == 3.0
        assert m.stats().messages == 0

    def test_write_owner_remote(self):
        m, _, a = make()
        owner = a.dist.owner((0, 0))
        writer = (owner + 2) % 4
        a.write_owner(writer, (0, 0), 9.0)
        assert a.get((0, 0)) == 9.0
        assert m.stats().messages == 1

    def test_write_owner_local_free(self):
        m, _, a = make()
        owner = a.dist.owner((5, 0))
        a.write_owner(owner, (5, 0), 4.0)
        assert m.stats().messages == 0


class TestMisc:
    def test_fill(self):
        _, _, a = make()
        a.fill(3.5)
        assert (a.to_global() == 3.5).all()

    def test_version_tracks_descriptor(self):
        _, engine, a = make(dynamic=True)
        v0 = a.version
        engine.distribute("A", dist_type(":", "BLOCK"))
        assert a.version == v0 + 1

    def test_dtype_plumbed(self):
        _, _, a = make(dtype=np.int64)
        assert a.np_dtype == np.int64
        assert a.itemsize == 8

    def test_repr(self):
        _, _, a = make()
        assert "A" in repr(a) and "BLOCK" in repr(a)
