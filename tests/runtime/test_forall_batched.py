"""Unit tests for the vectorized (batched) FORALL path."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.batched import forall_batched
from repro.runtime.engine import Engine


def make(n=12, dist=None):
    machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
    engine = Engine(machine)
    a = engine.declare("A", (n,), dist=dist or dist_type("BLOCK"))
    b = engine.declare("B", (n,), dist=dist or dist_type("BLOCK"))
    b.from_global(np.arange(n, dtype=float))
    return machine, engine, a, b


class TestForallBatched:
    def test_pure_function_of_index(self):
        machine, engine, a, b = make()
        forall_batched(a, lambda cols, read: (cols[0] ** 2).astype(float))
        assert np.array_equal(a.to_global(), np.arange(12.0) ** 2)

    def test_aligned_reads_are_free(self):
        machine, engine, a, b = make()
        counts = forall_batched(
            a, lambda cols, read: read("B", cols) * 2, reads={"B": b}
        )
        assert np.array_equal(a.to_global(), np.arange(12.0) * 2)
        assert all(c == 0 for c in counts.values())
        assert machine.stats().messages == 0

    def test_shifted_reads_cost_messages(self):
        machine, engine, a, b = make()
        counts = forall_batched(
            a,
            lambda cols, read: read("B", (np.minimum(cols[0] + 1, 11),)),
            reads={"B": b},
        )
        # each block boundary causes one remote read (3 boundaries)
        assert sum(counts.values()) == 3
        assert machine.stats().messages == 3

    def test_in_place_body_sees_old_values(self):
        """lhs(i) = lhs(i_prev) uses pre-loop values (forall semantics)."""
        machine, engine, a, b = make()
        a.from_global(np.arange(12.0))
        forall_batched(a, lambda cols, read: read("A", ((cols[0] + 1) % 12,)))
        assert np.array_equal(a.to_global(), np.roll(np.arange(12.0), -1))

    def test_2d_writes_land_in_owner_segments(self):
        machine = Machine(ProcessorArray("R", (2, 2)))
        engine = Engine(machine)
        a = engine.declare("A", (4, 4), dist=dist_type("BLOCK", "BLOCK"))
        forall_batched(
            a, lambda cols, read: (cols[0] * 10 + cols[1]).astype(float)
        )
        expect = np.add.outer(np.arange(4) * 10, np.arange(4)).astype(float)
        assert np.array_equal(a.to_global(), expect)

    def test_compute_time_charged(self):
        machine, engine, a, b = make()
        forall_batched(
            a,
            lambda cols, read: np.zeros(len(cols[0])),
            flops_per_element=100.0,
        )
        assert machine.time > 0

    def test_local_accessor_raises_on_remote(self):
        machine, engine, a, b = make()
        with pytest.raises(RuntimeError, match="non-local"):
            forall_batched(
                a,
                lambda cols, read: read.local("B", ((cols[0] + 6) % 12,)),
                reads={"B": b},
            )

    def test_local_accessor_serves_local_reads(self):
        machine, engine, a, b = make()
        counts = forall_batched(
            a, lambda cols, read: read.local("B", cols) + 1.0, reads={"B": b}
        )
        assert np.array_equal(a.to_global(), np.arange(12.0) + 1.0)
        assert machine.stats().messages == 0
        assert all(c == 0 for c in counts.values())

    def test_out_of_range_index_raises(self):
        machine, engine, a, b = make()
        with pytest.raises(IndexError):
            forall_batched(
                a, lambda cols, read: read("B", (cols[0] + 1,)), reads={"B": b}
            )

    def test_wrong_column_count_raises(self):
        machine, engine, a, b = make()
        with pytest.raises(ValueError, match="index columns"):
            forall_batched(
                a,
                lambda cols, read: read("B", (cols[0], cols[0])),
                reads={"B": b},
            )

    def test_replicated_read_array_is_always_local(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        a = engine.declare("A", (12,), dist=dist_type("BLOCK"))
        b = engine.declare("B", (12,), dist=dist_type("REPLICATED"))
        b.from_global(np.arange(12.0))
        counts = forall_batched(
            a,
            lambda cols, read: read("B", ((cols[0] + 5) % 12,)),
            reads={"B": b},
        )
        assert sum(counts.values()) == 0
        assert machine.stats().messages == 0
        assert np.array_equal(
            a.to_global(), np.roll(np.arange(12.0), -5)
        )
