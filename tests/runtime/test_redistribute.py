"""Tests for the DISTRIBUTE implementation (paper §3.2.2)."""

import numpy as np
import pytest

from repro.core.dimdist import Cyclic, GenBlock, Replicated
from repro.core.distribution import dist_type
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.redistribute import (
    communicate,
    transfer_matrix,
    transfer_matrix_naive,
)

P4 = ProcessorArray("R", (4,))


def bind(t, shape=(8, 8)):
    return t.apply(shape, P4)


class TestTransferMatrix:
    def test_identity_redistribution_moves_nothing(self):
        d = bind(dist_type("BLOCK", ":"))
        T = transfer_matrix(d, d, 4)
        assert T.sum() == 0

    def test_diagonal_always_zero(self):
        old = bind(dist_type("BLOCK", ":"))
        new = bind(dist_type(Cyclic(1), ":"))
        T = transfer_matrix(old, new, 4)
        assert (np.diag(T) == 0).all()

    def test_block_to_cyclic_counts(self):
        old = bind(dist_type("BLOCK"), (8,))
        new = bind(dist_type(Cyclic(1)), (8,))
        T = transfer_matrix(old, new, 4)
        # owner maps: block [0,0,1,1,2,2,3,3], cyclic [0,1,2,3,0,1,2,3];
        # indices 0 and 5 stay put, the other 6 move
        assert T.sum() == 6
        assert (T == transfer_matrix_naive(old, new, 4)).all()

    @pytest.mark.parametrize(
        "old_t,new_t,shape",
        [
            (dist_type("BLOCK", ":"), dist_type(":", "BLOCK"), (8, 8)),
            (dist_type("BLOCK", ":"), dist_type(Cyclic(1), ":"), (8, 8)),
            (dist_type(Cyclic(2), ":"), dist_type(Cyclic(3), ":"), (12, 4)),
            (
                dist_type(GenBlock([1, 3, 2, 2]), ":"),
                dist_type("BLOCK", ":"),
                (8, 8),
            ),
        ],
    )
    def test_vectorized_matches_naive(self, old_t, new_t, shape):
        """The E4 ablation invariant: fast path == per-element oracle."""
        old, new = bind(old_t, shape), bind(new_t, shape)
        T_fast = transfer_matrix(old, new, 4)
        T_slow = transfer_matrix_naive(old, new, 4)
        assert (T_fast == T_slow).all()

    def test_replication_fanout(self):
        old = bind(dist_type("BLOCK"), (8,))
        new = bind(dist_type(Replicated()), (8,))
        T = transfer_matrix(old, new, 4)
        # every element goes to the 3 other processors
        assert T.sum() == 8 * 3
        assert (T == transfer_matrix_naive(old, new, 4)).all()

    def test_domain_mismatch_rejected(self):
        old = bind(dist_type("BLOCK"), (8,))
        new = bind(dist_type("BLOCK"), (9,))
        with pytest.raises(ValueError):
            transfer_matrix(old, new, 4)


class TestCommunicate:
    def setup_method(self):
        self.machine = Machine(P4, cost_model=PARAGON)
        self.engine = Engine(self.machine)
        self.arr = self.engine.declare(
            "V", (8, 8), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        self.data = np.arange(64, dtype=float).reshape(8, 8)
        self.arr.from_global(self.data)

    def test_data_preserved(self):
        communicate(self.arr, bind(dist_type(":", "BLOCK")))
        assert np.array_equal(self.arr.to_global(), self.data)

    def test_descriptor_updated(self):
        communicate(self.arr, bind(dist_type(":", "BLOCK")))
        assert self.arr.dist.dtype == dist_type(":", "BLOCK")

    def test_messages_aggregated_per_pair(self):
        rep = communicate(self.arr, bind(dist_type(":", "BLOCK")))
        T = transfer_matrix(
            bind(dist_type("BLOCK", ":")), bind(dist_type(":", "BLOCK")), 4
        )
        assert rep.messages == int((T > 0).sum())

    def test_report_volume(self):
        rep = communicate(self.arr, bind(dist_type(":", "BLOCK")))
        assert rep.bytes == rep.elements_moved * 8
        assert rep.elements_moved + rep.elements_kept == 64

    def test_identity_redistribution_free(self):
        rep = communicate(self.arr, bind(dist_type("BLOCK", ":")))
        assert rep.messages == 0
        assert rep.bytes == 0
        assert rep.elements_kept == 64

    def test_notransfer_skips_motion(self):
        rep = communicate(
            self.arr, bind(dist_type(":", "BLOCK")), transfer=False
        )
        assert rep.messages == 0
        assert self.arr.dist.dtype == dist_type(":", "BLOCK")
        # values are undefined but segments exist with the right shape
        assert self.arr.local(0).shape == (8, 2)

    def test_clock_advances(self):
        t0 = self.machine.time
        communicate(self.arr, bind(dist_type(":", "BLOCK")))
        assert self.machine.time > t0

    def test_version_bumped(self):
        v = self.arr.version
        communicate(self.arr, bind(dist_type(":", "BLOCK")))
        assert self.arr.version == v + 1

    def test_chained_redistributions_preserve_data(self):
        for t in (
            dist_type(":", "BLOCK"),
            dist_type(Cyclic(1), ":"),
            dist_type(Cyclic(3), ":"),
            dist_type(GenBlock([1, 3, 2, 2]), ":"),
            dist_type("BLOCK", ":"),
        ):
            communicate(self.arr, bind(t))
            assert np.array_equal(self.arr.to_global(), self.data)


class TestBBlockRedistribution:
    """The PIC pattern: regular BLOCK -> B_BLOCK(BOUNDS)."""

    def test_bblock_moves_only_boundary_cells(self):
        machine = Machine(P4)
        engine = Engine(machine)
        arr = engine.declare("F", (8,), dist=dist_type("BLOCK"), dynamic=True)
        arr.from_global(np.arange(8.0))
        # shift one cell from proc 0's block to proc 1's
        rep = communicate(arr, bind(dist_type(GenBlock([1, 3, 2, 2])), (8,)))
        assert rep.elements_moved == 1
        assert np.array_equal(arr.to_global(), np.arange(8.0))


class TestBruteforceIsolation:
    """The quadratic per-element oracle (``transfer_matrix_naive``,
    a.k.a. ``transfer_matrix_bruteforce``) must only be reachable from
    the E4 bench and the property tests — never from a production
    path (communicate, the planner's cost engines, or anything
    PlanCache-mediated)."""

    def test_bruteforce_alias_exported(self):
        from repro.runtime.redistribute import (
            transfer_matrix_bruteforce,
            transfer_matrix_naive,
        )

        assert transfer_matrix_bruteforce is transfer_matrix_naive

    def test_production_paths_never_call_bruteforce(self, monkeypatch):
        import repro.runtime.redistribute as mod

        def _forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError(
                "transfer_matrix_naive reached from a production path"
            )

        monkeypatch.setattr(mod, "transfer_matrix_naive", _forbidden)
        monkeypatch.setattr(mod, "transfer_matrix_bruteforce", _forbidden)

        # 1. the run time: DISTRIBUTE through the engine (PlanCache path)
        machine = Machine(P4, cost_model=PARAGON)
        engine = Engine(machine)
        arr = engine.declare(
            "V", (8, 8), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        arr.from_global(np.arange(64.0).reshape(8, 8))
        engine.distribute("V", dist_type(":", "BLOCK"))

        # 2. direct communicate with and without a cache
        from repro.runtime.redistribute import PlanCache

        communicate(arr, bind(dist_type("CYCLIC", ":")))
        communicate(
            arr, bind(dist_type("BLOCK", ":")), plan_cache=PlanCache()
        )

        # 3. the planner's cost engines (model and simulated pricing)
        from repro.planner import CostEngine, SimulatedCostEngine

        old, new = bind(dist_type("BLOCK", ":")), bind(dist_type(":", "BLOCK"))
        CostEngine(machine).transition_cost(old, new)
        SimulatedCostEngine(machine).transition_cost(old, new)

        # 4. a full planning run
        from repro.planner import adi_workload, plan_workload

        plan_workload(adi_workload(16, 16, iterations=2, nprocs=4))
