"""Tests for section-level communication routines (§3.2)."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.communication import (
    broadcast_from,
    gather_to,
    reduce_scalar,
    shift_exchange,
)
from repro.runtime.engine import Engine


def make_1d(n=16, procs=4, dist=None):
    machine = Machine(ProcessorArray("R", (procs,)), cost_model=IPSC860)
    engine = Engine(machine)
    arr = engine.declare("A", (n,), dist=dist or dist_type("BLOCK"))
    arr.from_global(np.arange(n, dtype=float))
    return machine, arr


def make_cols(n=8, procs=4):
    machine = Machine(ProcessorArray("R", (procs,)), cost_model=IPSC860)
    engine = Engine(machine)
    arr = engine.declare("A", (n, n), dist=dist_type(":", "BLOCK"))
    arr.from_global(np.arange(n * n, dtype=float).reshape(n, n))
    return machine, arr


class TestShiftExchange:
    def test_1d_neighbors_get_boundary_values(self):
        machine, arr = make_1d()
        recv = shift_exchange(arr, dim=0, width=1)
        # proc 1 owns [4..7]; its 'lo' ghost is element 3, 'hi' is 8
        assert recv[1]["lo"][0] == 3.0
        assert recv[1]["hi"][0] == 8.0
        # edge processors have one-sided halos
        assert "lo" not in recv[0]
        assert "hi" not in recv[3]

    def test_message_count_interior_two_per_proc(self):
        machine, arr = make_1d()
        before = machine.stats().messages
        shift_exchange(arr, dim=0)
        # 3 boundaries x 2 directions
        assert machine.stats().messages - before == 6

    def test_column_distribution_message_size_is_full_column(self):
        """The §4 claim: column distribution sends messages of size N."""
        machine, arr = make_cols(n=8)
        before = machine.stats().bytes
        shift_exchange(arr, dim=1)
        nbytes = machine.stats().bytes - before
        assert nbytes == 6 * 8 * 8  # 6 messages x N elements x 8 bytes

    def test_width_two(self):
        machine, arr = make_1d()
        recv = shift_exchange(arr, dim=0, width=2)
        assert list(recv[1]["lo"]) == [2.0, 3.0]
        assert list(recv[1]["hi"]) == [8.0, 9.0]

    def test_width_validation(self):
        _, arr = make_1d()
        with pytest.raises(ValueError):
            shift_exchange(arr, dim=0, width=0)

    def test_noncontiguous_rejected(self):
        from repro.core.dimdist import Cyclic

        machine, arr = make_1d(dist=dist_type(Cyclic(1)))
        with pytest.raises(ValueError, match="contiguously"):
            shift_exchange(arr, dim=0)

    def test_2d_block_exchanges_both_dims(self):
        machine = Machine(ProcessorArray("R", (2, 2)), cost_model=IPSC860)
        engine = Engine(machine)
        arr = engine.declare("A", (8, 8), dist=dist_type("BLOCK", "BLOCK"))
        arr.from_global(np.arange(64, dtype=float).reshape(8, 8))
        r0 = shift_exchange(arr, dim=0)
        r1 = shift_exchange(arr, dim=1)
        # every processor has exactly one neighbour per dimension
        for rank in range(4):
            assert len(r0[rank]) == 1
            assert len(r1[rank]) == 1


class TestGatherBroadcast:
    def test_gather_collects_and_counts(self):
        machine, arr = make_1d()
        before = machine.stats()
        g = gather_to(arr, root=0)
        assert np.array_equal(g, np.arange(16.0))
        diff = machine.stats() - before
        assert diff.messages == 3  # every non-root owner sends once
        assert diff.bytes == 3 * 4 * 8

    def test_broadcast_scatters(self):
        machine, arr = make_1d()
        vals = np.linspace(0, 1, 16)
        before = machine.stats().messages
        broadcast_from(arr, vals, root=2)
        assert np.allclose(arr.to_global(), vals)
        assert machine.stats().messages - before == 3


class TestReduce:
    def test_flat_reduce(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        total = reduce_scalar(
            machine, {r: float(r + 1) for r in range(4)}, tree=False
        )
        assert total == 10.0
        assert machine.stats().messages == 3

    def test_tree_reduce_same_value(self):
        machine = Machine(ProcessorArray("R", (8,)), cost_model=IPSC860)
        total = reduce_scalar(
            machine, {r: float(r) for r in range(8)}, tree=True
        )
        assert total == sum(range(8))
        assert machine.stats().messages == 7

    def test_tree_faster_than_flat(self):
        """Tree reduction has log depth: less modeled time at scale."""
        vals = {r: 1.0 for r in range(16)}
        m_flat = Machine(ProcessorArray("R", (16,)), cost_model=IPSC860)
        reduce_scalar(m_flat, dict(vals), tree=False)
        m_tree = Machine(ProcessorArray("R", (16,)), cost_model=IPSC860)
        reduce_scalar(m_tree, dict(vals), tree=True)
        assert m_tree.time < m_flat.time

    def test_custom_op(self):
        machine = Machine(ProcessorArray("R", (3,)))
        result = reduce_scalar(
            machine, {0: 5.0, 1: 9.0, 2: 2.0}, op=max, tree=True
        )
        assert result == 9.0

    def test_root_must_contribute(self):
        machine = Machine(ProcessorArray("R", (3,)))
        with pytest.raises(ValueError):
            reduce_scalar(machine, {1: 1.0, 2: 2.0}, root=0)
