"""Tests for owner-computes FORALL loops."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.engine import Engine
from repro.runtime.forall import forall, forall_gathered


def make(n=12, dist=None):
    machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
    engine = Engine(machine)
    a = engine.declare("A", (n,), dist=dist or dist_type("BLOCK"))
    b = engine.declare("B", (n,), dist=dist or dist_type("BLOCK"))
    b.from_global(np.arange(n, dtype=float))
    return machine, engine, a, b


class TestForall:
    def test_pure_function_of_index(self):
        machine, engine, a, b = make()
        forall(a, lambda i, read: float(i[0] ** 2))
        assert np.array_equal(a.to_global(), np.arange(12.0) ** 2)

    def test_aligned_reads_are_free(self):
        machine, engine, a, b = make()
        counts = forall(a, lambda i, read: read("B", i) * 2, reads={"B": b})
        assert np.array_equal(a.to_global(), np.arange(12.0) * 2)
        assert all(c == 0 for c in counts.values())
        assert machine.stats().messages == 0

    def test_shifted_reads_cost_messages(self):
        machine, engine, a, b = make()

        def body(i, read):
            j = min(i[0] + 1, 11)
            return read("B", (j,))

        counts = forall(a, body, reads={"B": b})
        # each block boundary causes one remote read (3 boundaries)
        assert sum(counts.values()) == 3
        assert machine.stats().messages == 3

    def test_in_place_body_sees_old_values(self):
        """lhs(i) = lhs(i_prev) uses pre-loop values (forall semantics)."""
        machine, engine, a, b = make()
        a.from_global(np.arange(12.0))

        def body(i, read):
            j = (i[0] + 1) % 12
            return read("A", (j,))

        forall(a, body)
        assert np.array_equal(a.to_global(), np.roll(np.arange(12.0), -1))

    def test_2d(self):
        machine = Machine(ProcessorArray("R", (2, 2)))
        engine = Engine(machine)
        a = engine.declare("A", (4, 4), dist=dist_type("BLOCK", "BLOCK"))
        forall(a, lambda i, read: float(i[0] * 10 + i[1]))
        expect = np.add.outer(np.arange(4) * 10, np.arange(4)).astype(float)
        assert np.array_equal(a.to_global(), expect)

    def test_compute_time_charged(self):
        machine, engine, a, b = make()
        forall(a, lambda i, read: 0.0, flops_per_element=100.0)
        assert machine.time > 0

    def test_local_accessor_raises_on_remote(self):
        machine, engine, a, b = make()

        def body(i, read):
            return read.local("B", ((i[0] + 6) % 12,))

        with pytest.raises(RuntimeError, match="non-local"):
            forall(a, body, reads={"B": b})


class TestForallGathered:
    def test_stencil_via_inspector(self):
        machine, engine, a, b = make()

        def neighbors(i):
            n = 12
            return [((i[0] - 1) % n,), ((i[0] + 1) % n,)]

        counts = forall_gathered(
            a,
            neighbors,
            lambda i, vals: float(vals.sum()),
            source=b,
        )
        expect = np.roll(np.arange(12.0), 1) + np.roll(np.arange(12.0), -1)
        assert np.array_equal(a.to_global(), expect)
        # wrap-around + block boundaries: some reads off-processor
        assert sum(counts.values()) > 0

    def test_messages_aggregated_per_pair(self):
        machine, engine, a, b = make()

        def all_of_block_zero(i):
            return [(j,) for j in range(3)]

        machine.reset_network()
        forall_gathered(
            a, all_of_block_zero, lambda i, v: float(v.sum()), source=b
        )
        # ranks 1..3 each receive one aggregated message from rank 0
        assert machine.stats().messages == 3

    def test_empty_request_lists(self):
        machine, engine, a, b = make()
        forall_gathered(a, lambda i: [], lambda i, v: 7.0, source=b)
        assert (a.to_global() == 7.0).all()
