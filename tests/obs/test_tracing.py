"""Spans, contextvar ID propagation, and the Chrome-trace exporter."""

import json

import pytest

from repro.obs import metrics as m
from repro.obs.export import chrome_trace, dump_chrome_trace
from repro.obs.tracing import (
    clear_spans,
    finished_spans,
    get_request_id,
    get_trace_id,
    new_request_id,
    request_scope,
    set_request_id,
    span,
)


@pytest.fixture
def on():
    prev = m.set_enabled(True)
    clear_spans()
    yield
    clear_spans()
    m.set_enabled(prev)


def test_span_disabled_yields_none():
    prev = m.set_enabled(False)
    clear_spans()
    try:
        with span("quiet") as sp:
            assert sp is None
        assert finished_spans() == []
    finally:
        m.set_enabled(prev)


def test_span_records_name_attrs_duration(on):
    with span("work", array="V", size=64) as sp:
        sp.attrs["late"] = True
    (rec,) = finished_spans(name="work")
    assert rec is sp
    assert rec.attrs == {"array": "V", "size": 64, "late": True}
    assert rec.duration >= 0
    assert rec.thread


def test_spans_nest_and_share_trace(on):
    with span("outer") as outer:
        with span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
    assert outer.parent_id is None
    # trace id does not leak out of the outermost span
    assert get_trace_id() is None


def test_request_scope_propagates_ids(on):
    assert get_request_id() is None
    with request_scope() as rid:
        assert get_request_id() == rid
        assert get_trace_id() == rid
        with span("handler") as sp:
            pass
        assert sp.request_id == rid
        assert sp.trace_id == rid
    assert get_request_id() is None
    assert get_trace_id() is None


def test_request_scope_accepts_explicit_id(on):
    with request_scope("deadbeef") as rid:
        assert rid == "deadbeef"


def test_set_request_id_and_mint(on):
    rid = new_request_id()
    assert len(rid) == 16
    token = set_request_id(rid)
    try:
        assert get_request_id() == rid
    finally:
        set_request_id(None)
        del token


def test_finished_spans_filters(on):
    with request_scope("r1"):
        with span("a"):
            pass
    with span("b"):
        pass
    assert [s.name for s in finished_spans(name="a")] == ["a"]
    assert [s.name for s in finished_spans(request_id="r1")] == ["a"]
    assert len(finished_spans()) == 2


def test_spans_total_counter_bumped(on):
    c = m.registry.get("repro_spans_total")
    before = c.value(name="counted")
    with span("counted"):
        pass
    assert c.value(name="counted") == before + 1


def test_ring_buffer_bounded(on):
    from repro.obs import tracing

    for i in range(tracing._MAX_SPANS + 10):
        with span("flood"):
            pass
    assert len(finished_spans()) == tracing._MAX_SPANS


# -- chrome trace export --------------------------------------------------

def test_chrome_trace_events(on):
    with request_scope("feedc0de"):
        with span("serve.request", route="/plan"):
            with span("planner.plan_array", array="V"):
                pass
    doc = chrome_trace()
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"serve.request", "planner.plan_array"}
    assert all(e["pid"] == 1 for e in xs)
    child = next(e for e in xs if e["name"] == "planner.plan_array")
    assert child["args"]["request_id"] == "feedc0de"
    assert child["args"]["array"] == "V"
    assert "parent_id" in child["args"]
    metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    assert doc["otherData"]["runtime_spans"] == 2


def test_chrome_trace_merges_sim_timeline(on):
    import repro

    with repro.session(nprocs=2) as sess:
        timeline = sess.workload("smoothing", size=16, steps=2).trace().blocking
    with span("runtime"):
        pass
    doc = chrome_trace(timeline=timeline)
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}
    assert doc["otherData"]["runtime_spans"] >= 1


def test_dump_chrome_trace_writes_json(on, tmp_path):
    with span("persisted"):
        pass
    path = tmp_path / "trace.json"
    doc = dump_chrome_trace(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == doc
    assert any(e["name"] == "persisted" for e in on_disk["traceEvents"])
