"""The regression sentinel: hard/soft verdicts, exit codes, baseline
resolution order, and the smoke-as-baseline refusal."""

import json

import pytest

from repro.obs.compare import (
    EXIT_HARD,
    EXIT_SOFT,
    BaselineError,
    compare_perf_reports,
    compare_serve_reports,
    load_report,
    resolve_baseline,
)
from repro.obs.trajectory import TrajectoryStore


def _bench(name="forall", seconds=0.001, elements=100, match=True,
           size=None):
    return {
        "name": name,
        "size": size or {"n": 8},
        "vectorized_seconds": seconds,
        "reference_ops": {"elements": elements},
        "vectorized_ops": {"elements": elements},
        "match": match,
    }


def _report(benches=None, smoke=False):
    return {
        "schema": "repro-bench-perf/2",
        "smoke": smoke,
        "env": {"repro": "1.8.0", "python": "3.11", "numpy": "2.0",
                "platform": "test", "hostname": "test"},
        "benches": benches if benches is not None else [_bench()],
    }


# -- perf verdicts -----------------------------------------------------------


def test_identical_reports_are_clean():
    report = compare_perf_reports(_report(), _report())
    assert report.ok
    assert report.exit_code == 0
    (delta,) = report.deltas
    assert delta.verdict == "ok"
    assert "clean" in report.summary()


def test_op_count_drift_is_a_hard_fail():
    baseline = _report([_bench(elements=100)])
    current = _report([_bench(elements=107)])
    report = compare_perf_reports(baseline, current)
    assert report.exit_code == EXIT_HARD
    (delta,) = report.deltas
    assert delta.verdict == "hard_fail"
    # the drifted key is named with both values
    assert any("elements: 100 -> 107" in r for r in delta.reasons)


def test_match_false_is_a_hard_fail_regardless_of_baseline():
    current = _report([_bench(match=False)])
    report = compare_perf_reports(_report(), current)
    assert report.exit_code == EXIT_HARD
    assert any("match: false" in r for r in report.deltas[0].reasons)


def test_wall_drift_is_a_soft_fail():
    baseline = _report([_bench(seconds=0.010)])
    current = _report([_bench(seconds=0.030)])  # 3x > 1+tolerance (2x)
    report = compare_perf_reports(baseline, current)
    assert report.exit_code == EXIT_SOFT
    (delta,) = report.deltas
    assert delta.verdict == "soft_fail"
    assert delta.wall_source == "relative"
    assert report.hard_failures == []


def test_wall_within_tolerance_is_clean():
    baseline = _report([_bench(seconds=0.010)])
    current = _report([_bench(seconds=0.015)])
    assert compare_perf_reports(baseline, current).exit_code == 0


def test_hard_beats_soft_in_the_exit_code():
    baseline = _report([_bench(elements=100, seconds=0.010)])
    current = _report([_bench(elements=107, seconds=0.050)])
    assert compare_perf_reports(baseline, current).exit_code == EXIT_HARD


def test_size_mismatch_skips_op_comparison():
    baseline = _report([_bench(size={"n": 64}, elements=999)])
    current = _report([_bench(size={"n": 8}, elements=100)])
    report = compare_perf_reports(baseline, current)
    assert report.exit_code == 0
    assert any("not comparable" in r for r in report.deltas[0].reasons)


def test_baseline_only_bench_is_reported_skipped():
    baseline = _report([_bench("forall"), _bench("halo_exchange")])
    current = _report([_bench("forall")])
    report = compare_perf_reports(baseline, current)
    skipped = [d for d in report.deltas if d.verdict == "skipped"]
    assert [d.name for d in skipped] == ["halo_exchange"]
    assert report.exit_code == 0


def test_trajectory_noise_band_overrides_relative_tolerance(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    for s in (0.0100, 0.0101, 0.0102):
        store.append("perf", _report([_bench(seconds=s)]))
    baseline = _report([_bench(seconds=0.010)])
    # 13 ms: within the 2x relative tolerance, far outside mean + 3 sigma
    current = _report([_bench(seconds=0.013)])
    report = compare_perf_reports(baseline, current, trajectory=store)
    (delta,) = report.deltas
    assert delta.wall_source == "trajectory_noise"
    assert delta.verdict == "soft_fail"
    # without history the same pair is clean
    assert compare_perf_reports(baseline, current).exit_code == 0


def test_compare_report_json_roundtrip():
    report = compare_perf_reports(_report(), _report())
    doc = json.loads(json.dumps(report.to_json()))
    assert doc["schema"] == "repro-bench-compare/1"
    assert doc["exit_code"] == 0
    assert doc["deltas"][0]["verdict"] == "ok"


# -- baseline resolution -----------------------------------------------------


def test_explicit_baseline_path_wins(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps(_report([_bench(elements=42)])))
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _report([_bench(elements=7)]))
    baseline, source = resolve_baseline(
        _report(), baseline_path=str(path), trajectory=store
    )
    assert source == str(path)
    assert baseline["benches"][0]["reference_ops"]["elements"] == 42


def test_trajectory_beats_committed_snapshot(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_PERF.json").write_text(
        json.dumps(_report([_bench(elements=1)]))
    )
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _report([_bench(elements=2)]))
    baseline, source = resolve_baseline(_report(), trajectory=store)
    assert "traj.jsonl" in source
    assert baseline["benches"][0]["reference_ops"]["elements"] == 2


def test_falls_back_to_committed_snapshot(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_PERF.json").write_text(
        json.dumps(_report([_bench(elements=1)]))
    )
    baseline, source = resolve_baseline(
        _report(), trajectory=TrajectoryStore(tmp_path / "empty.jsonl")
    )
    assert source == "BENCH_PERF.json"


def test_no_baseline_anywhere_is_an_error(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(BaselineError, match="no baseline found"):
        resolve_baseline(_report())


def test_smoke_baseline_refused_for_full_size_run(tmp_path):
    path = tmp_path / "smoke.json"
    path.write_text(json.dumps(_report(smoke=True)))
    with pytest.raises(BaselineError, match="smoke-sized"):
        resolve_baseline(_report(smoke=False), baseline_path=str(path))
    # a BaselineError is a SystemExit: the CLI exits nonzero, no traceback
    assert issubclass(BaselineError, SystemExit)


def test_smoke_baseline_fine_for_smoke_run(tmp_path):
    path = tmp_path / "smoke.json"
    path.write_text(json.dumps(_report(smoke=True)))
    baseline, _ = resolve_baseline(
        _report(smoke=True), baseline_path=str(path)
    )
    assert baseline["smoke"] is True


def test_trajectory_resolution_matches_smoke_flag(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _report([_bench(elements=10)], smoke=True))
    store.append("perf", _report([_bench(elements=20)], smoke=False))
    baseline, _ = resolve_baseline(_report(smoke=True), trajectory=store)
    assert baseline["benches"][0]["reference_ops"]["elements"] == 10


def test_wrong_schema_refused(tmp_path):
    path = tmp_path / "serve.json"
    path.write_text(json.dumps({"schema": "repro-bench-serve/2"}))
    with pytest.raises(BaselineError, match="not a perf bench report"):
        resolve_baseline(_report(), baseline_path=str(path))


def test_load_report_from_trajectory_jsonl(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _report([_bench(elements=5)]))
    report = load_report(str(store.path))
    assert report["benches"][0]["reference_ops"]["elements"] == 5
    with pytest.raises(BaselineError, match="no such baseline"):
        load_report(str(tmp_path / "missing.json"))


# -- serve comparison --------------------------------------------------------


def _serve_report(failures=0, identical=True, hit_rate=0.9, p50=5.0):
    return {
        "schema": "repro-bench-serve/2",
        "smoke": True,
        "total_failures": failures,
        "byte_identical": identical,
        "phases": [
            {"name": "unique", "cache_hit_rate": 0.0,
             "latency": {"p50_ms": 30.0}},
            {"name": "repeated", "cache_hit_rate": hit_rate,
             "latency": {"p50_ms": p50}},
        ],
    }


def test_serve_clean():
    report = compare_serve_reports(_serve_report(), _serve_report())
    assert report.exit_code == 0


def test_serve_failures_and_byte_drift_are_hard():
    report = compare_serve_reports(
        _serve_report(), _serve_report(failures=2, identical=False)
    )
    assert report.exit_code == EXIT_HARD
    reasons = report.deltas[0].reasons
    assert any("failed request" in r for r in reasons)
    assert any("non-identical" in r for r in reasons)


def test_serve_hit_rate_collapse_is_soft():
    report = compare_serve_reports(
        _serve_report(hit_rate=0.9), _serve_report(hit_rate=0.3)
    )
    assert report.exit_code == EXIT_SOFT


def test_serve_p50_drift_is_soft():
    report = compare_serve_reports(
        _serve_report(p50=5.0), _serve_report(p50=50.0)
    )
    assert report.exit_code == EXIT_SOFT
