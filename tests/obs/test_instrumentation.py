"""The instrumented seams, end to end: planner counters, cache lookup
counters, session-stage spans, and the serving tier's /metrics surface."""

import json
import urllib.request

import pytest

import repro
from repro.obs import metrics as m
from repro.obs.tracing import clear_spans, finished_spans


@pytest.fixture
def on():
    prev = m.set_enabled(True)
    clear_spans()
    yield
    clear_spans()
    m.set_enabled(prev)


def _value(name, **labels):
    inst = m.registry.get(name)
    assert inst is not None, f"{name} not registered"
    return inst.value(**labels)


def test_planner_counters_populate(on):
    kept = _value("repro_planner_candidates_total", outcome="kept")
    dp = _value("repro_planner_dp_states_total", method="dp")
    plans = _value("repro_planner_plans_total", method="dp")
    phase_lookups = (
        _value("repro_planner_memo_lookups_total", memo="phase", result="hit")
        + _value("repro_planner_memo_lookups_total", memo="phase",
                 result="miss"))

    with repro.session(nprocs=4) as sess:
        sess.workload("adi", size=32, iterations=2).plan(method="dp")

    assert _value("repro_planner_candidates_total", outcome="kept") > kept
    assert _value("repro_planner_dp_states_total", method="dp") > dp
    assert _value("repro_planner_plans_total", method="dp") == plans + 1
    assert (
        _value("repro_planner_memo_lookups_total", memo="phase", result="hit")
        + _value("repro_planner_memo_lookups_total", memo="phase",
                 result="miss")
    ) > phase_lookups


def test_session_stage_spans_and_counters(on):
    ok = _value("repro_session_stages_total", stage="run", workload="smoothing",
                status="ok")
    with repro.session(nprocs=2) as sess:
        sess.workload("smoothing", size=16, steps=2).run()
    assert _value("repro_session_stages_total", stage="run",
                  workload="smoothing", status="ok") == ok + 1
    assert any(s.name == "session.run" for s in finished_spans())
    hist = m.registry.get("repro_session_stage_seconds")
    count, total = hist.value(stage="run")
    assert count >= 1 and total > 0


def test_comm_counters_populate(on):
    halo = _value("repro_comm_messages_total", kind="halo")
    halo_bytes = _value("repro_comm_bytes_total", kind="halo")
    with repro.session(nprocs=4) as sess:
        sess.workload("smoothing", size=32, steps=2).run()
    assert _value("repro_comm_messages_total", kind="halo") > halo
    assert _value("repro_comm_bytes_total", kind="halo") > halo_bytes


def test_forall_path_counters(on):
    import numpy as np

    from repro.core.distribution import dist_type
    from repro.runtime.batched import forall_batched
    from repro.runtime.forall import forall

    ref = _value("repro_forall_calls_total", path="reference")
    batched = _value("repro_forall_calls_total", path="batched")

    with repro.session(nprocs=4) as sess:
        engine = sess.engine(name="R")
        a = engine.declare("A", (12,), dist=dist_type("BLOCK"))
        forall(a, lambda i, read: float(i[0]))
        forall_batched(a, lambda cols, read: (cols[0] * 2).astype(float))
        assert np.array_equal(a.to_global(), np.arange(12.0) * 2)

    assert _value("repro_forall_calls_total", path="reference") == ref + 1
    assert _value("repro_forall_calls_total", path="batched") == batched + 1


def test_redistribute_counters_and_span(on):
    msgs = _value("repro_comm_messages_total", kind="redistribute")
    moved = _value("repro_redistribute_elements_total", action="moved")
    with repro.session(nprocs=4) as sess:
        sess.workload("adi", size=32, iterations=2, strategy="dynamic").run()
    assert _value("repro_comm_messages_total", kind="redistribute") > msgs
    assert _value("repro_redistribute_elements_total", action="moved") > moved
    spans = finished_spans(name="runtime.redistribute")
    assert spans and "messages" in spans[0].attrs


def test_plan_cache_lookup_counters(on):
    hits = _value("repro_plan_cache_lookups_total", result="hit")
    misses = _value("repro_plan_cache_lookups_total", result="miss")
    with repro.session(nprocs=4) as sess:
        # same redistribution repeated -> misses fill the shared
        # PlanCache, later iterations hit it
        handle = sess.workload("adi", size=32, iterations=4,
                               strategy="dynamic")
        handle.run()
        handle.run()
    assert _value("repro_plan_cache_lookups_total", result="hit") > hits
    assert _value("repro_plan_cache_lookups_total", result="miss") > misses


def test_interning_lru_counts_evictions():
    from repro.core.interning import LRUCache

    lru = LRUCache(2)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("c", 3)  # evicts "a"
    assert lru.evictions == 1
    assert lru.stats()["evictions"] == 1
    lru.clear()
    assert lru.evictions == 0


# -- serving tier ---------------------------------------------------------

def test_metrics_endpoint_and_request_id_header(on):
    from repro.serve import PlanningService

    requests = m.registry.get("repro_http_requests_total")
    miss_before = requests.value(route="/plan", status=200, cache="miss")
    hit_before = requests.value(route="/plan", status=200, cache="hit")

    with PlanningService() as svc:
        first = svc.dispatch("GET", "/plan?workload=adi&size=16&seed=1")
        assert first.status == 200
        rid = first.headers["X-Repro-Request-Id"]
        assert len(rid) == 16

        again = svc.dispatch("GET", "/plan?workload=adi&size=16&seed=1")
        assert again.headers["X-Repro-Request-Id"] != rid
        assert again.headers["X-Repro-Cache"] == "hit"
        # request ids ride in headers only — cached bodies stay
        # byte-identical
        assert again.body == first.body

        assert requests.value(
            route="/plan", status=200, cache="miss") == miss_before + 1
        assert requests.value(
            route="/plan", status=200, cache="hit") == hit_before + 1

        scrape = svc.dispatch("GET", "/metrics")
        assert scrape.status == 200
        assert scrape.headers["Content-Type"].startswith("text/plain")
        text = scrape.body
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text
        assert ('repro_http_requests_total{route="/plan",status="200",'
                'cache="miss"}') in text
        assert ('repro_http_requests_total{route="/plan",status="200",'
                'cache="hit"}') in text
        assert 'repro_http_request_seconds_bucket{route="/plan",le=' in text
        assert 'repro_response_cache_lookups_total{result="hit"}' in text
        assert 'repro_cache_stat{source="plan_cache"' in text
        assert "repro_service_uptime_seconds" in text


def test_request_spans_carry_request_id(on):
    from repro.serve import PlanningService

    with PlanningService() as svc:
        resp = svc.dispatch("GET", "/healthz")
    rid = resp.headers["X-Repro-Request-Id"]
    spans = finished_spans(name="serve.request", request_id=rid)
    assert len(spans) == 1
    assert spans[0].attrs["route"] == "/healthz"


def test_healthz_and_stats_report_version_uptime(on):
    from repro.serve import PlanningService

    with PlanningService() as svc:
        health = svc.dispatch("GET", "/healthz").json
        stats = svc.dispatch("GET", "/stats").json
    assert health["ok"] is True
    assert health["version"] == repro.__version__
    assert health["uptime_seconds"] >= 0
    assert stats["version"] == repro.__version__
    assert stats["uptime_seconds"] >= 0
    assert stats["observability"] is True


def test_structured_log_line_per_request(on, caplog):
    import logging

    from repro.serve import PlanningService

    with caplog.at_level(logging.INFO, logger="repro.serve"):
        with PlanningService() as svc:
            svc.dispatch("GET", "/healthz")
    lines = [json.loads(r.message) for r in caplog.records
             if r.name == "repro.serve"]
    (line,) = [l for l in lines if l["route"] == "/healthz"]
    assert line["event"] == "request"
    assert line["status"] == 200
    assert line["ms"] >= 0
    assert line["cache"] == "bypass"
    assert len(line["request_id"]) == 16


def test_metrics_over_http(on):
    from repro.serve import PlanningService, ServerThread

    with ServerThread(PlanningService()) as url:
        with urllib.request.urlopen(f"{url}/healthz", timeout=30) as resp:
            assert resp.headers["X-Repro-Request-Id"]
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
    assert 'repro_http_requests_total{' in text
    assert "repro_service_uptime_seconds" in text


def test_obs_disabled_service_opt_out():
    prev = m.set_enabled(False)
    try:
        from repro.serve import PlanningService

        with PlanningService(observability=False) as svc:
            before = m.registry.get("repro_http_requests_total").total()
            resp = svc.dispatch("GET", "/healthz")
            assert resp.status == 200
            assert m.enabled() is False
            assert m.registry.get("repro_http_requests_total").total() == before
    finally:
        m.set_enabled(prev)
