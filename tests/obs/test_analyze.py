"""Attribution: the per-phase table, the accounting identity, and the
top-reasons ranking over simulated timelines and runtime spans."""

import json

import pytest

from repro.obs import metrics as m
from repro.obs.analyze import (
    Attribution,
    PhaseRow,
    analyze_workload,
    attribution,
    span_breakdown,
)
from repro.obs.tracing import clear_spans, span


@pytest.fixture(scope="module")
def adi_attr():
    """One traced adi workload, attributed (module-scoped: ~100 ms)."""
    return analyze_workload("adi", nprocs=4, size=16, iterations=2)


def test_rows_plus_idle_sum_to_makespan(adi_attr):
    assert adi_attr.makespan > 0
    assert adi_attr.accounted == pytest.approx(adi_attr.makespan, rel=1e-9)
    assert adi_attr.idle >= 0


def test_phases_carry_kernel_and_comm_tags(adi_attr):
    phases = {row.phase for row in adi_attr.rows}
    # adi's phase vocabulary: sweeps compute, redistributes communicate
    assert any("sweep" in p for p in phases)
    assert any("redistribute" in p for p in phases)
    sweep = next(r for r in adi_attr.rows if "sweep" in r.phase)
    redist = next(r for r in adi_attr.rows if "redistribute" in r.phase)
    assert sweep.compute > 0
    assert redist.comm > 0


def test_table_renders_identity_footer(adi_attr):
    table = adi_attr.table()
    assert "= makespan" in table
    assert "(idle)" in table
    assert "adi on 4 procs" in table


def test_top_reasons_ranked_by_cost(adi_attr):
    reasons = adi_attr.top_reasons(3)
    assert reasons, "a nontrivial workload must have at least one reason"
    costs = [r.seconds for r in reasons]
    assert costs == sorted(costs, reverse=True)
    assert all(r.kind in ("imbalance", "wait", "comm", "idle")
               for r in reasons)


def test_to_json_roundtrip(adi_attr):
    doc = json.loads(json.dumps(adi_attr.to_json()))
    assert doc["schema"] == "repro-obs-attribution/1"
    assert doc["workload"] == "adi"
    total = sum(r["total_seconds"] for r in doc["rows"]) + doc["idle_seconds"]
    assert total == pytest.approx(doc["makespan"], rel=1e-9)
    assert doc["top_reasons"]


def test_split_phase_attribution_also_balances():
    attr = analyze_workload(
        "adi", nprocs=4, size=16, iterations=2, overlap=True
    )
    assert attr.overlap is True
    assert attr.accounted == pytest.approx(attr.makespan, rel=1e-9)


def test_attribution_of_hand_built_timeline():
    from repro.sim.clock import ProcClock, Timeline

    tl = Timeline(nprocs=2, cost_model="Paragon", overlap=False,
                  procs=[ProcClock(0), ProcClock(1)])
    tl.procs[0].occupy(1.0, "compute", tag="kernel")
    tl.procs[1].occupy(0.5, "wait", tag="kernel")
    tl.procs[1].occupy(0.5, "comm", tag="exchange")
    attr = attribution(tl, workload="toy")
    rows = {r.phase: r for r in attr.rows}
    # per-proc averages over 2 procs
    assert rows["kernel"].compute == pytest.approx(0.5)
    assert rows["kernel"].wait == pytest.approx(0.25)
    assert rows["exchange"].comm == pytest.approx(0.25)
    assert attr.accounted == pytest.approx(attr.makespan)


def test_phase_row_total():
    row = PhaseRow(phase="x", compute=1.0, comm=2.0, wait=3.0)
    assert row.total == 6.0
    assert row.to_json()["total_seconds"] == 6.0


def test_span_breakdown_aggregates_by_name():
    prev = m.set_enabled(True)
    clear_spans()
    try:
        for _ in range(3):
            with span("stage.a"):
                pass
        with span("stage.b"):
            pass
        rows = span_breakdown()
    finally:
        clear_spans()
        m.set_enabled(prev)
    by_name = {r["name"]: r for r in rows}
    assert by_name["stage.a"]["count"] == 3
    assert by_name["stage.b"]["count"] == 1
    assert by_name["stage.a"]["total_seconds"] >= 0
    assert by_name["stage.a"]["mean_seconds"] == pytest.approx(
        by_name["stage.a"]["total_seconds"] / 3
    )
    # sorted by total time, descending
    totals = [r["total_seconds"] for r in rows]
    assert totals == sorted(totals, reverse=True)
