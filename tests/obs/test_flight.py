"""The always-on flight recorder: bounded notes, torn-record safety
under concurrency, incident assembly, and the serve/session wiring."""

import json
import os
import threading

import pytest

import repro.obs as obs
from repro.obs import metrics as m
from repro.obs.flight import INCIDENT_SCHEMA, FlightRecorder, flight_recorder
from repro.obs.tracing import clear_spans, request_scope, span


@pytest.fixture(autouse=True)
def clean_recorder():
    flight_recorder.reset()
    yield
    flight_recorder.reset()


# -- notes -------------------------------------------------------------------


def test_note_round_trip():
    rec = FlightRecorder(capacity=8)
    rec.note("unit.test", route="/x", status=200)
    (note,) = rec.notes()
    assert note["kind"] == "unit.test"
    assert note["route"] == "/x" and note["status"] == 200
    assert note["seq"] == 1 and note["t"] > 0 and note["thread"]


def test_capacity_bounds_memory():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.note("n", i=i)
    notes = rec.notes()
    assert len(notes) == 4
    assert [n["i"] for n in notes] == [6, 7, 8, 9]  # last-N, oldest first
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_notes_filter_by_kind_and_are_copies():
    rec = FlightRecorder()
    rec.note("a", x=1)
    rec.note("b", x=2)
    notes = rec.notes(kind="a")
    assert [n["kind"] for n in notes] == ["a"]
    notes[0]["x"] = 999  # mutating the copy must not touch the stored note
    assert rec.notes(kind="a")[0]["x"] == 1


def test_recording_works_with_observability_off():
    prev = m.set_enabled(False)
    try:
        rec = FlightRecorder()
        rec.note("dark", ok=True)
        assert rec.notes(kind="dark")
        incident = rec.incident("dark failure", error=ValueError("boom"))
        assert incident["error"]["type"] == "ValueError"
    finally:
        m.set_enabled(prev)


def test_concurrent_writers_and_dumper_see_whole_records():
    """N writer threads race a dumper; every observed record is whole
    (all fields present, fields mutually consistent) — no torn reads."""
    rec = FlightRecorder(capacity=256)
    n_writers, per_writer = 6, 200
    stop = threading.Event()
    torn = []

    def writer(wid):
        for i in range(per_writer):
            rec.note("w", writer=wid, i=i, check=wid * 100000 + i)

    def dumper():
        while not stop.is_set():
            for note in rec.notes(kind="w"):
                # a torn record would miss a field or break the invariant
                if set(note) < {"seq", "t", "thread", "kind", "writer",
                                "i", "check"}:
                    torn.append(("missing-fields", note))
                elif note["check"] != note["writer"] * 100000 + note["i"]:
                    torn.append(("inconsistent", note))

    threads = [threading.Thread(target=writer, args=(w,))
               for w in range(n_writers)]
    dump = threading.Thread(target=dumper)
    dump.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    dump.join()
    assert torn == []
    # sequence numbers are unique and the buffer holds the last capacity
    seqs = [n["seq"] for n in rec.notes()]
    assert len(seqs) == len(set(seqs)) == 256
    assert seqs == sorted(seqs)


# -- incidents ---------------------------------------------------------------


def test_incident_captures_ids_spans_and_error():
    prev = m.set_enabled(True)
    clear_spans()
    try:
        with request_scope() as rid:
            with span("stage.work", workload="adi"):
                pass
            try:
                raise RuntimeError("kaboom")
            except RuntimeError as exc:
                record = flight_recorder.incident(
                    "stage failed", error=exc, attrs={"stage": "work"}
                )
        assert record["schema"] == INCIDENT_SCHEMA
        assert record["request_id"] == rid
        assert record["trace_id"] == rid
        assert record["reason"] == "stage failed"
        assert record["attrs"] == {"stage": "work"}
        assert record["error"]["type"] == "RuntimeError"
        assert "kaboom" in record["error"]["traceback"]
        assert [s["name"] for s in record["spans"]] == ["stage.work"]
        assert flight_recorder.last_incident() is record
        # the incident also leaves a note in the stream
        (note,) = flight_recorder.notes(kind="incident")
        assert note["incident_id"] == record["incident_id"]
    finally:
        clear_spans()
        m.set_enabled(prev)


def test_incident_ids_bound_even_with_metrics_off():
    prev = m.set_enabled(False)
    try:
        with request_scope() as rid:
            record = flight_recorder.incident("dark crash")
        assert record["request_id"] == rid
    finally:
        m.set_enabled(prev)


def test_incident_dumps_json_file(tmp_path):
    record = flight_recorder.incident(
        "disk test", error=ValueError("x"), dump_dir=str(tmp_path)
    )
    path = record["dumped_to"]
    assert os.path.dirname(path) == str(tmp_path)
    doc = json.loads(open(path).read())
    assert doc["incident_id"] == record["incident_id"]
    assert doc["reason"] == "disk test"


def test_incident_dump_dir_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_INCIDENT_DIR", str(tmp_path / "incidents"))
    record = flight_recorder.incident("env test")
    assert os.path.exists(record["dumped_to"])


def test_incident_dump_failure_never_raises(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file in the way")
    record = flight_recorder.incident("crash site", dump_dir=str(blocker))
    assert "dumped_to" not in record  # swallowed, not raised
    assert flight_recorder.last_incident() is record


def test_obs_reset_clears_recorder_state():
    flight_recorder.note("stale")
    flight_recorder.incident("stale incident")
    obs.reset()
    assert flight_recorder.notes() == []
    assert flight_recorder.incidents() == []
    assert flight_recorder.last_incident() is None


# -- the serve wiring --------------------------------------------------------


@pytest.fixture
def service():
    from repro.serve.service import PlanningService

    prev = m.enabled()
    svc = PlanningService(max_idle_sessions=1)
    yield svc
    svc.close()
    m.set_enabled(prev)
    obs.reset()


def test_forced_500_dumps_incident_with_request_ids(service):
    def boom():
        raise RuntimeError("synthetic 500")

    service._workloads = boom
    resp = service.dispatch("GET", "/workloads")
    assert resp.status == 500
    rid = resp.headers["X-Repro-Request-Id"]
    incident_id = resp.headers["X-Repro-Incident-Id"]
    record = flight_recorder.last_incident()
    assert record["incident_id"] == incident_id
    assert record["request_id"] == rid
    assert record["trace_id"] == rid
    assert record["error"]["type"] == "RuntimeError"
    assert record["attrs"]["route"] == "/workloads"
    # /healthz counts it
    health = service.dispatch("GET", "/healthz").json
    assert health["incidents"] == 1
    assert health["git_sha"] == service._env.get("git_sha")
    assert health["python"] and health["numpy"]


def test_stage_failure_incident_carries_finished_spans(service):
    import repro.planner.workloads as pw

    orig = pw._plan_workload

    def boom(*args, **kwargs):
        raise RuntimeError("planner exploded")

    pw._plan_workload = boom
    try:
        resp = service.dispatch(
            "POST", "/plan", b'{"workload": "adi", "size": 8}'
        )
    finally:
        pw._plan_workload = orig
    assert resp.status == 500
    record = flight_recorder.last_incident()
    # the session.plan span finished (exception path) before the dump
    assert "session.plan" in [s["name"] for s in record["spans"]]
    # two incidents: the stage wrapper's and the serve 500's
    reasons = [i["reason"] for i in flight_recorder.incidents()]
    assert "session.plan failed" in reasons
    assert any(r.startswith("serve 500") for r in reasons)


def test_every_request_leaves_a_note(service):
    service.dispatch("GET", "/healthz")
    notes = flight_recorder.notes(kind="serve.request")
    assert notes and notes[-1]["route"] == "/healthz"
    assert notes[-1]["status"] == 200
    assert notes[-1]["request_id"]
