"""Unit tests for the instruments and the Prometheus text encoder."""

import math

import pytest

from repro.obs import metrics as m
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def on():
    prev = m.set_enabled(True)
    yield
    m.set_enabled(prev)


@pytest.fixture
def reg():
    return MetricsRegistry()


# -- switch ---------------------------------------------------------------

def test_disabled_instruments_record_nothing(reg):
    prev = m.set_enabled(False)
    try:
        c = reg.counter("c_total", "help")
        g = reg.gauge("g", "help")
        h = reg.histogram("h_seconds", "help")
        c.inc()
        g.set(3.0)
        h.observe(0.1)
        assert c.total() == 0
        assert g.value() == 0
        assert h.value() == (0, 0.0)
    finally:
        m.set_enabled(prev)


def test_enable_disable_round_trip():
    prev = m.enabled()
    try:
        m.set_enabled(False)
        assert m.enable() is False
        assert m.enabled() is True
        assert m.disable() is True
        assert m.enabled() is False
    finally:
        m.set_enabled(prev)


# -- counter --------------------------------------------------------------

def test_counter_inc_and_labels(on, reg):
    c = reg.counter("req_total", "requests", ("route", "status"))
    c.inc(route="/a", status=200)
    c.inc(2, route="/a", status=200)
    c.inc(route="/b", status=500)
    assert c.value(route="/a", status=200) == 3
    assert c.value(route="/b", status=500) == 1
    assert c.total() == 4


def test_counter_rejects_negative_and_bad_labels(on, reg):
    c = reg.counter("neg_total", "", ("k",))
    with pytest.raises(ValueError):
        c.inc(-1, k="x")
    with pytest.raises(ValueError):
        c.inc()  # missing label
    with pytest.raises(ValueError):
        c.inc(k="x", extra="y")


def test_counter_render(on, reg):
    c = reg.counter("hits_total", 'with "quotes" and \\ slash', ("kind",))
    c.inc(5, kind='a"b')
    text = reg.render()
    assert '# HELP hits_total with "quotes" and \\\\ slash' in text
    assert "# TYPE hits_total counter" in text
    assert 'hits_total{kind="a\\"b"} 5' in text


# -- gauge ----------------------------------------------------------------

def test_gauge_set_inc_dec(on, reg):
    g = reg.gauge("pool", "", ("state",))
    g.set(4, state="idle")
    g.inc(state="idle")
    g.dec(2, state="idle")
    assert g.value(state="idle") == 3
    assert "pool{state=\"idle\"} 3" in reg.render()


# -- histogram ------------------------------------------------------------

def test_histogram_buckets_cumulative_in_render(on, reg):
    h = reg.histogram("lat_seconds", "", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.value() == (5, pytest.approx(56.05))
    text = reg.render()
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1"} 3' in text
    assert 'lat_seconds_bucket{le="10"} 4' in text
    assert 'lat_seconds_bucket{le="+Inf"} 5' in text
    assert "lat_seconds_count 5" in text
    assert "lat_seconds_sum 56.05" in text


def test_histogram_needs_buckets(reg):
    with pytest.raises(ValueError):
        reg.histogram("empty", "", buckets=())


def test_histogram_snapshot_consistent(on, reg):
    h = reg.histogram("s_seconds", "", ("op",), buckets=(1.0,))
    h.observe(0.5, op="x")
    h.observe(2.0, op="x")
    snap = reg.snapshot()["s_seconds"]
    (sample,) = snap["samples"]
    assert sample["labels"] == {"op": "x"}
    assert sample["count"] == 2
    assert sample["sum"] == pytest.approx(2.5)
    assert sample["buckets"] == {"1": 1}


# -- registry -------------------------------------------------------------

def test_get_or_create_returns_same_instrument(reg):
    a = reg.counter("same_total", "h", ("x",))
    b = reg.counter("same_total", "other help ignored", ("x",))
    assert a is b


def test_type_or_label_mismatch_raises(reg):
    reg.counter("one_total", "", ("x",))
    with pytest.raises(ValueError):
        reg.gauge("one_total", "")
    with pytest.raises(ValueError):
        reg.counter("one_total", "", ("y",))


def test_render_sorted_and_terminated(on, reg):
    reg.counter("zzz_total", "").inc()
    reg.counter("aaa_total", "").inc()
    text = reg.render()
    assert text.index("aaa_total") < text.index("zzz_total")
    assert text.endswith("\n")


def test_collectors_run_at_scrape_even_when_disabled(reg):
    prev = m.set_enabled(False)
    try:
        g = reg.gauge("pulled", "")
        reg.add_collector(lambda: g.set(7))
        assert "pulled 7" in reg.render()
        # snapshot also collects
        assert reg.snapshot()["pulled"]["samples"][0]["value"] == 7
        # and the switch is restored afterwards
        assert m.enabled() is False
    finally:
        m.set_enabled(prev)


def test_remove_collector(reg):
    calls = []
    fn = lambda: calls.append(1)  # noqa: E731
    reg.add_collector(fn)
    reg.render()
    reg.remove_collector(fn)
    reg.render()
    assert len(calls) == 1


def test_reset_zeroes_samples_keeps_registration(on, reg):
    c = reg.counter("kept_total", "", ("k",))
    c.inc(k="a")
    reg.reset()
    assert c.total() == 0
    assert reg.get("kept_total") is c


def test_fmt_special_values():
    assert m._fmt(float("inf")) == "+Inf"
    assert m._fmt(float("-inf")) == "-Inf"
    assert m._fmt(float("nan")) == "NaN"
    assert m._fmt(3.0) == "3"
    assert m._fmt(0.25) == "0.25"
    assert not math.isnan(0.0)  # keep the math import honest


def test_module_level_helpers_share_default_registry(on):
    c = m.counter("module_helper_total", "")
    before = c.value()
    c.inc()
    assert m.registry.get("module_helper_total") is c
    assert f"module_helper_total {m._fmt(before + 1)}" in m.render_prometheus()
