"""The bench trajectory store: provenance stamps, append-only JSONL,
corrupt-line robustness, and the wall-clock noise model."""

import json
import threading

import pytest

from repro import __version__
from repro.obs.trajectory import (
    TRAJECTORY_SCHEMA,
    TrajectoryStore,
    env_digest,
    environment_fingerprint,
    git_sha,
)


def _perf_report(smoke=True, seconds=0.001, elements=100, size=None):
    return {
        "schema": "repro-bench-perf/2",
        "smoke": smoke,
        "env": {"repro": __version__, "python": "3.11", "numpy": "2.0",
                "platform": "test", "hostname": "test"},
        "benches": [
            {
                "name": "forall",
                "size": size or {"n": 8},
                "vectorized_seconds": seconds,
                "reference_ops": {"elements": elements},
                "vectorized_ops": {"elements": elements},
                "match": True,
            }
        ],
    }


# -- environment fingerprint -------------------------------------------------


def test_fingerprint_has_version_facts():
    env = environment_fingerprint(probe=False)
    assert env["repro"] == __version__
    assert env["python"] and env["numpy"] and env["platform"]
    assert "machine" not in env  # probe=False skips the timed probes


def test_fingerprint_probe_measures_machine():
    env = environment_fingerprint(probe=True)
    probe = env["machine"]
    assert probe["cpus"] >= 1
    assert probe["matmul_gflops"] > 0
    assert probe["copy_gbps"] > 0


def test_git_sha_best_effort():
    # in this repo it resolves; the contract is "str or None", never raise
    sha = git_sha()
    assert sha is None or (isinstance(sha, str) and len(sha) >= 7)


def test_env_digest_ignores_timing_probes():
    env = environment_fingerprint(probe=False)
    probed = dict(env, machine={"matmul_gflops": 1.0})
    assert env_digest(env) == env_digest(probed)
    other = dict(env, python="2.7.0")
    assert env_digest(env) != env_digest(other)


# -- store round trips -------------------------------------------------------


def test_append_and_read_back(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    entry = store.append("perf", _perf_report())
    assert entry["schema"] == TRAJECTORY_SCHEMA
    assert entry["kind"] == "perf"
    assert entry["env_digest"]
    (read,) = store.entries()
    assert read["report"]["benches"][0]["name"] == "forall"
    assert len(store) == 1


def test_append_rejects_unknown_kind(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    with pytest.raises(ValueError, match="kind"):
        store.append("bogus", _perf_report())


def test_filters_by_kind_and_smoke(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _perf_report(smoke=True))
    store.append("perf", _perf_report(smoke=False))
    store.append("serve", {"schema": "repro-bench-serve/2", "smoke": True})
    assert len(store.entries(kind="perf")) == 2
    assert len(store.entries(kind="serve")) == 1
    assert len(store.entries(kind="perf", smoke=True)) == 1
    assert store.latest(kind="perf", smoke=False)["report"]["smoke"] is False
    assert store.latest(kind="serve", smoke=False) is None


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    path = tmp_path / "traj.jsonl"
    store = TrajectoryStore(path)
    store.append("perf", _perf_report())
    with open(path, "a") as fh:
        fh.write("{torn json li\n")
        fh.write("42\n")  # parses but is not an entry
        fh.write("\n")
    store.append("perf", _perf_report())
    assert len(store.entries(kind="perf")) == 2


def test_missing_file_reads_empty(tmp_path):
    store = TrajectoryStore(tmp_path / "never-written.jsonl")
    assert store.entries() == []
    assert store.latest() is None


def test_concurrent_appends_no_torn_lines(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    n_threads, per_thread = 8, 10

    def writer(i):
        for j in range(per_thread):
            store.append("perf", _perf_report(seconds=i + j / 100))

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # every line parses (no interleaved writes) and every entry survived
    with open(store.path) as fh:
        for line in fh:
            json.loads(line)
    assert len(store.entries()) == n_threads * per_thread


# -- the noise model ---------------------------------------------------------


def test_wall_samples_filter_on_size_and_env(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _perf_report(seconds=0.010, size={"n": 8}))
    store.append("perf", _perf_report(seconds=0.012, size={"n": 8}))
    store.append("perf", _perf_report(seconds=9.0, size={"n": 64}))
    assert store.wall_samples("forall", size={"n": 8}) == [0.010, 0.012]
    assert store.wall_samples("forall", size={"n": 64}) == [9.0]
    assert store.wall_samples("forall", env_key="not-this-machine") == []
    assert store.wall_samples("nosuchbench") == []


def test_noise_band_needs_min_samples(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    store.append("perf", _perf_report(seconds=0.010))
    store.append("perf", _perf_report(seconds=0.012))
    assert store.noise_band("forall") is None  # < 3 samples
    store.append("perf", _perf_report(seconds=0.011))
    band = store.noise_band("forall")
    # mean + 3 sigma: above every sample, but not absurdly so
    assert 0.012 < band < 0.02


def test_noise_band_zero_variance(tmp_path):
    store = TrajectoryStore(tmp_path / "traj.jsonl")
    for _ in range(3):
        store.append("perf", _perf_report(seconds=0.010))
    assert store.noise_band("forall") == pytest.approx(0.010)
