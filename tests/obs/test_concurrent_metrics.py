"""Satellite: N threads hammer counters/histograms while a scraper encodes.

Two properties of the thread-safety contract:

1. **exact totals** — every increment lands; nothing is lost to races;
2. **no torn state** — any scrape taken mid-flight is internally
   consistent: a histogram sample's ``+Inf`` bucket, ``_count`` and
   cumulative buckets always describe the same set of observations.
"""

import re
import threading

import pytest

from repro.obs import metrics as m
from repro.obs.metrics import MetricsRegistry

THREADS = 8
INCREMENTS = 2000


@pytest.fixture
def on():
    prev = m.set_enabled(True)
    yield
    m.set_enabled(prev)


def _parse_histogram(text: str, name: str):
    """-> list of (le, value) plus (count, sum) from one exposition."""
    buckets = []
    count = total = None
    for line in text.splitlines():
        match = re.match(rf'{name}_bucket{{le="([^"]+)"}} (\d+)', line)
        if match:
            buckets.append((match.group(1), int(match.group(2))))
        elif line.startswith(f"{name}_count "):
            count = int(line.split()[-1])
        elif line.startswith(f"{name}_sum "):
            total = float(line.split()[-1])
    return buckets, count, total


def test_concurrent_counter_totals_exact(on):
    reg = MetricsRegistry()
    c = reg.counter("hammer_total", "", ("worker",))
    start = threading.Barrier(THREADS)

    def worker(i):
        start.wait()
        for _ in range(INCREMENTS):
            c.inc(worker=i % 4)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == THREADS * INCREMENTS


def test_scraper_never_sees_torn_state(on):
    reg = MetricsRegistry()
    c = reg.counter("torn_total", "")
    h = reg.histogram("torn_seconds", "", buckets=(0.25, 0.5, 1.0))
    stop = threading.Event()
    problems = []

    def scraper():
        while not stop.is_set():
            text = reg.render()
            buckets, count, total = _parse_histogram(text, "torn_seconds")
            if count is None:
                continue  # nothing observed yet
            # cumulative buckets must be monotone and end at _count
            values = [v for _, v in buckets]
            if values != sorted(values):
                problems.append(f"non-monotone buckets: {buckets}")
            if buckets and buckets[-1][0] == "+Inf" and values[-1] != count:
                problems.append(
                    f"+Inf bucket {values[-1]} != count {count}")
            # every observation is 0.5, so sum must equal count * 0.5
            if total != pytest.approx(count * 0.5):
                problems.append(f"sum {total} inconsistent with count {count}")

    scrape_thread = threading.Thread(target=scraper)
    scrape_thread.start()

    def worker():
        for _ in range(INCREMENTS):
            c.inc()
            h.observe(0.5)

    threads = [threading.Thread(target=worker) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    scrape_thread.join()

    assert not problems, problems[:3]
    assert c.value() == THREADS * INCREMENTS
    count, total = h.value()
    assert count == THREADS * INCREMENTS
    assert total == pytest.approx(count * 0.5)
    # the final exposition agrees with the in-memory totals
    buckets, count, total = _parse_histogram(reg.render(), "torn_seconds")
    assert count == THREADS * INCREMENTS
    assert dict(buckets)["0.5"] == count
    assert dict(buckets)["+Inf"] == count


def test_concurrent_mixed_instruments_with_collector(on):
    """Collectors firing during scrapes don't deadlock or corrupt."""
    reg = MetricsRegistry()
    c = reg.counter("mixed_total", "", ("k",))
    g = reg.gauge("mixed_gauge", "")
    reg.add_collector(lambda: g.set(len("x")))

    def worker(i):
        for n in range(500):
            c.inc(k=i)
            if n % 50 == 0:
                reg.render()

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.total() == 4 * 500
    assert "mixed_gauge 1" in reg.render()
