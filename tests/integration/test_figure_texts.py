"""Both code figures of the paper, parsed as text and analyzed."""

import numpy as np

from repro.compiler.ir import Assign, DistributeStmt, If, Loop
from repro.compiler.optimize import optimize
from repro.compiler.reaching import analyze
from repro.core.dimdist import Block, GenBlock, NoDist
from repro.core.query import TypePattern, Wild
from repro.lang.frontend import parse_program

ENV = {
    "NX": 64,
    "NY": 64,
    "NCELL": 32,
    "NPART": 8,
    "MAX_TIME": 10,
    "NP": 4,
    "BOUNDS": [8, 8, 8, 8],
}


def walk(block):
    for s in block:
        yield s
        if isinstance(s, Loop):
            yield from walk(s.body)
        elif isinstance(s, If):
            yield from walk(s.then)
            yield from walk(s.orelse)


FIGURE2 = """
      PROGRAM PIC
      INTEGER BOUNDS(NP)
      REAL FIELD(NCELL, NPART) DYNAMIC, DIST( BLOCK, :)
C Compute initial position of particles
      CALL initpos(FIELD, NCELL, NPART)
C Compute initial partition of cells
      CALL balance(BOUNDS, FIELD, NCELL, NPART)
      DISTRIBUTE FIELD :: B_BLOCK (BOUNDS), :
      DO k = 1, MAX_TIME
C Compute new field
        CALL update_field(FIELD, NCELL, NPART)
C Compute new particle positions and reassign them
        CALL update_part(FIELD, NCELL, NPART)
C Rebalance every 10th iteration if necessary
        IF (MOD(k,10) .EQ. 0 .AND. rebalance()) THEN
          CALL balance(BOUNDS, FIELD, NCELL, NPART)
          DISTRIBUTE FIELD :: B_BLOCK (BOUNDS), :
        ENDIF
      ENDDO
      END
"""


class TestFigure2Text:
    def test_parses(self):
        prog = parse_program(FIGURE2, ENV)
        body = prog.proc("pic").body
        distributes = [s for s in walk(body) if isinstance(s, DistributeStmt)]
        assert len(distributes) == 2
        assert distributes[0].pattern == TypePattern(
            (GenBlock([8, 8, 8, 8]), NoDist())
        )

    def test_field_plausible_sets_inside_loop(self):
        """Inside the time loop FIELD may carry the initial BLOCK or
        any B_BLOCK the rebalancing produced — the imprecision that
        motivates RANGE declarations."""
        prog = parse_program(FIGURE2, ENV)
        res = analyze(prog)
        updates = [
            s
            for s in walk(prog.proc("pic").body)
            if isinstance(s, Assign) and "update_field" in s.label
        ]
        assert updates
        ps = res.plausible(updates[0].sid, "FIELD")
        assert not ps.is_top
        # both the bound B_BLOCK and nothing else (the two distribute
        # statements install the same BOUNDS here)
        assert TypePattern((GenBlock([8, 8, 8, 8]), NoDist())) in ps.patterns

    def test_initial_distribution_reaches_initpos(self):
        prog = parse_program(FIGURE2, ENV)
        res = analyze(prog)
        initpos_calls = [
            s
            for s in walk(prog.proc("pic").body)
            if isinstance(s, Assign) and "initpos" in s.label
        ]
        ps = res.plausible(initpos_calls[0].sid, "FIELD")
        assert ps.patterns == frozenset(
            [TypePattern((Block(), NoDist()))]
        )


class TestOptimizerOnProgramText:
    def test_dead_arm_pruned_from_text(self):
        text = """
PROGRAM T
REAL V(NX, NX) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
SELECT DCASE (V)
CASE (CYCLIC, CYCLIC)
V(I, J) = V(I, J)
CASE (:, BLOCK)
V(I, J) = V(I, J)
END SELECT
END
"""
        prog = parse_program(text, ENV)
        new, stats = optimize(prog)
        assert stats.dead_arms == 1       # (CYCLIC, CYCLIC) impossible
        assert stats.specialized_dcases == 1  # (:, BLOCK) is certain

    def test_redundant_distribute_from_text(self):
        text = """
PROGRAM T
REAL V(NX) DYNAMIC, DIST (BLOCK)
DISTRIBUTE V :: (BLOCK)
DISTRIBUTE V :: (CYCLIC)
END
"""
        prog = parse_program(text, ENV)
        new, stats = optimize(prog)
        assert stats.removed_distributes == 1
        remaining = [
            s for s in new.proc("t").body if isinstance(s, DistributeStmt)
        ]
        assert len(remaining) == 1
        assert remaining[0].pattern.dims[0].keyword == "CYCLIC"
