"""End-to-end transcriptions of the paper's Examples 1-4 (§2).

Each test builds the example nearly verbatim through the surface-syntax
layer and checks the semantics the paper states for it.
"""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, NoDist
from repro.lang import VFProgram, parse_processors
from repro.machine import Machine, PARAGON


class TestExample1:
    """PARAMETER (M=2); PROCESSORS R(1:M,1:M);
    REAL C(10,10,10) DIST(BLOCK,BLOCK,:) TO R;
    REAL D(10,10,10) ALIGN D(I,J,K) WITH C(J,I,K)."""

    @pytest.fixture
    def prog(self):
        R = parse_processors("R(1:M, 1:M)", env={"M": 2})
        return VFProgram(Machine(R, cost_model=PARAGON), env={"M": 2})

    def test_c_distribution(self, prog):
        c = prog.declare("REAL C(10,10,10) DIST (BLOCK, BLOCK, :)")
        # delta_C(i,j,k) = {R(ceil(i/5), ceil(j/5))} for all k
        R = prog.machine.processors
        assert c.dist.owner((2, 7, 9)) == R.rank_of((0, 1))
        assert c.dist.owner((9, 0, 0)) == R.rank_of((1, 0))

    def test_d_alignment_transposes(self, prog):
        c = prog.declare("REAL C(10,10,10) DIST (BLOCK, BLOCK, :)")
        d = prog.declare("REAL D(10,10,10) ALIGN D(I,J,K) WITH C(J,I,K)")
        # "maps each index triplet (i,j,k) in I^D to (j,i,k) in I^C"
        rng = np.random.default_rng(0)
        for _ in range(25):
            i, j, k = rng.integers(0, 10, 3)
            assert d.dist.owner((i, j, k)) == c.dist.owner((j, i, k))


class TestExample2And3:
    """Dynamic array annotations and distribute statements."""

    @pytest.fixture
    def prog(self):
        # Example 3 runs over 1-D distributions; a 4-processor line
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        return VFProgram(machine, env={"M": 16, "N": 16, "K": 2})

    def test_example2_declarations(self, prog):
        b1 = prog.declare("REAL B1(M) DYNAMIC")
        b2 = prog.declare("REAL B2(N) DYNAMIC, DIST (BLOCK)")
        assert not b1.descriptor.is_distributed
        assert b2.dist.dtype.dims == (Block(),)

    def test_example2_connect_class(self, prog):
        prog.declare(
            "REAL B4(N) DYNAMIC, RANGE ((BLOCK), (CYCLIC(*))), DIST (BLOCK)"
        )
        a1 = prog.declare("REAL A1(N) DYNAMIC, CONNECT (=B4)")
        a2 = prog.declare("REAL A2(N) DYNAMIC, CONNECT A2(I) WITH B4(I)")
        cls = prog.engine.connect_class_of(prog.scope.engine_name("B4"))
        assert len(cls.members) == 3
        # "the distribution type of A1 and A2 will always be the same
        # as that of B4"
        prog.distribute("B4", "(CYCLIC(3))")
        assert a1.dist.dtype.dims == (Cyclic(3),)
        assert a2.dist.dtype.dims == (Cyclic(3),)

    def test_example3_statement_sequence(self, prog):
        """The four distribute statements of Example 3, in order."""
        b1 = prog.declare("REAL B1(M) DYNAMIC")
        b2 = prog.declare("REAL B2(N) DYNAMIC, DIST (BLOCK)")
        b4 = prog.declare("REAL B4(N) DYNAMIC, DIST (BLOCK)")

        # DISTRIBUTE B1 :: (BLOCK)
        prog.distribute("B1", "(BLOCK)")
        assert b1.dist.dtype.dims == (Block(),)

        # K = expr; DISTRIBUTE B1, B2 :: (CYCLIC(K))
        prog.env["K"] = 2
        prog.distribute("B1, B2", "(CYCLIC(K))")
        assert b1.dist.dtype.dims == (Cyclic(2),)
        assert b2.dist.dtype.dims == (Cyclic(2),)

        # DISTRIBUTE B4 :: (=B1, ...) -- 1-D here: plain extraction
        prog.distribute("B4", "=B1")
        assert b4.dist.dtype.dims == (Cyclic(2),)

    def test_example3_data_survives_the_sequence(self, prog):
        b1 = prog.declare("REAL B1(M) DYNAMIC")
        prog.distribute("B1", "(BLOCK)")
        data = np.arange(16.0)
        b1.from_global(data)
        prog.env["K"] = 2
        prog.distribute("B1", "(CYCLIC(K))")
        assert np.array_equal(b1.to_global(), data)


class TestExample4:
    """The dcase construct over B1, B2, B3."""

    def make_prog(self, t1, t2, t3):
        machine = Machine(parse_processors("P(1:2, 1:2)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"M": 8, "N": 8})
        sec = machine.processors.section(0, slice(None))
        prog.declare(f"REAL B1(M) DYNAMIC, DIST {t1}", to=sec)
        prog.declare(f"REAL B2(N) DYNAMIC, DIST {t2}", to=sec)
        prog.declare(f"REAL B3(N,N) DYNAMIC, DIST {t3}")
        return prog

    def run_dcase(self, prog):
        dc = prog.dcase("B1", "B2", "B3")
        dc.case(["(BLOCK)", "(BLOCK)", "(CYCLIC(2), CYCLIC)"], lambda: "a1")
        dc.case({"B1": "(CYCLIC)", "B3": "(BLOCK, *)"}, lambda: "a2")
        dc.case({"B3": "(BLOCK, CYCLIC)"}, lambda: "a3")
        dc.default(lambda: "a4")
        return dc.execute()

    def test_first_arm(self):
        prog = self.make_prog("(BLOCK)", "(BLOCK)", "(CYCLIC(2), CYCLIC)")
        assert self.run_dcase(prog) == "a1"

    def test_second_arm_name_tagged(self):
        prog = self.make_prog("(CYCLIC)", "(CYCLIC(5))", "(BLOCK, BLOCK)")
        assert self.run_dcase(prog) == "a2"

    def test_third_arm(self):
        prog = self.make_prog("(BLOCK)", "(CYCLIC)", "(BLOCK, CYCLIC)")
        # B3=(BLOCK,CYCLIC) also matches arm 2's (BLOCK,*) only if
        # B1=(CYCLIC); here B1=(BLOCK) so arm 3 fires
        assert self.run_dcase(prog) == "a3"

    def test_default_arm(self):
        prog = self.make_prog("(BLOCK)", "(BLOCK)", "(CYCLIC, CYCLIC)")
        assert self.run_dcase(prog) == "a4"

    def test_if_construct_equivalent(self):
        """§2.5.2: the second clause expressed with IDT."""
        prog = self.make_prog("(CYCLIC)", "(BLOCK)", "(BLOCK, BLOCK)")
        assert prog.idt("B1", "(CYCLIC)") and prog.idt("B3", "(BLOCK, *)")
