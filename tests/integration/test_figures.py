"""End-to-end reproductions of Figure 1 (ADI) and Figure 2 (PIC)
written through the surface-syntax layer, plus cross-layer checks
between the compiler's predictions and the runtime's measurements.
"""

import numpy as np
import pytest

from repro.apps.adi import adi_reference
from repro.apps.pic import PICConfig, run_pic
from repro.apps.tridiag import thomas_const
from repro.compiler.codegen import LineSweepKernel
from repro.compiler.comm_analysis import estimate_ref
from repro.compiler.ir import AccessKind, ArrayRef
from repro.core.query import TypePattern
from repro.lang import VFProgram, parse_processors
from repro.machine import Machine, PARAGON


class TestFigure1Verbatim:
    """The Figure 1 code fragment, transcribed statement by statement."""

    def test_adi_fragment(self):
        NX = NY = 24
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"NX": NX, "NY": NY})

        prog.declare("REAL U(NX, NY) DIST (:, BLOCK)")
        prog.declare("REAL F(NX, NY) DIST (:, BLOCK)")
        v = prog.declare(
            "REAL V(NX, NY) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), "
            "DIST (:, BLOCK)"
        )

        rng = np.random.default_rng(0)
        grid = rng.standard_normal((NX, NY))
        v.from_global(grid)

        line = lambda x: thomas_const(x, -1.0, 4.0)  # noqa: E731

        # C Sweep over x-lines: DO J = 1, NY; CALL TRIDIAG(V(:, J), NX)
        before = machine.stats().messages
        LineSweepKernel(v, 0, line).sweep()
        assert machine.stats().messages == before  # communication-free

        # DISTRIBUTE V :: (BLOCK, :)
        prog.distribute("V", "(BLOCK, :)")

        # C Sweep over y-lines: DO I = 1, NX; CALL TRIDIAG(V(I, :), NY)
        before = machine.stats().messages
        LineSweepKernel(v, 1, line).sweep()
        assert machine.stats().messages == before  # still local

        ref = adi_reference(grid, 1, -1.0, 4.0)
        assert np.allclose(v.to_global(), ref)

    def test_range_forbids_other_distributions(self):
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"NX": 16, "NY": 16})
        prog.declare(
            "REAL V(NX, NY) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), "
            "DIST (:, BLOCK)"
        )
        with pytest.raises(ValueError, match="RANGE"):
            prog.distribute("V", "(CYCLIC, :)")


class TestFigure2Verbatim:
    """Figure 2's B_BLOCK(BOUNDS) redistribution via the parser."""

    def test_bblock_distribute_statement(self):
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"NCELL": 16, "NPART": 4})
        field = prog.declare(
            "REAL FIELD(NCELL, NPART) DYNAMIC, DIST (BLOCK, :)"
        )
        # balance() computed BOUNDS; splice through the env
        prog.env["BOUNDS"] = [2, 6, 6, 2]
        prog.distribute("FIELD", "(B_BLOCK(BOUNDS), :)")
        assert field.dist.local_shape(0) == (2, 4)
        assert field.dist.local_shape(1) == (6, 4)


class TestCompilerRuntimeAgreement:
    """The comm analysis (§3.1) must predict what the runtime does."""

    def test_sweep_estimates_match_measured_messages(self):
        n, p = 32, 4
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"N": n})
        v = prog.declare("REAL V(N, N) DYNAMIC, DIST (BLOCK, :)")
        v.from_global(np.zeros((n, n)))

        # compiler's prediction for a sweep along distributed dim 0
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        est = estimate_ref(ref, TypePattern(("BLOCK", ":")), (n, n), (p,))

        before = machine.stats().messages
        LineSweepKernel(v, 0, lambda x: x).sweep()
        measured = machine.stats().messages - before
        assert measured == est.messages

    def test_local_sweep_predicted_and_measured_free(self):
        n, p = 32, 4
        machine = Machine(parse_processors("P(1:4)"), cost_model=PARAGON)
        prog = VFProgram(machine, env={"N": n})
        v = prog.declare("REAL V(N, N) DYNAMIC, DIST (:, BLOCK)")
        v.from_global(np.zeros((n, n)))
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        est = estimate_ref(ref, TypePattern((":", "BLOCK")), (n, n), (p,))
        assert est.messages == 0
        before = machine.stats().messages
        LineSweepKernel(v, 0, lambda x: x).sweep()
        assert machine.stats().messages == before


class TestPICIntegration:
    def test_figure2_over_many_seeds(self):
        """The rebalancing advantage is robust, not a seed artifact."""
        wins = 0
        for seed in range(5):
            cfg = dict(ncell=48, npart=1200, max_time=30, nprocs=4, seed=seed)
            rb = run_pic(
                Machine(parse_processors("P(1:4)"), cost_model=PARAGON),
                PICConfig(strategy="bblock", **cfg),
            )
            rs = run_pic(
                Machine(parse_processors("P(1:4)"), cost_model=PARAGON),
                PICConfig(strategy="static", **cfg),
            )
            if rb.mean_imbalance < rs.mean_imbalance:
                wins += 1
        assert wins >= 4
