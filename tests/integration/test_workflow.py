"""A complete user-session workflow exercising every layer together.

The scenario: an adaptive simulation whose working array is declared
DYNAMIC with a RANGE, initially distributed by a *generator* from
run-time weights; the program dispatches its kernel with DCASE, calls
a procedure whose formal forces a redistribution, rebalances with
B_BLOCK when a load check fires, and reads the machine reports at the
end.  Every interaction crosses at least two subpackages.
"""

import numpy as np
import pytest

from repro.apps.load_balance import balance_greedy, imbalance
from repro.core.dimdist import Block, GenBlock, NoDist
from repro.core.distribution import DistributionType, dist_type
from repro.core.dynamic import DynamicAttr
from repro.core.generators import get_generator
from repro.lang.procedures import FormalArg, Procedure
from repro.machine import (
    Machine,
    PARAGON,
    ProcessorArray,
    link_matrix,
    per_processor_table,
    summary,
)
from repro.runtime.engine import Engine


@pytest.fixture
def session():
    machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON, trace=True)
    engine = Engine(machine)
    return machine, engine


class TestWorkflow:
    def test_full_session(self, session):
        machine, engine = session
        n = 64

        # 1. run-time weights drive the initial distribution
        rng = np.random.default_rng(0)
        weights = np.exp(rng.normal(0, 1.2, n))
        gen = get_generator("weighted_block")
        dd = gen(n, 4, weights=weights)
        assert isinstance(dd, GenBlock)

        work = engine.declare(
            "WORK",
            (n, 8),
            dynamic=DynamicAttr(
                # RANGE ((B_BLOCK(*)...), (BLOCK, :), (*, :))
                range_=[(GenBlock(dd.sizes), ":"), ("BLOCK", ":"), ("*", ":")],
            ),
        )
        engine.distribute("WORK", DistributionType((dd, NoDist())))
        data = rng.standard_normal((n, 8))
        work.from_global(data)

        # initial balance is good
        assert imbalance(weights, list(dd.sizes)) < imbalance(
            weights, [16, 16, 16, 16]
        )

        # 2. DCASE dispatches on the actual distribution
        dc = engine.dcase("WORK")
        chosen = []
        dc.case([(GenBlock(dd.sizes), ":")], lambda: chosen.append("irregular"))
        dc.case([("BLOCK", ":")], lambda: chosen.append("regular"))
        dc.default(lambda: chosen.append("generic"))
        dc.execute()
        assert chosen == ["irregular"]

        # 3. a procedure forces its declared distribution, VF-returns it
        def body(eng, X):
            assert eng.idt(X.name, ("BLOCK", ":"))
            return float(X.to_global().sum())

        proc = Procedure("analyze", [FormalArg("X", "(BLOCK, :)")], body)
        total = proc(engine, X=work)
        assert total == pytest.approx(float(data.sum()))
        assert work.dist.dtype == dist_type("BLOCK", ":")

        # 4. the weights shift; the load check fires; rebalance
        weights2 = np.roll(weights, n // 3)
        owners = np.asarray(work.dist.rank_map())[:, 0]
        loads = np.bincount(owners, weights=weights2, minlength=4)
        assert loads.max() / loads.mean() > 1.1  # imbalanced again
        sizes2 = balance_greedy(weights2, 4)
        engine.distribute(
            "WORK", DistributionType((GenBlock(sizes2), NoDist()))
        )
        assert np.array_equal(work.to_global(), data)

        # 5. reports reflect the session
        s = summary(machine)
        assert "4 processors" in s and "Paragon" in s
        table = per_processor_table(machine)
        assert len(table.splitlines()) == 6
        lm = link_matrix(machine)
        assert "src\\dst" in lm
        assert machine.stats().messages == len(machine.network.trace)
        # three distributions were installed after the initial one
        assert work.version == 3

    def test_session_is_deterministic(self, session):
        machine, engine = session
        arr = engine.declare(
            "A", (32, 4), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        arr.from_global(np.arange(128.0).reshape(32, 4))
        for _ in range(3):
            engine.distribute("A", dist_type(":", "BLOCK"))
            engine.distribute("A", dist_type("BLOCK", ":"))
        t1 = machine.time

        machine2 = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
        engine2 = Engine(machine2)
        arr2 = engine2.declare(
            "A", (32, 4), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        arr2.from_global(np.arange(128.0).reshape(32, 4))
        for _ in range(3):
            engine2.distribute("A", dist_type(":", "BLOCK"))
            engine2.distribute("A", dist_type("BLOCK", ":"))
        assert machine2.time == t1
        assert np.array_equal(arr.to_global(), arr2.to_global())
