"""CLI hardening (ISSUE 5): every subcommand exits nonzero on failure
instead of printing a traceback, and every ``--json`` output is
round-trippable through ``json.loads``."""

import json

import numpy as np
import pytest

from repro.__main__ import main


def _run_json(capsys, argv):
    main(argv)
    out = capsys.readouterr().out
    return json.loads(out)


# -- --json round trips (one per subcommand) --------------------------------


def test_plan_json_roundtrip(capsys):
    report = _run_json(
        capsys, ["plan", "adi", "--size", "16", "--iterations", "2", "--json"]
    )
    assert report["workload"] == "adi"
    assert report["plan"]["steps"]
    assert report["cost_mode"] == "model"


def test_plan_json_simulated_roundtrip(capsys):
    report = _run_json(
        capsys,
        ["plan", "smoothing", "--size", "16", "--steps", "3",
         "--cost-mode", "simulated", "--json"],
    )
    assert report["cost_mode"] == "simulated"


def test_run_json_roundtrip(capsys):
    report = _run_json(
        capsys, ["run", "adi", "--size", "12", "--iterations", "1", "--json"]
    )
    assert report["workload"] == "adi"
    assert report["backend"] == "serial"
    assert len(report["clocks"]) == 4
    assert report["solution_sha256"]


def test_trace_json_roundtrip(capsys):
    report = _run_json(
        capsys,
        ["trace", "smoothing", "--size", "12", "--steps", "2",
         "--json", "--compact"],
    )
    assert report["matches_aggregate_accounting"] is True
    assert report["blocking"] and report["split_phase"]


def test_bench_json_roundtrip(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    report = _run_json(
        capsys, ["bench", "--smoke", "--only", "forall", "--out", "", "--json"]
    )
    assert report["schema"] == "repro-bench-perf/2"
    assert report["benches"][0]["name"] == "forall"
    assert report["benches"][0]["match"] is True


def test_calibrate_json_roundtrip(capsys):
    report = _run_json(
        capsys, ["calibrate", "--nprocs", "2", "--repeats", "1", "--json"]
    )
    assert report["alpha_s"] >= 0 and report["beta_s_per_byte"] >= 0
    assert report["plan"]["steps"]


# -- nonzero exits -----------------------------------------------------------


def test_unknown_workload_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "nosuchworkload"])
    assert exc.value.code == 2  # argparse choices, not a traceback


def test_bad_backend_exits_nonzero(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "adi", "--backend", "bogus"])
    assert exc.value.code == 2


def test_unplannable_workload_not_a_plan_choice(capsys):
    pytest.importorskip("networkx")
    with pytest.raises(SystemExit) as exc:
        main(["plan", "irregular"])
    assert exc.value.code == 2


def test_runtime_failure_exits_one_with_stderr(capsys):
    """A workload that raises mid-run becomes `error: ...` + exit 1."""
    from repro.api import ExecutionOutcome, REGISTRY, register_workload

    @register_workload("always-fails", defaults={"size": 4})
    def _failing(ctx):
        raise RuntimeError("deliberate test failure")
        return ExecutionOutcome(solution=np.zeros(1))  # pragma: no cover

    try:
        with pytest.raises(SystemExit) as exc:
            main(["run", "always-fails"])
        assert exc.value.code == 1
        err = capsys.readouterr().err
        assert "error: deliberate test failure" in err
        assert "Traceback" not in err
    finally:
        REGISTRY.unregister("always-fails")


def test_multiprocess_run_verifies_against_serial(capsys):
    main(["run", "adi", "--backend", "multiprocess", "--nprocs", "2",
          "--size", "8", "--iterations", "1", "--json"])
    report = json.loads(capsys.readouterr().out)
    assert report["verified_against_serial"] is True


def test_registered_workloads_drive_the_choices(capsys):
    """The registry, not a hand-maintained list, feeds argparse."""
    from repro.__main__ import build_parser
    from repro.api import REGISTRY

    parser = build_parser()
    helptext = parser.format_help()
    run_sub = None
    for action in parser._subparsers._group_actions:
        run_sub = action.choices["run"]
    run_help = run_sub.format_help()
    for name in REGISTRY.names():
        assert name in run_help
    assert helptext  # sanity


def test_serve_loadtest_json_roundtrip(tmp_path, capsys):
    out = tmp_path / "BENCH_SERVE.json"
    metrics_out = tmp_path / "METRICS_SERVE.prom"
    report = _run_json(
        capsys,
        ["serve", "--loadtest", "--smoke", "--clients", "2", "--rounds", "3",
         "--out", str(out), "--metrics-out", str(metrics_out),
         "--check", "--json"],
    )
    assert report["schema"] == "repro-bench-serve/2"
    assert report["total_failures"] == 0
    assert report["byte_identical"] is True
    assert report["latency"]["method"] == "linear_interpolation"
    assert report["metrics"]["missing_series"] == []
    assert json.loads(out.read_text())["clients"] == 2
    scrape = metrics_out.read_text()
    assert "# TYPE repro_http_requests_total counter" in scrape
    assert "repro_http_request_seconds_bucket" in scrape


def test_serve_check_gate_fails_loudly(tmp_path):
    # an unreachable --url means every request fails: --check must exit
    # non-zero (this is the CI contract of the serve smoke step)
    with pytest.raises(SystemExit):
        main(["serve", "--url", "http://127.0.0.1:9", "--clients", "1",
              "--rounds", "1", "--smoke", "--check", "--out", ""])


def test_obs_command_prometheus_text(capsys):
    main(["obs", "--workload", "adi", "--stage", "plan", "--size", "16"])
    out = capsys.readouterr().out
    assert "# TYPE repro_planner_plans_total counter" in out
    assert "repro_session_stages_total{" in out


def test_obs_command_json_and_chrome_out(tmp_path, capsys):
    chrome = tmp_path / "trace.json"
    snapshot = _run_json(
        capsys,
        ["obs", "--workload", "smoothing", "--stage", "trace",
         "--size", "16", "--steps", "2", "--json",
         "--chrome-out", str(chrome)],
    )
    assert snapshot["repro_session_stages_total"]["type"] == "counter"
    doc = json.loads(chrome.read_text())
    assert any(e.get("name") == "session.trace" for e in doc["traceEvents"])


def test_bench_compare_clean_then_injected_regression(tmp_path, capsys,
                                                      monkeypatch):
    """The sentinel's CI contract: a clean re-run exits 0; an injected
    op-count drift in the baseline exits EXIT_HARD (2)."""
    monkeypatch.chdir(tmp_path)
    base = ["bench", "--smoke", "--only", "forall",
            "--trajectory", "traj.jsonl"]
    main(base + ["--out", "BP.json"])
    capsys.readouterr()

    # clean: compare against the explicit baseline just written
    main(base + ["--compare", "--baseline", "BP.json", "--out", ""])
    out = capsys.readouterr().out
    assert "VERDICT: clean (exit 0)" in out

    # the sentinel's trajectory now holds the compared run
    from repro.obs.trajectory import TrajectoryStore

    assert len(TrajectoryStore("traj.jsonl").entries(kind="perf")) == 2

    # injected regression: perturb one op count in the baseline
    doc = json.loads((tmp_path / "BP.json").read_text())
    bench = doc["benches"][0]
    key = next(iter(bench["vectorized_ops"]))
    bench["vectorized_ops"][key] += 7
    (tmp_path / "BP.json").write_text(json.dumps(doc))
    with pytest.raises(SystemExit) as exc:
        main(base + ["--compare", "--baseline", "BP.json", "--out", ""])
    assert exc.value.code == 2
    assert "hard_fail" in capsys.readouterr().out


def test_bench_compare_never_baselines_itself(tmp_path, capsys, monkeypatch):
    """The snapshot fallback must be read before the harness overwrites
    --out (default BENCH_PERF.json): an op drift against the committed
    snapshot still fails even though the file gets rewritten."""
    monkeypatch.chdir(tmp_path)
    main(["bench", "--smoke", "--only", "forall", "--out",
          "BENCH_PERF.json", "--trajectory", ""])
    capsys.readouterr()
    doc = json.loads((tmp_path / "BENCH_PERF.json").read_text())
    bench = doc["benches"][0]
    key = next(iter(bench["vectorized_ops"]))
    bench["vectorized_ops"][key] += 7
    (tmp_path / "BENCH_PERF.json").write_text(json.dumps(doc))
    # no --baseline, no trajectory: resolution falls back to the
    # committed snapshot, which the compare run itself overwrites
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--compare", "--smoke", "--only", "forall",
              "--trajectory", ""])
    assert exc.value.code == 2


def test_bench_compare_refuses_smoke_baseline(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    main(["bench", "--smoke", "--only", "forall", "--out", "BP.json",
          "--trajectory", ""])
    capsys.readouterr()
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--compare", "--only", "forall", "--out", "",
              "--baseline", "BP.json", "--trajectory", ""])
    assert "smoke-sized" in str(exc.value.code)


def test_obs_analyze_table_sums_to_makespan(capsys):
    main(["obs", "analyze", "--workload", "adi", "--size", "16",
          "--iterations", "2"])
    out = capsys.readouterr().out
    assert "attribution: adi on 4 procs" in out
    assert "= makespan" in out
    assert "top reasons this plan is slow:" in out


def test_obs_analyze_json_identity(capsys):
    doc = _run_json(
        capsys,
        ["obs", "analyze", "--workload", "adi", "--size", "16",
         "--iterations", "2", "--json"],
    )
    assert doc["schema"] == "repro-obs-attribution/1"
    total = sum(r["total_seconds"] for r in doc["rows"]) + doc["idle_seconds"]
    assert total == pytest.approx(doc["makespan"], rel=1e-9)


def test_obs_compare_over_existing_reports(tmp_path, capsys, monkeypatch):
    """obs compare re-runs nothing: it diffs two files on disk."""
    monkeypatch.chdir(tmp_path)
    main(["bench", "--smoke", "--only", "forall", "--out", "A.json",
          "--trajectory", ""])
    capsys.readouterr()
    main(["obs", "compare", "--current", "A.json", "--baseline", "A.json"])
    assert "VERDICT: clean" in capsys.readouterr().out


def test_adapt_bench_json_roundtrip(capsys):
    doc = _run_json(
        capsys,
        ["adapt", "--smoke", "--json", "--out", "", "--coverage-out", "",
         "--trajectory", ""],
    )
    assert doc["schema"] == "repro-bench-adapt/1"
    assert doc["pass"] is True
    assert {s["name"] for s in doc["scenarios"]} == {
        "pic-drift", "irregular-hotspot"
    }


def test_adapt_single_run_json_roundtrip(capsys):
    doc = _run_json(
        capsys,
        ["adapt", "--workload", "pic", "--size", "32", "--steps", "12",
         "--drift", "0.03", "--json"],
    )
    assert doc["workload"] == "pic"
    assert doc["mode"] == "adaptive"
    assert doc["run"]["solution_digest"]


def test_adapt_unsupported_workload_exits_nonzero(capsys):
    with pytest.raises(SystemExit):
        main(["adapt", "--workload", "adi"])
    assert "no adaptive driver" in capsys.readouterr().err


def test_adapt_artifacts_and_obs_compare_kind(tmp_path, capsys, monkeypatch):
    """The CI recipe end to end: bench with --check, artifacts on disk,
    then the sentinel diffs the report under --kind adapt."""
    monkeypatch.chdir(tmp_path)
    main(["adapt", "--smoke", "--check", "--trajectory", "traj.jsonl"])
    capsys.readouterr()
    assert (tmp_path / "BENCH_ADAPT.json").exists()
    assert (tmp_path / "ADAPT_COVERAGE.json").exists()

    from repro.obs.trajectory import TrajectoryStore

    assert len(TrajectoryStore("traj.jsonl").entries(kind="adapt")) == 1

    main(["obs", "compare", "--kind", "adapt",
          "--current", "BENCH_ADAPT.json", "--trajectory", "traj.jsonl"])
    assert "VERDICT: clean" in capsys.readouterr().out

    # a doctored gate flips the sentinel to a hard failure (exit 2)
    doc = json.loads((tmp_path / "BENCH_ADAPT.json").read_text())
    doc["scenarios"][0]["gates"]["deterministic"] = False
    (tmp_path / "BENCH_ADAPT.json").write_text(json.dumps(doc))
    with pytest.raises(SystemExit) as exc:
        main(["obs", "compare", "--kind", "adapt",
              "--current", "BENCH_ADAPT.json", "--trajectory", "traj.jsonl"])
    assert exc.value.code == 2
    assert "hard_fail" in capsys.readouterr().out


def test_tour_still_runs(capsys):
    main(None)
    out = capsys.readouterr().out
    assert "Figure 1" in out and "Figure 2" in out
    assert "dynamic" in out
