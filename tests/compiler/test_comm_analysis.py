"""Tests for the communication and memory analysis (§3.1)."""

import pytest

from repro.compiler.comm_analysis import (
    CommEstimate,
    estimate_memory,
    estimate_ref,
)
from repro.compiler.ir import AccessKind, ArrayRef
from repro.core.dimdist import Cyclic, Replicated
from repro.core.query import ANY, TypePattern, Wild


def pat(*dims):
    return TypePattern(dims)


class TestIdentity:
    def test_aligned_access_free(self):
        est = estimate_ref(ArrayRef("A"), pat("BLOCK", ":"), (64, 64), (4,))
        assert est.messages == 0 and est.volume == 0


class TestShift:
    def test_block_boundary_exchange(self):
        ref = ArrayRef("A", AccessKind.SHIFT, offsets=(1, 0))
        est = estimate_ref(ref, pat("BLOCK", ":"), (64, 64), (4,))
        assert est.messages == 4          # one per processor
        assert est.volume == 4 * 64       # one boundary row each

    def test_shift_along_undistributed_dim_free(self):
        ref = ArrayRef("A", AccessKind.SHIFT, offsets=(0, 1))
        est = estimate_ref(ref, pat("BLOCK", ":"), (64, 64), (4,))
        assert est.messages == 0

    def test_cyclic_shift_moves_full_segments(self):
        ref = ArrayRef("A", AccessKind.SHIFT, offsets=(1,))
        block = estimate_ref(ref, pat("BLOCK"), (64,), (4,))
        cyclic = estimate_ref(ref, pat(Cyclic(1)), (64,), (4,))
        assert cyclic.volume > block.volume

    def test_2d_block_four_slabs(self):
        """The §4 smoothing analysis: 4 messages of N/p per processor."""
        ref = ArrayRef("A", AccessKind.SHIFT, offsets=(1, 1))
        est = estimate_ref(ref, pat("BLOCK", "BLOCK"), (64, 64), (2, 2))
        assert est.messages == 2 * 4      # 2 dims x nprocs
        assert est.volume == 2 * 4 * 32   # slab = 64/2

    def test_deeper_shift_scales_volume(self):
        ref1 = ArrayRef("A", AccessKind.SHIFT, offsets=(1,))
        ref2 = ArrayRef("A", AccessKind.SHIFT, offsets=(2,))
        e1 = estimate_ref(ref1, pat("BLOCK"), (64,), (4,))
        e2 = estimate_ref(ref2, pat("BLOCK"), (64,), (4,))
        assert e2.volume == 2 * e1.volume

    def test_single_slot_free(self):
        ref = ArrayRef("A", AccessKind.SHIFT, offsets=(1,))
        est = estimate_ref(ref, pat("BLOCK"), (64,), (1,))
        assert est.messages == 0


class TestRowSweep:
    def test_local_lines_free(self):
        """ADI good case: swept dim undistributed."""
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        est = estimate_ref(ref, pat(":", "BLOCK"), (100, 100), (4,))
        assert est.messages == 0

    def test_distributed_lines_cost_per_line(self):
        """ADI bad case: lines cross processors."""
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        est = estimate_ref(ref, pat("BLOCK", ":"), (100, 100), (4,))
        assert est.messages == 100 * 2 * 3  # lines x (gather+scatter) x (p-1)
        assert est.volume > 0

    def test_wildcard_dim_conservative(self):
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        est = estimate_ref(ref, pat(ANY, ":"), (100, 100), (4,))
        assert est.messages > 0  # ANY might be distributed: assume cost


class TestIndirectAndWhole:
    def test_indirect_flagged_irregular(self):
        ref = ArrayRef("F", AccessKind.INDIRECT)
        est = estimate_ref(ref, pat("BLOCK", ":"), (64, 4), (4,))
        assert est.irregular
        assert est.messages == 4 * 3

    def test_whole_array_gather(self):
        ref = ArrayRef("F", AccessKind.WHOLE)
        est = estimate_ref(ref, pat("BLOCK"), (64,), (4,))
        assert est.messages == 3
        assert est.volume == 64


class TestEstimateAddition:
    def test_add_combines(self):
        a = CommEstimate(1, 10, note="x")
        b = CommEstimate(2, 20, irregular=True, note="y")
        c = a + b
        assert c.messages == 3 and c.volume == 30
        assert c.irregular
        assert "x" in c.note and "y" in c.note


class TestMemory:
    def test_block_divides(self):
        m = estimate_memory(pat("BLOCK", ":"), (64, 64), (4,))
        assert m.elements_per_proc == 16 * 64

    def test_two_d_blocks(self):
        m = estimate_memory(pat("BLOCK", "BLOCK"), (64, 64), (2, 2))
        assert m.elements_per_proc == 32 * 32

    def test_replicated_full_copy(self):
        m = estimate_memory(pat(Replicated(), ":"), (64, 64), (4,))
        assert m.elements_per_proc == 64 * 64
        assert m.replicated

    def test_wild_cyclic_divides(self):
        m = estimate_memory(pat(Wild(Cyclic)), (64,), (4,))
        assert m.elements_per_proc == 16

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            estimate_ref(ArrayRef("A"), pat("BLOCK"), (4, 4), (2,))
