"""Tests for the mini-IR and CFG construction."""

import pytest

from repro.compiler.cfg import build_cfg
from repro.compiler.ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from repro.core.query import QueryList, TypePattern


class TestArrayRef:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            ArrayRef("A", "weird")

    def test_shift_needs_offsets(self):
        with pytest.raises(ValueError):
            ArrayRef("A", AccessKind.SHIFT)
        ArrayRef("A", AccessKind.SHIFT, offsets=(1, 0))

    def test_row_sweep_needs_dim(self):
        with pytest.raises(ValueError):
            ArrayRef("A", AccessKind.ROW_SWEEP)
        ArrayRef("A", AccessKind.ROW_SWEEP, dim=1)

    def test_frozen(self):
        r = ArrayRef("A")
        with pytest.raises(Exception):
            r.array = "B"  # type: ignore[misc]


class TestIRProgram:
    def test_statements_numbered_uniquely(self):
        prog = IRProgram()
        s1 = Assign(ArrayRef("A"))
        s2 = Assign(ArrayRef("A"))
        inner = Assign(ArrayRef("B"))
        loop = Loop(Block([inner]))
        prog.add_proc(ProcDef("main", (), Block([s1, loop, s2])))
        sids = {s1.sid, s2.sid, loop.sid, inner.sid}
        assert len(sids) == 4
        assert all(s >= 0 for s in sids)

    def test_duplicate_proc_rejected(self):
        prog = IRProgram()
        prog.add_proc(ProcDef("main", (), Block([])))
        with pytest.raises(ValueError):
            prog.add_proc(ProcDef("main", (), Block([])))

    def test_unknown_proc(self):
        prog = IRProgram()
        with pytest.raises(KeyError):
            prog.proc("nope")

    def test_declare_patterns_coerced(self):
        prog = IRProgram()
        prog.declare("V", initial=("BLOCK", ":"), range_=[("BLOCK", ":")])
        init, range_ = prog.declared["V"]
        assert isinstance(init, TypePattern)
        assert isinstance(range_[0], TypePattern)

    def test_distribute_stmt_pattern_coerced(self):
        s = DistributeStmt("V", ("BLOCK",))
        assert isinstance(s.pattern, TypePattern)


class TestCFG:
    def _reachable(self, cfg):
        seen = set()
        stack = [cfg.entry]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            for e in cfg.nodes[n].succs:
                stack.append(e.dst)
        return seen

    def test_straight_line_single_path(self):
        cfg = build_cfg(Block([Assign(ArrayRef("A")), Assign(ArrayRef("A"))]))
        assert cfg.exit in self._reachable(cfg)

    def test_if_has_two_paths_to_join(self):
        branch = If(Block([Assign(ArrayRef("A"))]), Block([]))
        cfg = build_cfg(Block([branch]))
        reach = self._reachable(cfg)
        assert cfg.exit in reach

    def test_if_idt_cond_refines_then_edge(self):
        branch = If(
            Block([]), Block([]), idt_cond=("V", TypePattern(("BLOCK",)))
        )
        cfg = build_cfg(Block([branch]))
        refined = [
            e
            for node in cfg.nodes.values()
            for e in node.succs
            if e.refinements
        ]
        assert len(refined) == 1
        assert refined[0].refinements[0][0] == "V"

    def test_loop_has_back_edge(self):
        loop = Loop(Block([Assign(ArrayRef("A"))]))
        cfg = build_cfg(Block([loop]))
        # a back edge exists: some node reachable from head points back
        has_cycle = False
        for node in cfg.nodes.values():
            for e in node.succs:
                if e.dst <= e.src and e.dst != cfg.exit:
                    has_cycle = True
        assert has_cycle

    def test_dcase_arm_edges_carry_refinements(self):
        stmt = DCaseStmt(
            selectors=("V", "W"),
            arms=(
                (QueryList([("BLOCK",)]), Block([])),
                (None, Block([])),  # DEFAULT
            ),
        )
        cfg = build_cfg(Block([stmt]))
        refined = [
            e
            for node in cfg.nodes.values()
            for e in node.succs
            if e.refinements
        ]
        assert len(refined) == 1
        (name, pattern), = refined[0].refinements
        assert name == "V"

    def test_dcase_without_default_has_fallthrough(self):
        stmt = DCaseStmt(
            selectors=("V",),
            arms=((QueryList([("BLOCK",)]), Block([Assign(ArrayRef("A"))])),),
        )
        cfg = build_cfg(Block([stmt]))
        assert cfg.exit in self._reachable(cfg)

    def test_call_in_basic_block(self):
        cfg = build_cfg(Block([Call("f", {"X": "V"})]))
        stmts = [s for n in cfg.nodes.values() for s in n.stmts]
        assert len(stmts) == 1
        assert isinstance(stmts[0], Call)

    def test_unknown_stmt_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            build_cfg(Block([Weird()]))  # type: ignore[list-item]
