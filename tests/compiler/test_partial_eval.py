"""Tests for pattern relations and query partial evaluation (§3.1)."""

import pytest

from repro.compiler.partial_eval import (
    ALWAYS,
    MAYBE,
    NEVER,
    TOP,
    PlausibleSet,
    decide_pattern,
    decide_querylist,
    dim_implies,
    dim_overlaps,
    pattern_implies,
    pattern_overlaps,
    refine_pattern,
)
from repro.core.dimdist import Block, Cyclic, GenBlock
from repro.core.query import ANY, QueryList, TypePattern, Wild


class TestDimRelations:
    def test_concrete_implies_self(self):
        assert dim_implies(Block(), Block())
        assert not dim_implies(Block(), Cyclic(1))

    def test_everything_implies_any(self):
        assert dim_implies(Block(), ANY)
        assert dim_implies(Wild(Cyclic), ANY)
        assert dim_implies(ANY, ANY)

    def test_any_implies_nothing_concrete(self):
        assert not dim_implies(ANY, Block())
        assert not dim_implies(ANY, Wild(Cyclic))

    def test_concrete_implies_wild_family(self):
        assert dim_implies(Cyclic(3), Wild(Cyclic))
        assert not dim_implies(Block(), Wild(Cyclic))

    def test_wild_never_implies_concrete(self):
        assert not dim_implies(Wild(Cyclic), Cyclic(1))

    def test_overlap_symmetric_cases(self):
        assert dim_overlaps(ANY, Block())
        assert dim_overlaps(Block(), ANY)
        assert dim_overlaps(Cyclic(2), Wild(Cyclic))
        assert dim_overlaps(Wild(Cyclic), Cyclic(2))
        assert not dim_overlaps(Block(), Wild(Cyclic))
        assert not dim_overlaps(Block(), Cyclic(1))

    def test_wild_wild_overlap(self):
        assert dim_overlaps(Wild(Cyclic), Wild(Cyclic))


class TestPatternRelations:
    def test_implies(self):
        a = TypePattern((Block(), Cyclic(2)))
        b = TypePattern((Block(), ANY))
        assert pattern_implies(a, b)
        assert not pattern_implies(b, a)

    def test_rank_mismatch(self):
        a = TypePattern((Block(),))
        b = TypePattern((Block(), ANY))
        assert not pattern_implies(a, b)
        assert not pattern_overlaps(a, b)

    def test_any_type(self):
        t = TypePattern(ANY)
        assert pattern_implies(TypePattern((Block(),)), t)
        assert pattern_overlaps(t, TypePattern((Cyclic(1),)))

    def test_refine_narrows(self):
        a = TypePattern((ANY, Cyclic(2)))
        b = TypePattern((Block(), ANY))
        r = refine_pattern(a, b)
        assert r == TypePattern((Block(), Cyclic(2)))

    def test_refine_disjoint_none(self):
        a = TypePattern((Block(),))
        b = TypePattern((Cyclic(1),))
        assert refine_pattern(a, b) is None

    def test_refine_with_any_type(self):
        a = TypePattern(ANY)
        b = TypePattern((Block(),))
        assert refine_pattern(a, b) == b
        assert refine_pattern(b, a) == b

    def test_refine_wild_with_concrete(self):
        a = TypePattern((Wild(Cyclic),))
        b = TypePattern((Cyclic(4),))
        assert refine_pattern(a, b) == b


class TestPlausibleSet:
    def test_top(self):
        assert TOP.is_top
        assert not TOP.is_empty

    def test_union(self):
        a = PlausibleSet([TypePattern((Block(),))])
        b = PlausibleSet([TypePattern((Cyclic(1),))])
        u = a.union(b)
        assert len(u.patterns) == 2

    def test_union_with_top(self):
        a = PlausibleSet([TypePattern((Block(),))])
        assert a.union(TOP).is_top
        assert TOP.union(a).is_top

    def test_refine_drops_incompatible(self):
        s = PlausibleSet(
            [TypePattern((Block(),)), TypePattern((Cyclic(1),))]
        )
        r = s.refine(TypePattern((Wild(Cyclic),)))
        assert r.patterns == frozenset([TypePattern((Cyclic(1),))])

    def test_refine_top_gives_pattern(self):
        r = TOP.refine(TypePattern((Block(),)))
        assert r.patterns == frozenset([TypePattern((Block(),))])

    def test_empty(self):
        s = PlausibleSet([TypePattern((Block(),))])
        assert s.refine(TypePattern((Cyclic(1),))).is_empty


class TestDecidePattern:
    def test_always(self):
        s = PlausibleSet([TypePattern((Block(), Cyclic(2)))])
        assert decide_pattern(s, TypePattern((Block(), ANY))) == ALWAYS

    def test_never(self):
        s = PlausibleSet([TypePattern((Block(), ANY))])
        assert decide_pattern(s, TypePattern((Cyclic(1), ANY))) == NEVER

    def test_maybe_mixed_set(self):
        s = PlausibleSet(
            [TypePattern((Block(),)), TypePattern((Cyclic(1),))]
        )
        assert decide_pattern(s, TypePattern((Block(),))) == MAYBE

    def test_maybe_top(self):
        assert decide_pattern(TOP, TypePattern((Block(),))) == MAYBE

    def test_never_empty_set(self):
        s = PlausibleSet([])
        assert decide_pattern(s, TypePattern(ANY)) == NEVER

    def test_maybe_wild_in_set_vs_concrete(self):
        # plausible CYCLIC(*) vs query CYCLIC(2): some instances match
        s = PlausibleSet([TypePattern((Wild(Cyclic),))])
        assert decide_pattern(s, TypePattern((Cyclic(2),))) == MAYBE


class TestDecideQuerylist:
    def test_positional_always(self):
        st = {
            "B1": PlausibleSet([TypePattern((Block(),))]),
            "B2": PlausibleSet([TypePattern((Cyclic(2),))]),
        }
        ql = QueryList([("BLOCK",), (Wild(Cyclic),)])
        assert decide_querylist(st, ("B1", "B2"), ql) == ALWAYS

    def test_never_dominates(self):
        st = {
            "B1": PlausibleSet([TypePattern((Block(),))]),
            "B2": PlausibleSet([TypePattern((Block(),))]),
        }
        ql = QueryList([("BLOCK",), ("CYCLIC",)])
        assert decide_querylist(st, ("B1", "B2"), ql) == NEVER

    def test_tagged(self):
        st = {"B3": PlausibleSet([TypePattern((Block(), Cyclic(1)))])}
        ql = QueryList({"B3": ("BLOCK", ANY)})
        assert decide_querylist(st, ("B1", "B2", "B3"), ql) == ALWAYS

    def test_untracked_selector_is_maybe(self):
        ql = QueryList([("BLOCK",)])
        assert decide_querylist({}, ("B1",), ql) == MAYBE
