"""Tests for the reaching-distributions analysis (§3.1)."""

from repro.compiler.ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from repro.compiler.partial_eval import TOP, PlausibleSet
from repro.compiler.reaching import analyze
from repro.core.query import ANY, QueryList, TypePattern


def pat(*dims):
    return TypePattern(dims)


def use(array="V"):
    return Assign(ArrayRef(array), (ArrayRef(array),))


class TestStraightLine:
    def test_initial_declaration_reaches(self):
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        s = use()
        prog.add_proc(ProcDef("main", (), Block([s])))
        res = analyze(prog)
        assert res.plausible(s.sid, "V").patterns == frozenset(
            [pat(":", "BLOCK")]
        )

    def test_distribute_kills_and_gens(self):
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        s1, s2 = use(), use()
        prog.add_proc(
            ProcDef(
                "main",
                (),
                Block([s1, DistributeStmt("V", pat("BLOCK", ":")), s2]),
            )
        )
        res = analyze(prog)
        assert res.plausible(s1.sid, "V").patterns == frozenset(
            [pat(":", "BLOCK")]
        )
        assert res.plausible(s2.sid, "V").patterns == frozenset(
            [pat("BLOCK", ":")]
        )

    def test_undeclared_array_is_top(self):
        prog = IRProgram()
        s = use("W")
        prog.add_proc(ProcDef("main", (), Block([s])))
        res = analyze(prog)
        assert res.plausible(s.sid, "W").is_top

    def test_range_used_when_no_initial(self):
        prog = IRProgram()
        prog.declare("V", range_=[(":", "BLOCK"), ("BLOCK", ":")])
        s = use()
        prog.add_proc(ProcDef("main", (), Block([s])))
        res = analyze(prog)
        assert res.plausible(s.sid, "V").patterns == frozenset(
            [pat(":", "BLOCK"), pat("BLOCK", ":")]
        )

    def test_connected_arrays_share_type(self):
        prog = IRProgram()
        prog.declare("B", initial=("BLOCK",))
        prog.declare("A", initial=("BLOCK",))
        s = use("A")
        prog.add_proc(
            ProcDef(
                "main",
                (),
                Block(
                    [DistributeStmt("B", pat("CYCLIC"), connected=("A",)), s]
                ),
            )
        )
        res = analyze(prog)
        assert res.plausible(s.sid, "A").patterns == frozenset([pat("CYCLIC")])


class TestBranches:
    def test_join_unions_both_paths(self):
        """'several data distributions may reach some statements'."""
        prog = IRProgram()
        prog.declare("V", initial=("BLOCK",))
        after = use()
        branch = If(
            then=Block([DistributeStmt("V", pat("CYCLIC"))]),
            orelse=Block([]),
        )
        prog.add_proc(ProcDef("main", (), Block([branch, after])))
        res = analyze(prog)
        assert res.plausible(after.sid, "V").patterns == frozenset(
            [pat("BLOCK"), pat("CYCLIC")]
        )

    def test_idt_condition_refines_then_branch(self):
        prog = IRProgram()
        prog.declare("V", range_=[("BLOCK",), ("CYCLIC",)])
        inside = use()
        branch = If(
            then=Block([inside]),
            orelse=Block([]),
            idt_cond=("V", pat("BLOCK")),
        )
        prog.add_proc(ProcDef("main", (), Block([branch])))
        res = analyze(prog)
        assert res.plausible(inside.sid, "V").patterns == frozenset(
            [pat("BLOCK")]
        )

    def test_dcase_arm_refinement(self):
        prog = IRProgram()
        prog.declare("V", range_=[("BLOCK",), ("CYCLIC",)])
        in_block = use()
        in_cyclic = use()
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (QueryList([("BLOCK",)]), Block([in_block])),
                (QueryList([("CYCLIC",)]), Block([in_cyclic])),
            ),
        )
        prog.add_proc(ProcDef("main", (), Block([stmt])))
        res = analyze(prog)
        assert res.plausible(in_block.sid, "V").patterns == frozenset(
            [pat("BLOCK")]
        )
        assert res.plausible(in_cyclic.sid, "V").patterns == frozenset(
            [pat("CYCLIC")]
        )

    def test_dcase_join_includes_no_match_path(self):
        prog = IRProgram()
        prog.declare("V", initial=("BLOCK",))
        after = use()
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (
                    QueryList([("BLOCK",)]),
                    Block([DistributeStmt("V", pat("CYCLIC"))]),
                ),
            ),
        )
        prog.add_proc(ProcDef("main", (), Block([stmt, after])))
        res = analyze(prog)
        # both the redistributed arm and the fall-through reach `after`
        assert res.plausible(after.sid, "V").patterns == frozenset(
            [pat("BLOCK"), pat("CYCLIC")]
        )


class TestLoops:
    def test_loop_fixpoint_adi_pattern(self):
        """The Figure 1 + outer loop shape: inside the loop the x-sweep
        may see both distributions (first iteration vs. wraparound)."""
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        x_sweep = Assign(
            ArrayRef("V"), (ArrayRef("V", AccessKind.ROW_SWEEP, dim=0),)
        )
        y_sweep = Assign(
            ArrayRef("V"), (ArrayRef("V", AccessKind.ROW_SWEEP, dim=1),)
        )
        loop = Loop(
            Block(
                [
                    x_sweep,
                    DistributeStmt("V", pat("BLOCK", ":")),
                    y_sweep,
                ]
            )
        )
        prog.add_proc(ProcDef("main", (), Block([loop])))
        res = analyze(prog)
        # x-sweep: initial (:,BLOCK) on iteration 1, (BLOCK,:) after wrap
        assert res.plausible(x_sweep.sid, "V").patterns == frozenset(
            [pat(":", "BLOCK"), pat("BLOCK", ":")]
        )
        # y-sweep: always after the distribute
        assert res.plausible(y_sweep.sid, "V").patterns == frozenset(
            [pat("BLOCK", ":")]
        )

    def test_loop_with_flip_back_is_precise(self):
        """Redistributing back at the loop top makes the x-sweep precise."""
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        x_sweep = use()
        loop = Loop(
            Block(
                [
                    DistributeStmt("V", pat(":", "BLOCK")),
                    x_sweep,
                    DistributeStmt("V", pat("BLOCK", ":")),
                ]
            )
        )
        prog.add_proc(ProcDef("main", (), Block([loop])))
        res = analyze(prog)
        assert res.plausible(x_sweep.sid, "V").patterns == frozenset(
            [pat(":", "BLOCK")]
        )


class TestInterprocedural:
    def test_formal_inherits_actual(self):
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        inner_use = use("X")
        prog.add_proc(ProcDef("tridiag", ("X",), Block([inner_use])))
        prog.add_proc(
            ProcDef(
                "main", (), Block([Call("tridiag", {"X": "V"})])
            )
        )
        res = analyze(prog)
        assert res.plausible(inner_use.sid, "X").patterns == frozenset(
            [pat(":", "BLOCK")]
        )

    def test_declared_formal_forces_redistribution(self):
        prog = IRProgram()
        prog.declare("V", initial=(":", "BLOCK"))
        inner_use = use("X")
        prog.add_proc(
            ProcDef(
                "sweep",
                ("X",),
                Block([inner_use]),
                formal_dists={"X": pat("BLOCK", ":")},
            )
        )
        after = use("V")
        prog.add_proc(
            ProcDef("main", (), Block([Call("sweep", {"X": "V"}), after]))
        )
        res = analyze(prog)
        assert res.plausible(inner_use.sid, "X").patterns == frozenset(
            [pat("BLOCK", ":")]
        )
        # VF semantics: the new distribution returns to the caller
        assert res.plausible(after.sid, "V").patterns == frozenset(
            [pat("BLOCK", ":")]
        )

    def test_callee_distribute_flows_back(self):
        prog = IRProgram()
        prog.declare("V", initial=("BLOCK",))
        prog.add_proc(
            ProcDef(
                "redist", ("X",), Block([DistributeStmt("X", pat("CYCLIC"))])
            )
        )
        after = use("V")
        prog.add_proc(
            ProcDef("main", (), Block([Call("redist", {"X": "V"}), after]))
        )
        res = analyze(prog)
        assert res.plausible(after.sid, "V").patterns == frozenset(
            [pat("CYCLIC")]
        )

    def test_recursion_falls_to_worst_case(self):
        prog = IRProgram()
        prog.declare("V", range_=[("BLOCK",), ("CYCLIC",)])
        after = use("V")
        prog.add_proc(
            ProcDef(
                "rec",
                (),
                Block(
                    [DistributeStmt("V", pat("BLOCK")), Call("rec", {})]
                ),
            )
        )
        prog.add_proc(
            ProcDef("main", (), Block([Call("rec", {}), after]))
        )
        res = analyze(prog)
        ps = res.plausible(after.sid, "V")
        # worst case: back to the RANGE (or TOP), not the precise {BLOCK}
        assert ps.is_top or len(ps.patterns) >= 1
