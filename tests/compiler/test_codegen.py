"""Tests for SPMD lowering (stencil + line-sweep kernels)."""

import numpy as np
import pytest

from repro.compiler.codegen import lower_line_sweep, lower_stencil
from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, ProcessorArray
from repro.runtime.engine import Engine


def smooth(padded, out, widths):
    w0, w1 = widths
    n0, n1 = out.shape
    out[...] = 0.25 * (
        padded[w0 - 1 : w0 - 1 + n0, w1 : w1 + n1]
        + padded[w0 + 1 : w0 + 1 + n0, w1 : w1 + n1]
        + padded[w0 : w0 + n0, w1 - 1 : w1 - 1 + n1]
        + padded[w0 : w0 + n0, w1 + 1 : w1 + 1 + n1]
    )


def seq_smooth(v):
    p = np.pad(v, 1)
    return 0.25 * (p[:-2, 1:-1] + p[2:, 1:-1] + p[1:-1, :-2] + p[1:-1, 2:])


class TestStencilKernel:
    def test_matches_sequential(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        u = engine.declare("U", (16, 16), dist=dist_type("BLOCK", ":"))
        g = np.random.default_rng(0).standard_normal((16, 16))
        u.from_global(g)
        k = lower_stencil(engine, "U", (1, 1), smooth)
        k.step()
        assert np.allclose(u.to_global(), seq_smooth(g))

    def test_multiple_steps(self):
        machine = Machine(ProcessorArray("R", (2, 2)), cost_model=IPSC860)
        engine = Engine(machine)
        u = engine.declare("U", (8, 8), dist=dist_type("BLOCK", "BLOCK"))
        g = np.random.default_rng(1).standard_normal((8, 8))
        u.from_global(g)
        k = lower_stencil(engine, "U", (1, 1), smooth)
        expect = g
        for _ in range(3):
            k.step()
            expect = seq_smooth(expect)
        assert np.allclose(u.to_global(), expect)

    def test_communication_charged(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        u = engine.declare("U", (16, 16), dist=dist_type("BLOCK", ":"))
        k = lower_stencil(engine, "U", (1, 1), smooth)
        before = machine.stats().messages
        k.step()
        assert machine.stats().messages - before == 6

    def test_survives_redistribution(self):
        """The kernel rebuilds its overlap manager after a DISTRIBUTE."""
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        u = engine.declare(
            "U", (16, 16), dist=dist_type("BLOCK", ":"), dynamic=True
        )
        g = np.random.default_rng(2).standard_normal((16, 16))
        u.from_global(g)
        k = lower_stencil(engine, "U", (1, 1), smooth)
        k.step()
        engine.distribute("U", dist_type(":", "BLOCK"))
        k.step()
        assert np.allclose(u.to_global(), seq_smooth(seq_smooth(g)))


class TestLineSweepKernel:
    def line_negate(self, v):
        return -v

    def test_local_sweep_no_messages(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        v = engine.declare("V", (8, 8), dist=dist_type(":", "BLOCK"))
        g = np.arange(64, dtype=float).reshape(8, 8)
        v.from_global(g)
        k = lower_line_sweep(engine, "V", 0, self.line_negate)
        stats = k.sweep()
        assert stats["remote_lines"] == 0
        assert machine.stats().messages == 0
        assert np.array_equal(v.to_global(), -g)

    def test_distributed_sweep_costs_messages(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        v = engine.declare("V", (8, 8), dist=dist_type("BLOCK", ":"))
        g = np.arange(64, dtype=float).reshape(8, 8)
        v.from_global(g)
        k = lower_line_sweep(engine, "V", 0, self.line_negate)
        stats = k.sweep()
        assert stats["remote_lines"] == 8
        # per line: 3 gathers + 3 scatters
        assert machine.stats().messages == 8 * 6
        assert np.array_equal(v.to_global(), -g)

    def test_cumsum_line_order_preserved(self):
        """A recurrence along the line (like TRIDIAG) needs the whole
        line in order — verify gather preserves element order."""
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        v = engine.declare("V", (8, 4), dist=dist_type("BLOCK", ":"))
        g = np.random.default_rng(3).standard_normal((8, 4))
        v.from_global(g)
        k = lower_line_sweep(engine, "V", 0, np.cumsum)
        k.sweep()
        assert np.allclose(v.to_global(), np.cumsum(g, axis=0))

    def test_dim_validation(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        engine.declare("V", (8, 8), dist=dist_type(":", "BLOCK"))
        with pytest.raises(ValueError):
            lower_line_sweep(engine, "V", 2, self.line_negate)

    def test_sweep_along_dim1(self):
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        v = engine.declare("V", (8, 8), dist=dist_type("BLOCK", ":"))
        g = np.random.default_rng(4).standard_normal((8, 8))
        v.from_global(g)
        k = lower_line_sweep(engine, "V", 1, np.cumsum)
        stats = k.sweep()
        assert stats["remote_lines"] == 0  # dim 1 is local here
        assert np.allclose(v.to_global(), np.cumsum(g, axis=1))


class TestVectorizedSweepPlans:
    """PR-4: plan caching and batched solvers in the lowered kernels."""

    def test_shift_plan_cached_across_stencil_steps(self):
        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        u = engine.declare("U", (16, 16), dist=dist_type("BLOCK", ":"))
        u.from_global(np.zeros((16, 16)))
        kernel = lower_stencil(engine, "U", (1, 1), smooth)
        assert kernel.plan_cache is engine.plan_cache
        kernel.step()
        s1 = engine.plan_cache.stats()
        assert s1["shift_plans"] == 2  # one per haloed dimension
        kernel.step()
        s2 = engine.plan_cache.stats()
        assert s2["shift_plans"] == 2
        assert s2["hits"] > s1["hits"]  # second step reused the plan

    def test_sweep_plan_cached_across_sweeps(self):
        from repro.apps.tridiag import thomas_const
        from functools import partial

        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        v = engine.declare("V", (12, 6), dist=dist_type("BLOCK", ":"))
        v.from_global(np.linspace(0, 1, 72).reshape(12, 6))
        kernel = lower_line_sweep(
            engine, "V", 0, partial(thomas_const, a=-1.0, b=4.0)
        )
        kernel.sweep()
        assert engine.plan_cache.stats()["sweep_plans"] == 1
        before = engine.plan_cache.stats()["hits"]
        kernel.sweep()
        assert engine.plan_cache.stats()["sweep_plans"] == 1
        assert engine.plan_cache.stats()["hits"] > before

    def test_batched_line_solver_unwraps_partial(self):
        from functools import partial

        from repro.apps.tridiag import thomas_const, thomas_const_batch
        from repro.compiler.codegen import batched_line_solver

        line = partial(thomas_const, a=-1.0, b=4.0)
        batched = batched_line_solver(line)
        assert batched is not None
        rows = np.linspace(-1, 1, 24).reshape(4, 6)
        got = batched(rows)
        want = np.stack([thomas_const(r, -1.0, 4.0) for r in rows])
        assert np.array_equal(got, want)
        assert batched_line_solver(seq_smooth) is None

    def test_batched_thomas_bitwise_equals_scalar(self):
        from repro.apps.tridiag import thomas_const, thomas_const_batch

        rng = np.random.default_rng(3)
        rows = rng.normal(size=(7, 11))
        got = thomas_const_batch(rows, -0.5, 3.0)
        want = np.stack([thomas_const(r, -0.5, 3.0) for r in rows])
        assert np.array_equal(got, want)

    def test_default_plan_cache_used_without_engine(self):
        from functools import partial

        from repro.apps.tridiag import thomas_const
        from repro.compiler.codegen import LineSweepKernel
        from repro.runtime.redistribute import default_plan_cache

        machine = Machine(ProcessorArray("R", (4,)), cost_model=IPSC860)
        engine = Engine(machine)
        v = engine.declare("V", (12, 6), dist=dist_type("BLOCK", ":"))
        v.from_global(np.zeros((12, 6)))
        kernel = LineSweepKernel(v, 0, partial(thomas_const, a=-1.0, b=4.0))
        assert kernel.plan_cache is default_plan_cache()
