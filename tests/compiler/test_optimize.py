"""Tests for partial-evaluation-driven IR optimization."""

import pytest

from repro.compiler.comm_analysis import infer_overlap
from repro.compiler.ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from repro.compiler.optimize import optimize
from repro.core.dimdist import Cyclic
from repro.core.query import QueryList, TypePattern


def pat(*dims):
    return TypePattern(dims)


def use(array="V", label=""):
    return Assign(ArrayRef(array), (ArrayRef(array),), label)


def prog_with(stmts, **declares):
    prog = IRProgram()
    for name, kw in declares.items():
        prog.declare(name, **kw)
    prog.add_proc(ProcDef("main", (), Block(stmts)))
    return prog


class TestDeadArmElimination:
    def test_never_arm_pruned(self):
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (QueryList([("CYCLIC",)]), Block([use(label="dead")])),
                (QueryList([("BLOCK",)]), Block([use(label="live")])),
            ),
        )
        prog = prog_with([stmt], V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        assert stats.dead_arms == 1
        # the remaining construct specializes to the live arm
        body = list(new.proc("main").body)
        assert len(body) == 1
        assert isinstance(body[0], Assign) and body[0].label == "live"

    def test_unmatchable_dcase_removed_entirely(self):
        stmt = DCaseStmt(
            selectors=("V",),
            arms=((QueryList([(Cyclic(7), ":")]), Block([use()])),),
        )
        prog = prog_with([stmt], V={"initial": ("BLOCK", ":")})
        new, stats = optimize(prog)
        assert stats.dead_arms == 1
        assert len(new.proc("main").body) == 0


class TestSpecialization:
    def test_always_first_arm_inlined(self):
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (QueryList([("BLOCK",)]), Block([use(label="taken")])),
                (QueryList([("CYCLIC",)]), Block([use(label="other")])),
            ),
        )
        prog = prog_with([stmt], V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        assert stats.specialized_dcases == 1
        body = list(new.proc("main").body)
        assert len(body) == 1 and body[0].label == "taken"

    def test_maybe_arms_kept(self):
        branch = If(
            then=Block([DistributeStmt("V", pat("CYCLIC"))]),
            orelse=Block([]),
        )
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (QueryList([("BLOCK",)]), Block([use()])),
                (QueryList([("CYCLIC",)]), Block([use()])),
            ),
        )
        prog = prog_with([branch, stmt], V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        body = list(new.proc("main").body)
        assert isinstance(body[-1], DCaseStmt)
        assert len(body[-1].arms) == 2
        assert stats.dead_arms == 0

    def test_always_arm_truncates_tail(self):
        """Arms after an ALWAYS arm can never be reached."""
        branch = If(
            then=Block([DistributeStmt("V", pat("CYCLIC"))]),
            orelse=Block([DistributeStmt("V", pat("BLOCK"))]),
        )
        stmt = DCaseStmt(
            selectors=("V",),
            arms=(
                (QueryList([("CYCLIC",)]), Block([use()])),  # maybe
                (None, Block([use()])),                       # DEFAULT: always
                (QueryList([("BLOCK",)]), Block([use()])),    # unreachable
            ),
        )
        prog = prog_with([branch, stmt], V={"initial": ("BLOCK",)})
        new, _ = optimize(prog)
        dcase = list(new.proc("main").body)[-1]
        assert isinstance(dcase, DCaseStmt)
        assert len(dcase.arms) == 2  # trailing arm dropped


class TestIfCollapse:
    def test_always_then(self):
        branch = If(
            then=Block([use(label="t")]),
            orelse=Block([use(label="e")]),
            idt_cond=("V", pat("BLOCK")),
        )
        prog = prog_with([branch], V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        assert stats.collapsed_ifs == 1
        body = list(new.proc("main").body)
        assert len(body) == 1 and body[0].label == "t"

    def test_never_takes_else(self):
        branch = If(
            then=Block([use(label="t")]),
            orelse=Block([use(label="e")]),
            idt_cond=("V", pat("CYCLIC")),
        )
        prog = prog_with([branch], V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        body = list(new.proc("main").body)
        assert len(body) == 1 and body[0].label == "e"

    def test_maybe_kept(self):
        prog = prog_with(
            [
                If(
                    then=Block([use()]),
                    orelse=Block([]),
                    idt_cond=("V", pat("BLOCK")),
                )
            ],
            V={"range_": [("BLOCK",), ("CYCLIC",)]},
        )
        new, stats = optimize(prog)
        assert stats.collapsed_ifs == 0
        assert isinstance(list(new.proc("main").body)[0], If)


class TestRedundantDistribute:
    def test_noop_distribute_removed(self):
        stmts = [
            DistributeStmt("V", pat("BLOCK")),  # V already (BLOCK)
            use(),
        ]
        prog = prog_with(stmts, V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        assert stats.removed_distributes == 1
        assert all(
            not isinstance(s, DistributeStmt) for s in new.proc("main").body
        )

    def test_real_distribute_kept(self):
        stmts = [DistributeStmt("V", pat("CYCLIC")), use()]
        prog = prog_with(stmts, V={"initial": ("BLOCK",)})
        new, stats = optimize(prog)
        assert stats.removed_distributes == 0

    def test_loop_flip_distributes_kept(self):
        """In the ADI loop both distributes are load-bearing."""
        loop = Loop(
            Block(
                [
                    DistributeStmt("V", pat(":", "BLOCK")),
                    use(),
                    DistributeStmt("V", pat("BLOCK", ":")),
                    use(),
                ]
            )
        )
        prog = prog_with([loop], V={"initial": (":", "BLOCK")})
        new, stats = optimize(prog)
        # the first distribute is a no-op only on iteration 1; because
        # (BLOCK,:) also reaches it around the back edge it must stay
        assert stats.removed_distributes == 0


class TestInferOverlap:
    def test_widths_from_shift_refs(self):
        refs = [
            ArrayRef("U", AccessKind.SHIFT, offsets=(1, 0)),
            ArrayRef("U", AccessKind.SHIFT, offsets=(-2, 1)),
            ArrayRef("W", AccessKind.IDENTITY),
        ]
        out = infer_overlap(refs, 2)
        assert out == {"U": (2, 1)}

    def test_identity_only_needs_none(self):
        assert infer_overlap([ArrayRef("A")], 2) == {}

    def test_sweep_refs_ignored(self):
        refs = [ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)]
        assert infer_overlap(refs, 2) == {}


class TestPlannerFieldsPreserved:
    """The rebuild must carry the planner-facing IR fields through."""

    def test_planned_set_and_loop_trips_survive(self):
        from repro.lang.frontend import parse_program

        src = """
PROGRAM P
REAL V(N, N) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
PLAN V
DO IT = 1, 8
  DO J = 1, N
    CALL TRIDIAG(V(:, J), N)
  ENDDO
ENDDO
END
"""
        program = parse_program(src, {"N": 16})
        opt, _ = optimize(program)
        assert opt.planned == {"V"}
        outer = opt.proc("p").body.stmts[0]
        assert outer.trip == 8
        assert outer.body.stmts[0].trip == 16
