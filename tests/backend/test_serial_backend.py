"""SerialBackend: the in-process reference semantics, via the seam."""

import numpy as np
import pytest

from repro.backend import Backend, SerialBackend, resolve_backend
from repro.backend.base import attached_backend
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine

R = ProcessorArray("R", (4,))


def test_resolve_backend():
    assert isinstance(resolve_backend(None), SerialBackend)
    assert isinstance(resolve_backend("serial"), SerialBackend)
    be = SerialBackend()
    assert resolve_backend(be) is be
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("quantum")


def test_attach_lifecycle():
    m = Machine(R)
    be = SerialBackend()
    assert be.attach(m) is be
    assert m.backend is be
    assert be.attach(m) is be  # idempotent
    other = Machine(R)
    with pytest.raises(RuntimeError, match="already attached"):
        be.attach(other)
    be.close()
    assert m.backend is None
    assert be.machine is None


def test_second_backend_on_same_machine_rejected():
    m = Machine(R)
    SerialBackend().attach(m)
    with pytest.raises(RuntimeError, match="already has a"):
        SerialBackend().attach(m)


def test_engine_seam_defaults_to_machine_backend():
    m = Machine(R)
    be = SerialBackend().attach(m)
    engine = Engine(m)
    assert engine.backend is be
    engine2 = Engine(Machine(R))
    assert engine2.backend is None  # no implicit attachment


def test_engine_accepts_backend_name():
    m = Machine(R)
    engine = Engine(m, backend="serial")
    assert isinstance(engine.backend, SerialBackend)
    assert m.backend is engine.backend


def test_serial_move_matches_inline_path():
    def run(backend):
        m = Machine(R)
        e = Engine(m, backend=backend)
        v = e.declare("V", (10, 6), dist=dist_type("BLOCK", ":"), dynamic=True)
        g = np.random.default_rng(0).standard_normal((10, 6))
        v.from_global(g)
        e.distribute("V", dist_type(":", "BLOCK"))
        return v.to_global(), m.stats()

    sol_a, st_a = run(None)
    sol_b, st_b = run(SerialBackend())
    assert np.array_equal(sol_a, sol_b)
    assert st_a.messages == st_b.messages
    assert st_a.time == st_b.time


def test_serial_run_kernel():
    m = Machine(R)
    e = Engine(m, backend=SerialBackend())
    v = e.declare("V", (8,), dist=dist_type("BLOCK"))
    v.from_global(np.zeros(8))

    def fill_rank(rank, local, idx):
        local[...] = rank

    e.backend.run_kernel(e.arrays["V"], fill_rank)
    assert np.array_equal(
        v.to_global(), np.repeat(np.arange(4, dtype=float), 2)
    )


def test_attached_backend_context_owns_named_backends():
    m = Machine(R)
    with attached_backend(m, "serial") as be:
        assert m.backend is be
    assert m.backend is None  # closed on exit

    keep = SerialBackend()
    with attached_backend(m, keep) as be:
        assert be is keep
    assert m.backend is keep  # caller-owned instance stays attached
    keep.close()


def test_base_backend_is_abstract():
    be = Backend()
    with pytest.raises(NotImplementedError):
        be.move(None, None)
    with pytest.raises(NotImplementedError):
        be.run_kernel(None, None)
