"""Unit tests for the shared data-motion planning functions."""

import numpy as np
import pytest

from repro.backend.plan import (
    halo_dest_slice,
    segment_gflat,
    segment_moves,
    shift_plan,
    transfer_plan,
)
from repro.core.dimdist import Block, Cyclic, GenBlock, Replicated
from repro.core.distribution import dist_type
from repro.machine import ProcessorArray
from repro.runtime.redistribute import transfer_matrix

P = 4
R = ProcessorArray("R", (P,))


def _apply(spec, shape=(12, 3)):
    return dist_type(*spec).apply(shape, R)


class TestSegmentGflat:
    def test_block_rows(self):
        d = _apply((Block(), ":"))
        # rank 1 owns rows 3..5 of a 12x3 array
        got = segment_gflat(d, 1)
        want = np.arange(3 * 3, 6 * 3)
        assert np.array_equal(got, want)

    def test_cyclic(self):
        d = _apply((Cyclic(1), ":"))
        got = segment_gflat(d, 2)
        want = np.concatenate(
            [np.arange(r * 3, r * 3 + 3) for r in (2, 6, 10)]
        )
        assert np.array_equal(got, want)

    def test_empty_rank(self):
        d = _apply((GenBlock([12, 0, 0, 0]), ":"))
        assert segment_gflat(d, 3).size == 0


class TestTransferPlan:
    @pytest.mark.parametrize(
        "old_spec,new_spec",
        [
            ((Block(), ":"), (":", Block())),
            ((Cyclic(2), ":"), (Block(), ":")),
            ((GenBlock([5, 3, 2, 2]), ":"), (Block(), ":")),
            ((Block(), ":"), (Replicated(), ":")),
        ],
    )
    def test_counts_match_transfer_matrix(self, old_spec, new_spec):
        old, new = _apply(old_spec), _apply(new_spec)
        plan = transfer_plan(old, new, P)
        T = np.zeros((P, P), dtype=np.int64)
        for s, d, idx in plan:
            if s != d:
                T[s, d] += len(idx)
        assert np.array_equal(T, transfer_matrix(old, new, P))

    def test_covers_every_destination_element(self):
        old = _apply((Block(), ":"))
        new = _apply((Cyclic(3), ":"))
        plan = transfer_plan(old, new, P)
        per_dest = {r: [] for r in range(P)}
        for _s, d, idx in plan:
            per_dest[d].append(idx)
        for rank in range(P):
            got = np.sort(np.concatenate(per_dest[rank] or [np.empty(0, int)]))
            want = np.sort(segment_gflat(new, rank))
            assert np.array_equal(got, want)

    def test_domain_mismatch_rejected(self):
        old = _apply((Block(), ":"), shape=(12, 3))
        new = _apply((Block(), ":"), shape=(8, 3))
        with pytest.raises(ValueError, match="index domain"):
            transfer_plan(old, new, P)


class TestSegmentMoves:
    def test_send_recv_pairing(self):
        old = _apply((Block(), ":"), shape=(12, 4))
        new = _apply((":", Block()), shape=(12, 4))
        moves = segment_moves(old, new, P)
        # every send stream has a matching recv stream: same peer,
        # same per-message element counts, same order
        send_streams: dict[tuple[int, int], list[int]] = {}
        recv_streams: dict[tuple[int, int], list[int]] = {}
        for r, m in moves.items():
            for d, pos in m.sends:
                send_streams.setdefault((r, d), []).append(len(pos))
            for s, pos in m.recvs:
                recv_streams.setdefault((s, r), []).append(len(pos))
        assert send_streams == recv_streams
        total_sent = sum(sum(v) for v in send_streams.values())
        assert total_sent == transfer_matrix(old, new, P).sum()

    def test_keeps_plus_moves_cover_new_segments(self):
        old = _apply((GenBlock([2, 6, 2, 2]), ":"))
        new = _apply((Block(), ":"))
        moves = segment_moves(old, new, P)
        for rank in range(P):
            n_new = new.local_size(rank)
            m = moves.get(rank)
            covered = 0
            if m is not None:
                covered += sum(len(np_) for _o, np_ in m.keeps)
                covered += sum(len(pos) for _s, pos in m.recvs)
            assert covered == n_new


class TestShiftPlan:
    def test_matches_manual_block_neighbours(self):
        d = _apply((Block(), ":"))
        entries = shift_plan(d, 0, 1)
        # 4 ranks in a row: 3 interior boundaries x 2 directions
        assert len(entries) == 6
        pairs = {(s, dst, key) for s, dst, key, _sl, _c in entries}
        assert (1, 0, "hi") in pairs  # rank1's low slab -> rank0's hi halo
        assert (0, 1, "lo") in pairs
        for _s, _d, _k, sl, count in entries:
            assert count == 3  # one row of a 12x3 array

    def test_non_contiguous_rejected(self):
        d = _apply((Cyclic(1), ":"))
        with pytest.raises(ValueError, match="contiguous"):
            shift_plan(d, 0, 1)

    def test_width_clamped_to_segment(self):
        d = _apply((GenBlock([1, 5, 3, 3]), ":"))
        entries = shift_plan(d, 0, 2)
        sends_of_0 = [e for e in entries if e[0] == 0]
        # rank 0 owns a single row; its slab is clamped to width 1
        for _s, _d, _k, sl, count in sends_of_0:
            assert count == 3


class TestHaloDestSlice:
    def test_lo_hi_positions(self):
        shape, widths = (4, 3), (1, 1)
        lo = halo_dest_slice(shape, widths, 0, "lo")
        hi = halo_dest_slice(shape, widths, 0, "hi")
        assert lo[0] == slice(0, 1) and lo[1] == slice(1, 4)
        assert hi[0] == slice(5, 6)

    def test_bad_key(self):
        with pytest.raises(ValueError, match="lo.*hi"):
            halo_dest_slice((4, 3), (1, 1), 0, "mid")
