"""Calibration: alpha/beta fitting, MeasuredMachine, planner handoff."""

import numpy as np
import pytest

from repro.backend.calibrate import calibrate, fit_alpha_beta
from repro.machine import Calibration, Machine, MeasuredMachine, ProcessorArray


class TestFit:
    def test_exact_linear_samples(self):
        alpha, beta = 5e-5, 2e-9
        samples = [(n, alpha + beta * n) for n in (8, 1024, 65536, 1 << 20)]
        a, b, resid = fit_alpha_beta(samples)
        assert a == pytest.approx(alpha, rel=1e-6)
        assert b == pytest.approx(beta, rel=1e-6)
        assert resid == pytest.approx(0.0, abs=1e-12)

    def test_noise_clamped_nonnegative(self):
        # pathological samples that would fit a negative slope
        samples = [(8, 1e-4), (1 << 20, 1e-5)]
        a, b, _ = fit_alpha_beta(samples)
        assert a >= 0 and b >= 0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two"):
            fit_alpha_beta([(8, 1e-5)])


class TestCalibration:
    def _cal(self, **kw):
        base = dict(
            alpha=1e-5, beta=1e-9, flop_rate=1e8,
            samples=((8, 1.1e-5), (1024, 1.2e-5)), source="test",
        )
        base.update(kw)
        return Calibration(**base)

    def test_cost_model_roundtrip(self):
        cal = self._cal()
        cm = cal.cost_model()
        assert cm.alpha == cal.alpha and cm.beta == cal.beta
        assert cm.name == "measured(test)"
        assert cal.bandwidth == pytest.approx(1e9)
        assert "alpha" in cal.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            self._cal(alpha=-1.0)
        with pytest.raises(ValueError):
            self._cal(flop_rate=0.0)

    def test_measured_machine_is_a_machine(self):
        cal = self._cal()
        m = MeasuredMachine(ProcessorArray("M", (4,)), cal)
        assert isinstance(m, Machine)
        assert m.cost_model.alpha == cal.alpha
        assert m.calibration is cal
        assert m.nprocs == 4
        assert "MeasuredMachine" in repr(m)


class TestLiveCalibration:
    @pytest.fixture(scope="class")
    def cal(self):
        return calibrate(
            nprocs=2, sizes=(8, 4096, 65536), repeats=2, flop_n=100_000
        )

    def test_produces_positive_constants(self, cal):
        assert cal.alpha > 0
        assert cal.beta >= 0
        assert cal.flop_rate > 0
        assert len(cal.samples) == 3
        assert cal.source == "multiprocess"

    def test_planner_accepts_measured_machine(self, cal):
        from repro.planner import CostEngine, adi_workload, plan_workload

        machine = MeasuredMachine(ProcessorArray("M", (4,)), cal)
        workload = adi_workload(16, 16, iterations=2, machine=machine)
        plan = plan_workload(workload, cost_engine=CostEngine(machine))
        assert plan.steps
        assert plan.total_cost <= min(plan.static.values()) + 1e-12

    def test_engine_runs_on_measured_machine(self, cal):
        from repro.core.distribution import dist_type
        from repro.runtime.engine import Engine

        machine = MeasuredMachine(ProcessorArray("M", (4,)), cal)
        e = Engine(machine)
        v = e.declare(
            "V", (8, 8), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        g = np.arange(64, dtype=float).reshape(8, 8)
        v.from_global(g)
        reports = e.distribute("V", dist_type("BLOCK", ":"))
        assert np.array_equal(v.to_global(), g)
        # measured constants drive the modeled time
        assert reports[0].time > 0

    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match="two workers"):
            calibrate(nprocs=1)

    def test_rejects_single_worker_backend(self):
        from repro.backend import MultiprocessBackend

        be = MultiprocessBackend()
        be.attach(Machine(ProcessorArray("ONE", (1,))))
        try:
            with pytest.raises(ValueError, match="two workers"):
                calibrate(backend=be)
        finally:
            be.close()
