"""Coverage for failure paths that predate the fault registry.

ISSUE 9 satellite: the ``dead workers:`` detection branch, the
attach-after-close guard, the never-sent :meth:`Transport.recv`
timeout, and the barrier failure taxonomy (broken vs timed out) —
exercised in-process with ``queue.Queue`` + ``threading.Barrier`` so
no fleets are spawned where a thread pair will do.
"""

import queue
import threading
import time

import pytest

from repro.backend import (
    BackendError,
    MultiprocessBackend,
    Transport,
    TransportBroken,
    TransportTimeout,
)
from repro.core.distribution import dist_type
from repro.faults import (
    FaultPlan,
    TransportDelay,
    TransportDrop,
    WorkerCrash,
    deactivate,
    injected,
)
from repro.machine import Machine, ProcessorArray
from repro.obs import flight_recorder
from repro.runtime.engine import Engine

R = ProcessorArray("R", (4,))


@pytest.fixture(autouse=True)
def _clean_activation():
    deactivate()
    yield
    deactivate()


def _fill_with_rank(rank, local, idx):
    local[...] = rank


def _pair(timeout=5.0, faults=None, abort_board=None):
    """Two in-process transport endpoints sharing a thread barrier."""
    boxes = [queue.Queue(), queue.Queue()]
    bar = threading.Barrier(2)
    mk = lambda r: Transport(  # noqa: E731
        r, 2, boxes[r], boxes, bar, timeout,
        abort_board=abort_board, faults=faults,
    )
    return mk(0), mk(1)


class TestPointToPoint:
    def test_recv_never_sent_times_out(self):
        t0, _ = _pair(timeout=0.2)
        with pytest.raises(
            TransportTimeout, match="no message from 1 tagged 'x'"
        ):
            t0.recv(1, "x")

    def test_out_of_order_messages_are_stashed(self):
        t0, t1 = _pair()
        t1.send(0, "a", "first")
        t1.send(0, "b", "second")
        assert t0.recv(1, "b") == "second"
        assert t0.recv(1, "a") == "first"
        assert t0.received_messages == 2

    def test_injected_link_delay_slows_the_nth_message(self):
        plan = FaultPlan(
            [TransportDelay(src=1, dst=0, seconds=0.15, first=2, last=2)]
        )
        t0, t1 = _pair(faults=plan)
        start = time.perf_counter()
        t1.send(0, "t", 1)  # message 1: undelayed
        fast = time.perf_counter() - start
        start = time.perf_counter()
        t1.send(0, "t", 2)  # message 2: +0.15 s
        slow = time.perf_counter() - start
        assert fast < 0.1 and slow >= 0.15
        assert t0.recv(1, "t") == 1 and t0.recv(1, "t") == 2

    def test_injected_drop_loses_the_message(self):
        plan = FaultPlan([TransportDrop(src=1, dst=0, at_message=1)])
        t0, t1 = _pair(timeout=0.2, faults=plan)
        t1.send(0, "t", "gone")
        assert t1.dropped_messages == 1
        assert t1.sent_messages == 1  # the sender believes it went out
        with pytest.raises(TransportTimeout, match="no message from"):
            t0.recv(1, "t")


class TestBarrierTaxonomy:
    def test_peer_abort_raises_broken_with_culprit(self):
        board = [0, 0]
        t0, t1 = _pair(timeout=5.0, abort_board=board)
        t1.mark_aborted()
        t1._barrier.abort()
        with pytest.raises(TransportBroken) as info:
            t0.barrier()
        assert info.value.aborted_ranks == (1,)
        assert "aborted by rank(s) [1]" in str(info.value)

    def test_external_teardown_raises_broken_without_culprit(self):
        t0, _ = _pair(timeout=5.0, abort_board=[0, 0])
        t0._barrier.abort()  # master-side teardown: nobody stamped
        with pytest.raises(TransportBroken) as info:
            t0.barrier()
        assert info.value.aborted_ranks == ()
        assert "aborted by a peer or the master" in str(info.value)

    def test_genuine_timeout_is_not_broken(self):
        t0, _ = _pair(timeout=0.2, abort_board=[0, 0])
        with pytest.raises(TransportTimeout, match="no peer aborted") as info:
            t0.barrier()  # the peer never arrives, nobody aborts
        assert not isinstance(info.value, TransportBroken)

    def test_broken_is_a_timeout_subtype(self):
        # pre-ISSUE-9 handlers that catch TransportTimeout keep working
        assert issubclass(TransportBroken, TransportTimeout)


class TestFleetFailurePaths:
    def test_dead_worker_branch_names_the_corpse(self):
        """max_restarts=0: the detection branch surfaces directly with
        the ``dead workers:`` message and a flight-recorder note."""
        with injected(FaultPlan([WorkerCrash(rank=3, at_op=2)])):
            be = MultiprocessBackend(timeout=30.0, max_restarts=0)
            try:
                m = Machine(R)
                be.attach(m)
                e = Engine(m)
                e.declare("V", (8,), dist=dist_type("BLOCK"))
                with pytest.raises(BackendError, match="dead workers:") as info:
                    be.run_kernel(e.arrays["V"], _fill_with_rank)
            finally:
                be.close()
        assert info.value.retryable
        assert info.value.dead_ranks == (3,)
        notes = flight_recorder.notes("backend.fleet_fault")
        assert notes and notes[-1]["dead"]

    def test_run_op_after_close_raises(self):
        be = MultiprocessBackend(timeout=30.0)
        m = Machine(R)
        be.attach(m)
        e = Engine(m)
        e.declare("V", (8,), dist=dist_type("BLOCK"))
        be.close()
        with pytest.raises(
            BackendError, match="not attached / already closed"
        ):
            be.run_op(print, [{} for _ in range(max(be.nprocs, 1))])

    def test_close_is_idempotent(self):
        be = MultiprocessBackend(timeout=30.0)
        m = Machine(R)
        be.attach(m)
        be.close()
        be.close()  # second close must be a no-op, not an error
