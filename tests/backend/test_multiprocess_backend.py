"""MultiprocessBackend: real SPMD workers, shared memory, transport.

The conformance *property* suite lives in
``tests/properties/test_backend_conformance.py``; these are the
mechanism tests — lifecycle, shared-memory hygiene, worker error
propagation, collectives, and the plan-cache sharing the reports
advertise.
"""

import os

import numpy as np
import pytest

from repro.backend import BackendError, MultiprocessBackend
from repro.core.distribution import dist_type
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine

R = ProcessorArray("R", (4,))


@pytest.fixture()
def backend():
    be = MultiprocessBackend(timeout=60.0)
    yield be
    be.close()


def _shm_leftovers() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("vfe-")]
    except FileNotFoundError:  # non-Linux: rely on close() not raising
        return []


def test_lifecycle_and_cleanup(backend):
    m = Machine(R)
    backend.attach(m)
    assert m.backend is backend
    assert backend.nprocs == 4
    e = Engine(m)
    v = e.declare("V", (8, 8), dist=dist_type("BLOCK", ":"), dynamic=True)
    v.from_global(np.arange(64, dtype=float).reshape(8, 8))
    assert len(backend.allocator) > 0
    backend.close()
    assert m.backend is None
    assert _shm_leftovers() == []


def test_arrays_survive_backend_close():
    """Closing the backend withdraws the shared storage; array
    contents must remain readable (private copies), not segfault."""
    m = Machine(R)
    be = MultiprocessBackend()
    be.attach(m)
    e = Engine(m)
    v = e.declare("V", (8, 8), dist=dist_type(":", "BLOCK"), dynamic=True)
    g = np.random.default_rng(2).standard_normal((8, 8))
    v.from_global(g)
    e.distribute("V", dist_type("BLOCK", ":"))
    be.close()
    assert _shm_leftovers() == []
    assert np.array_equal(v.to_global(), g)  # reads ordinary memory now
    v.set((0, 0), 42.0)
    assert v.get((0, 0)) == 42.0


def test_attach_after_allocation_rejected(backend):
    m = Machine(R)
    Engine(m).declare("V", (8,), dist=dist_type("BLOCK"))
    with pytest.raises(RuntimeError, match="before declaring"):
        backend.attach(m)
    # failed attach must roll back completely: the machine stays a
    # perfectly usable serial machine
    assert m.backend is None
    assert backend.machine is None
    e = Engine(m)
    v = e.declare("W", (8, 4), dist=dist_type(":", "BLOCK"), dynamic=True)
    g = np.arange(32, dtype=float).reshape(8, 4)
    v.from_global(g)
    e.distribute("W", dist_type("BLOCK", ":"))
    assert np.array_equal(v.to_global(), g)


def test_distribute_roundtrip_preserves_data(backend):
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    v = e.declare("V", (16, 8), dist=dist_type(":", "BLOCK"), dynamic=True)
    g = np.random.default_rng(7).standard_normal((16, 8))
    v.from_global(g)
    for spec in [("BLOCK", ":"), (":", "BLOCK"), ("CYCLIC", ":")]:
        e.distribute("V", dist_type(*spec))
        assert np.array_equal(v.to_global(), g)


def test_reports_name_backend_and_cache(backend):
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    e.declare("V", (16, 4), dist=dist_type(":", "BLOCK"), dynamic=True)
    e.distribute("V", dist_type("BLOCK", ":"))
    e.distribute("V", dist_type(":", "BLOCK"))
    e.distribute("V", dist_type("BLOCK", ":"))
    first, _, third = e.reports[:3]
    assert first.backend == "multiprocess"
    # first flip computes the matrix and the worker move plan ...
    assert first.cache_misses == 2 and first.cache_hits == 0
    # ... the recurrence is served from the shared cache
    assert third.cache_hits == 2 and third.cache_misses == 0
    assert "multiprocess" in third.summary()
    assert "2 hit" in third.summary()
    assert "plan cache" in e.redistribution_summary()


def test_worker_error_propagates(backend):
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    e.declare("V", (8,), dist=dist_type("BLOCK"))
    with pytest.raises(BackendError, match="_explode"):
        backend.run_kernel(e.arrays["V"], _explode)
    # the fleet survives a failed op
    e2 = Engine(m)
    e2.declare("W", (8,), dist=dist_type("BLOCK"))
    backend.run_kernel(e2.arrays["W"], _fill_with_rank)
    assert np.array_equal(
        e2.arrays["W"].to_global(),
        np.repeat(np.arange(4, dtype=float), 2),
    )


def test_partial_worker_error_fails_fast_and_fleet_recovers():
    """One failing rank aborts the collective barrier: peers bail out
    immediately (no timeout ride-out), and the re-armed barrier keeps
    the fleet usable for the next op."""
    be = MultiprocessBackend(timeout=30.0)
    try:
        m = Machine(R)
        be.attach(m)
        e = Engine(m)
        e.declare("V", (8,), dist=dist_type("BLOCK"))
        import time

        t0 = time.perf_counter()
        with pytest.raises(BackendError, match="rank 0 only"):
            be.run_kernel(e.arrays["V"], _explode_rank0)
        assert time.perf_counter() - t0 < 15.0  # no timeout ride-out
        # fleet recovered: barriers and acks still line up
        be.run_kernel(e.arrays["V"], _fill_with_rank)
        assert np.array_equal(
            e.arrays["V"].to_global(),
            np.repeat(np.arange(4, dtype=float), 2),
        )
    finally:
        be.close()


def test_plan_replay_on_recurring_flips(backend):
    """A steady-state flip ships its move plan to the fleet once and
    replays it by id afterwards — contents stay bitwise-correct."""
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    v = e.declare("V", (16, 8), dist=dist_type(":", "BLOCK"), dynamic=True)
    g = np.random.default_rng(13).standard_normal((16, 8))
    v.from_global(g)
    for i in range(6):
        target = ("BLOCK", ":") if i % 2 == 0 else (":", "BLOCK")
        e.distribute("V", dist_type(*target))
        assert np.array_equal(v.to_global(), g)
    # both flip directions were shipped exactly once
    assert len(backend._shipped_plans) == 2


def test_run_kernel_runs_in_workers_not_master(backend):
    """The worker executes in another process: master-side globals
    mutated by the kernel stay untouched in the master."""
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    e.declare("V", (8,), dist=dist_type("BLOCK"))
    _MASTER_SENTINEL.clear()
    backend.run_kernel(e.arrays["V"], _poke_sentinel)
    assert _MASTER_SENTINEL == []  # mutated only in the workers
    # yet the shared-memory write IS visible to the master
    assert np.array_equal(
        e.arrays["V"].to_global(), np.full(8, 5.0)
    )


def test_foreach_owned_routes_through_workers(backend):
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    e.declare("V", (12,), dist=dist_type("BLOCK"))
    e.foreach_owned("V", _fill_with_rank, flops_per_element=2.0)
    assert np.array_equal(
        e.arrays["V"].to_global(), np.repeat(np.arange(4, dtype=float), 3)
    )
    assert m.time > 0  # compute accounting still charged


def test_foreach_owned_falls_back_on_unpicklable(backend):
    m = Machine(R)
    backend.attach(m)
    e = Engine(m)
    e.declare("V", (8,), dist=dist_type("BLOCK"))
    seen = []

    def closure(rank, local, idx):  # closes over `seen`: unpicklable-by-ref
        seen.append(rank)
        local[...] = rank

    e.foreach_owned("V", closure)
    assert seen == [0, 1, 2, 3]  # ran in the master
    assert np.array_equal(
        e.arrays["V"].to_global(), np.repeat(np.arange(4, dtype=float), 2)
    )


def test_allgather_collective(backend):
    m = Machine(R)
    backend.attach(m)
    gathered = backend.run_op(
        _op_allgather_rank, [{} for _ in range(4)]
    )
    assert gathered == [[0, 1, 2, 3]] * 4


def test_run_op_after_close_rejected():
    be = MultiprocessBackend()
    be.attach(Machine(R))
    be.close()
    with pytest.raises(BackendError, match="closed"):
        be.run_op(_op_allgather_rank, [{} for _ in range(4)])


# -- module-level worker payloads (picklable by reference) ---------------

_MASTER_SENTINEL: list = []


def _explode(rank, local, idx):
    raise RuntimeError(f"_explode on rank {rank}")


def _explode_rank0(rank, local, idx):
    if rank == 0:
        raise RuntimeError("_explode_rank0: rank 0 only")


def _fill_with_rank(rank, local, idx):
    local[...] = rank


def _poke_sentinel(rank, local, idx):
    _MASTER_SENTINEL.append(rank)
    local[...] = 5.0


def _op_allgather_rank(ctx):
    return ctx.transport.allgather(ctx.rank)
