"""Execution binding: ensure_dist, PlanExecutor, plan_program."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.lang.frontend import parse_program
from repro.machine import Machine, PARAGON, ProcessorArray
from repro.planner.binding import PlanExecutor, bind_pattern, plan_program
from repro.planner.costs import CostEngine
from repro.planner.search import plan_array
from repro.planner.workloads import adi_workload
from repro.runtime.engine import Engine


def machine():
    return Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)


class TestEnsureDist:
    def test_noop_when_unchanged(self):
        m = machine()
        engine = Engine(m)
        engine.declare("V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True)
        before = m.stats()
        reports = engine.ensure_dist("V", dist_type(":", "BLOCK"))
        assert reports == []
        assert m.stats().messages == before.messages

    def test_redistributes_when_changed(self):
        m = machine()
        engine = Engine(m)
        v = engine.declare(
            "V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True
        )
        data = np.arange(256, dtype=float).reshape(16, 16)
        v.from_global(data)
        reports = engine.ensure_dist("V", dist_type("BLOCK", ":"))
        assert reports and reports[0].messages > 0
        assert np.array_equal(v.to_global(), data)

    def test_accepts_bound_distribution(self):
        m = machine()
        engine = Engine(m)
        engine.declare("V", (16, 16), dist=dist_type(":", "BLOCK"), dynamic=True)
        bound = dist_type("BLOCK", ":").apply((16, 16), m.full_section())
        engine.ensure_dist("V", bound)
        assert engine.arrays["V"].dist == bound


class TestPlanExecutor:
    def test_executes_schedule_and_preserves_data(self):
        m = machine()
        engine = Engine(m)
        workload = adi_workload(16, 16, iterations=2, machine=m)
        cost_engine = CostEngine(m, plan_cache=engine.plan_cache)
        plan = plan_array(
            "V", workload.phases, workload.candidates, cost_engine,
            initial=workload.initial,
        )
        v = engine.declare("V", (16, 16), dist=workload.initial, dynamic=True)
        data = np.arange(256, dtype=float).reshape(16, 16)
        v.from_global(data)

        visited = []
        executor = PlanExecutor(engine, plan)
        executor.run(lambda i, ph: visited.append(i))
        assert visited == list(range(len(plan.steps)))
        assert v.dist == plan.steps[-1].dist
        assert np.array_equal(v.to_global(), data)
        # the alternating ADI schedule has actual redistributions
        assert executor.reports

    def test_shares_engine_plan_cache(self):
        m = machine()
        engine = Engine(m)
        workload = adi_workload(16, 16, iterations=2, machine=m)
        cost_engine = CostEngine(m, plan_cache=engine.plan_cache)
        plan = plan_array(
            "V", workload.phases, workload.candidates, cost_engine,
            initial=workload.initial,
        )
        v = engine.declare("V", (16, 16), dist=workload.initial, dynamic=True)
        v.from_global(np.zeros((16, 16)))
        engine.plan_cache.clear()
        # pricing already cached the flip matrices -> execution hits
        cost_engine.transition_cost(plan.steps[0].dist, plan.steps[1].dist)
        PlanExecutor(engine, plan).run()
        assert engine.plan_cache.hits > 0


class TestBindPattern:
    def test_concrete_pattern_binds(self):
        m = machine()
        from repro.lang.parser import parse_pattern

        dist = bind_pattern(parse_pattern("(:, BLOCK)"), (16, 16), m)
        assert dist is not None
        assert dist.dtype == dist_type(":", "BLOCK")

    def test_wildcard_pattern_returns_none(self):
        m = machine()
        from repro.lang.parser import parse_pattern

        assert bind_pattern(parse_pattern("(*, BLOCK)"), (16, 16), m) is None
        assert bind_pattern(parse_pattern("*"), (16, 16), m) is None

    def test_2d_pattern_on_1d_machine_uses_factorization(self):
        m = machine()  # 4 procs, 1-D
        from repro.lang.parser import parse_pattern

        dist = bind_pattern(parse_pattern("(BLOCK, BLOCK)"), (16, 16), m)
        assert dist is not None
        assert dist.target.shape == (2, 2)

    def test_2d_pattern_binds_squarest_grid(self):
        m = Machine(ProcessorArray("R", (16,)), cost_model=PARAGON)
        from repro.lang.parser import parse_pattern

        dist = bind_pattern(parse_pattern("(BLOCK, BLOCK)"), (64, 64), m)
        assert dist.target.shape == (4, 4)  # not the lopsided (2, 8)


class TestPlanProgram:
    SRC = """
PROGRAM MAIN
REAL V(N, N) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
PLAN V
DO IT = 1, 2
  DO J = 1, N
    CALL TRIDIAG(V(:, J), N)
  ENDDO
  DO I = 1, N
    CALL TRIDIAG(V(I, :), N)
  ENDDO
ENDDO
END
"""

    def test_plans_annotated_arrays(self):
        m = machine()
        program = parse_program(self.SRC, {"N": 32})
        plans = plan_program(program, m, {"V": (32, 32)})
        assert set(plans) == {"V"}
        plan = plans["V"]
        assert len(plan.steps) == 4
        # recovers the alternating schedule from source text alone
        assert [s.dist.dtype for s in plan.steps] == [
            dist_type(":", "BLOCK"),
            dist_type("BLOCK", ":"),
            dist_type(":", "BLOCK"),
            dist_type("BLOCK", ":"),
        ]
        # candidates pruned by RANGE
        assert all(
            c.dtype
            in (dist_type(":", "BLOCK"), dist_type("BLOCK", ":"))
            for c in plan.static
        )

    def test_missing_shape_raises(self):
        m = machine()
        program = parse_program(self.SRC, {"N": 32})
        with pytest.raises(KeyError):
            plan_program(program, m, {})

    def test_arrays_override(self):
        m = machine()
        program = parse_program(self.SRC, {"N": 32})
        plans = plan_program(program, m, {"V": (32, 32)}, arrays=["V"])
        assert set(plans) == {"V"}
