"""Phase extraction: IR/CFG walk, loop handling, PLAN annotation."""

import pytest

from repro.compiler.ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    Call,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from repro.lang.frontend import parse_program
from repro.planner.phases import ArrayLoad, Phase, extract_phases

ADI_SRC = """
PROGRAM ADI
REAL V(NX, NY) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
PLAN V
DO ITER = 1, T
  DO J = 1, NY
    CALL TRIDIAG(V(:, J), NX)
  ENDDO
  DO I = 1, NX
    CALL TRIDIAG(V(I, :), NY)
  ENDDO
ENDDO
END
"""


def test_plan_annotation_parses():
    program = parse_program(ADI_SRC, {"NX": 8, "NY": 8, "T": 2})
    assert program.planned == {"V"}


def test_plan_annotation_multiple_names():
    src = """
PROGRAM P
REAL A(N), B(N) DYNAMIC, DIST (BLOCK)
PLAN A, B
A(I) = B(I)
END
"""
    program = parse_program(src, {"N": 8})
    assert program.planned == {"A", "B"}


def test_do_trip_counts_resolve():
    program = parse_program(ADI_SRC, {"NX": 8, "NY": 6, "T": 3})
    outer = program.proc("adi").body.stmts[0]
    assert isinstance(outer, Loop)
    assert outer.trip == 3
    inner = outer.body.stmts[0]
    assert isinstance(inner, Loop)
    assert inner.trip == 6


def test_do_trip_unknown_stays_none():
    src = """
PROGRAM P
REAL A(N) DYNAMIC, DIST (BLOCK)
DO I = 1, M
  A(I) = A(I)
ENDDO
END
"""
    program = parse_program(src, {"N": 8})  # M unbound
    loop = program.proc("p").body.stmts[0]
    assert loop.trip is None


def test_adi_extraction_unrolls_outer_collapses_inner():
    T, NY, NX = 3, 16, 8
    program = parse_program(ADI_SRC, {"NX": NX, "NY": NY, "T": T})
    seq = extract_phases(program)
    assert len(seq.phases) == 2 * T
    assert not seq.collapsed
    for i, ph in enumerate(seq.phases):
        (ref,) = ph.refs
        assert ref.kind == AccessKind.ROW_SWEEP
        # x-sweep phases sweep dim 0 (NY lines), y-sweep dim 1 (NX lines)
        if i % 2 == 0:
            assert ref.dim == 0 and ph.repeat == NY
        else:
            assert ref.dim == 1 and ph.repeat == NX


def test_unknown_trip_uses_default():
    src = """
PROGRAM P
REAL A(N) DYNAMIC, DIST (BLOCK)
DO I = 1, M
  A(I) = A(I-1)
ENDDO
END
"""
    program = parse_program(src, {"N": 8})
    seq = extract_phases(program, default_trip=7)
    assert len(seq.phases) == 1
    assert seq.phases[0].repeat == 7


def test_oversized_loop_collapses():
    # the inner loop splits the body into two phases, so the outer loop
    # would need 2 * 1000 phases to unroll — beyond max_phases
    inner = Loop(Block([Assign(ArrayRef("A"))]), trip=2)
    big = Loop(Block([Assign(ArrayRef("B")), inner]), trip=1000)
    program = IRProgram()
    program.add_proc(ProcDef("main", (), Block([big])))
    seq = extract_phases(program, max_phases=16)
    assert seq.collapsed
    # body phases repeat-weighted instead of unrolled
    assert all(ph.repeat >= 1000 for ph in seq.phases)


def test_hand_distribute_recorded_not_phased():
    program = IRProgram()
    program.add_proc(
        ProcDef(
            "main",
            (),
            Block(
                [
                    Assign(ArrayRef("V")),
                    DistributeStmt("V", ("BLOCK", ":")),
                    Assign(ArrayRef("V")),
                ]
            ),
        )
    )
    seq = extract_phases(program)
    assert len(seq.phases) == 2
    assert len(seq.hand) == 1
    assert seq.hand[0].position == 1
    assert seq.hand[0].array == "V"


def test_hand_distribute_inside_branch_kept():
    program = IRProgram()
    then = Block(
        [
            DistributeStmt("V", ("BLOCK", ":")),
            Assign(ArrayRef("V")),
        ]
    )
    program.add_proc(
        ProcDef("main", (), Block([Assign(ArrayRef("V")), If(then, Block([]))]))
    )
    seq = extract_phases(program)
    assert len(seq.hand) == 1
    assert seq.hand[0].array == "V"
    assert seq.hand[0].position == 1  # before the merged branch phase


def test_hand_distribute_in_phase_free_loop_kept():
    program = IRProgram()
    body = Block([DistributeStmt("V", ("BLOCK", ":"))])
    program.add_proc(
        ProcDef("main", (), Block([Assign(ArrayRef("V")), Loop(body, trip=5)]))
    )
    seq = extract_phases(program)
    assert len(seq.hand) == 1
    assert seq.hand[0].position == 1


def test_if_branches_priced_conservatively():
    """Both arms are emitted in sequence (upper bound: the taken arm is
    unknown), so neither branch's accesses are lost."""
    program = IRProgram()
    then = Block([Assign(ArrayRef("A", AccessKind.ROW_SWEEP, dim=0))])
    orelse = Block([Assign(ArrayRef("A", AccessKind.ROW_SWEEP, dim=1))])
    program.add_proc(ProcDef("main", (), Block([If(then, orelse)])))
    seq = extract_phases(program)
    assert len(seq.phases) == 2
    dims = {
        r.dim
        for ph in seq.phases
        for r in ph.refs
        if r.kind == AccessKind.ROW_SWEEP
    }
    assert dims == {0, 1}


def test_loop_inside_branch_keeps_repeat_weight():
    """A counted loop under an IF must not be priced as executing once."""
    program = IRProgram()
    sweep = Assign(ArrayRef("A", AccessKind.ROW_SWEEP, dim=0))
    then = Block([Loop(Block([sweep]), trip=1000)])
    program.add_proc(ProcDef("main", (), Block([If(then, Block([]))])))
    seq = extract_phases(program)
    assert len(seq.phases) == 1
    assert seq.phases[0].repeat == 1000


def test_oversized_loop_inside_branch_marks_collapsed():
    program = IRProgram()
    inner = Loop(Block([Assign(ArrayRef("A"))]), trip=2)
    big = Loop(Block([Assign(ArrayRef("B")), inner]), trip=1000)
    program.add_proc(ProcDef("main", (), Block([If(Block([big]), Block([]))])))
    seq = extract_phases(program, max_phases=16)
    assert seq.collapsed


def test_unrolled_phases_share_memo_identity():
    """Unrolled iterations differ only by display name, so they compare
    equal and share cost-engine memo entries."""
    ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
    a = Phase("x@0", (ref,), repeat=8)
    b = Phase("x@1", (ref,), repeat=8)
    assert a == b and hash(a) == hash(b)


def test_call_inlining_renames_formals():
    program = IRProgram()
    callee = ProcDef(
        "sweep", ("X",), Block([Assign(ArrayRef("X", AccessKind.ROW_SWEEP, dim=0))])
    )
    main = ProcDef("main", (), Block([Call("sweep", {"X": "V"})]))
    program.add_proc(main)
    program.add_proc(callee)
    seq = extract_phases(program)
    assert len(seq.phases) == 1
    assert seq.phases[0].refs[0].array == "V"


def test_phase_hashable_and_refs_to():
    load = ArrayLoad("A", 0, (1.0, 2.0))
    ph = Phase("p", (ArrayRef("A"), ArrayRef("B")), repeat=3, load=load)
    assert hash(ph)
    assert [r.array for r in ph.refs_to("A")] == ["A"]
    assert ph.arrays() == {"A", "B"}
