"""Planner-backed app variants and the `plan` CLI subcommand."""

import numpy as np
import pytest

from repro.apps.adi import adi_reference, run_adi
from repro.apps.pic import PICConfig, run_pic
from repro.apps.smoothing import best_distribution, planned_distribution
from repro.machine import (
    IPSC860,
    Machine,
    MODERN_CLUSTER,
    PARAGON,
    ProcessorArray,
    ZERO_COST,
)


def machine(cm=PARAGON, shape=(4,)):
    return Machine(ProcessorArray("R", shape), cost_model=cm)


class TestADIPlanned:
    def test_solution_matches_reference(self):
        grid = np.random.default_rng(0).standard_normal((32, 32))
        ref = adi_reference(grid, 2, -1.0, 4.0)
        r = run_adi(machine(), 32, 32, 2, "planned", grid=grid)
        assert np.allclose(r.solution, ref)

    def test_matches_hand_dynamic_on_paragon(self):
        """Where the flip is profitable the planned run is
        message-for-message the paper's dynamic strategy."""
        dyn = run_adi(machine(), 64, 64, 2, "dynamic", seed=0)
        pln = run_adi(machine(), 64, 64, 2, "planned", seed=0)
        assert pln.sweep_messages == dyn.sweep_messages == 0
        assert pln.redistribution.messages == dyn.redistribution.messages
        assert pln.total_time == pytest.approx(dyn.total_time)

    def test_zero_cost_model_never_redistributes(self):
        r = run_adi(machine(ZERO_COST), 32, 32, 2, "planned", seed=0)
        assert r.redistribution.messages == 0

    def test_beats_static_on_paragon(self):
        pln = run_adi(machine(), 64, 64, 2, "planned", seed=0)
        for s in ("static_cols", "static_rows"):
            static = run_adi(machine(), 64, 64, 2, s, seed=0)
            assert pln.total_time < static.total_time


class TestPICPlanned:
    def cfg(self, strategy):
        return PICConfig(
            strategy=strategy, ncell=128, npart=3000, max_time=50,
            nprocs=4, drift=0.006, seed=5,
        )

    def test_runs_and_rebalances(self):
        r = run_pic(machine(shape=(4,)), self.cfg("planned"))
        assert r.redistributions > 0

    def test_no_worse_imbalance_than_static(self):
        static = run_pic(machine(shape=(4,)), self.cfg("static"))
        planned = run_pic(machine(shape=(4,)), self.cfg("planned"))
        assert planned.mean_imbalance <= static.mean_imbalance

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            run_pic(machine(shape=(4,)), self.cfg("nope"))


class TestSmoothingPlanned:
    @pytest.mark.parametrize("cm", [IPSC860, PARAGON, MODERN_CLUSTER])
    @pytest.mark.parametrize("n", [32, 128])
    def test_agrees_with_closed_form(self, cm, n):
        assert planned_distribution(n, 16, cm) == best_distribution(n, 16, cm)


class TestPlanCLI:
    @pytest.mark.parametrize("workload", ["adi", "pic", "smoothing"])
    def test_plan_subcommand(self, workload, capsys):
        from repro.__main__ import main

        main(["plan", workload, "--size", "32", "--iterations", "2",
              "--steps", "20"])
        out = capsys.readouterr().out
        assert "plan for" in out
        assert "best static" in out

    def test_default_is_tour(self, capsys):
        from repro.__main__ import main

        main()
        out = capsys.readouterr().out
        assert "Figure 1" in out and "planned" in out


class TestPlannedRegressions:
    def test_pic_planned_no_final_step_rebalance(self):
        """A checkpoint landing on the last step has a zero horizon:
        no redistribution can pay off there."""
        cfg = PICConfig(
            strategy="planned", ncell=64, npart=2000, max_time=10,
            nprocs=4, rebalance_every=10, drift=0.02, seed=1,
        )
        r = run_pic(machine(shape=(4,)), cfg)
        assert not r.steps[-1].redistributed

    def test_plan_program_empty_arrays_override_plans_nothing(self):
        from repro.lang.frontend import parse_program
        from repro.planner.binding import plan_program

        src = """
PROGRAM P
REAL V(N, N) DYNAMIC, DIST (:, BLOCK)
PLAN V
V(I, J) = V(I, J)
END
"""
        program = parse_program(src, {"N": 16})
        m = machine()
        assert plan_program(program, m, {"V": (16, 16)}, arrays=[]) == {}
