"""Candidate layout enumeration: coverage, pruning, determinism."""

import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock, NoDist, Replicated
from repro.core.distribution import dist_type
from repro.core.query import ANY, TypePattern
from repro.machine import Machine, ProcessorArray, grid_shapes
from repro.planner.candidates import dim_menu, enumerate_layouts


def machine(shape=(4,)):
    return Machine(ProcessorArray("P", shape))


def dtypes(cands):
    return [c.dtype for c in cands]


class TestGridShapes:
    def test_1d(self):
        assert grid_shapes(16, 1) == [(16,)]

    def test_2d_excludes_unit_factors(self):
        assert grid_shapes(16, 2) == [(2, 8), (4, 4), (8, 2)]

    def test_prime_has_no_2d(self):
        assert grid_shapes(7, 2) == []

    def test_3d(self):
        assert (2, 2, 2) in grid_shapes(8, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_shapes(0, 1)
        with pytest.raises(ValueError):
            grid_shapes(4, 0)


class TestDimMenu:
    def test_block_first(self):
        menu = dim_menu(16, 4)
        assert menu[0] == Block()

    def test_genblock_hint_kept_only_when_fitting(self):
        menu = dim_menu(16, 4, genblock_hints=[[4, 4, 4, 4], [8, 8]])
        assert GenBlock([4, 4, 4, 4]) in menu
        assert all(
            not (isinstance(d, GenBlock) and d.sizes == (8, 8)) for d in menu
        )

    def test_replicated_opt_in(self):
        assert Replicated() not in dim_menu(16, 4)
        assert Replicated() in dim_menu(16, 4, replicated=True)


class TestEnumerateLayouts:
    def test_1d_machine_2d_array_basics(self):
        cands = enumerate_layouts((8, 8), machine((4,)))
        ds = dtypes(cands)
        assert dist_type("BLOCK", ":") in ds
        assert dist_type(":", "BLOCK") in ds
        assert dist_type("CYCLIC", ":") in ds
        # 4 = 2x2: both-dims-distributed layouts appear on a 2x2 grid
        assert dist_type("BLOCK", "BLOCK") in ds

    def test_machine_section_reused_when_shape_matches(self):
        m = machine((4,))
        cands = enumerate_layouts((8, 8), m)
        one_d = [c for c in cands if c.target.ndim == 1]
        assert one_d and all(
            c.target.ranks() == list(range(4)) for c in one_d
        )
        assert one_d[0].target == m.full_section()

    def test_range_pruning(self):
        range_ = [TypePattern([ANY, NoDist()])]
        cands = enumerate_layouts((8, 4), machine((4,)), range_=range_)
        assert cands
        for c in cands:
            assert isinstance(c.dtype.dims[1], NoDist)

    def test_max_distributed_dims(self):
        cands = enumerate_layouts(
            (8, 8), machine((4,)), max_distributed_dims=1
        )
        for c in cands:
            assert len(c.dtype.distributed_dims) == 1

    def test_genblock_hints_bound(self):
        cands = enumerate_layouts(
            (16, 4),
            machine((4,)),
            max_distributed_dims=1,
            genblock_hints={0: [[2, 4, 4, 6]]},
        )
        assert dist_type(GenBlock([2, 4, 4, 6]), ":") in dtypes(cands)

    def test_deterministic_and_unique(self):
        a = enumerate_layouts((8, 8), machine((4,)))
        b = enumerate_layouts((8, 8), machine((4,)))
        assert [(c.dtype, c.target.shape) for c in a] == [
            (c.dtype, c.target.shape) for c in b
        ]
        keys = [(c.dtype, c.target.shape) for c in a]
        assert len(keys) == len(set(keys))

    def test_max_candidates_cap(self):
        cands = enumerate_layouts((8, 8, 8), machine((8,)), max_candidates=5)
        assert len(cands) == 5

    def test_memory_limit_drops_replicated(self):
        cands = enumerate_layouts(
            (16, 16),
            machine((4,)),
            replicated=True,
            memory_limit=100,  # full 256-element replica exceeds this
        )
        assert cands
        for c in cands:
            assert not any(
                isinstance(d, Replicated) for d in c.dtype.dims
            )

    def test_cyclic_blocks_menu(self):
        cands = enumerate_layouts(
            (16,), machine((4,)), cyclic_blocks=(1, 3)
        )
        ds = dtypes(cands)
        assert dist_type(Cyclic(1)) in ds
        assert dist_type(Cyclic(3)) in ds

    def test_every_candidate_is_bound_and_valid(self):
        for c in enumerate_layouts((8, 8), machine((4,)), replicated=True):
            # owners() must work for a corner element on every candidate
            assert c.owners((0, 0))
