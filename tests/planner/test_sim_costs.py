"""The planner's simulated (overlap-aware) cost mode."""

import pytest

from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray
from repro.planner import (
    CostEngine,
    SimulatedCostEngine,
    adi_workload,
    plan_workload,
    smoothing_workload,
)

R = ProcessorArray("R", (4,))


@pytest.fixture
def machine():
    return Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)


class TestSimulatedTransitions:
    def test_identity_transition_free(self, machine):
        engine = SimulatedCostEngine(machine)
        d = dist_type(":", "BLOCK").apply((16, 16), R)
        assert engine.transition_cost(d, d) == 0.0

    def test_blocking_mode_matches_closed_form(self, machine):
        """overlap=False degrades to the base engine's bottleneck sum
        (same arithmetic, different association order)."""
        base = CostEngine(machine)
        sim = SimulatedCostEngine(machine, overlap=False)
        old = dist_type(":", "BLOCK").apply((32, 32), R)
        new = dist_type("BLOCK", ":").apply((32, 32), R)
        assert sim.transition_cost(old, new) == pytest.approx(
            base.transition_cost(old, new), rel=1e-12
        )

    def test_overlap_transition_no_more_expensive(self, machine):
        base = CostEngine(machine)
        sim = SimulatedCostEngine(machine)  # overlap=True default
        old = dist_type(":", "BLOCK").apply((32, 32), R)
        new = dist_type("BLOCK", ":").apply((32, 32), R)
        assert sim.transition_cost(old, new) <= base.transition_cost(
            old, new
        ) * (1 + 1e-9)

    def test_transition_memoized(self, machine):
        sim = SimulatedCostEngine(machine)
        old = dist_type(":", "BLOCK").apply((32, 32), R)
        new = dist_type("BLOCK", ":").apply((32, 32), R)
        first = sim.transition_cost(old, new)
        misses = sim.plan_cache.misses
        assert sim.transition_cost(old, new) == first
        assert sim.plan_cache.misses == misses  # cached, no recompute


class TestSimulatedPhases:
    def test_phase_cost_is_max_of_comm_and_compute(self, machine):
        wl = adi_workload(32, 32, iterations=1, machine=machine)
        sim = SimulatedCostEngine(machine)
        for phase in wl.phases:
            for dist in wl.candidates:
                comm, comp = sim.comm_compute_split(phase, wl.array, dist)
                assert sim.phase_cost(phase, wl.array, dist) == (
                    pytest.approx(max(comm, comp) * phase.repeat)
                )

    def test_phase_cost_never_exceeds_blocking(self, machine):
        wl = adi_workload(32, 32, iterations=1, machine=machine)
        base = CostEngine(machine)
        sim = SimulatedCostEngine(machine)
        for phase in wl.phases:
            for dist in wl.candidates:
                assert sim.phase_cost(phase, wl.array, dist) <= (
                    base.phase_cost(phase, wl.array, dist) * (1 + 1e-9)
                )


class TestCostModePlumbing:
    def test_plan_workload_cost_mode_validation(self):
        wl = adi_workload(16, 16, iterations=1, cost_model=PARAGON)
        with pytest.raises(ValueError, match="cost_mode"):
            plan_workload(wl, cost_mode="quantum")

    def test_simulated_plan_no_worse_than_blocking_plan(self):
        for factory in (adi_workload,):
            wl = factory(32, 32, iterations=2, cost_model=IPSC860)
            blocking = plan_workload(wl)
            simulated = plan_workload(wl, cost_mode="simulated")
            assert simulated.total_cost <= blocking.total_cost * (1 + 1e-9)

    def test_simulated_plan_keeps_static_guarantee(self):
        wl = smoothing_workload(32, 4, steps=10, cost_model=PARAGON)
        plan = plan_workload(wl, cost_mode="simulated")
        if plan.static:
            assert plan.total_cost <= min(plan.static.values()) + 1e-12

    def test_adi_flip_survives_simulated_pricing(self):
        """Overlap pricing must not lose Figure 1's redistribution
        flip on the paper's machine."""
        wl = adi_workload(64, 64, iterations=2, cost_model=PARAGON)
        plan = plan_workload(wl, cost_mode="simulated")
        assert len(plan.redistributions) >= 1
