"""Cost engine: agreement with the paper's closed forms, memoization."""

import pytest

from repro.apps.smoothing import predicted_step_cost
from repro.compiler.ir import AccessKind, ArrayRef
from repro.core.distribution import dist_type
from repro.machine import IPSC860, Machine, PARAGON, ProcessorArray, ZERO_COST
from repro.planner.costs import CostEngine
from repro.planner.phases import ArrayLoad, Phase


def machine(shape=(4,), cm=PARAGON):
    return Machine(ProcessorArray("P", shape), cost_model=cm)


def bound(dt, shape, m):
    return dt.apply(shape, m.full_section())


SMOOTH_REFS = tuple(
    ArrayRef("U", AccessKind.SHIFT, offsets=off)
    for off in ((1, 0), (-1, 0), (0, 1), (0, -1))
)


class TestRefCost:
    def test_row_sweep_free_when_dim_undistributed(self):
        m = machine()
        engine = CostEngine(m)
        cols = bound(dist_type(":", "BLOCK"), (32, 32), m)
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        assert engine.ref_cost(ref, cols) == 0.0

    def test_row_sweep_costly_when_distributed(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        assert engine.ref_cost(ref, rows) > 0.0

    @pytest.mark.parametrize("cm", [IPSC860, PARAGON])
    @pytest.mark.parametrize("n,p", [(64, 16), (128, 16), (256, 4)])
    def test_smoothing_matches_paper_closed_form_columns(self, cm, n, p):
        """Per-step cost under (:, BLOCK) equals the paper's '2 messages
        of N elements per processor'."""
        m = machine((p,), cm)
        engine = CostEngine(m)
        cols = bound(dist_type(":", "BLOCK"), (n, n), m)
        ph = Phase("s", SMOOTH_REFS)
        got = engine.phase_cost(ph, "U", cols)
        want = predicted_step_cost(n, p, "columns", cm)
        assert got == pytest.approx(want, rel=1e-12)

    @pytest.mark.parametrize("cm", [IPSC860, PARAGON])
    def test_smoothing_matches_paper_closed_form_blocks2d(self, cm):
        n, p = 128, 16
        m = machine((4, 4), cm)
        engine = CostEngine(m)
        blocks = bound(dist_type("BLOCK", "BLOCK"), (n, n), m)
        ph = Phase("s", SMOOTH_REFS)
        got = engine.phase_cost(ph, "U", blocks)
        want = predicted_step_cost(n, p, "blocks2d", cm)
        assert got == pytest.approx(want, rel=1e-12)


class TestPhaseCost:
    def test_repeat_scales_linearly(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        ref = ArrayRef("V", AccessKind.ROW_SWEEP, dim=0)
        one = engine.phase_cost(Phase("a", (ref,)), "V", rows)
        ten = engine.phase_cost(Phase("b", (ref,), repeat=10), "V", rows)
        assert ten == pytest.approx(10 * one)

    def test_other_arrays_not_charged(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        ref = ArrayRef("W", AccessKind.ROW_SWEEP, dim=0)
        assert engine.phase_cost(Phase("a", (ref,)), "V", rows) == 0.0

    def test_memoized(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        ph = Phase("a", (ArrayRef("V", AccessKind.ROW_SWEEP, dim=0),))
        engine.phase_cost(ph, "V", rows)
        assert (ph, "V", rows) in engine._phase_memo


class TestLoadCost:
    def test_block_bottleneck_vs_balanced(self):
        m = machine()
        engine = CostEngine(m)
        # all the work in the first quarter: BLOCK's bottleneck is the
        # whole load, a fitted general block's is a quarter of it
        weights = tuple([100.0] * 8 + [0.0] * 24)
        load = ArrayLoad("F", 0, weights, flops_per_unit=10.0)
        block = bound(dist_type("BLOCK", ":"), (32, 4), m)
        from repro.core.dimdist import GenBlock

        balanced = bound(dist_type(GenBlock([2, 2, 2, 26]), ":"), (32, 4), m)
        assert engine.load_cost(load, block) == pytest.approx(
            4 * engine.load_cost(load, balanced)
        )

    def test_boundary_traffic_punishes_cyclic(self):
        m = machine()
        engine = CostEngine(m)
        weights = tuple(float(i % 5) for i in range(32))
        load = ArrayLoad("F", 0, weights, boundary_bytes_per_unit=32.0)
        block = bound(dist_type("BLOCK", ":"), (32, 4), m)
        cyclic = bound(dist_type("CYCLIC", ":"), (32, 4), m)
        assert engine.load_cost(load, cyclic) > engine.load_cost(load, block)

    def test_undistributed_dim_has_no_boundaries(self):
        m = machine()
        engine = CostEngine(m)
        load = ArrayLoad("F", 0, tuple([1.0] * 32), boundary_bytes_per_unit=8.0)
        none = bound(dist_type(":", "BLOCK"), (32, 4), m)
        # compute still charged (split across procs), but no comm: equal
        # to the same load without boundary bytes
        plain = ArrayLoad("F", 0, tuple([1.0] * 32))
        assert engine.load_cost(load, none) == engine.load_cost(plain, none)


class TestTransitionCost:
    def test_identical_layouts_free(self):
        m = machine()
        engine = CostEngine(m)
        d = bound(dist_type("BLOCK", ":"), (32, 32), m)
        assert engine.transition_cost(d, d) == 0.0

    def test_flip_positive_and_memoized(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        cols = bound(dist_type(":", "BLOCK"), (32, 32), m)
        t = engine.transition_cost(rows, cols)
        assert t > 0.0
        assert engine.transition_cost(rows, cols) == t
        assert (rows, cols) in engine._trans_memo

    def test_zero_cost_model_prices_everything_zero(self):
        m = machine(cm=ZERO_COST)
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        cols = bound(dist_type(":", "BLOCK"), (32, 32), m)
        assert engine.transition_cost(rows, cols) == 0.0

    def test_plan_cache_shared(self):
        from repro.runtime.redistribute import PlanCache

        cache = PlanCache()
        m = machine()
        engine = CostEngine(m, plan_cache=cache)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        cols = bound(dist_type(":", "BLOCK"), (32, 32), m)
        engine.transition_cost(rows, cols)
        assert len(cache) == 1

    def test_bottleneck_not_total(self):
        """The flip's time is the busiest processor's, not the sum of
        all messages (the exchange is concurrent)."""
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (64, 64), m)
        cols = bound(dist_type(":", "BLOCK"), (64, 64), m)
        t = engine.transition_cost(rows, cols)
        # 12 pairwise messages in total; the bottleneck sees only 6
        total_naive = 12 * m.cost_model.message_time(16 * 16 * 8)
        assert t < total_naive


class TestStaticCost:
    def test_sums_phases_plus_initial_transition(self):
        m = machine()
        engine = CostEngine(m)
        rows = bound(dist_type("BLOCK", ":"), (32, 32), m)
        cols = bound(dist_type(":", "BLOCK"), (32, 32), m)
        ph = Phase("a", (ArrayRef("V", AccessKind.ROW_SWEEP, dim=0),))
        base = engine.phase_cost(ph, "V", rows)
        assert engine.static_cost([ph], "V", rows) == base
        assert engine.static_cost(
            [ph], "V", rows, initial=cols
        ) == pytest.approx(base + engine.transition_cost(cols, rows))
