"""Named workloads: the planner recovers the paper's decisions.

These are the ISSUE's acceptance criteria: on ADI the planner
independently recovers Figure 1's dynamic schedule whenever the cost
model makes the flip profitable, and on ADI, PIC and smoothing its
modeled total cost is <= every static single-layout alternative.
"""

import pytest

from repro.core.dimdist import Block, GenBlock, NoDist
from repro.core.distribution import dist_type
from repro.machine import (
    IPSC860,
    MODERN_CLUSTER,
    PARAGON,
    ZERO_COST,
)
from repro.planner import (
    CostEngine,
    adi_workload,
    get_workload,
    hand_schedule_cost,
    pic_workload,
    plan_workload,
    smoothing_workload,
)

ALL_MODELS = [IPSC860, PARAGON, MODERN_CLUSTER]


class TestADI:
    @pytest.mark.parametrize("cm", ALL_MODELS)
    def test_recovers_figure1_schedule(self, cm):
        """(:, BLOCK) for the x-sweep, (BLOCK, :) for the y-sweep —
        on every machine where the flip is profitable (all three
        presets at 64x64 on 4 processors)."""
        workload = adi_workload(64, 64, iterations=2, cost_model=cm)
        plan = plan_workload(workload)
        assert [s.dist.dtype for s in plan.steps] == [
            dist_type(":", "BLOCK"),
            dist_type("BLOCK", ":"),
            dist_type(":", "BLOCK"),
            dist_type("BLOCK", ":"),
        ]

    def test_matches_hand_schedule_cost(self):
        workload = adi_workload(64, 64, iterations=2)
        engine = CostEngine(workload.machine)
        plan = plan_workload(workload, cost_engine=engine)
        hand = hand_schedule_cost(workload, cost_engine=engine)
        assert plan.total_cost == pytest.approx(hand)

    def test_unprofitable_flip_stays_static(self):
        workload = adi_workload(64, 64, iterations=2, cost_model=ZERO_COST)
        plan = plan_workload(workload)
        assert plan.redistributions == []

    def test_built_from_surface_text(self):
        workload = adi_workload(32, 32, iterations=3)
        assert len(workload.phases) == 6
        assert workload.initial.dtype == dist_type(":", "BLOCK")


class TestPIC:
    def test_rediscovers_bblock_rebalancing(self):
        """The planner chooses the balanced general blocks and flips
        between them as the cluster drifts — Figure 2's schedule."""
        workload = pic_workload(steps=50)
        plan = plan_workload(workload)
        for step in plan.steps:
            assert isinstance(step.dist.dtype.dims[0], GenBlock)
        assert len(plan.redistributions) >= 2

    def test_not_worse_than_hand_rebalancing(self):
        workload = pic_workload(steps=50)
        engine = CostEngine(workload.machine)
        plan = plan_workload(workload, cost_engine=engine)
        hand = hand_schedule_cost(workload, cost_engine=engine)
        assert plan.total_cost <= hand + 1e-15

    def test_cells_dimension_only(self):
        workload = pic_workload(steps=20)
        for c in workload.candidates:
            assert isinstance(c.dtype.dims[1], NoDist)


class TestSmoothing:
    @pytest.mark.parametrize("cm", ALL_MODELS)
    @pytest.mark.parametrize("n,p", [(32, 16), (128, 16), (512, 16)])
    def test_agrees_with_closed_form(self, cm, n, p):
        """The planner's static pick is never worse than either of the
        paper's two closed-form alternatives."""
        from repro.apps.smoothing import predicted_step_cost

        workload = smoothing_workload(n, p, steps=50, cost_model=cm)
        plan = plan_workload(workload)
        per_step = plan.total_cost / 50
        closed = min(
            predicted_step_cost(n, p, "columns", cm),
            predicted_step_cost(n, p, "blocks2d", cm),
        )
        assert per_step <= closed + 1e-15

    def test_ipsc_picks_2d_blocks_at_128(self):
        workload = smoothing_workload(128, 16, cost_model=IPSC860)
        plan = plan_workload(workload)
        dist = plan.steps[0].dist
        assert all(isinstance(d, Block) for d in dist.dtype.dims)
        assert dist.target.shape == (4, 4)

    def test_paragon_picks_strips_at_128(self):
        workload = smoothing_workload(128, 16, cost_model=PARAGON)
        plan = plan_workload(workload)
        assert len(plan.steps[0].dist.dtype.distributed_dims) == 1


class TestAcceptance:
    """Planner cost <= every static single-layout alternative."""

    @pytest.mark.parametrize("name", ["adi", "pic", "smoothing"])
    @pytest.mark.parametrize("cm", ALL_MODELS)
    def test_planned_beats_every_static(self, name, cm):
        workload = get_workload(name, cost_model=cm)
        plan = plan_workload(workload)
        assert plan.static
        for dist, cost in plan.static.items():
            assert plan.total_cost <= cost + 1e-12, (
                f"{name} on {cm.name}: planned {plan.total_cost} worse "
                f"than static {dist.dtype!r} at {cost}"
            )


class TestRegistry:
    def test_get_workload_names(self):
        assert get_workload("adi").name == "adi"
        with pytest.raises(KeyError):
            get_workload("nope")
