"""Schedule search: DP optimality, tie-breaking, greedy fallback."""

import pytest

from repro.compiler.ir import AccessKind, ArrayRef
from repro.core.distribution import dist_type
from repro.machine import CostModel, Machine, PARAGON, ProcessorArray, ZERO_COST
from repro.planner.costs import CostEngine
from repro.planner.phases import Phase
from repro.planner.search import dp_schedule, greedy_schedule, plan_array


def machine(cm=PARAGON):
    return Machine(ProcessorArray("P", (4,)), cost_model=cm)


def adi_like(m, iterations=2, n=64):
    """Alternating x/y sweep phases + the two strip layouts."""
    cols = dist_type(":", "BLOCK").apply((n, n), m.full_section())
    rows = dist_type("BLOCK", ":").apply((n, n), m.full_section())
    phases = []
    for it in range(iterations):
        phases.append(
            Phase(f"x{it}", (ArrayRef("V", AccessKind.ROW_SWEEP, dim=0),),
                  repeat=n)
        )
        phases.append(
            Phase(f"y{it}", (ArrayRef("V", AccessKind.ROW_SWEEP, dim=1),),
                  repeat=n)
        )
    return phases, [cols, rows], cols, rows


class TestDP:
    def test_recovers_alternating_schedule(self):
        m = machine()
        phases, cands, cols, rows = adi_like(m)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        assert plan.method == "dp"
        assert plan.layouts() == [cols, rows, cols, rows]
        assert len(plan.redistributions) == 3

    def test_never_worse_than_best_static(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m, iterations=3)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        assert plan.static
        assert plan.total_cost <= min(plan.static.values()) + 1e-15

    @pytest.mark.parametrize(
        "alpha,expect_flip",
        [(10.0, False), (0.1, True)],
    )
    def test_flips_only_when_profitable(self, alpha, expect_flip):
        """A mildly better-balanced layout is adopted only when the
        transition is cheaper than the compute it saves."""
        from repro.core.dimdist import GenBlock
        from repro.planner.phases import ArrayLoad

        cm = CostModel(alpha=alpha, beta=0.0, flop_rate=1.0, name="t")
        m = machine(cm)
        block = dist_type("BLOCK", ":").apply((8, 1), m.full_section())
        better = dist_type(GenBlock([1, 1, 3, 3]), ":").apply(
            (8, 1), m.full_section()
        )
        load = ArrayLoad("A", 0, (6.0, 4.0) + (0.0,) * 6)
        phases = [Phase(f"p{i}", (), load=load) for i in range(2)]
        plan = plan_array(
            "A", phases, [block, better], CostEngine(m), initial=block
        )
        flipped = bool(plan.redistributions)
        assert flipped == expect_flip
        if not expect_flip:
            assert plan.layouts() == [block, block]

    def test_zero_cost_ties_keep_initial(self):
        m = machine(ZERO_COST)
        phases, cands, cols, _ = adi_like(m)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        assert plan.total_cost == 0.0
        assert plan.redistributions == []
        assert plan.layouts() == [cols] * 4

    def test_initial_prepended_when_missing(self):
        m = machine()
        phases, cands, cols, rows = adi_like(m)
        plan = plan_array("V", phases, [rows], CostEngine(m), initial=cols)
        assert cols in plan.static  # initial became a candidate

    def test_total_matches_step_sum(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m, iterations=3)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        sum_steps = sum(s.phase_cost + s.transition_cost for s in plan.steps)
        assert plan.total_cost == pytest.approx(sum_steps)

    def test_step_chain_consistent(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m, iterations=3)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        prev = cols
        for step in plan.steps:
            assert step.prev == prev
            prev = step.dist


class TestGreedy:
    def test_greedy_matches_dp_on_adi(self):
        m = machine()
        phases, cands, cols, rows = adi_like(m)
        engine = CostEngine(m)
        d_steps, d_total = dp_schedule("V", phases, cands, engine, cols)
        g_steps, g_total = greedy_schedule("V", phases, cands, engine, cols)
        assert [s.dist for s in g_steps] == [s.dist for s in d_steps]
        assert g_total == pytest.approx(d_total)

    def test_method_auto_falls_back(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m, iterations=3)
        plan = plan_array(
            "V", phases, cands, CostEngine(m), initial=cols,
            method="auto", dp_state_limit=1,
        )
        assert plan.method == "greedy"

    def test_greedy_never_worse_than_staying_put(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m, iterations=2)
        engine = CostEngine(m)
        _, g_total = greedy_schedule("V", phases, cands, engine, cols)
        assert g_total <= engine.static_cost(phases, "V", cols) + 1e-15


class TestPlanAPI:
    def test_validation(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m)
        with pytest.raises(ValueError):
            plan_array("V", [], cands, CostEngine(m))
        with pytest.raises(ValueError):
            plan_array("V", phases, [], CostEngine(m))
        with pytest.raises(ValueError):
            plan_array("V", phases, cands, CostEngine(m), method="nope")

    def test_summary_renders(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        text = plan.summary()
        assert "DISTRIBUTE" in text and "best static" in text

    def test_best_static_property(self):
        m = machine()
        phases, cands, cols, _ = adi_like(m)
        plan = plan_array("V", phases, cands, CostEngine(m), initial=cols)
        dist, cost = plan.best_static
        assert cost == min(plan.static.values())
