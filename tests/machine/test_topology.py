"""Tests for processor arrays and sections."""

import numpy as np
import pytest

from repro.machine.topology import ProcessorArray, ProcessorSection


class TestProcessorArray:
    def test_basic_shape(self):
        r = ProcessorArray("R", (2, 3))
        assert r.ndim == 2
        assert r.size == 6
        assert r.shape == (2, 3)

    def test_int_shape_promoted(self):
        r = ProcessorArray("P", 4)
        assert r.shape == (4,)
        assert r.size == 4

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            ProcessorArray("P", ())

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            ProcessorArray("P", (2, 0))
        with pytest.raises(ValueError):
            ProcessorArray("P", (-1,))

    def test_rank_coord_roundtrip(self):
        r = ProcessorArray("R", (3, 4, 2))
        for rank in r.ranks():
            assert r.rank_of(r.coord_of(rank)) == rank

    def test_rank_of_row_major(self):
        r = ProcessorArray("R", (2, 3))
        assert r.rank_of((0, 0)) == 0
        assert r.rank_of((0, 2)) == 2
        assert r.rank_of((1, 0)) == 3
        assert r.rank_of((1, 2)) == 5

    def test_rank_of_out_of_bounds(self):
        r = ProcessorArray("R", (2, 2))
        with pytest.raises(IndexError):
            r.rank_of((2, 0))
        with pytest.raises(IndexError):
            r.rank_of((0, -1))

    def test_rank_of_wrong_arity(self):
        r = ProcessorArray("R", (2, 2))
        with pytest.raises(ValueError):
            r.rank_of((1,))

    def test_coord_of_out_of_range(self):
        r = ProcessorArray("R", (2, 2))
        with pytest.raises(IndexError):
            r.coord_of(4)
        with pytest.raises(IndexError):
            r.coord_of(-1)

    def test_coords_enumerates_in_rank_order(self):
        r = ProcessorArray("R", (2, 2))
        coords = list(r.coords())
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert [r.rank_of(c) for c in coords] == [0, 1, 2, 3]

    def test_equality_and_hash(self):
        a = ProcessorArray("R", (2, 2))
        b = ProcessorArray("R", (2, 2))
        c = ProcessorArray("Q", (2, 2))
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_fortran_style(self):
        assert repr(ProcessorArray("R", (2, 3))) == "PROCESSORS R(1:2, 1:3)"


class TestProcessorSection:
    def test_full_section(self):
        r = ProcessorArray("R", (2, 3))
        s = r.full_section()
        assert s.shape == (2, 3)
        assert s.ranks() == list(range(6))

    def test_collapsed_dim(self):
        r = ProcessorArray("R", (2, 3))
        s = r.section(1, slice(None))  # R(2, :) in Fortran speak
        assert s.ndim == 1
        assert s.shape == (3,)
        assert s.ranks() == [3, 4, 5]

    def test_strided_section(self):
        r = ProcessorArray("R", (8,))
        s = r.section(slice(0, 8, 2))
        assert s.shape == (4,)
        assert s.ranks() == [0, 2, 4, 6]

    def test_sub_range(self):
        r = ProcessorArray("R", (4, 4))
        s = r.section(slice(1, 3), slice(0, 2))
        assert s.shape == (2, 2)
        assert s.ranks() == [4, 5, 8, 9]

    def test_empty_section_rejected(self):
        r = ProcessorArray("R", (4,))
        with pytest.raises(ValueError):
            r.section(slice(2, 2))

    def test_negative_stride_rejected(self):
        r = ProcessorArray("R", (4,))
        with pytest.raises(ValueError):
            r.section(slice(3, 0, -1))

    def test_wrong_subscript_count(self):
        r = ProcessorArray("R", (2, 2))
        with pytest.raises(ValueError):
            r.section(slice(None))

    def test_out_of_bounds_int_subscript(self):
        r = ProcessorArray("R", (2, 2))
        with pytest.raises(IndexError):
            r.section(5, slice(None))

    def test_coord_in_parent(self):
        r = ProcessorArray("R", (4, 4))
        s = r.section(2, slice(1, 4, 2))
        assert s.coord_in_parent((0,)) == (2, 1)
        assert s.coord_in_parent((1,)) == (2, 3)

    def test_coord_in_parent_bounds(self):
        r = ProcessorArray("R", (4,))
        s = r.section(slice(0, 2))
        with pytest.raises(IndexError):
            s.coord_in_parent((2,))

    def test_rank_array_matches_ranks(self):
        r = ProcessorArray("R", (3, 3))
        s = r.section(slice(0, 3, 2), slice(1, 3))
        ra = s.rank_array()
        assert ra.shape == s.shape
        assert list(ra.reshape(-1)) == s.ranks()

    def test_fully_collapsed_section(self):
        r = ProcessorArray("R", (2, 2))
        s = r.section(1, 1)
        assert s.ndim == 0
        assert s.size == 1
        assert s.ranks() == [3]

    def test_dim_ranks(self):
        r = ProcessorArray("R", (8,))
        s = r.section(slice(2, 8, 3))
        assert list(s.dim_ranks(0)) == [2, 5]

    def test_equality(self):
        r = ProcessorArray("R", (4,))
        assert r.section(slice(0, 2)) == r.section(slice(0, 2))
        assert r.section(slice(0, 2)) != r.section(slice(0, 3))

    def test_repr(self):
        r = ProcessorArray("R", (4, 4))
        s = r.section(2, slice(0, 4))
        assert "R(" in repr(s)
