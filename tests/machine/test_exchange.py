"""Tests for the concurrent exchange-phase primitive."""

import pytest

from repro.machine.cost_model import CostModel
from repro.machine.network import Network


def make_net(nprocs=4, alpha=1e-5, beta=1e-8):
    return Network(nprocs, CostModel(alpha, beta, 1e9, "t"), trace=True)


class TestExchange:
    def test_counts_like_send(self):
        net = make_net()
        net.exchange([(0, 1, 100), (2, 3, 50)])
        s = net.stats()
        assert s.messages == 2
        assert s.bytes == 150

    def test_disjoint_pairs_overlap_in_time(self):
        """Two disjoint transfers take one message time, not two."""
        net = make_net()
        dt = net.exchange([(0, 1, 100), (2, 3, 100)])
        one = net.cost_model.message_time(100)
        assert dt == pytest.approx(one)
        assert net.time == pytest.approx(one)

    def test_sequential_sends_chain_instead(self):
        net_seq = make_net()
        net_seq.send(0, 1, 100)
        net_seq.send(1, 2, 100)
        net_par = make_net()
        net_par.exchange([(0, 1, 100), (1, 2, 100)])
        # proc 1 is an endpoint of both messages in both cases, so the
        # busy time matches; but a chain through a *third* hop differs:
        net_seq2 = make_net()
        net_seq2.send(0, 1, 100)
        net_seq2.send(2, 3, 100)
        assert net_par.time >= net_seq2.time  # 1 is busy twice vs once

    def test_per_endpoint_serialization(self):
        """A processor receiving k messages is busy k message-times."""
        net = make_net()
        dt = net.exchange([(1, 0, 100), (2, 0, 100), (3, 0, 100)])
        one = net.cost_model.message_time(100)
        assert dt == pytest.approx(3 * one)

    def test_self_messages_skipped(self):
        net = make_net()
        net.exchange([(1, 1, 1000)])
        assert net.stats().messages == 0
        assert net.time == 0.0

    def test_empty_phase(self):
        net = make_net()
        assert net.exchange([]) == 0.0

    def test_tags_traced(self):
        net = make_net()
        net.exchange([(0, 1, 8, "halo")])
        assert net.trace[0].tag == "halo"

    def test_validation(self):
        net = make_net(2)
        with pytest.raises(IndexError):
            net.exchange([(0, 5, 8)])
        with pytest.raises(ValueError):
            net.exchange([(0, 1, -8)])

    def test_link_accounting(self):
        net = make_net()
        net.exchange([(0, 1, 10), (0, 1, 20)])
        assert net.link_bytes()[(0, 1)] == 30
