"""Tests for the alpha + beta*n cost model and presets."""

import pytest

from repro.machine.cost_model import (
    IPSC860,
    MODERN_CLUSTER,
    PARAGON,
    PRESETS,
    ZERO_COST,
    CostModel,
)


class TestCostModel:
    def test_message_time_formula(self):
        m = CostModel(alpha=1e-4, beta=1e-6, flop_rate=1e6)
        assert m.message_time(0) == pytest.approx(1e-4)
        assert m.message_time(100) == pytest.approx(1e-4 + 1e-4)

    def test_compute_time(self):
        m = CostModel(alpha=0, beta=0, flop_rate=2e6)
        assert m.compute_time(4e6) == pytest.approx(2.0)
        assert m.compute_time(0) == 0.0

    def test_negative_message_size_rejected(self):
        with pytest.raises(ValueError):
            ZERO_COST.message_time(-1)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            ZERO_COST.compute_time(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(alpha=-1, beta=0, flop_rate=1)
        with pytest.raises(ValueError):
            CostModel(alpha=0, beta=-1, flop_rate=1)
        with pytest.raises(ValueError):
            CostModel(alpha=0, beta=0, flop_rate=0)

    def test_half_performance_length(self):
        m = CostModel(alpha=1e-4, beta=1e-6, flop_rate=1e6)
        assert m.bytes_equivalent_of_latency() == pytest.approx(100.0)

    def test_half_performance_length_infinite_bandwidth(self):
        m = CostModel(alpha=1e-4, beta=0.0, flop_rate=1e6)
        assert m.bytes_equivalent_of_latency() == float("inf")

    def test_frozen(self):
        with pytest.raises(Exception):
            IPSC860.alpha = 0.0  # type: ignore[misc]


class TestPresets:
    def test_all_presets_registered(self):
        assert set(PRESETS) == {"iPSC/860", "Paragon", "modern", "zero"}

    def test_latency_ordering_matches_history(self):
        # machines got faster: startup latency strictly decreases
        assert IPSC860.alpha > PARAGON.alpha > MODERN_CLUSTER.alpha

    def test_bandwidth_ordering(self):
        assert IPSC860.beta > PARAGON.beta > MODERN_CLUSTER.beta

    def test_ipsc_is_latency_dominated(self):
        # on the iPSC/860, a kilobyte message is still mostly startup
        n_half = IPSC860.bytes_equivalent_of_latency()
        assert n_half > 200

    def test_zero_cost_free(self):
        assert ZERO_COST.message_time(10**9) == 0.0
