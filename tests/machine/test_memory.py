"""Tests for per-processor local memories."""

import numpy as np
import pytest

from repro.machine.memory import LocalMemory, MemoryError_


class TestAllocate:
    def test_allocate_shape_and_dtype(self):
        mem = LocalMemory(0)
        a = mem.allocate("x", (3, 4), np.float64)
        assert a.shape == (3, 4)
        assert a.dtype == np.float64

    def test_fill_value(self):
        mem = LocalMemory(0)
        a = mem.allocate("x", (5,), fill=7.0)
        assert (a == 7.0).all()

    def test_accounting(self):
        mem = LocalMemory(0)
        mem.allocate("x", (10,), np.float64)
        assert mem.used == 80
        mem.allocate("y", (10,), np.int64, kind="table")
        assert mem.used == 160
        assert mem.used_by_kind("table") == 80
        assert mem.used_by_kind("data") == 80

    def test_reallocate_same_name_frees_old(self):
        mem = LocalMemory(0)
        mem.allocate("x", (100,))
        mem.allocate("x", (10,))
        assert mem.used == 80

    def test_high_water_tracks_peak(self):
        mem = LocalMemory(0)
        mem.allocate("x", (100,))
        peak = mem.used
        mem.free("x")
        mem.allocate("x", (10,))
        assert mem.high_water == peak

    def test_capacity_enforced(self):
        mem = LocalMemory(0, capacity=100)
        mem.allocate("x", (10,))  # 80 bytes
        with pytest.raises(MemoryError_):
            mem.allocate("y", (10,))

    def test_capacity_allows_fit(self):
        mem = LocalMemory(0, capacity=160)
        mem.allocate("x", (10,))
        mem.allocate("y", (10,))
        assert mem.used == 160


class TestAdoptFree:
    def test_adopt_registers_external_array(self):
        mem = LocalMemory(1)
        arr = np.arange(6.0)
        got = mem.adopt("z", arr)
        assert got is arr
        assert mem["z"] is arr
        assert mem.used == arr.nbytes

    def test_adopt_respects_capacity(self):
        mem = LocalMemory(0, capacity=10)
        with pytest.raises(MemoryError_):
            mem.adopt("z", np.zeros(100))

    def test_free_unknown_name(self):
        mem = LocalMemory(0)
        with pytest.raises(KeyError):
            mem.free("nope")

    def test_contains_and_names(self):
        mem = LocalMemory(0)
        mem.allocate("a", (1,))
        mem.allocate("b", (1,))
        assert "a" in mem and "c" not in mem
        assert mem.block_names() == ["a", "b"]

    def test_getitem_missing(self):
        mem = LocalMemory(0)
        with pytest.raises(KeyError):
            mem["missing"]
