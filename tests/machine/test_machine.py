"""Tests for the Machine facade."""

from repro.machine import IPSC860, Machine, ProcessorArray


class TestMachine:
    def test_shape_tuple_promoted(self):
        m = Machine((2, 2))
        assert m.nprocs == 4
        assert m.processors.name == "P"

    def test_explicit_processor_array(self):
        r = ProcessorArray("R", (8,))
        m = Machine(r)
        assert m.processors is r
        assert m.nprocs == 8

    def test_one_memory_per_processor(self):
        m = Machine((3,))
        assert len(m.memories) == 3
        assert m.memory(2).rank == 2

    def test_cost_model_passthrough(self):
        m = Machine((2,), cost_model=IPSC860)
        assert m.cost_model.name == "iPSC/860"

    def test_memory_totals(self):
        m = Machine((2,))
        m.memory(0).allocate("x", (10,))
        m.memory(1).allocate("y", (20,))
        assert m.total_memory_used() == 240
        assert m.max_memory_used() == 160

    def test_stats_and_reset(self):
        m = Machine((2,), cost_model=IPSC860)
        m.network.send(0, 1, 100)
        assert m.stats().messages == 1
        assert m.time > 0
        m.reset_network()
        assert m.stats().messages == 0
        assert m.time == 0.0

    def test_memory_capacity_plumbed(self):
        m = Machine((2,), memory_capacity=64)
        assert m.memory(0).capacity == 64

    def test_full_section(self):
        m = Machine((2, 3))
        s = m.full_section()
        assert s.shape == (2, 3)
