"""Tests for the cost-accounting network."""

import pytest

from repro.machine.cost_model import CostModel, ZERO_COST
from repro.machine.network import Network


def make_net(nprocs=4, alpha=1e-5, beta=1e-8, trace=False):
    return Network(nprocs, CostModel(alpha, beta, 1e9, "t"), trace=trace)


class TestSend:
    def test_message_counted(self):
        net = make_net()
        net.send(0, 1, 100)
        s = net.stats()
        assert s.messages == 1
        assert s.bytes == 100

    def test_self_message_free(self):
        net = make_net()
        cost = net.send(2, 2, 1000)
        assert cost == 0.0
        assert net.stats().messages == 0
        assert net.time == 0.0

    def test_cost_linear_in_size(self):
        net = make_net(alpha=1e-5, beta=1e-8)
        c = net.send(0, 1, 1000)
        assert c == pytest.approx(1e-5 + 1e-8 * 1000)

    def test_clocks_advance_sender_and_receiver(self):
        net = make_net()
        net.send(0, 1, 100)
        assert net.clocks[0] > 0
        assert net.clocks[1] >= net.clocks[0]
        assert net.clocks[2] == 0.0

    def test_receiver_waits_for_sender(self):
        net = make_net()
        net.compute(0, 1e6)  # sender busy for 1e6/1e9 = 1ms
        net.send(0, 1, 8)
        assert net.clocks[1] >= net.clocks[0]

    def test_per_proc_accounting_counts_both_ends(self):
        net = make_net()
        net.send(0, 1, 64)
        s = net.stats()
        assert s.per_proc_messages[0] == 1
        assert s.per_proc_messages[1] == 1
        assert s.per_proc_bytes[0] == 64
        assert s.per_proc_bytes[1] == 64

    def test_link_bytes(self):
        net = make_net()
        net.send(0, 1, 10)
        net.send(0, 1, 20)
        net.send(1, 0, 5)
        assert net.link_bytes() == {(0, 1): 30, (1, 0): 5}

    def test_invalid_rank_rejected(self):
        net = make_net(2)
        with pytest.raises(IndexError):
            net.send(0, 2, 8)
        with pytest.raises(IndexError):
            net.send(-1, 0, 8)

    def test_negative_size_rejected(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.send(0, 1, -1)

    def test_trace_records_messages(self):
        net = make_net(trace=True)
        net.send(0, 3, 16, tag="x")
        assert len(net.trace) == 1
        rec = net.trace[0]
        assert (rec.src, rec.dst, rec.nbytes, rec.tag) == (0, 3, 16, "x")

    def test_trace_disabled_by_default(self):
        net = make_net()
        net.send(0, 1, 8)
        assert net.trace == []


class TestComputeAndSync:
    def test_compute_charges_one_clock(self):
        net = make_net()
        net.compute(1, 2e9)
        assert net.clocks[1] == pytest.approx(2.0)
        assert net.clocks[0] == 0.0

    def test_synchronize_levels_clocks(self):
        net = make_net()
        net.compute(0, 3e9)
        t = net.synchronize()
        assert t == pytest.approx(3.0)
        assert all(c == t for c in net.clocks)

    def test_time_is_makespan(self):
        net = make_net()
        net.compute(0, 1e9)
        net.compute(3, 5e9)
        assert net.time == pytest.approx(5.0)

    def test_reset(self):
        net = make_net(trace=True)
        net.send(0, 1, 100)
        net.compute(2, 1e9)
        net.reset()
        s = net.stats()
        assert s.messages == 0 and s.bytes == 0
        assert net.time == 0.0
        assert net.trace == []


class TestStatsDiff:
    def test_subtraction(self):
        net = make_net()
        net.send(0, 1, 10)
        before = net.stats()
        net.send(1, 2, 20)
        net.send(0, 1, 5)
        diff = net.stats() - before
        assert diff.messages == 2
        assert diff.bytes == 25
        assert diff.per_proc_bytes[2] == 20

    def test_copy_is_independent(self):
        net = make_net()
        net.send(0, 1, 10)
        snap = net.stats().copy()
        net.send(0, 1, 10)
        assert snap.messages == 1

    def test_zero_cost_model_counts_but_free(self):
        net = Network(2, ZERO_COST)
        net.send(0, 1, 10**6)
        assert net.stats().messages == 1
        assert net.time == 0.0


class TestValidation:
    def test_needs_a_processor(self):
        with pytest.raises(ValueError):
            Network(0, ZERO_COST)
