"""Equal session configs produce bitwise-equal results — on every
registered workload (the unified-seeding satellite of ISSUE 5)."""

import numpy as np
import pytest

from repro.api import REGISTRY, SessionConfig, Session, session

SMALL = {
    "adi": {"size": 12, "iterations": 1},
    "pic": {"size": 12, "steps": 3},
    "smoothing": {"size": 12, "steps": 3},
    "irregular": {"size": 16, "steps": 2},
}


def _small_params(name):
    # tiny overrides for registered workloads we know; anything else
    # runs on its registered defaults
    return SMALL.get(name, {})


@pytest.mark.parametrize("name", sorted(REGISTRY.names()))
def test_two_equal_sessions_produce_equal_runs(name):
    cfg = SessionConfig(nprocs=4, cost_model="Paragon", seed=2,
                        record_events=True)
    assert cfg == SessionConfig(nprocs=4, cost_model="Paragon", seed=2,
                                record_events=True)
    runs = [
        Session(cfg).workload(name, **_small_params(name)).run()
        for _ in range(2)
    ]
    a, b = runs
    assert np.array_equal(a.solution, b.solution)
    assert a.solution.tobytes() == b.solution.tobytes()
    assert a.clocks == b.clocks
    assert a.headline == b.headline
    assert a.events.events == b.events.events
    assert a.fingerprint() == b.fingerprint()


@pytest.mark.parametrize("name", sorted(REGISTRY.names()))
def test_different_seeds_change_the_fingerprint(name):
    params = _small_params(name)
    a = session(nprocs=4, seed=0).workload(name, **params).run()
    b = session(nprocs=4, seed=1).workload(name, **params).run()
    # the solution payload must depend on the seed (all registered
    # workloads start from seeded random data)
    assert a.fingerprint() != b.fingerprint()


def test_handle_seed_override_equals_session_seed():
    a = session(nprocs=4, seed=3).workload("adi", size=12).run()
    b = session(nprocs=4).workload("adi", size=12, seed=3).run()
    assert a.fingerprint() == b.fingerprint()
