"""Pool-safety of Session (ISSUE 6 satellite) and cross-session PlanCache
sharing: lifecycle guards, cheap construction, bitwise-identical plans from
concurrent sessions over one shared cache, monotone hit counters."""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro.api import Session, SessionClosedError, SessionConfig
from repro.runtime.redistribute import PlanCache


# -- lifecycle (satellite: Session safe to pool) ---------------------------


def test_close_is_idempotent():
    sess = Session()
    sess.close()
    sess.close()  # second close is a no-op, not an error
    assert sess.closed


def test_use_after_close_raises_session_closed_error():
    sess = Session()
    sess.close()
    with pytest.raises(SessionClosedError, match="closed"):
        sess.workload("adi")
    with pytest.raises(SessionClosedError):
        sess.machine()
    with pytest.raises(SessionClosedError):
        sess.engine()
    with pytest.raises(SessionClosedError):
        with sess:
            pass
    with pytest.raises(SessionClosedError):
        with sess.attach(Session().machine()):
            pass


def test_session_closed_error_is_a_runtime_error():
    # pool code that catches RuntimeError keeps working
    assert issubclass(SessionClosedError, RuntimeError)
    assert repro.SessionClosedError is SessionClosedError


def test_construction_is_cheap():
    # pooling relies on sessions not building machines/backends eagerly
    sess = Session(SessionConfig(nprocs=8, backend="multiprocess"))
    assert sess._owned_backends == []
    sess.close()  # nothing was built, nothing to tear down
    assert sess.closed


def test_workloads_listing_survives_close():
    # introspection of a closed session is fine; only *work* raises
    sess = Session()
    sess.close()
    assert "adi" in sess.workloads()
    assert "closed" in repr(sess)


# -- cross-session plan-cache sharing (satellite: test coverage) -----------


def _plan_json(sess: Session, seed: int) -> str:
    return sess.workload("adi", size=16, seed=seed).plan().json_str()


def test_shared_plan_cache_is_used_by_both_sessions():
    shared = PlanCache()
    a = Session(plan_cache=shared)
    b = Session(plan_cache=shared)
    assert a.plan_cache is shared and b.plan_cache is shared
    # independent sessions get independent caches
    assert Session().plan_cache is not Session().plan_cache


def test_sequential_sessions_hit_the_shared_cache():
    shared = PlanCache()
    first = _plan_json(Session(plan_cache=shared), seed=0)
    before = shared.stats()
    second = _plan_json(Session(plan_cache=shared), seed=0)
    after = shared.stats()
    assert first == second  # bitwise-identical plans
    assert after["hits"] > before["hits"]
    assert after["misses"] == before["misses"]  # nothing recomputed


def test_concurrent_sessions_share_one_cache_bitwise():
    shared = PlanCache()
    # warm the cache once so the concurrent phase measures pure sharing
    # (a cold start would race 6 benign duplicate computations)
    reference = _plan_json(Session(plan_cache=shared), seed=0)
    warm = shared.stats()
    sessions = [Session(plan_cache=shared) for _ in range(6)]

    with ThreadPoolExecutor(max_workers=6) as pool:
        bodies = list(pool.map(lambda s: _plan_json(s, 0), sessions))

    # every concurrent session produced byte-identical plan JSON
    assert set(bodies) == {reference}
    stats = shared.stats()
    # the cache was genuinely shared: hits grew, nothing was recomputed
    assert stats["hits"] > warm["hits"]
    assert stats["misses"] == warm["misses"]
    for sess in sessions:
        sess.close()


def test_hit_counters_are_monotone_across_sessions():
    shared = PlanCache()
    seen_hits = []
    for _ in range(4):
        _plan_json(Session(plan_cache=shared), seed=0)
        seen_hits.append(shared.stats()["hits"])
    assert seen_hits == sorted(seen_hits)
    assert seen_hits[-1] > seen_hits[0]


def test_shared_cache_does_not_leak_across_configs():
    # different seeds are different planner inputs: distinct entries,
    # but both still land in the one shared store
    shared = PlanCache()
    a = _plan_json(Session(plan_cache=shared), seed=0)
    b = _plan_json(Session(plan_cache=shared), seed=1)
    payload_a, payload_b = json.loads(a), json.loads(b)
    assert payload_a["workload"] == payload_b["workload"] == "adi"
    # replaying either seed now hits
    before = shared.stats()["hits"]
    assert _plan_json(Session(plan_cache=shared), seed=1) == b
    assert shared.stats()["hits"] > before
