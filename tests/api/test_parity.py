"""Session-path results are bitwise-identical to the legacy paths.

The acceptance bar of the API redesign: for every registered workload,
``Session`` runs reproduce the legacy free-function results exactly —
solutions, per-processor clocks, recorded event logs — and
``handle.plan()`` reproduces the legacy planner CLI path's schedules.
Property-tested over sizes and seeds.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import sim
from repro.api import REGISTRY, session
from repro.machine import Machine, PARAGON, ProcessorArray

NPROCS = 4


def _legacy_adi(size, iterations, seed, log):
    from repro.apps.adi import execute_adi

    machine = Machine(ProcessorArray("R", (NPROCS,)), cost_model=PARAGON)
    with sim.record(machine, log):
        r = execute_adi(
            machine, size, size, iterations, "dynamic", seed=seed
        )
    return r.solution, tuple(machine.network.clocks)


def _legacy_pic(size, steps, seed, log):
    from repro.apps.pic import PICConfig, execute_pic

    machine = Machine(ProcessorArray("P", (NPROCS,)), cost_model=PARAGON)
    cfg = PICConfig(
        strategy="bblock", ncell=size, npart=8 * size, max_time=steps,
        nprocs=NPROCS, seed=seed,
    )
    with sim.record(machine, log):
        r = execute_pic(machine, cfg)
    sol = np.array([s.imbalance for s in r.steps], dtype=np.float64)
    return sol, tuple(machine.network.clocks)


def _legacy_smoothing(size, steps, seed, log):
    from repro.apps.smoothing import execute_smoothing

    machine = Machine((NPROCS,), cost_model=PARAGON)
    with sim.record(machine, log):
        r = execute_smoothing(
            size, steps, "columns", NPROCS, PARAGON, seed=seed,
            machine=machine,
        )
    return r.solution, tuple(machine.network.clocks)


def _legacy_irregular(size, steps, seed, log):
    from repro.apps.irregular import make_mesh, run_relaxation

    machine = Machine(ProcessorArray("P", (NPROCS,)), cost_model=PARAGON)
    graph = make_mesh(size, seed=seed)
    with sim.record(machine, log):
        r = run_relaxation(
            machine, graph, "partitioned", sweeps=steps, seed=seed
        )
    return r.solution, tuple(machine.network.clocks)


LEGACY = {
    "adi": lambda size, seed, log: _legacy_adi(size, 2, seed, log),
    "pic": lambda size, seed, log: _legacy_pic(size, 4, seed, log),
    "smoothing": lambda size, seed, log: _legacy_smoothing(size, 4, seed, log),
    "irregular": lambda size, seed, log: _legacy_irregular(size, 4, seed, log),
}
PARAMS = {
    "adi": {"iterations": 2},
    "pic": {"steps": 4},
    "smoothing": {"steps": 4},
    "irregular": {"steps": 4},
}
WORKLOADS = sorted(set(LEGACY) & set(REGISTRY.names()))


@pytest.mark.parametrize("name", WORKLOADS)
@given(size=st.sampled_from([8, 16]), seed=st.integers(0, 3))
@settings(max_examples=6, deadline=None)
def test_run_bitwise_identical_to_legacy(name, size, seed):
    run = session(nprocs=NPROCS, seed=seed, record_events=True).workload(
        name, size=size, **PARAMS[name]
    ).run()
    legacy_log = sim.EventLog()
    legacy_solution, legacy_clocks = LEGACY[name](size, seed, legacy_log)
    assert np.array_equal(run.solution, legacy_solution)
    assert run.solution.dtype == legacy_solution.dtype
    assert run.clocks == legacy_clocks
    assert run.events.events == legacy_log.events


@pytest.mark.parametrize("name", ["adi", "pic", "smoothing"])
@given(seed=st.integers(0, 2))
@settings(max_examples=3, deadline=None)
def test_plan_identical_to_legacy(name, seed):
    from repro.planner import CostEngine, get_workload, plan_workload

    size = 16
    steps = 4
    handle_params = {"size": size}
    legacy_kwargs = {"nprocs": NPROCS, "cost_model": PARAGON}
    if name == "adi":
        handle_params["iterations"] = 2
        legacy_kwargs.update(nx=size, ny=size, iterations=2)
    elif name == "pic":
        handle_params["steps"] = steps
        legacy_kwargs.update(ncell=size, steps=steps, seed=seed)
    else:
        handle_params["steps"] = steps
        legacy_kwargs.update(n=size, steps=steps)

    sess_seed = seed if name == "pic" else 0
    result = session(nprocs=NPROCS, seed=sess_seed).workload(
        name, **handle_params
    ).plan()

    legacy_workload = get_workload(name, **legacy_kwargs)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy_plan = plan_workload(
            legacy_workload, cost_engine=CostEngine(legacy_workload.machine)
        )
    assert result.plan.layouts() == legacy_plan.layouts()
    assert result.plan.total_cost == legacy_plan.total_cost
    assert result.plan.to_dict() == legacy_plan.to_dict()


@pytest.mark.parametrize("name", WORKLOADS)
def test_trace_blocking_matches_aggregate(name):
    t = session(nprocs=NPROCS).workload(name, size=16, **PARAMS[name]).trace()
    assert t.matches_aggregate is True
