"""Every legacy entry point warns — and still returns bitwise-identical
results to the ``Session`` path (the deprecation-shim satellite)."""

import warnings

import numpy as np
import pytest

from repro.api import session
from repro.machine import Machine, PARAGON, ProcessorArray


def _silently(fn, *args, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return fn(*args, **kwargs)


def test_run_adi_warns_and_matches_session():
    from repro.apps.adi import run_adi

    machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
    with pytest.warns(DeprecationWarning, match="run_adi"):
        legacy = run_adi(machine, 12, 12, 1, "dynamic", seed=0)
    r = session(nprocs=4).workload("adi", size=12, iterations=1).run()
    assert np.array_equal(legacy.solution, r.solution)
    assert tuple(machine.network.clocks) == r.clocks
    assert legacy.total_time == r.result.total_time


def test_run_pic_warns_and_matches_session():
    from repro.apps.pic import PICConfig, run_pic

    machine = Machine(ProcessorArray("P", (4,)), cost_model=PARAGON)
    cfg = PICConfig(strategy="bblock", ncell=12, npart=96, max_time=3,
                    nprocs=4, seed=0)
    with pytest.warns(DeprecationWarning, match="run_pic"):
        legacy = run_pic(machine, cfg)
    r = session(nprocs=4).workload("pic", size=12, steps=3).run()
    assert np.array_equal(
        np.array([s.imbalance for s in legacy.steps]), r.solution
    )
    assert tuple(machine.network.clocks) == r.clocks


def test_run_smoothing_warns_and_matches_session():
    from repro.apps.smoothing import run_smoothing

    with pytest.warns(DeprecationWarning, match="run_smoothing"):
        legacy = run_smoothing(12, 3, "columns", 4, PARAGON, seed=0)
    r = session(nprocs=4).workload("smoothing", size=12, steps=3).run()
    assert np.array_equal(legacy.solution, r.solution)
    assert legacy.messages == r.result.messages
    assert legacy.time == r.result.time


def test_plan_workload_warns_and_matches_session():
    from repro.planner import CostEngine, adi_workload, plan_workload

    workload = adi_workload(12, 12, iterations=2, nprocs=4,
                            cost_model=PARAGON)
    with pytest.warns(DeprecationWarning, match="plan_workload"):
        legacy = plan_workload(
            workload, cost_engine=CostEngine(workload.machine)
        )
    p = session(nprocs=4).workload("adi", size=12, iterations=2).plan()
    assert legacy.to_dict() == p.plan.to_dict()
    assert legacy.layouts() == p.plan.layouts()


def test_bare_engine_warns_and_matches_session_engine():
    from repro.core.distribution import dist_type
    from repro.runtime.engine import Engine

    machine = Machine(ProcessorArray("R", (4,)), cost_model=PARAGON)
    with pytest.warns(DeprecationWarning, match="Engine"):
        legacy_vfe = Engine(machine)
    v1 = legacy_vfe.declare("V", (12, 12), dist=dist_type(":", "BLOCK"),
                            dynamic=True)
    v1.from_global(np.arange(144.0).reshape(12, 12))
    legacy_reports = legacy_vfe.distribute("V", dist_type("BLOCK", ":"))

    with session(nprocs=4) as sess:
        vfe = sess.engine(name="R")
        v2 = vfe.declare("V", (12, 12), dist=dist_type(":", "BLOCK"),
                         dynamic=True)
        v2.from_global(np.arange(144.0).reshape(12, 12))
        reports = vfe.distribute("V", dist_type("BLOCK", ":"))

    assert np.array_equal(v1.to_global(), v2.to_global())
    assert [(r.messages, r.bytes) for r in legacy_reports] == [
        (r.messages, r.bytes) for r in reports
    ]
    assert tuple(machine.network.clocks) == tuple(
        vfe.machine.network.clocks
    )


def test_internal_code_emits_no_deprecation_warnings():
    """The facade, the CLI tour path and the apps' execute_* cores must
    never route through their own shims."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        session(nprocs=4).workload("adi", size=12, iterations=1).run()
        session(nprocs=4).workload("pic", size=12, steps=2).run()
        session(nprocs=4).workload("smoothing", size=12, steps=2).run()
        session(nprocs=4).workload("adi", size=12, iterations=1).plan()
        session(nprocs=4).workload("adi", size=12, iterations=1).trace()
