"""Session facade unit tests: config, handles, results, registry."""

import json

import numpy as np
import pytest

import repro
from repro.api import (
    BACKEND_NAMES,
    DEFAULT_SEED,
    ExecutionOutcome,
    REGISTRY,
    Session,
    SessionConfig,
    WorkloadHandle,
    WorkloadRegistry,
    available_workloads,
    register_workload,
    resolve_cost_model,
    session,
)
from repro.backend import SerialBackend
from repro.machine import PARAGON


# -- config ----------------------------------------------------------------


def test_config_defaults():
    cfg = SessionConfig()
    assert cfg.nprocs == 4
    assert cfg.seed == DEFAULT_SEED
    assert cfg.backend is None
    assert cfg.backend_name == "serial"
    assert cfg.resolved_cost_model() is PARAGON
    assert cfg.validate() is cfg


def test_config_accepts_cost_model_instance_and_name():
    assert resolve_cost_model("Paragon") is PARAGON
    assert resolve_cost_model(PARAGON) is PARAGON
    with pytest.raises(ValueError, match="unknown cost model"):
        resolve_cost_model("nope")


def test_config_rejects_bad_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        SessionConfig(backend="bogus").validate()
    with pytest.raises(ValueError, match="not an instance"):
        SessionConfig(backend=SerialBackend()).validate()
    # names and Backend subclasses are fine
    for name in BACKEND_NAMES:
        SessionConfig(backend=name).validate()
    SessionConfig(backend=SerialBackend).validate()


def test_config_rejects_bad_nprocs():
    with pytest.raises(ValueError, match="nprocs"):
        SessionConfig(nprocs=0).validate()


def test_config_json_roundtrip():
    cfg = SessionConfig(nprocs=8, cost_model="modern", seed=3)
    assert json.loads(json.dumps(cfg.to_json()))["nprocs"] == 8


# -- session ---------------------------------------------------------------


def test_session_context_manager_and_repr():
    with session(nprocs=4) as sess:
        assert "open" in repr(sess)
        assert sess.cost_model is PARAGON
        assert set(sess.workloads()) >= {"adi", "pic", "smoothing"}
    assert "closed" in repr(sess)


def test_session_machine_and_engine_share_plan_cache():
    with session(nprocs=4) as sess:
        m = sess.machine(name="R")
        assert m.nprocs == 4 and m.cost_model is PARAGON
        vfe = sess.engine(m)
        assert vfe.machine is m
        assert vfe.plan_cache is sess.plan_cache
        vfe2 = sess.engine()
        assert vfe2.plan_cache is sess.plan_cache


def test_session_engine_does_not_warn():
    import warnings

    with session(nprocs=2) as sess:
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sess.engine()


def test_session_engine_attaches_and_closes_backend():
    with session(nprocs=2, backend="serial") as sess:
        vfe = sess.engine()
        assert isinstance(vfe.machine.backend, SerialBackend)
        machine = vfe.machine
    assert machine.backend is None  # closed with the session


def test_session_describe():
    d = session(nprocs=4).describe()
    assert d["cost_model"] == "Paragon"
    assert "adi" in d["workloads"]
    json.dumps(d)


# -- handles ---------------------------------------------------------------


def test_workload_handle_params_and_seed():
    sess = session(nprocs=4, seed=5)
    h = sess.workload("adi", size=16)
    assert h.name == "adi" and h.plannable
    assert h.seed == 5
    assert h.params["size"] == 16
    assert h.params["iterations"] == 2  # registered default
    # per-handle override
    assert sess.workload("adi", seed=9).seed == 9
    assert "adi" in repr(h)


def test_workload_unknown_name_and_param():
    sess = session()
    with pytest.raises(KeyError, match="registered"):
        sess.workload("nope")
    with pytest.raises(TypeError, match="unknown parameter"):
        sess.workload("adi", bogus=1)


def test_run_result_protocol():
    r = session(nprocs=4).workload("adi", size=16, iterations=1).run()
    assert r.solution is not None and r.solution.shape == (16, 16)
    assert len(r.clocks) == 4
    assert r.backend == "serial"
    assert "run adi" in r.summary()
    parsed = json.loads(r.json_str())
    assert parsed["workload"] == "adi"
    assert parsed["solution_sha256"] == r.solution_digest()
    assert r.events is None  # record_events defaults off
    assert len(r.fingerprint()) == 64


def test_run_records_events_when_configured():
    r = session(nprocs=4, record_events=True).workload(
        "adi", size=16, iterations=1
    ).run()
    assert r.events is not None and len(r.events.events) > 0
    assert json.loads(r.json_str())["events"]


def test_plan_result_protocol():
    p = session(nprocs=4).workload("adi", size=16, iterations=2).plan()
    assert p.plan.steps
    assert "plan for 'V'" in p.summary()
    parsed = json.loads(p.json_str())
    assert parsed["cost_mode"] == "model"
    assert parsed["plan"]["steps"]
    with pytest.raises(ValueError, match="cost_mode"):
        session(nprocs=4).workload("adi").plan(cost_mode="bogus")


def test_plan_unplannable_workload():
    if "irregular" not in REGISTRY:
        pytest.skip("networkx missing")
    with pytest.raises(ValueError, match="no planning problem"):
        session(nprocs=2).workload("irregular").plan()


def test_trace_result_protocol():
    t = session(nprocs=4).workload("adi", size=16, iterations=1).trace()
    assert t.matches_aggregate is True
    assert t.blocking is not None and t.split is not None
    assert t.timeline(False) is t.blocking
    assert t.timeline(True) is t.split
    assert 0.0 <= t.overlap_reduction <= 1.0
    json.loads(json.dumps(t.to_json(intervals=False)))


def test_trace_single_semantics():
    h = session(nprocs=4).workload("adi", size=16, iterations=1)
    t = h.trace(overlap=False)
    assert t.blocking is not None and t.split is None
    with pytest.raises(ValueError, match="split-phase"):
        t.timeline(True)
    t2 = h.trace(overlap=True)
    assert t2.blocking is None and t2.split is not None
    assert t2.matches_aggregate is None


def test_bench_result_protocol():
    b = session(nprocs=4).workload("adi", size=8, iterations=1).bench(repeats=2)
    assert len(b.wall_times) == 2
    assert b.best <= b.mean
    assert b.modeled_time > 0
    json.loads(b.json_str())
    with pytest.raises(ValueError, match="repeats"):
        session().workload("adi").bench(repeats=0)


# -- registry --------------------------------------------------------------


def test_register_workload_into_custom_registry():
    reg = WorkloadRegistry()

    @register_workload("toy", defaults={"n": 4}, registry=reg)
    def toy(ctx):
        return ExecutionOutcome(
            solution=np.full(ctx.params["n"], float(ctx.seed)),
            headline={"n": ctx.params["n"]},
        )

    assert toy.name == "toy"  # the decorated name is the spec
    assert "toy" in reg and "toy" not in REGISTRY
    assert available_workloads(reg) == ("toy",)

    sess = Session(SessionConfig(nprocs=2, seed=7), registry=reg)
    r = sess.workload("toy").run()
    assert r.solution.tolist() == [7.0, 7.0, 7.0, 7.0]
    assert r.headline == {"n": 4}


def test_register_duplicate_rejected_unless_replace():
    reg = WorkloadRegistry()

    @register_workload("dup", registry=reg)
    def one(ctx):
        return ExecutionOutcome(solution=np.zeros(1))

    with pytest.raises(ValueError, match="already registered"):

        @register_workload("dup", registry=reg)
        def two(ctx):
            return ExecutionOutcome(solution=np.zeros(1))

    @register_workload("dup", registry=reg, replace=True)
    def three(ctx):
        return ExecutionOutcome(solution=np.ones(1))

    assert reg.get("dup") is three


def test_runner_must_return_outcome():
    reg = WorkloadRegistry()

    @register_workload("bad", registry=reg)
    def bad(ctx):
        return 42

    with pytest.raises(TypeError, match="ExecutionOutcome"):
        Session(SessionConfig(nprocs=1), registry=reg).workload("bad").run()


def test_builtin_workloads_registered():
    names = set(available_workloads())
    assert {"adi", "pic", "smoothing"} <= names
    spec = REGISTRY.get("adi")
    assert spec.plannable
    assert spec.defaults["strategy"] == "dynamic"


def test_root_facade_exports():
    assert repro.session is session
    assert repro.Session is Session
    assert repro.SessionConfig is SessionConfig
    assert repro.register_workload is register_workload
    assert repro.DEFAULT_SEED == DEFAULT_SEED
