"""Tests for processor-section syntax and the TO clause."""

import numpy as np
import pytest

from repro.lang.parser import VFSyntaxError, parse_processors, parse_section
from repro.lang.program import VFProgram
from repro.machine import Machine, ProcessorArray


class TestParseSection:
    R = parse_processors("R(1:4, 1:4)")

    def test_full_by_name(self):
        s = parse_section("R", self.R)
        assert s.shape == (4, 4)

    def test_colon_dims(self):
        s = parse_section("R(:, :)", self.R)
        assert s.shape == (4, 4)

    def test_ranges_one_based_inclusive(self):
        s = parse_section("R(1:2, 3:4)", self.R)
        assert s.shape == (2, 2)
        assert s.coord_in_parent((0, 0)) == (0, 2)

    def test_collapsing_subscript(self):
        s = parse_section("R(2, :)", self.R)
        assert s.ndim == 1
        assert s.ranks() == [4, 5, 6, 7]

    def test_strided(self):
        r1 = parse_processors("P(1:8)")
        s = parse_section("P(1:8:2)", r1)
        assert s.ranks() == [0, 2, 4, 6]

    def test_env_bounds(self):
        s = parse_section("R(1:M, :)", self.R, env={"M": 2})
        assert s.shape == (2, 4)

    def test_wrong_name(self):
        with pytest.raises(VFSyntaxError, match="unknown processor array"):
            parse_section("Q(1:2, :)", self.R)

    def test_wrong_arity(self):
        with pytest.raises(VFSyntaxError):
            parse_section("R(1:2)", self.R)
        with pytest.raises(VFSyntaxError):
            parse_section("R(1:2, :, :)", self.R)


class TestToClause:
    def test_declaration_to_clause(self):
        machine = Machine(ProcessorArray("R", (4,)))
        prog = VFProgram(machine, env={"N": 8})
        v = prog.declare("REAL V(N) DIST (BLOCK) TO R(1:2)")
        assert set(np.unique(v.dist.rank_map())) == {0, 1}

    def test_distribute_with_string_to(self):
        machine = Machine(ProcessorArray("R", (4,)))
        prog = VFProgram(machine, env={"N": 8})
        v = prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK)")
        v.from_global(np.arange(8.0))
        prog.distribute("V", "(BLOCK)", to="R(3:4)")
        assert set(np.unique(v.dist.rank_map())) == {2, 3}
        assert np.array_equal(v.to_global(), np.arange(8.0))

    def test_to_clause_on_2d_grid(self):
        machine = Machine(ProcessorArray("R", (2, 2)))
        prog = VFProgram(machine, env={"N": 8})
        v = prog.declare("REAL V(N) DIST (BLOCK) TO R(2, :)")
        assert set(np.unique(v.dist.rank_map())) == {2, 3}

    def test_moving_between_sections_costs_traffic(self):
        """Redistributing to a disjoint section moves everything."""
        machine = Machine(ProcessorArray("R", (4,)))
        prog = VFProgram(machine, env={"N": 8})
        v = prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK) TO R(1:2)")
        v.from_global(np.arange(8.0))
        reports = prog.distribute("V", "(BLOCK)", to="R(3:4)")
        assert reports[0].elements_moved == 8
        assert np.array_equal(v.to_global(), np.arange(8.0))
