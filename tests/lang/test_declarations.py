"""Tests for declaration-statement parsing (paper Examples 1-2)."""

import pytest

from repro.core.dimdist import Block, Cyclic, NoDist
from repro.lang.declarations import parse_declaration
from repro.lang.parser import VFSyntaxError

ENV = {"M": 2, "N": 8, "NX": 100, "NY": 100, "NCELL": 64, "NPART": 32}


class TestStaticDeclarations:
    def test_paper_example1_c(self):
        d = parse_declaration("REAL C(10,10,10) DIST (BLOCK, BLOCK, :)", ENV)
        assert d.names == ["C"]
        assert d.shapes == [(10, 10, 10)]
        assert not d.dynamic
        assert d.dist.dims == (Block(), Block(), NoDist())

    def test_paper_example1_d_alignment(self):
        d = parse_declaration(
            "REAL D(10,10,10) ALIGN D(I,J,K) WITH C(J,I,K)", ENV
        )
        tgt, alignment = d.connect_alignment
        assert tgt == "C"
        assert alignment.map_index((1, 2, 3)) == (2, 1, 3)

    def test_figure1_u_f(self):
        d = parse_declaration("REAL U(NX, NY) DIST (:, BLOCK)", ENV)
        assert d.shapes == [(100, 100)]
        assert d.dist.dims == (NoDist(), Block())

    def test_integer_declaration(self):
        d = parse_declaration("INTEGER BOUNDS(NP) DIST (BLOCK)", {"NP": 4})
        assert d.type_name == "INTEGER"


class TestDynamicDeclarations:
    def test_bare_dynamic(self):
        d = parse_declaration("REAL B1(M) DYNAMIC", ENV)
        assert d.dynamic
        assert d.dist is None and d.range_ is None

    def test_example2_b2(self):
        d = parse_declaration("REAL B2(N) DYNAMIC, DIST (BLOCK)", ENV)
        assert d.dynamic
        assert d.dist.dims == (Block(),)

    def test_example2_b3_b4(self):
        d = parse_declaration(
            "REAL B3(N,N), B4(N,N) DYNAMIC, "
            "RANGE ((BLOCK, BLOCK),(*,CYCLIC)), DIST (BLOCK, CYCLIC)",
            ENV,
        )
        assert d.names == ["B3", "B4"]
        assert len(d.range_) == 2
        assert d.dist.dims == (Block(), Cyclic(1))

    def test_example2_a1_extraction(self):
        d = parse_declaration("REAL A1(N,N) DYNAMIC, CONNECT (=B4)", ENV)
        assert d.connect_extraction == "B4"

    def test_example2_a2_alignment(self):
        d = parse_declaration(
            "REAL A2(N,N) DYNAMIC, CONNECT A2(I,J) WITH B4(I,J)", ENV
        )
        tgt, alignment = d.connect_alignment
        assert tgt == "B4"
        assert alignment.map_index((3, 4)) == (3, 4)

    def test_figure1_v(self):
        d = parse_declaration(
            "REAL V(NX, NY) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), "
            "DIST (:, BLOCK)",
            ENV,
        )
        assert d.dynamic
        assert len(d.range_) == 2
        assert d.dist.dims == (NoDist(), Block())

    def test_figure2_field(self):
        d = parse_declaration(
            "REAL FIELD(NCELL, NPART) DYNAMIC, DIST (BLOCK, :)", ENV
        )
        assert d.shapes == [(64, 32)]

    def test_continuation_ampersand_stripped(self):
        d = parse_declaration(
            "REAL B3(N,N) DYNAMIC, RANGE ((BLOCK, BLOCK),(*,CYCLIC)),\n"
            "     & DIST (BLOCK, CYCLIC)",
            ENV,
        )
        assert d.dist is not None


class TestErrors:
    def test_must_start_with_type(self):
        with pytest.raises(VFSyntaxError):
            parse_declaration("V(10) DIST (BLOCK)", ENV)

    def test_no_arrays(self):
        with pytest.raises(VFSyntaxError):
            parse_declaration("REAL DIST (BLOCK)", ENV)

    def test_unbound_extent(self):
        with pytest.raises(VFSyntaxError, match="unbound"):
            parse_declaration("REAL V(QQ) DIST (BLOCK)", {})

    def test_scalar_declaration_rejected(self):
        with pytest.raises(VFSyntaxError):
            parse_declaration("REAL X() DIST (BLOCK)", ENV)

    def test_unexpected_clause(self):
        with pytest.raises(VFSyntaxError):
            parse_declaration("REAL V(4), WAT", ENV)

    def test_dynamic_takes_no_args(self):
        with pytest.raises(VFSyntaxError):
            parse_declaration("REAL V(4) DYNAMIC (X)", ENV)
