"""Tests for the Vienna Fortran program-text frontend."""

import pytest

from repro.compiler.ir import (
    AccessKind,
    Assign,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    Loop,
)
from repro.compiler.reaching import analyze
from repro.core.dimdist import Block, Cyclic, NoDist
from repro.core.query import TypePattern
from repro.lang.frontend import parse_program
from repro.lang.parser import VFSyntaxError

ENV = {"NX": 100, "NY": 100, "N": 8, "K": 2}


def walk(block):
    for s in block:
        yield s
        if isinstance(s, Loop):
            yield from walk(s.body)
        elif isinstance(s, If):
            yield from walk(s.then)
            yield from walk(s.orelse)
        elif isinstance(s, DCaseStmt):
            for _, arm in s.arms:
                yield from walk(arm)


class TestBasics:
    def test_program_unit(self):
        prog = parse_program("PROGRAM MAIN\nEND", ENV)
        assert "main" in prog.procs
        assert prog.entry == "main"

    def test_empty_text_rejected(self):
        with pytest.raises(VFSyntaxError):
            parse_program("", ENV)

    def test_missing_end_rejected(self):
        with pytest.raises(VFSyntaxError):
            parse_program("PROGRAM MAIN\nREAL V(N) DIST (BLOCK)", ENV)

    def test_comments_and_continuations(self):
        prog = parse_program(
            "      PROGRAM T\n"
            "C     a classic Fortran comment\n"
            "! modern comment\n"
            "      REAL V(N) DYNAMIC,\n"
            "     &     DIST (BLOCK)\n"
            "      END\n",
            ENV,
        )
        initial, _ = prog.declared["V"]
        assert initial == TypePattern((Block(),))

    def test_declarations_registered(self):
        prog = parse_program(
            "PROGRAM T\n"
            "REAL V(N, N) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), "
            "DIST (:, BLOCK)\n"
            "END",
            ENV,
        )
        initial, range_ = prog.declared["V"]
        assert initial == TypePattern((NoDist(), Block()))
        assert len(range_) == 2


class TestStatements:
    def test_distribute(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DYNAMIC\nDISTRIBUTE V :: (CYCLIC(K))\nEND",
            ENV,
        )
        stmts = [s for s in walk(prog.proc("t").body)]
        assert isinstance(stmts[0], DistributeStmt)
        assert stmts[0].pattern == TypePattern((Cyclic(2),))

    def test_multi_primary_distribute(self):
        prog = parse_program(
            "PROGRAM T\nREAL B1(N), B2(N) DYNAMIC\n"
            "DISTRIBUTE B1, B2 :: (BLOCK)\nEND",
            ENV,
        )
        ds = [s for s in walk(prog.proc("t").body) if isinstance(s, DistributeStmt)]
        assert [d.array for d in ds] == ["B1", "B2"]

    def test_do_loop(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DYNAMIC, DIST (BLOCK)\n"
            "DO K = 1, 10\nDISTRIBUTE V :: (CYCLIC)\nENDDO\nEND",
            ENV,
        )
        body = list(prog.proc("t").body)
        assert isinstance(body[0], Loop)

    def test_if_with_idt(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DYNAMIC, DIST (BLOCK)\n"
            "IF (IDT(V, (BLOCK))) THEN\n"
            "DISTRIBUTE V :: (CYCLIC)\n"
            "ELSE\n"
            "DISTRIBUTE V :: (BLOCK)\n"
            "ENDIF\nEND",
            ENV,
        )
        branch = list(prog.proc("t").body)[0]
        assert isinstance(branch, If)
        assert branch.idt_cond is not None
        assert branch.idt_cond[0] == "V"
        assert len(branch.then) == 1 and len(branch.orelse) == 1

    def test_opaque_if(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DYNAMIC, DIST (BLOCK)\n"
            "IF (MOD(I,10) .EQ. 0) THEN\nDISTRIBUTE V :: (CYCLIC)\nENDIF\nEND",
            ENV,
        )
        branch = list(prog.proc("t").body)[0]
        assert isinstance(branch, If)
        assert branch.idt_cond is None

    def test_dcase(self):
        prog = parse_program(
            "PROGRAM T\n"
            "REAL B1(N), B3(N, N) DYNAMIC, DIST (BLOCK)\n"
            "SELECT DCASE (B1, B3)\n"
            "CASE (BLOCK), (BLOCK, *)\n"
            "DISTRIBUTE B1 :: (CYCLIC)\n"
            "CASE B3: (CYCLIC, CYCLIC)\n"
            "DISTRIBUTE B1 :: (BLOCK)\n"
            "CASE DEFAULT\n"
            "DISTRIBUTE B1 :: (BLOCK)\n"
            "END SELECT\n"
            "END",
            ENV,
        )
        dc = list(prog.proc("t").body)[0]
        assert isinstance(dc, DCaseStmt)
        assert dc.selectors == ("B1", "B3")
        assert len(dc.arms) == 3
        assert dc.arms[0][0].positional is not None
        assert dc.arms[1][0].tagged is not None
        assert dc.arms[2][0] is None  # DEFAULT

    def test_assignment_classification(self):
        prog = parse_program(
            "PROGRAM T\n"
            "REAL U(N, N) DIST (BLOCK, :)\n"
            "REAL W(N, N) DIST (BLOCK, :)\n"
            "REAL IX(N, N) DIST (BLOCK, :)\n"
            "U(I, J) = 0.25 * (W(I-1, J) + W(I+1, J) + W(I, J) + W(IX(I, J), J))\n"
            "END",
            ENV,
        )
        assign = [s for s in walk(prog.proc("t").body) if isinstance(s, Assign)][0]
        kinds = sorted(r.kind for r in assign.reads if r.array == "W")
        assert kinds == ["identity", "indirect", "shift", "shift"]
        shift = [r for r in assign.reads if r.kind == AccessKind.SHIFT][0]
        assert shift.offsets in ((-1, 0), (1, 0))

    def test_call_defined_subroutine_binds(self):
        prog = parse_program(
            "SUBROUTINE WORK(X)\n"
            "DISTRIBUTE X :: (CYCLIC)\n"
            "END\n"
            "PROGRAM T\n"
            "REAL V(N) DYNAMIC, DIST (BLOCK)\n"
            "CALL WORK(V)\n"
            "END",
            ENV,
        )
        call = [s for s in walk(prog.proc("t").body) if isinstance(s, Call)][0]
        assert call.callee == "WORK"
        assert call.bindings == {"X": "V"}

    def test_call_external_with_section_becomes_sweep(self):
        prog = parse_program(
            "PROGRAM T\n"
            "REAL V(N, N) DYNAMIC, DIST (:, BLOCK)\n"
            "CALL TRIDIAG(V(:, J), N)\n"
            "END",
            ENV,
        )
        assign = [s for s in walk(prog.proc("t").body) if isinstance(s, Assign)][0]
        assert assign.reads[0].kind == AccessKind.ROW_SWEEP
        assert assign.reads[0].dim == 0

    def test_scalar_statements_skipped(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DIST (BLOCK)\nK = K + 1\nEND", ENV
        )
        assert len(prog.proc("t").body) == 0


class TestFigure1EndToEnd:
    FIGURE1 = """
      PROGRAM ADI
      REAL U(NX, NY) DIST (:, BLOCK)
      REAL F(NX, NY) DIST (:, BLOCK)
      REAL V(NX, NY) DYNAMIC, RANGE( (:, BLOCK), ( BLOCK, :)),
     &     DIST (:, BLOCK)
      CALL RESID( V, U, F, NX, NY)
C Sweep over x-lines
      DO J = 1, NY
        CALL TRIDIAG( V(:, J), NX)
      ENDDO
      DISTRIBUTE V :: ( BLOCK, : )
C Sweep over y-lines
      DO I = 1, NX
        CALL TRIDIAG( V(I, :), NY)
      ENDDO
      END
"""

    def test_figure1_analysis(self):
        """The headline integration: Figure 1, as text, analyzed."""
        prog = parse_program(self.FIGURE1, ENV)
        res = analyze(prog)
        sweeps = [
            s
            for s in walk(prog.proc("adi").body)
            if isinstance(s, Assign) and "TRIDIAG" in s.label.upper()
        ]
        assert len(sweeps) == 2
        x_sweep, y_sweep = sweeps
        assert x_sweep.reads[0].dim == 0
        assert y_sweep.reads[0].dim == 1
        # the compiler knows each sweep sees exactly one distribution,
        # local in the swept dimension
        assert res.plausible(x_sweep.sid, "V").patterns == frozenset(
            [TypePattern((NoDist(), Block()))]
        )
        assert res.plausible(y_sweep.sid, "V").patterns == frozenset(
            [TypePattern((Block(), NoDist()))]
        )

    def test_figure1_comm_analysis_free(self):
        from repro.compiler.comm_analysis import estimate_ref

        prog = parse_program(self.FIGURE1, ENV)
        res = analyze(prog)
        sweeps = [
            s
            for s in walk(prog.proc("adi").body)
            if isinstance(s, Assign) and "TRIDIAG" in s.label.upper()
        ]
        for s in sweeps:
            (pattern,) = res.plausible(s.sid, "V").patterns
            est = estimate_ref(s.reads[0], pattern, (100, 100), (4,))
            assert est.messages == 0  # both sweeps communication-free
