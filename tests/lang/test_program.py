"""Tests for VFProgram scopes and executable statements."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, NoDist
from repro.machine import Machine, ProcessorArray
from repro.lang.program import VFProgram


def make(procs=(4,), env=None):
    machine = Machine(ProcessorArray("R", procs))
    return VFProgram(machine, env=env or {"N": 8, "M": 8})


class TestDeclare:
    def test_static(self):
        p = make()
        v = p.declare("REAL V(N,N) DIST (BLOCK, :)")
        assert v.dist.dtype.dims == (Block(), NoDist())

    def test_dynamic_initial(self):
        p = make()
        v = p.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        assert v.descriptor.is_dynamic
        assert v.dist.dtype.dims == (NoDist(), Block())

    def test_static_needs_dist(self):
        p = make()
        with pytest.raises(Exception, match="DIST"):
            p.declare("REAL V(N,N)")

    def test_multiple_arrays_one_statement(self):
        p = make()
        b3, b4 = p.declare("REAL B3(N,N), B4(N,N) DYNAMIC, DIST (BLOCK, :)")
        assert b3.shape == (8, 8) and b4.shape == (8, 8)

    def test_np_intrinsic_bound(self):
        p = make()
        assert p.env["NP"] == 4
        assert p.np_ == 4

    def test_name_collision_in_scope(self):
        p = make()
        p.declare("REAL V(N) DYNAMIC")
        with pytest.raises(ValueError, match="already declared"):
            p.declare("REAL V(N) DYNAMIC")


class TestDistributeStatement:
    def test_simple(self):
        p = make()
        v = p.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        p.distribute("V", "(BLOCK, :)")
        assert v.dist.dtype.dims == (Block(), NoDist())

    def test_multiple_primaries_example3(self):
        """DISTRIBUTE B1, B2 :: (CYCLIC(K))."""
        p = make(env={"N": 8, "K": 3})
        p.declare("REAL B1(N) DYNAMIC, DIST (BLOCK)")
        p.declare("REAL B2(N) DYNAMIC, DIST (BLOCK)")
        p.distribute("B1, B2", "(CYCLIC(K))")
        assert p.array("B1").dist.dtype.dims == (Cyclic(3),)
        assert p.array("B2").dist.dtype.dims == (Cyclic(3),)

    def test_extraction_statement(self):
        p = make()
        p.declare("REAL B1(N) DYNAMIC, DIST (CYCLIC)")
        p.declare("REAL B4(N) DYNAMIC, DIST (BLOCK)")
        p.distribute("B4", "=B1")
        assert p.array("B4").dist.dtype.dims == (Cyclic(1),)

    def test_mixed_extraction_example3(self):
        """DISTRIBUTE B4 :: (=B1, CYCLIC(3)) — per-dim extraction.

        The paper's Example 3: B1 is currently (CYCLIC(k')); the mixed
        form distributes B4 as (CYCLIC(k'), CYCLIC(3)).  Our resolver
        splices the referenced array's dimension list into the
        expression.
        """
        p = VFProgram(Machine(ProcessorArray("R", (2, 2))), env={"N": 8})
        # B1 lives on a 1-D subsection so its single CYCLIC dim splices
        # cleanly into B4's first dimension.
        sec = p.machine.processors.section(0, slice(None))
        p.declare("REAL B1(N) DYNAMIC, DIST (CYCLIC)", to=sec)
        b4 = p.declare("REAL B4(N,N) DYNAMIC, DIST (BLOCK, BLOCK)")
        p.distribute("B4", "(=B1, CYCLIC(3))")
        assert b4.dist.dtype.dims == (Cyclic(1), Cyclic(3))

    def test_notransfer_resolved_in_scope(self):
        p = make()
        p.declare("REAL B(N) DYNAMIC, DIST (BLOCK)")
        p.declare("REAL A(N) DYNAMIC, CONNECT (=B)")
        reports = p.distribute("B", "(CYCLIC)", notransfer=["A"])
        by_name = {r.array_name.split("::")[-1]: r for r in reports}
        assert by_name["A"].messages == 0

    def test_connect_class_built(self):
        p = make()
        p.declare("REAL B4(N,N) DYNAMIC, DIST (BLOCK, :)")
        p.declare("REAL A1(N,N) DYNAMIC, CONNECT (=B4)")
        p.declare("REAL A2(N,N) DYNAMIC, CONNECT A2(I,J) WITH B4(I,J)")
        p.distribute("B4", "(CYCLIC, :)")
        assert p.array("A1").dist.dtype.dims[0] == Cyclic(1)
        assert p.array("A2").dist.dtype.dims[0] == Cyclic(1)


class TestQueries:
    def test_idt_statement(self):
        p = make()
        p.declare("REAL V(N,N) DIST (:, BLOCK)")
        assert p.idt("V", "(:, BLOCK)")
        assert p.idt("V", "(*, BLOCK)")
        assert not p.idt("V", "(BLOCK, *)")

    def test_dcase_with_string_patterns(self):
        p = make()
        p.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        dc = p.dcase("V")
        dc.case("(BLOCK, :)", lambda: "rows")
        dc.case("(:, BLOCK)", lambda: "cols")
        dc.case({"V": "(CYCLIC(*), *)"}, lambda: "cyclic")
        assert dc.execute() == "cols"

    def test_dcase_default(self):
        p = make()
        p.declare("REAL V(N) DYNAMIC, DIST (CYCLIC)")
        dc = p.dcase("V")
        dc.case("(BLOCK)", lambda: "b")
        dc.default(lambda: "d")
        assert dc.execute() == "d"


class TestScopes:
    def test_scope_isolation(self):
        """Connect does not extend across procedure boundaries (§2.3)."""
        p = make()
        p.declare("REAL B(N) DYNAMIC, DIST (BLOCK)")
        p.push_scope("sub")
        # inner scope cannot see outer names
        with pytest.raises(KeyError):
            p.array("B")
        # inner scope can declare its own B
        p.declare("REAL B(N) DYNAMIC, DIST (CYCLIC)")
        assert p.array("B").dist.dtype.dims == (Cyclic(1),)
        p.pop_scope()
        assert p.array("B").dist.dtype.dims == (Block(),)

    def test_cannot_pop_main(self):
        p = make()
        with pytest.raises(RuntimeError):
            p.pop_scope()

    def test_activation_names_unique(self):
        p = make()
        s1 = p.push_scope("sub")
        p.pop_scope()
        s2 = p.push_scope("sub")
        assert s1.name != s2.name


class TestDataFlow:
    def test_values_survive_statement_level_redistribution(self):
        p = make()
        v = p.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        data = np.random.default_rng(0).standard_normal((8, 8))
        v.from_global(data)
        p.distribute("V", "(BLOCK, :)")
        assert np.array_equal(v.to_global(), data)
