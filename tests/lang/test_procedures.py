"""Tests for procedure-boundary redistribution semantics (§4, §5)."""

import numpy as np
import pytest

from repro.core.distribution import dist_type
from repro.lang.procedures import FormalArg, Procedure
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine


def make():
    machine = Machine(ProcessorArray("R", (4,)))
    engine = Engine(machine)
    v = engine.declare("V", (8, 8), dist=dist_type(":", "BLOCK"), dynamic=True)
    v.from_global(np.arange(64, dtype=float).reshape(8, 8))
    return machine, engine, v


class TestEntryRedistribution:
    def test_formal_with_declared_distribution_redistributes_actual(self):
        machine, engine, v = make()
        seen = {}

        def body(engine_, X):
            seen["dtype"] = X.dist.dtype

        proc = Procedure("sweep_y", [FormalArg("X", "(BLOCK, :)")], body)
        proc(engine, X=v)
        assert seen["dtype"] == dist_type("BLOCK", ":")

    def test_matching_actual_not_redistributed(self):
        machine, engine, v = make()
        proc = Procedure(
            "p", [FormalArg("X", "(:, BLOCK)")], lambda e, X: None
        )
        before = machine.stats().messages
        proc(engine, X=v)
        assert machine.stats().messages == before

    def test_inherited_distribution(self):
        """Formal without declared dist inherits the actual's."""
        machine, engine, v = make()
        seen = {}
        proc = Procedure(
            "p", [FormalArg("X")], lambda e, X: seen.update(d=X.dist.dtype)
        )
        proc(engine, X=v)
        assert seen["d"] == dist_type(":", "BLOCK")
        assert machine.stats().messages == 0

    def test_data_preserved(self):
        machine, engine, v = make()
        data = v.to_global()
        proc = Procedure("p", [FormalArg("X", "(BLOCK, :)")], lambda e, X: None)
        proc(engine, X=v)
        assert np.array_equal(v.to_global(), data)

    def test_wrong_arguments_rejected(self):
        _, engine, v = make()
        proc = Procedure("p", [FormalArg("X")], lambda e, X: None)
        with pytest.raises(TypeError):
            proc(engine, Y=v)


class TestReturnSemantics:
    def test_vf_returns_new_distribution(self):
        """Vienna Fortran semantics: redistribution survives the call."""
        _, engine, v = make()
        proc = Procedure(
            "p",
            [FormalArg("X", "(BLOCK, :)")],
            lambda e, X: None,
            restore="vf",
        )
        proc(engine, X=v)
        assert v.dist.dtype == dist_type("BLOCK", ":")

    def test_hpf_restores_entry_distribution(self):
        """§5: HPF does not permit the new distribution to be returned."""
        _, engine, v = make()
        proc = Procedure(
            "p",
            [FormalArg("X", "(BLOCK, :)")],
            lambda e, X: None,
            restore="hpf",
        )
        proc(engine, X=v)
        assert v.dist.dtype == dist_type(":", "BLOCK")

    def test_hpf_mode_costs_a_second_redistribution(self):
        machine, engine, v = make()
        proc_vf = Procedure(
            "p", [FormalArg("X", "(BLOCK, :)")], lambda e, X: None, restore="vf"
        )
        proc_vf(engine, X=v)
        msgs_vf = machine.stats().messages

        machine2, engine2, v2 = make()
        proc_hpf = Procedure(
            "p", [FormalArg("X", "(BLOCK, :)")], lambda e, X: None, restore="hpf"
        )
        proc_hpf(engine2, X=v2)
        msgs_hpf = machine2.stats().messages
        assert msgs_hpf == 2 * msgs_vf

    def test_hpf_data_preserved(self):
        _, engine, v = make()
        data = v.to_global()
        proc = Procedure(
            "p", [FormalArg("X", "(BLOCK, :)")], lambda e, X: None, restore="hpf"
        )
        proc(engine, X=v)
        assert np.array_equal(v.to_global(), data)

    def test_body_redistribution_returned_in_vf_mode(self):
        _, engine, v = make()

        def body(e, X):
            e.distribute(X.name, dist_type("CYCLIC", ":"))

        proc = Procedure("p", [FormalArg("X")], body, restore="vf")
        proc(engine, X=v)
        assert v.dist.dtype == dist_type("CYCLIC", ":")

    def test_invalid_restore_mode(self):
        with pytest.raises(ValueError):
            Procedure("p", [], lambda e: None, restore="maybe")


class TestStaticActuals:
    def test_static_actual_implicitly_redistributed(self):
        """§4: the compiler may move a *static* actual at a boundary."""
        machine = Machine(ProcessorArray("R", (4,)))
        engine = Engine(machine)
        u = engine.declare("U", (8, 8), dist=dist_type(":", "BLOCK"))
        u.from_global(np.ones((8, 8)))
        seen = {}
        proc = Procedure(
            "p",
            [FormalArg("X", "(BLOCK, :)")],
            lambda e, X: seen.update(d=X.dist.dtype),
            restore="hpf",
        )
        proc(engine, X=u)
        assert seen["d"] == dist_type("BLOCK", ":")
        assert u.dist.dtype == dist_type(":", "BLOCK")  # restored

    def test_result_value(self):
        _, engine, v = make()
        proc = Procedure("p", [FormalArg("X")], lambda e, X: X.get((0, 0)))
        assert proc(engine, X=v) == 0.0
