"""Tests for VFProgram-integrated procedure calls."""

import numpy as np
import pytest

from repro.core.dimdist import Block, Cyclic, NoDist
from repro.lang.program import VFProgram
from repro.machine import Machine, ProcessorArray


def make():
    machine = Machine(ProcessorArray("R", (4,)))
    return VFProgram(machine, env={"N": 16})


class TestProgramProcedures:
    def test_body_runs_in_fresh_scope(self):
        prog = make()
        prog.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        seen = {}

        def body(p, X):
            # the callee scope sees the formal name, not the caller's
            assert p.scope.name.startswith("work#")
            seen["X"] = p.array("X")
            # callee-local declarations do not leak
            p.declare("REAL TMP(N) DYNAMIC, DIST (BLOCK)")

        prog.procedure("work", [("X", None)], body)
        prog.call("work", X="V")
        assert seen["X"] is prog.array("V")
        with pytest.raises(KeyError):
            prog.array("TMP")

    def test_formal_distribution_redistributes(self):
        prog = make()
        v = prog.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        v.from_global(np.arange(256.0).reshape(16, 16))

        def body(p, X):
            assert X.dist.dtype.dims == (Block(), NoDist())

        prog.procedure("rows", [("X", "(BLOCK, :)")], body)
        prog.call("rows", X="V")
        # Vienna Fortran semantics: the new distribution returned
        assert v.dist.dtype.dims == (Block(), NoDist())
        assert np.array_equal(v.to_global(), np.arange(256.0).reshape(16, 16))

    def test_hpf_restore(self):
        prog = make()
        v = prog.declare("REAL V(N,N) DYNAMIC, DIST (:, BLOCK)")
        prog.procedure(
            "rows", [("X", "(BLOCK, :)")], lambda p, X: None, restore="hpf"
        )
        prog.call("rows", X="V")
        assert v.dist.dtype.dims == (NoDist(), Block())

    def test_formal_dist_uses_program_env(self):
        prog = make()
        prog.env["K"] = 3
        v = prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK)")
        prog.procedure("c", [("X", "(CYCLIC(K))")], lambda p, X: None)
        prog.call("c", X="V")
        assert v.dist.dtype.dims == (Cyclic(3),)

    def test_unknown_procedure(self):
        prog = make()
        with pytest.raises(KeyError, match="no procedure"):
            prog.call("nope")

    def test_return_value(self):
        prog = make()
        prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK)")
        prog.procedure("get", ["X"], lambda p, X: X.shape)
        assert prog.call("get", X="V") == (16,)

    def test_nested_calls(self):
        prog = make()
        prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK)")
        depth = []

        def inner(p, Y):
            depth.append(p.scope.name)

        def outer(p, X):
            depth.append(p.scope.name)
            p.call2 = None  # noqa: B010 - just exercise nesting below
            prog.call("inner", Y="X")

        prog.procedure("inner", ["Y"], inner)
        prog.procedure("outer", ["X"], outer)
        prog.call("outer", X="V")
        assert len(depth) == 2
        assert depth[0] != depth[1]


class TestReports:
    def test_per_processor_table(self):
        from repro.machine import per_processor_table

        prog = make()
        v = prog.declare("REAL V(N) DYNAMIC, DIST (BLOCK)")
        v.fill(1.0)
        prog.distribute("V", "(CYCLIC)")
        table = per_processor_table(prog.machine)
        assert "rank" in table
        assert len(table.splitlines()) == 2 + 4

    def test_link_matrix(self):
        from repro.machine import link_matrix

        prog = make()
        prog.machine.network.send(0, 1, 64)
        m = link_matrix(prog.machine)
        assert "64" in m

    def test_summary(self):
        from repro.machine import summary

        prog = make()
        s = summary(prog.machine)
        assert "4 processors" in s
