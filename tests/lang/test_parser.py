"""Tests for the Vienna Fortran surface-syntax parser."""

import pytest

from repro.core.dimdist import Block, Cyclic, GenBlock, Indirect, NoDist, SBlock
from repro.core.query import ANY, TypePattern, Wild
from repro.lang.parser import (
    VFSyntaxError,
    parse_alignment,
    parse_dist_expr,
    parse_pattern,
    parse_processors,
)


class TestDistExpr:
    def test_simple(self):
        t = parse_dist_expr("(BLOCK)")
        assert t.dims == (Block(),)

    def test_unparenthesized(self):
        t = parse_dist_expr("BLOCK, CYCLIC")
        assert t.dims == (Block(), Cyclic(1))

    def test_multidim_with_elision(self):
        t = parse_dist_expr("(BLOCK, CYCLIC(3), :)")
        assert t.dims == (Block(), Cyclic(3), NoDist())

    def test_cyclic_default_k(self):
        assert parse_dist_expr("(CYCLIC)").dims == (Cyclic(1),)

    def test_env_scalar(self):
        t = parse_dist_expr("(CYCLIC(K))", env={"K": 5})
        assert t.dims == (Cyclic(5),)

    def test_unbound_scalar(self):
        with pytest.raises(VFSyntaxError, match="unbound"):
            parse_dist_expr("(CYCLIC(K))")

    def test_b_block_env_array(self):
        t = parse_dist_expr("B_BLOCK(BOUNDS)", env={"BOUNDS": [3, 5, 2]})
        assert t.dims == (GenBlock([3, 5, 2]),)

    def test_s_block(self):
        t = parse_dist_expr("(S_BLOCK(S), :)", env={"S": [0, 4]})
        assert t.dims == (SBlock([0, 4]), NoDist())

    def test_indirect(self):
        t = parse_dist_expr("INDIRECT(M)", env={"M": [0, 1, 0]})
        assert t.dims == (Indirect([0, 1, 0]),)

    def test_case_insensitive_keywords(self):
        assert parse_dist_expr("(block, Cyclic(2))").dims == (Block(), Cyclic(2))

    def test_wildcard_rejected_in_concrete(self):
        with pytest.raises(VFSyntaxError):
            parse_dist_expr("(BLOCK, *)")
        with pytest.raises(VFSyntaxError):
            parse_dist_expr("(CYCLIC(*))")

    def test_unknown_keyword(self):
        with pytest.raises(VFSyntaxError, match="unknown distribution"):
            parse_dist_expr("(BLOCKISH)")

    def test_trailing_junk(self):
        with pytest.raises(VFSyntaxError, match="trailing"):
            parse_dist_expr("(BLOCK) x")

    def test_empty(self):
        with pytest.raises(VFSyntaxError):
            parse_dist_expr("")

    def test_unbalanced(self):
        with pytest.raises(VFSyntaxError):
            parse_dist_expr("(BLOCK")


class TestPattern:
    def test_star_type(self):
        assert parse_pattern("*") == TypePattern(ANY)

    def test_star_dim(self):
        p = parse_pattern("(BLOCK, *)")
        assert p.dims == (Block(), ANY)

    def test_cyclic_star(self):
        p = parse_pattern("(CYCLIC(*), :)")
        assert p.dims == (Wild(Cyclic), NoDist())

    def test_concrete_pattern(self):
        p = parse_pattern("(BLOCK, CYCLIC)")
        assert p.is_concrete()


class TestAlignment:
    def test_paper_example1(self):
        src, tgt, a = parse_alignment("D(I,J,K) WITH C(J,I,K)")
        assert (src, tgt) == ("D", "C")
        assert a.map_index((1, 2, 3)) == (2, 1, 3)

    def test_identity(self):
        _, _, a = parse_alignment("A2(I,J) WITH B4(I,J)")
        assert a.map_index((4, 5)) == (4, 5)

    def test_offsets(self):
        _, _, a = parse_alignment("A(I) WITH B(I+1)")
        assert a.map_index((3,)) == (4,)
        _, _, a = parse_alignment("A(I) WITH B(I-2)")
        assert a.map_index((3,)) == (1,)

    def test_stride(self):
        _, _, a = parse_alignment("A(I) WITH B(2*I+1)")
        assert a.map_index((3,)) == (7,)

    def test_constant_subscript(self):
        _, _, a = parse_alignment("A(I) WITH B(I, 3)")
        assert a.map_index((2,)) == (2, 3)

    def test_constant_from_env(self):
        _, _, a = parse_alignment("A(I) WITH B(I, N)", env={"N": 7})
        assert a.map_index((0,)) == (0, 7)

    def test_negated_variable(self):
        _, _, a = parse_alignment("A(I) WITH B(-I+9)")
        assert a.map_index((2,)) == (7,)

    def test_duplicate_subscript_rejected(self):
        with pytest.raises(VFSyntaxError):
            parse_alignment("A(I,I) WITH B(I,I)")

    def test_missing_with(self):
        with pytest.raises(VFSyntaxError, match="WITH"):
            parse_alignment("A(I) B(I)")

    def test_unknown_variable_in_target(self):
        with pytest.raises(VFSyntaxError, match="unbound"):
            parse_alignment("A(I) WITH B(Q)")


class TestProcessors:
    def test_basic(self):
        r = parse_processors("R(1:4, 1:4)")
        assert r.name == "R"
        assert r.shape == (4, 4)

    def test_env_bound(self):
        r = parse_processors("R(1:M, 1:M)", env={"M": 2})
        assert r.shape == (2, 2)

    def test_nonunit_lower_bound(self):
        r = parse_processors("P(0:3)")
        assert r.shape == (4,)

    def test_empty_bound_rejected(self):
        with pytest.raises(VFSyntaxError):
            parse_processors("P(5:1)")

    def test_1d(self):
        assert parse_processors("P(1:8)").shape == (8,)
