"""Error-path coverage for the program-text frontend."""

import pytest

from repro.lang.frontend import parse_program
from repro.lang.parser import VFSyntaxError

ENV = {"N": 8}


class TestFrontendErrors:
    def test_statement_outside_unit(self):
        with pytest.raises(VFSyntaxError, match="PROGRAM or SUBROUTINE"):
            parse_program("REAL V(N) DIST (BLOCK)\n", ENV)

    def test_unterminated_do(self):
        with pytest.raises(VFSyntaxError):
            parse_program("PROGRAM T\nDO I = 1, 4\nEND", ENV)

    def test_unterminated_if(self):
        with pytest.raises(VFSyntaxError):
            parse_program(
                "PROGRAM T\nREAL V(N) DIST (BLOCK)\n"
                "IF (X) THEN\nEND",
                ENV,
            )

    def test_unterminated_select(self):
        with pytest.raises(VFSyntaxError):
            parse_program(
                "PROGRAM T\nREAL V(N) DYNAMIC\n"
                "SELECT DCASE (V)\nCASE (BLOCK)\nEND",
                ENV,
            )

    def test_bad_distribute_expression(self):
        with pytest.raises(VFSyntaxError):
            parse_program(
                "PROGRAM T\nREAL V(N) DYNAMIC\nDISTRIBUTE V :: (WAT)\nEND",
                ENV,
            )

    def test_select_without_case(self):
        with pytest.raises(VFSyntaxError):
            parse_program(
                "PROGRAM T\nREAL V(N) DYNAMIC\n"
                "SELECT DCASE (V)\nK = 1\nEND SELECT\nEND",
                ENV,
            )


class TestFrontendTolerance:
    def test_enddo_spelling_variants(self):
        prog = parse_program(
            "PROGRAM T\nDO I = 1, 4\nENDDO\nDO J = 1, 4\nEND DO\nEND", ENV
        )
        assert len(prog.proc("t").body) == 2

    def test_end_program_suffix(self):
        prog = parse_program("PROGRAM T\nEND PROGRAM T", ENV)
        assert "t" in prog.procs

    def test_star_comment_lines(self):
        prog = parse_program("PROGRAM T\n* old-style comment\nEND", ENV)
        assert len(prog.proc("t").body) == 0

    def test_inline_bang_comment(self):
        prog = parse_program(
            "PROGRAM T\nREAL V(N) DIST (BLOCK)  ! the array\nEND", ENV
        )
        assert "V" in prog.declared

    def test_do_while_like_header(self):
        # "DO WHILE (...)" headers are accepted as plain loops
        prog = parse_program(
            "PROGRAM T\nDO WHILE (K .LT. 10)\nENDDO\nEND", ENV
        )
        assert len(prog.proc("t").body) == 1

    def test_two_program_units(self):
        prog = parse_program(
            "SUBROUTINE S(X)\nEND\nPROGRAM T\nEND", ENV
        )
        assert set(prog.procs) == {"S", "t"}
        assert prog.entry in prog.procs
