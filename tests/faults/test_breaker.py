"""CircuitBreaker: the closed → open → half-open state machine.

All tests drive an injectable fake clock — nothing here sleeps.
"""

import threading

import pytest

from repro.faults import CircuitBreaker
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return Clock()


def make(clock, threshold=3, cooldown=10.0, on_transition=None):
    return CircuitBreaker(
        threshold, cooldown, clock=clock, on_transition=on_transition
    )


def test_closed_allows_and_counts_consecutive_failures(clock):
    b = make(clock)
    assert b.state == CLOSED
    assert b.allow() and b.allow()
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED
    # a success resets the consecutive-failure count
    b.record_success()
    b.record_failure()
    b.record_failure()
    assert b.state == CLOSED
    b.record_failure()
    assert b.state == OPEN
    assert b.trips == 1


def test_open_sheds_until_cooldown(clock):
    b = make(clock)
    for _ in range(3):
        b.record_failure()
    assert b.state == OPEN
    assert not b.allow()
    assert b.retry_after() == pytest.approx(10.0)
    clock.advance(4.0)
    assert not b.allow()
    assert b.retry_after() == pytest.approx(6.0)


def test_half_open_admits_one_probe_then_closes_on_success(clock):
    b = make(clock)
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    assert b.allow()            # the probe
    assert b.state == HALF_OPEN
    assert not b.allow()        # everyone else still shed
    b.record_success()
    assert b.state == CLOSED
    assert b.allow()
    assert b.retry_after() == 0.0


def test_half_open_failure_reopens_and_restarts_cooldown(clock):
    b = make(clock)
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    assert b.allow()
    b.record_failure()
    assert b.state == OPEN
    assert b.trips == 2
    assert not b.allow()
    assert b.retry_after() == pytest.approx(10.0)
    clock.advance(10.0)
    assert b.allow()
    b.record_success()
    assert b.state == CLOSED


def test_straggler_failure_while_open_is_ignored(clock):
    b = make(clock)
    for _ in range(3):
        b.record_failure()
    opened = b.retry_after()
    b.record_failure()  # a request from before the trip reporting late
    assert b.state == OPEN
    assert b.trips == 1
    assert b.retry_after() == opened


def test_on_transition_sequence(clock):
    seen = []
    b = make(clock, on_transition=lambda old, new: seen.append((old, new)))
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    b.allow()
    b.record_success()
    assert seen == [
        (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
    ]


def test_stats_snapshot(clock):
    b = make(clock)
    b.record_failure()
    s = b.stats()
    assert s == {
        "state": CLOSED,
        "failures": 1,
        "trips": 0,
        "failure_threshold": 3,
        "cooldown_seconds": 10.0,
    }


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(0)
    with pytest.raises(ValueError):
        CircuitBreaker(1, -1.0)


def test_thread_safety_single_probe(clock):
    """Many threads racing allow() after the cooldown: exactly one
    probe is admitted."""
    b = make(clock)
    for _ in range(3):
        b.record_failure()
    clock.advance(10.0)
    admitted = []
    barrier = threading.Barrier(8)

    def worker():
        barrier.wait()
        if b.allow():
            admitted.append(1)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(admitted) == 1
