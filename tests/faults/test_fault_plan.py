"""FaultPlan: the registry — queries, serialization, activation."""

import pytest

from repro.faults import (
    FAULT_PLAN_SCHEMA,
    FaultPlan,
    KernelStall,
    RequestFault,
    ShmAllocFailure,
    TransportDelay,
    TransportDrop,
    WorkerCrash,
    activate,
    active_plan,
    deactivate,
    injected,
)


@pytest.fixture(autouse=True)
def _clean_activation():
    deactivate()
    yield
    deactivate()


def _full_plan() -> FaultPlan:
    return FaultPlan(
        faults=(
            WorkerCrash(rank=1, at_op=4),
            KernelStall(rank=2, at_op=5, seconds=0.5),
            TransportDelay(src=0, dst=3, seconds=0.01, first=2, last=6),
            TransportDelay(src=0, dst=3, seconds=0.02, first=4),
            TransportDrop(src=1, dst=2, at_message=3),
            ShmAllocFailure(at_alloc=7),
            RequestFault(route="/run", at_request=5, kind="error"),
        ),
        seed=42,
    )


class TestQueries:
    def test_crash_for(self):
        p = _full_plan()
        assert p.crash_for(1, 4) == WorkerCrash(rank=1, at_op=4)
        assert p.crash_for(1, 5) is None
        assert p.crash_for(0, 4) is None

    def test_stall_for(self):
        p = _full_plan()
        assert p.stall_for(2, 5).seconds == 0.5
        assert p.stall_for(2, 4) is None

    def test_link_delay_sums_matching_specs(self):
        p = _full_plan()
        assert p.link_delay(0, 3, 1) == 0.0          # before first
        assert p.link_delay(0, 3, 2) == 0.01         # first spec only
        assert p.link_delay(0, 3, 5) == pytest.approx(0.03)  # both
        assert p.link_delay(0, 3, 7) == 0.02         # past last=6
        assert p.link_delay(3, 0, 2) == 0.0          # wrong direction

    def test_drops_message(self):
        p = _full_plan()
        assert p.drops_message(1, 2, 3)
        assert not p.drops_message(1, 2, 2)
        assert not p.drops_message(2, 1, 3)

    def test_shm_failure(self):
        p = _full_plan()
        assert p.shm_failure(7) == ShmAllocFailure(at_alloc=7)
        assert p.shm_failure(6) is None

    def test_request_fault(self):
        p = _full_plan()
        assert p.request_fault("/run", 5).kind == "error"
        assert p.request_fault("/run", 4) is None
        assert p.request_fault("/plan", 5) is None

    def test_of_type(self):
        p = _full_plan()
        assert len(p.of_type(TransportDelay)) == 2
        assert len(p.of_type(WorkerCrash)) == 1

    def test_unknown_spec_rejected(self):
        with pytest.raises(TypeError, match="unknown fault spec"):
            FaultPlan(faults=("not-a-fault",))


class TestSerialization:
    def test_round_trip(self):
        p = _full_plan()
        doc = p.to_json()
        assert doc["schema"] == FAULT_PLAN_SCHEMA
        assert doc["seed"] == 42
        assert FaultPlan.from_json(doc) == p

    def test_round_trips_through_json_text(self):
        import json

        p = _full_plan()
        assert FaultPlan.from_json(json.loads(json.dumps(p.to_json()))) == p

    def test_unknown_tag_raises(self):
        with pytest.raises(ValueError, match="unknown fault type"):
            FaultPlan.from_json({"faults": [{"type": "gamma_ray", "x": 1}]})

    def test_summary_counts(self):
        s = _full_plan().summary()
        assert "transport_delay=2" in s
        assert "worker_crash=1" in s
        assert "seed=42" in s

    def test_plans_are_picklable(self):
        import pickle

        p = _full_plan()
        assert pickle.loads(pickle.dumps(p)) == p


class TestChaosGeneration:
    def test_deterministic_in_seed(self):
        assert FaultPlan.chaos(7) == FaultPlan.chaos(7)
        assert FaultPlan.chaos(7) != FaultPlan.chaos(8)

    def test_has_every_advertised_ingredient(self):
        p = FaultPlan.chaos(3, routes=("/run",))
        assert len(p.of_type(WorkerCrash)) == 1
        assert len(p.of_type(TransportDelay)) == 2
        kinds = {f.kind for f in p.of_type(RequestFault)}
        assert kinds == {"delay", "error"}

    def test_crash_lands_past_the_health_check(self):
        for seed in range(20):
            (crash,) = FaultPlan.chaos(seed).of_type(WorkerCrash)
            assert 3 <= crash.at_op <= 8
            assert 0 <= crash.rank < 4

    def test_round_trips(self):
        p = FaultPlan.chaos(11)
        assert FaultPlan.from_json(p.to_json()) == p


class TestActivation:
    def test_off_by_default(self):
        assert active_plan() is None

    def test_activate_deactivate(self):
        p = _full_plan()
        assert activate(p) is p
        assert active_plan() is p
        deactivate()
        assert active_plan() is None
        deactivate()  # idempotent

    def test_activate_rejects_non_plans(self):
        with pytest.raises(TypeError, match="expected a FaultPlan"):
            activate({"faults": []})

    def test_injected_scopes_and_restores_on_error(self):
        p = _full_plan()
        with injected(p):
            assert active_plan() is p
        assert active_plan() is None
        with pytest.raises(RuntimeError, match="boom"):
            with injected(p):
                raise RuntimeError("boom")
        assert active_plan() is None
