"""Fault injection through the real backend stack.

These tests activate a :class:`FaultPlan` and drive the actual
multiprocess fleet: workers really crash (``os._exit``), really stall,
and the supervisor really tears down, respawns, restores the
op-boundary snapshot and replays — the recovered results must be
bitwise-identical to an undisturbed serial run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.backend import BackendError, MultiprocessBackend, SerialBackend
from repro.core.distribution import dist_type
from repro.faults import (
    FaultPlan,
    KernelStall,
    ShmAllocFailure,
    WorkerCrash,
    deactivate,
    injected,
)
from repro.machine import Machine, ProcessorArray
from repro.runtime.engine import Engine

R = ProcessorArray("R", (4,))


@pytest.fixture(autouse=True)
def _clean_activation():
    deactivate()
    yield
    deactivate()


def _scale_by_rank(rank, local, idx):
    local *= rank + 1


def _fill_with_rank(rank, local, idx):
    local[...] = rank


def _drive(machine: Machine, backend, g: np.ndarray) -> np.ndarray:
    """declare → from_global → flip → rank-dependent kernel → flip back.

    Op sequence on the multiprocess backend: noop health check (1),
    redistribute (2), kernel (3), redistribute (4).
    """
    e = Engine(machine)
    v = e.declare("V", (16, 8), dist=dist_type(":", "BLOCK"), dynamic=True)
    v.from_global(g)
    e.distribute("V", dist_type("BLOCK", ":"))
    e.foreach_owned("V", _scale_by_rank)
    e.distribute("V", dist_type(":", "BLOCK"))
    return v.to_global().copy()


def _serial_reference(g: np.ndarray) -> np.ndarray:
    m = Machine(R)
    be = SerialBackend()
    be.attach(m)
    try:
        return _drive(m, be, g)
    finally:
        be.close()


class TestWorkerCrashRecovery:
    def test_crash_mid_kernel_restarts_and_replays(self):
        g = np.random.default_rng(5).standard_normal((16, 8))
        expected = _serial_reference(g)
        with injected(FaultPlan([WorkerCrash(rank=1, at_op=3)])):
            be = MultiprocessBackend(timeout=30.0)
            try:
                m = Machine(R)
                be.attach(m)
                out = _drive(m, be, g)
            finally:
                be.close()
        assert be.supervisor.restarts == 1
        assert np.array_equal(out, expected)

    def test_crash_mid_replayed_redistribute_rehydrates_plan(self):
        """The second A→B flip ships ``sends=None`` (the fleet's plan
        memo has it) — a crash right there forces the master to
        re-ship the stored payload to the fresh fleet."""
        g = np.random.default_rng(6).standard_normal((16, 8))
        # ops: noop 1, flip 2, flip 3, flip 4 (memo replay) ← crash
        with injected(FaultPlan([WorkerCrash(rank=2, at_op=4)])):
            be = MultiprocessBackend(timeout=30.0)
            try:
                m = Machine(R)
                be.attach(m)
                e = Engine(m)
                v = e.declare(
                    "V", (16, 8), dist=dist_type(":", "BLOCK"), dynamic=True
                )
                v.from_global(g)
                e.distribute("V", dist_type("BLOCK", ":"))
                e.distribute("V", dist_type(":", "BLOCK"))
                e.distribute("V", dist_type("BLOCK", ":"))
                assert np.array_equal(v.to_global(), g)
            finally:
                be.close()
        assert be.supervisor.restarts == 1

    def test_restart_budget_exhausts(self):
        """Crashes on every replay attempt: the supervisor spends its
        budget, then the error surfaces as a retryable BackendError
        (the degradation tier's cue to go serial)."""
        # seq numbering: kernel dispatch 2 → crash; respawn noop 3,
        # replay 4 → crash; respawn noop 5, replay 6 → crash
        plan = FaultPlan([
            WorkerCrash(rank=0, at_op=2),
            WorkerCrash(rank=0, at_op=4),
            WorkerCrash(rank=0, at_op=6),
        ])
        with injected(plan):
            be = MultiprocessBackend(timeout=30.0, max_restarts=2)
            try:
                m = Machine(R)
                be.attach(m)
                e = Engine(m)
                e.declare("V", (8,), dist=dist_type("BLOCK"))
                with pytest.raises(BackendError) as info:
                    be.run_kernel(e.arrays["V"], _fill_with_rank)
                assert info.value.retryable
                assert 0 in info.value.dead_ranks
            finally:
                be.close()
        assert be.supervisor.restarts == 2

    def test_deterministic_error_is_not_retried(self):
        be = MultiprocessBackend(timeout=30.0)
        try:
            m = Machine(R)
            be.attach(m)
            e = Engine(m)
            e.declare("V", (8,), dist=dist_type("BLOCK"))
            with pytest.raises(BackendError, match="_explode"):
                be.run_kernel(e.arrays["V"], _explode)
            assert be.supervisor.restarts == 0  # no pointless restarts
        finally:
            be.close()


class TestHangDetection:
    def test_stalled_worker_detected_and_replaced(self):
        """A worker sleeping far past ``hang_timeout`` is judged hung
        long before the op timeout; the fleet restarts and the replay
        (fresh seq, no stall) completes correctly."""
        import time

        g = np.random.default_rng(7).standard_normal((16, 8))
        expected = _serial_reference(g)
        with injected(FaultPlan([KernelStall(rank=0, at_op=3, seconds=20.0)])):
            be = MultiprocessBackend(timeout=60.0, hang_timeout=1.0)
            try:
                m = Machine(R)
                be.attach(m)
                t0 = time.perf_counter()
                out = _drive(m, be, g)
                elapsed = time.perf_counter() - t0
            finally:
                be.close()
        assert be.supervisor.restarts == 1
        assert elapsed < 15.0  # detected at ~hang_timeout, not 20 s
        assert np.array_equal(out, expected)

    def test_hang_detection_off_by_default(self):
        be = MultiprocessBackend(timeout=30.0)
        assert be.effective_hang_timeout == be.timeout
        be2 = MultiprocessBackend(timeout=30.0, hang_timeout=2.0)
        assert be2.effective_hang_timeout == 2.0


class TestShmAllocFailure:
    def test_injected_allocation_failure_raises_memory_error(self):
        with injected(FaultPlan([ShmAllocFailure(at_alloc=1)])):
            be = MultiprocessBackend(timeout=30.0)
            try:
                m = Machine(R)
                be.attach(m)
                e = Engine(m)
                with pytest.raises(
                    MemoryError, match="injected shm allocation failure"
                ):
                    e.declare("V", (8,), dist=dist_type("BLOCK"))
            finally:
                be.close()

    def test_later_allocations_unaffected(self):
        with injected(FaultPlan([ShmAllocFailure(at_alloc=999)])):
            be = MultiprocessBackend(timeout=30.0)
            try:
                m = Machine(R)
                be.attach(m)
                e = Engine(m)
                e.declare("V", (8,), dist=dist_type("BLOCK"))
                be.run_kernel(e.arrays["V"], _fill_with_rank)
                assert np.array_equal(
                    e.arrays["V"].to_global(),
                    np.repeat(np.arange(4, dtype=float), 2),
                )
            finally:
                be.close()


class TestGracefulDegradation:
    def test_session_degrades_to_serial_and_is_poisoned(self):
        """Tier 2: an unrecoverable backend fault inside a stage falls
        back to the serial backend; the result is bitwise-identical to
        a serial-from-the-start run and the session is poisoned."""
        with repro.session(nprocs=4, backend="serial", seed=3) as sess:
            reference = sess.workload("adi", size=12, iterations=1).run()
        with injected(FaultPlan([ShmAllocFailure(at_alloc=1)])):
            with repro.session(
                nprocs=4, backend="multiprocess", seed=3
            ) as sess:
                result = sess.workload("adi", size=12, iterations=1).run()
                assert sess.poisoned
        assert result.solution_digest() == reference.solution_digest()

    def test_degrade_false_raises(self):
        with injected(FaultPlan([ShmAllocFailure(at_alloc=1)])):
            with repro.session(
                nprocs=4, backend="multiprocess", seed=3, degrade=False
            ) as sess:
                with pytest.raises(MemoryError):
                    sess.workload("adi", size=12, iterations=1).run()
                assert not sess.poisoned


class TestRecoveryBitwiseProperty:
    @given(
        data_seed=st.integers(0, 10**6),
        crash_rank=st.integers(0, 3),
        at_op=st.integers(2, 4),
    )
    @settings(max_examples=5, deadline=None)
    def test_recovered_run_matches_serial(self, data_seed, crash_rank, at_op):
        """The acceptance property: crash any rank at any op of the
        drive sequence — the recovered multiprocess result equals the
        serial reference bit for bit."""
        g = np.random.default_rng(data_seed).standard_normal((16, 8))
        expected = _serial_reference(g)
        with injected(FaultPlan([WorkerCrash(rank=crash_rank, at_op=at_op)])):
            be = MultiprocessBackend(timeout=30.0)
            try:
                m = Machine(R)
                be.attach(m)
                out = _drive(m, be, g)
            finally:
                be.close()
        assert be.supervisor.restarts == 1
        assert out.tobytes() == expected.tobytes()


def _explode(rank, local, idx):
    raise RuntimeError(f"_explode on rank {rank}")
