"""Packaging metadata for the reproduction.

The evaluation environment has no network and no `wheel` package, so
PEP 517 editable builds cannot always build an editable wheel; keeping
the metadata in a plain ``setup.py`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path everywhere.

The install requirements mirror exactly what CI installs by hand
(numpy for the data plane, networkx for the irregular-mesh workloads);
test/bench extras live under the ``dev`` extra.  The version is read
from ``src/repro/__init__.py`` so the package root stays the single
source of truth.
"""
import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    init = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "src", "repro", "__init__.py"
    )
    with open(init) as fh:
        match = re.search(r"^__version__ = \"([^\"]+)\"", fh.read(), re.M)
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-vienna-fortran",
    version=_version(),
    description=(
        "Reproduction of 'Dynamic Data Distributions in Vienna Fortran' "
        "(SC'93): distribution model, Vienna Fortran Engine, automatic "
        "distribution planner, SPMD backends, discrete-event execution "
        "simulator"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        "dev": [
            "pytest",
            "hypothesis",
            "pytest-benchmark",
            "pytest-timeout",
        ],
        # the stdlib asyncio server (python -m repro serve) needs none
        # of this; the extra is only the optional FastAPI front end
        # (repro.serve.fastapi_app)
        "serve": [
            "fastapi",
            "uvicorn",
        ],
    },
)
