"""Legacy setup shim.

The evaluation environment has no network and no `wheel` package, so
PEP 517 editable builds (`pip install -e .`) cannot build an editable
wheel.  This shim lets `pip install -e .` fall back to the legacy
`setup.py develop` path; all real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
