"""repro.faults — deterministic fault injection and recovery primitives.

The injection half is :mod:`repro.faults.plan`: a seedable
:class:`FaultPlan` of worker crashes, kernel stalls, transport
delays/drops, shm allocation failures, and HTTP request faults,
activated process-wide (off by default) and consulted by the backend,
transport, allocator, and serving tiers.  The recovery half lives
where the failures land — :class:`~repro.backend.multiprocess.FleetSupervisor`
restarts worker fleets, :mod:`repro.api.handles` degrades to the
serial backend, :mod:`repro.serve.service` sheds load through the
:class:`CircuitBreaker` defined here.
"""

from .breaker import CircuitBreaker
from .plan import (
    FAULT_PLAN_SCHEMA,
    FaultPlan,
    KernelStall,
    RequestFault,
    ShmAllocFailure,
    TransportDelay,
    TransportDrop,
    WorkerCrash,
    activate,
    active_plan,
    deactivate,
    injected,
)

__all__ = [
    "FAULT_PLAN_SCHEMA",
    "FaultPlan",
    "WorkerCrash",
    "KernelStall",
    "TransportDelay",
    "TransportDrop",
    "ShmAllocFailure",
    "RequestFault",
    "CircuitBreaker",
    "activate",
    "deactivate",
    "active_plan",
    "injected",
]
