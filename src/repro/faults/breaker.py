"""A per-route circuit breaker (closed → open → half-open → closed).

Classic three-state breaker with an injectable clock so tests never
sleep:

- **closed** — requests flow; consecutive failures are counted, and
  reaching ``failure_threshold`` trips the breaker open.
- **open** — requests are shed immediately (the caller answers 503
  with ``Retry-After``); after ``cooldown_seconds`` the next
  :meth:`allow` call becomes the single half-open probe.
- **half-open** — exactly one probe is in flight; its success closes
  the breaker, its failure re-opens it (restarting the cooldown).

Thread-safe: the serving tier calls :meth:`allow` /
:meth:`record_success` / :meth:`record_failure` from executor worker
threads.  State transitions invoke ``on_transition(old, new)`` under
the lock's shadow (after release) so observers can emit metrics and
flight-recorder notes without deadlock risk.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 5.0,
        *,
        clock=time.monotonic,
        on_transition=None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0  # lifetime closed->open transitions

    # -- internal ----------------------------------------------------------
    def _transition(self, new_state: str) -> tuple[str, str] | None:
        """Move to ``new_state``; returns (old, new) if it changed.
        Caller must hold the lock; fire the callback *after* release."""
        old = self._state
        if old == new_state:
            return None
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
            self._probing = False
            self.trips += 1
        elif new_state == CLOSED:
            self._failures = 0
            self._opened_at = None
            self._probing = False
        elif new_state == HALF_OPEN:
            self._probing = False
        return (old, new_state)

    def _notify(self, change: tuple[str, str] | None) -> None:
        if change is not None and self._on_transition is not None:
            self._on_transition(*change)

    # -- the protocol ------------------------------------------------------
    def allow(self) -> bool:
        """May a request proceed right now?

        In the open state this flips to half-open once the cooldown has
        elapsed and admits exactly one probe; everyone else is shed
        until the probe reports back.
        """
        change = None
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown_seconds:
                    change = self._transition(HALF_OPEN)
                    self._probing = True
                    admitted = True
                else:
                    admitted = False
            else:  # HALF_OPEN: one probe at a time
                if self._probing:
                    admitted = False
                else:
                    self._probing = True
                    admitted = True
        self._notify(change)
        return admitted

    def record_success(self) -> None:
        change = None
        with self._lock:
            if self._state == HALF_OPEN:
                change = self._transition(CLOSED)
            else:
                self._failures = 0
        self._notify(change)

    def record_failure(self) -> None:
        change = None
        with self._lock:
            if self._state == HALF_OPEN:
                change = self._transition(OPEN)
            elif self._state == CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    change = self._transition(OPEN)
            else:  # already open (e.g. a straggler from before the trip)
                pass
        self._notify(change)

    # -- introspection -----------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (0 when not
        shedding)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(
                0.0,
                self.cooldown_seconds - (self._clock() - self._opened_at),
            )

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "failures": self._failures,
                "trips": self.trips,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
            }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CircuitBreaker(state={self._state!r}, "
                f"failures={self._failures}, trips={self.trips})")
