"""Deterministic, seedable fault injection — the registry.

The paper's machines (iPSC/860, Paragon) were hundreds of nodes of
real hardware, and real hardware fails: nodes die mid-collective,
links stall, allocations fail.  This module is the *controlled*
version of those failures: a :class:`FaultPlan` is an immutable,
picklable, JSON-serializable list of fault specs that the backend,
transport, shared-memory allocator, and serving tiers consult at
well-defined points — **off by default**, activated explicitly via
:func:`activate` / :func:`injected`.

Fault vocabulary
----------------

=====================  ====================================================
spec                   effect
=====================  ====================================================
:class:`WorkerCrash`   worker ``rank`` hard-exits (``os._exit``) when the
                       master's command sequence number reaches ``at_op``
:class:`KernelStall`   worker ``rank`` sleeps ``seconds`` before executing
                       op ``at_op`` (a slow/hung node)
:class:`TransportDelay` messages ``first``..``last`` on link
                       ``(src, dst)`` are delayed ``seconds`` each
:class:`TransportDrop` the ``at_message``-th message on link ``(src,
                       dst)`` vanishes in flight
:class:`ShmAllocFailure` the ``at_alloc``-th shared-memory allocation
                       raises ``MemoryError``
:class:`RequestFault`  the ``at_request``-th HTTP request on ``route``
                       is delayed, answered 500, or dropped
=====================  ====================================================

Op numbers are the master's command sequence numbers
(:class:`~repro.backend.multiprocess.MultiprocessBackend` assigns them
monotonically, never reusing one across fleet restarts), so a fault
keyed on ``at_op`` fires **at most once** per backend instance — a
replayed op gets a fresh sequence number and runs clean.  That is what
makes recovery testable: inject, detect, restart, replay, succeed.

:meth:`FaultPlan.chaos` derives a whole plan deterministically from a
seed — the chaos load test's input (``python -m repro serve
--loadtest --chaos``).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "WorkerCrash",
    "KernelStall",
    "TransportDelay",
    "TransportDrop",
    "ShmAllocFailure",
    "RequestFault",
    "FaultPlan",
    "activate",
    "deactivate",
    "active_plan",
    "injected",
]


@dataclass(frozen=True)
class WorkerCrash:
    """Worker ``rank`` hard-exits when executing op ``at_op``."""

    rank: int
    at_op: int
    exit_code: int = 3


@dataclass(frozen=True)
class KernelStall:
    """Worker ``rank`` sleeps ``seconds`` before executing op ``at_op``."""

    rank: int
    at_op: int
    seconds: float


@dataclass(frozen=True)
class TransportDelay:
    """Messages ``first``..``last`` (1-based, inclusive; ``last=None``
    = unbounded) on link ``(src, dst)`` are each delayed ``seconds``."""

    src: int
    dst: int
    seconds: float
    first: int = 1
    last: int | None = None

    def matches(self, nth: int) -> bool:
        return nth >= self.first and (self.last is None or nth <= self.last)


@dataclass(frozen=True)
class TransportDrop:
    """The ``at_message``-th message (1-based) on link ``(src, dst)``
    is silently dropped — the receiver times out waiting for it."""

    src: int
    dst: int
    at_message: int


@dataclass(frozen=True)
class ShmAllocFailure:
    """The ``at_alloc``-th shared-memory block allocation (1-based,
    counted per allocator) raises ``MemoryError``."""

    at_alloc: int


@dataclass(frozen=True)
class RequestFault:
    """The ``at_request``-th request (1-based, counted per route) on
    ``route`` is faulted: ``kind`` is ``"delay"`` (sleep ``seconds``
    before dispatch), ``"error"`` (immediate 500 with an incident ID),
    or ``"drop"`` (connection closed without a response)."""

    route: str
    at_request: int
    kind: str = "delay"
    seconds: float = 0.0


#: JSON type tags <-> fault classes (the serialization registry)
_FAULT_TYPES = {
    "worker_crash": WorkerCrash,
    "kernel_stall": KernelStall,
    "transport_delay": TransportDelay,
    "transport_drop": TransportDrop,
    "shm_alloc_failure": ShmAllocFailure,
    "request_fault": RequestFault,
}
_TYPE_TAGS = {cls: tag for tag, cls in _FAULT_TYPES.items()}

FAULT_PLAN_SCHEMA = "repro-fault-plan/1"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of fault specs plus the seed that derived it.

    Plans are pure data: picklable (they cross the fork/spawn boundary
    into worker processes), JSON round-trippable (they land in
    ``BENCH_CHAOS.json``), and stateless — *where* in a message stream
    a link fault applies is tracked by the component applying it.
    """

    faults: tuple = field(default_factory=tuple)
    seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if type(f) not in _TYPE_TAGS:
                raise TypeError(f"unknown fault spec {f!r}")

    # -- queries (one per injection site) ---------------------------------
    def crash_for(self, rank: int, op: int) -> WorkerCrash | None:
        for f in self.faults:
            if isinstance(f, WorkerCrash) and f.rank == rank and f.at_op == op:
                return f
        return None

    def stall_for(self, rank: int, op: int) -> KernelStall | None:
        for f in self.faults:
            if isinstance(f, KernelStall) and f.rank == rank and f.at_op == op:
                return f
        return None

    def link_delay(self, src: int, dst: int, nth: int) -> float:
        """Total injected delay (seconds) for the ``nth`` message
        (1-based) on link ``(src, dst)``."""
        return sum(
            f.seconds
            for f in self.faults
            if isinstance(f, TransportDelay)
            and f.src == src and f.dst == dst and f.matches(nth)
        )

    def drops_message(self, src: int, dst: int, nth: int) -> bool:
        return any(
            isinstance(f, TransportDrop)
            and f.src == src and f.dst == dst and f.at_message == nth
            for f in self.faults
        )

    def shm_failure(self, nth_alloc: int) -> ShmAllocFailure | None:
        for f in self.faults:
            if isinstance(f, ShmAllocFailure) and f.at_alloc == nth_alloc:
                return f
        return None

    def request_fault(self, route: str, nth: int) -> RequestFault | None:
        for f in self.faults:
            if isinstance(f, RequestFault) and f.route == route \
                    and f.at_request == nth:
                return f
        return None

    def of_type(self, cls: type) -> tuple:
        return tuple(f for f in self.faults if isinstance(f, cls))

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "faults": [
                {"type": _TYPE_TAGS[type(f)], **asdict(f)}
                for f in self.faults
            ],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        faults = []
        for spec in doc.get("faults", ()):
            spec = dict(spec)
            tag = spec.pop("type")
            try:
                fault_cls = _FAULT_TYPES[tag]
            except KeyError:
                raise ValueError(
                    f"unknown fault type {tag!r} "
                    f"(known: {sorted(_FAULT_TYPES)})"
                ) from None
            faults.append(fault_cls(**spec))
        return cls(faults=tuple(faults), seed=doc.get("seed"))

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for f in self.faults:
            counts[_TYPE_TAGS[type(f)]] = counts.get(_TYPE_TAGS[type(f)], 0) + 1
        inner = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"FaultPlan(seed={self.seed}, {inner or 'empty'})"

    # -- deterministic generation -----------------------------------------
    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        nprocs: int = 4,
        routes: tuple[str, ...] = ("/plan", "/run", "/trace"),
        worker_crashes: int = 1,
        transport_delays: int = 2,
        request_delays: int = 2,
        request_errors: int = 1,
        max_delay_ms: float = 10.0,
    ) -> "FaultPlan":
        """A whole chaos plan derived deterministically from ``seed``.

        Worker crashes land at op numbers 3-8 (past the attach health
        check, inside any real workload's op stream); link delays are
        small enough to perturb scheduling without blowing timeouts;
        request faults hit early-but-not-first request indices so both
        clean and faulted requests occur on every route.
        """
        rng = random.Random(int(seed))
        faults: list = []
        for _ in range(worker_crashes):
            faults.append(
                WorkerCrash(rank=rng.randrange(nprocs),
                            at_op=rng.randint(3, 8))
            )
        for _ in range(transport_delays):
            src = rng.randrange(nprocs)
            dst = (src + rng.randint(1, max(1, nprocs - 1))) % nprocs
            faults.append(
                TransportDelay(
                    src=src, dst=dst,
                    seconds=rng.uniform(0.0005, max_delay_ms / 1e3),
                    first=1, last=rng.randint(4, 16),
                )
            )
        for route in routes:
            for _ in range(request_delays):
                faults.append(
                    RequestFault(
                        route=route, at_request=rng.randint(2, 12),
                        kind="delay",
                        seconds=rng.uniform(0.002, max_delay_ms / 1e3),
                    )
                )
            for _ in range(request_errors):
                faults.append(
                    RequestFault(route=route, at_request=rng.randint(3, 10),
                                 kind="error")
                )
        return cls(faults=tuple(faults), seed=int(seed))


# -- activation (process-wide, off by default) ----------------------------

_lock = threading.Lock()
_active: FaultPlan | None = None


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active fault plan.

    Injection sites (worker loop, transport, shm allocator, HTTP front
    end) consult :func:`active_plan` — with nothing activated, every
    check is a single ``is None`` branch.
    """
    global _active
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected a FaultPlan, got {type(plan).__name__}")
    with _lock:
        _active = plan
    return plan


def deactivate() -> None:
    """Remove the active fault plan (idempotent)."""
    global _active
    with _lock:
        _active = None


def active_plan() -> FaultPlan | None:
    """The process-wide active plan, or ``None`` (the default)."""
    return _active


@contextmanager
def injected(plan: FaultPlan):
    """``with injected(plan): ...`` — activate for a scope, always
    deactivate on exit (test- and chaos-harness-friendly)."""
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()
