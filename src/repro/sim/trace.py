"""Timeline export: ASCII Gantt charts and JSON traces.

Two renderings of a :class:`~repro.sim.clock.Timeline`:

- :func:`gantt` — a terminal Gantt chart, one row per processor,
  sampling interval kinds across the makespan (``#`` compute, ``~``
  communication/post, ``:`` wait, ``.`` idle).  The visual difference
  between the blocking and split-phase timelines of the same trace
  *is* the overlap story of bench E14;
- :func:`to_json` / :func:`dump_json` — the full timeline (metrics,
  per-processor intervals, barriers, optional critical path) as plain
  JSON for external tooling;
- :func:`to_chrome_trace` — the same intervals in the Chrome tracing
  ``traceEvents`` format (load it in ``chrome://tracing`` or Perfetto:
  one track per simulated processor, microsecond timestamps).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from typing import IO, TYPE_CHECKING

from .clock import BUSY_KINDS, Timeline

if TYPE_CHECKING:
    from .critical_path import CriticalPath

__all__ = [
    "gantt",
    "to_json",
    "dump_json",
    "to_chrome_trace",
    "windowed_imbalance",
]

#: Gantt glyph per interval kind ('.' is idle / no interval)
_GLYPHS = {"compute": "#", "comm": "~", "post": "~", "wait": ":"}
GANTT_LEGEND = "#=compute  ~=comm  :=wait  .=idle"


def gantt(timeline: Timeline, width: int = 72) -> str:
    """Render the timeline as an ASCII Gantt chart.

    Each row is one processor; each column samples the interval active
    at that column's midpoint time.  Wider ``width`` resolves shorter
    intervals.
    """
    if width < 8:
        raise ValueError("gantt width must be >= 8")
    span = timeline.makespan
    lines = [
        f"t = 0 .. {span * 1e3:.3f} ms   [{GANTT_LEGEND}]"
    ]
    for p in timeline.procs:
        if span == 0.0:
            lines.append(f"P{p.rank:<3d} " + "." * width)
            continue
        starts = [iv.start for iv in p.intervals]
        row = []
        for col in range(width):
            t = (col + 0.5) * span / width
            k = bisect_right(starts, t) - 1
            ch = "."
            if k >= 0 and p.intervals[k].end > t:
                ch = _GLYPHS.get(p.intervals[k].kind, "?")
            row.append(ch)
        lines.append(f"P{p.rank:<3d} " + "".join(row))
    return "\n".join(lines)


def windowed_imbalance(
    timeline: Timeline,
    windows: int = 8,
    kinds: tuple[str, ...] = BUSY_KINDS,
) -> list[dict]:
    """Per-window busy vectors and load imbalance over equal time bins.

    The makespan is split into ``windows`` equal bins; each bin
    reports, per processor, the busy seconds overlapping it, plus the
    ``max/mean`` imbalance of that vector (1.0 when the bin is empty,
    matching :meth:`Timeline.imbalance`'s zero-load convention).  This
    is the drift signal the adaptive controller's
    :class:`~repro.adapt.LoadMonitor` watches — exposed here so
    ``python -m repro trace --json`` shows load drift without the
    adapt subsystem.
    """
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    span = timeline.makespan
    out: list[dict] = []
    width = span / windows
    for w in range(windows):
        lo, hi = w * width, (w + 1) * width
        busy = []
        for p in timeline.procs:
            total = 0.0
            for iv in p.intervals:
                if iv.kind not in kinds:
                    continue
                overlap = min(iv.end, hi) - max(iv.start, lo)
                if overlap > 0.0:
                    total += overlap
            busy.append(total)
        mean = sum(busy) / len(busy) if busy else 0.0
        imb = max(busy) / mean if mean > 0.0 else 1.0
        out.append(
            {"window": w, "start": lo, "end": hi, "busy": busy,
             "imbalance": imb}
        )
    return out


def to_json(
    timeline: Timeline,
    critical: "CriticalPath | None" = None,
    intervals: bool = True,
) -> dict:
    """The timeline as a JSON-serializable dict.

    ``intervals=False`` keeps only the metrics (compact form for
    benches that just compare makespans).
    """
    out: dict = {
        "metrics": timeline.metrics(),
        "barriers": timeline.barriers,
        "windowed_imbalance": windowed_imbalance(timeline),
    }
    if intervals:
        out["processors"] = [
            {
                "rank": p.rank,
                "clock": p.time,
                "busy": p.busy(),
                "intervals": [iv.to_dict() for iv in p.intervals],
            }
            for p in timeline.procs
        ]
    if critical is not None:
        out["critical_path"] = critical.to_dict(steps=intervals)
    return out


def dump_json(
    timeline: Timeline,
    file: str | IO[str],
    critical: "CriticalPath | None" = None,
    intervals: bool = True,
) -> None:
    """Write :func:`to_json` output to a path or open text file."""
    doc = to_json(timeline, critical=critical, intervals=intervals)
    if isinstance(file, str):
        with open(file, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    else:
        json.dump(doc, file, indent=2)


def to_chrome_trace(timeline: Timeline) -> dict:
    """The timeline in Chrome tracing ``traceEvents`` form.

    Timestamps are microseconds; each simulated processor is one
    thread of process 0, so Perfetto renders the familiar one-track-
    per-processor view.
    """
    events = []
    for p in timeline.procs:
        for iv in p.intervals:
            events.append(
                {
                    "name": iv.tag or iv.kind,
                    "cat": iv.kind,
                    "ph": "X",
                    "pid": 0,
                    "tid": p.rank,
                    "ts": iv.start * 1e6,
                    "dur": iv.duration * 1e6,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": timeline.metrics(),
    }
