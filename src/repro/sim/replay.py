"""Array-backed trace replay — the simulator's vectorized hot path.

:func:`repro.sim.simulate.simulate` walks the event list one
:class:`~repro.sim.events.Event` at a time because it builds the full
per-processor *interval* history (Gantt charts, critical paths).  The
planner's ``cost_mode="simulated"`` sits inside the schedule search's
inner loop and only needs final clocks and makespans — so this module
replays :class:`~repro.sim.events.EventArrays` with numpy instead:

- :func:`replay_blocking` — blocking semantics over an arbitrary
  trace.  The trace is cut into *runs* (a kernel burst, one exchange
  phase, one sequential send, a barrier) found vectorized; each run is
  applied to the clock vector with ``np.add.at`` in event order, which
  performs the **same float additions in the same order** as the
  event loop (and as :class:`~repro.machine.network.Network` itself),
  so the resulting clocks are bitwise identical — property-tested;
- :func:`replay_split_exchange` — split-phase semantics specialized to
  the single-exchange-phase traces the planner prices (a DISTRIBUTE
  all-to-all followed by one relaxed barrier, every directed link
  carrying at most one message).  Post clocks are repeated ``alpha``
  additions, reproduced exactly by ``np.cumsum`` over a constant
  vector; transfer completions and the final drain are pure
  elementwise max/add — also bitwise identical to the event loop.

The event loop in :mod:`repro.sim.simulate` remains the semantic
reference (and the only implementation of general split-phase replay
with interval histories); both fast paths are pinned to it by the
property tests in ``tests/properties/test_vectorized_props.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..machine.cost_model import CostModel
from .events import EventArrays, EventKind, KIND_CODES

__all__ = ["BlockingReplay", "replay_blocking", "replay_split_exchange"]

_KERNEL = KIND_CODES[EventKind.KERNEL]
_SEND = KIND_CODES[EventKind.SEND]
_RECV = KIND_CODES[EventKind.RECV]
_BARRIER = KIND_CODES[EventKind.BARRIER]


@dataclass
class BlockingReplay:
    """Clocks-only result of a vectorized blocking replay."""

    nprocs: int
    clocks: list[float]
    barriers: list[float] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return max(self.clocks)


def _vector_costs(
    cost_model: CostModel, nbytes: np.ndarray, flops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-event message/compute costs, bitwise equal to the scalar
    :meth:`~repro.machine.cost_model.CostModel.message_time` /
    ``compute_time`` calls (IEEE-754 elementwise arithmetic).  Falls
    back to per-event scalar calls if a cost model subclass overrides
    the closed forms.
    """
    if (
        type(cost_model).message_time is CostModel.message_time
        and type(cost_model).compute_time is CostModel.compute_time
    ):
        msg = cost_model.alpha + cost_model.beta * nbytes
        comp = flops / cost_model.flop_rate
        return msg, comp
    msg = np.array([cost_model.message_time(int(b)) for b in nbytes])
    comp = np.array([cost_model.compute_time(float(f)) for f in flops])
    return msg, comp


def replay_blocking(
    events: EventArrays, cost_model: CostModel, nprocs: int
) -> BlockingReplay:
    """Blocking replay of a trace: final clocks, vectorized.

    Bitwise identical to ``simulate(log, cost_model, nprocs,
    overlap=False).clocks`` — and therefore to the machine network's
    aggregate accounting — for any recorded trace.
    """
    kind = events.kind
    n = len(kind)
    clocks = np.zeros(nprocs, dtype=np.float64)
    barriers: list[float] = []
    if n == 0:
        return BlockingReplay(nprocs, clocks.tolist(), barriers)

    msg_cost, comp_cost = _vector_costs(cost_model, events.nbytes, events.flops)

    # label each event with a run id: kernels coalesce, the SEND/RECV
    # events of one exchange phase coalesce, everything else (barrier,
    # sequential send, marker, stray recv) stands alone
    label = -10 - np.arange(n, dtype=np.int64)  # unique => own run
    kernel = kind == _KERNEL
    label[kernel] = -1
    in_phase = ((kind == _SEND) | (kind == _RECV)) & (events.phase >= 0)
    label[in_phase] = events.phase[in_phase]
    starts = np.flatnonzero(np.r_[True, label[1:] != label[:-1]])
    ends = np.r_[starts[1:], n]

    rank, peer = events.rank, events.peer
    for a, b in zip(starts, ends):
        k = kind[a]
        if k == _KERNEL:
            np.add.at(clocks, rank[a:b], comp_cost[a:b])
        elif k in (_SEND, _RECV) and label[a] >= 0:
            # one exchange phase: each endpoint busy for the sum of its
            # own message costs, accumulated in message order (the
            # np.add.at element order reproduces the dict accumulation
            # of Network.exchange float for float)
            sel = np.flatnonzero(kind[a:b] == _SEND) + a
            m = len(sel)
            if m:
                endpoints = np.empty(2 * m, dtype=np.int64)
                endpoints[0::2] = rank[sel]
                endpoints[1::2] = peer[sel]
                busy = np.zeros(nprocs, dtype=np.float64)
                np.add.at(busy, endpoints, np.repeat(msg_cost[sel], 2))
                clocks += busy  # x + 0.0 == x for the non-participants
        elif k == _SEND:
            # sequential blocking send: receive completes no earlier
            # than the send (the paired RECV is a separate no-op run)
            s, d = rank[a], peer[a]
            cost = msg_cost[a]
            clocks[s] += cost
            clocks[d] = max(clocks[d] + cost, clocks[s])
        elif k == _BARRIER:
            t = float(clocks.max())
            clocks[:] = t
            barriers.append(t)
        # markers and stray RECVs advance nothing

    return BlockingReplay(nprocs, clocks.tolist(), barriers)


def replay_split_exchange(
    src: np.ndarray,
    dst: np.ndarray,
    nbytes: np.ndarray,
    cost_model: CostModel,
    nprocs: int,
) -> float:
    """Split-phase makespan of one exchange phase, vectorized.

    Models exactly what ``simulate(log, cost_model, nprocs,
    overlap=True)`` does to a trace of one concurrent exchange phase
    closed by one barrier: the barrier is communication-only and hence
    relaxed, each endpoint pays ``alpha`` per posted message, the
    ``beta * nbytes`` transfers proceed in the background, and the
    final drain waits for each rank's last completion.  Requires every
    directed ``(src, dst)`` link to appear at most once (true of any
    transfer-matrix trace); raises ``ValueError`` otherwise — callers
    fall back to the event loop.

    Bitwise identical to the event-loop makespan: the post clocks are
    the same repeated ``alpha`` additions (``np.cumsum`` over a
    constant vector accumulates sequentially), and ready/completion
    are the same max/add operations.
    """
    m = len(src)
    if m == 0:
        return 0.0
    if m != len(dst) or m != len(nbytes):
        raise ValueError("src/dst/nbytes must be parallel arrays")
    links = src * np.int64(nprocs) + dst
    if len(np.unique(links)) != m:
        raise ValueError("duplicate directed links: in-order delivery "
                         "chains need the event-loop replay")

    alpha, beta = cost_model.alpha, cost_model.beta
    # per-rank running occupy counts after each message (both endpoints
    # of message i occupy before its transfer is scheduled)
    onehot = np.zeros((nprocs, m), dtype=np.int64)
    onehot[src, np.arange(m)] += 1
    onehot[dst, np.arange(m)] += 1
    counts = np.cumsum(onehot, axis=1)
    total = counts[:, -1] if m else np.zeros(nprocs, dtype=np.int64)
    # clock after k alpha-posts == the k-th partial sum of repeated
    # alpha additions (cumsum accumulates in sequence => bitwise equal)
    max_k = int(total.max(initial=0))
    alpha_seq = np.concatenate(
        ([0.0], np.cumsum(np.full(max_k, alpha, dtype=np.float64)))
    )
    pos = np.arange(m)
    ready = np.maximum(alpha_seq[counts[src, pos]], alpha_seq[counts[dst, pos]])
    completion = ready + beta * nbytes
    # drain: each rank waits for its last in-flight completion
    comp_max = np.zeros(nprocs, dtype=np.float64)
    np.maximum.at(comp_max, src, completion)
    np.maximum.at(comp_max, dst, completion)
    final = np.maximum(alpha_seq[total], comp_max)
    return float(final.max())
