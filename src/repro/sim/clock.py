"""Per-processor clocks, busy/idle intervals, and the Timeline result.

The aggregate cost accounting of :mod:`repro.machine.network` keeps
one scalar clock per processor; the simulator additionally keeps the
*history* — a list of :class:`Interval` records per processor saying
when the processor was computing, communicating, posting a split-phase
message, or idling — so load imbalance, idle time and overlap become
first-class, reportable quantities instead of being folded into one
number.

Every busy interval optionally carries a causal predecessor link
(``pred``, a ``(rank, index)`` pair): the interval whose completion
enabled this one to start.  :mod:`repro.sim.critical_path` walks these
links backward from the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "ProcClock", "Timeline", "BUSY_KINDS"]

#: interval kinds that count as *busy* (occupying the processor);
#: ``"wait"`` intervals are idle time with a known cause.
BUSY_KINDS = ("compute", "comm", "post")


@dataclass
class Interval:
    """One contiguous activity of a single processor.

    ``kind`` is ``"compute"`` (kernel), ``"comm"`` (blocking message
    occupancy), ``"post"`` (split-phase message post overhead) or
    ``"wait"`` (idle, blocked on ``pred``).
    """

    start: float
    end: float
    kind: str
    tag: str = ""
    pred: tuple[int, int] | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "tag": self.tag,
            "pred": list(self.pred) if self.pred is not None else None,
        }


class ProcClock:
    """One processor's simulated clock plus its interval history.

    The clock arithmetic deliberately mirrors
    :class:`~repro.machine.network.Network` operation by operation —
    ``occupy`` is ``clocks[r] += cost``, ``advance_to`` is the
    ``max()`` assignment — so a blocking replay reproduces the
    network's floats bit for bit.
    """

    def __init__(self, rank: int):
        self.rank = rank
        self.time = 0.0
        self.intervals: list[Interval] = []

    # -- clock mutation --------------------------------------------------
    def occupy(
        self,
        duration: float,
        kind: str,
        tag: str = "",
        pred: tuple[int, int] | None = None,
    ) -> tuple[int, int]:
        """Busy the processor for ``duration`` starting now; returns
        the new interval's ``(rank, index)`` handle."""
        start = self.time
        self.time += duration
        self.intervals.append(Interval(start, self.time, kind, tag, pred))
        return (self.rank, len(self.intervals) - 1)

    def advance_to(
        self,
        t: float,
        tag: str = "",
        pred: tuple[int, int] | None = None,
    ) -> tuple[int, int] | None:
        """Idle until ``t`` (no-op if already past); records a
        ``"wait"`` interval for a positive gap."""
        if t > self.time:
            self.intervals.append(Interval(self.time, t, "wait", tag, pred))
            self.time = t
            return (self.rank, len(self.intervals) - 1)
        return None

    def occupy_until(
        self,
        end: float,
        duration: float,
        kind: str,
        tag: str = "",
        pred: tuple[int, int] | None = None,
    ) -> tuple[int, int]:
        """Busy interval ``[end - duration, end]`` with the clock set
        to ``end`` — the receiving endpoint of a blocking send, whose
        completion is coupled to the sender (``end`` may exceed the
        local clock plus ``duration``)."""
        if end - duration > self.time:
            # the gap before the transfer engaged this endpoint
            self.intervals.append(
                Interval(self.time, end - duration, "wait", tag, pred)
            )
        self.intervals.append(Interval(end - duration, end, kind, tag, pred))
        self.time = end
        return (self.rank, len(self.intervals) - 1)

    # -- inspection ------------------------------------------------------
    @property
    def last(self) -> tuple[int, int] | None:
        """Handle of the most recent interval (None if empty)."""
        if not self.intervals:
            return None
        return (self.rank, len(self.intervals) - 1)

    def busy(self, kinds: tuple[str, ...] = BUSY_KINDS) -> float:
        return sum(iv.duration for iv in self.intervals if iv.kind in kinds)

    def busy_by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for iv in self.intervals:
            out[iv.kind] = out.get(iv.kind, 0.0) + iv.duration
        return out


@dataclass
class Timeline:
    """The simulator's result: per-processor histories plus metrics.

    ``barriers`` lists the synchronization times of every *executed*
    barrier; ``relaxed`` counts the barriers the split-phase transform
    removed (always 0 in blocking mode).
    """

    nprocs: int
    cost_model: str
    overlap: bool
    procs: list[ProcClock]
    barriers: list[float] = field(default_factory=list)
    relaxed: int = 0

    # -- headline quantities ---------------------------------------------
    @property
    def clocks(self) -> list[float]:
        return [p.time for p in self.procs]

    @property
    def makespan(self) -> float:
        """Max-clock finish time — the quantity the aggregate cost
        accounting calls ``machine.time``."""
        return max(p.time for p in self.procs)

    def busy(self, rank: int) -> float:
        return self.procs[rank].busy()

    def idle(self, rank: int) -> float:
        return self.makespan - self.procs[rank].busy()

    @property
    def total_busy(self) -> float:
        return sum(p.busy() for p in self.procs)

    def imbalance(self) -> float:
        """Max over mean per-processor busy time (1.0 = perfect)."""
        per = [p.busy() for p in self.procs]
        mean = sum(per) / len(per)
        if mean == 0.0:
            return 1.0
        return max(per) / mean

    def efficiency(self) -> float:
        """Fraction of processor-seconds spent busy (1.0 = no idle)."""
        span = self.makespan
        if span == 0.0:
            return 1.0
        return self.total_busy / (span * self.nprocs)

    def metrics(self) -> dict:
        """Flat metric record for reports, benches and JSON export."""
        by_kind: dict[str, float] = {}
        for p in self.procs:
            for k, v in p.busy_by_kind().items():
                by_kind[k] = by_kind.get(k, 0.0) + v
        return {
            "nprocs": self.nprocs,
            "cost_model": self.cost_model,
            "overlap": self.overlap,
            "makespan": self.makespan,
            "total_busy": self.total_busy,
            "compute_time": by_kind.get("compute", 0.0),
            "comm_time": by_kind.get("comm", 0.0) + by_kind.get("post", 0.0),
            "wait_time": by_kind.get("wait", 0.0),
            "idle_time": self.makespan * self.nprocs - self.total_busy,
            "imbalance": self.imbalance(),
            "efficiency": self.efficiency(),
            "barriers": len(self.barriers),
            "relaxed_barriers": self.relaxed,
        }

    def summary(self) -> str:
        """One-paragraph timeline summary."""
        m = self.metrics()
        mode = "split-phase" if self.overlap else "blocking"
        return (
            f"{self.nprocs} processors ({self.cost_model}, {mode}): "
            f"makespan {m['makespan'] * 1e3:.3f} ms, busy "
            f"{m['total_busy'] * 1e3:.3f} ms "
            f"(compute {m['compute_time'] * 1e3:.3f}, comm "
            f"{m['comm_time'] * 1e3:.3f}), idle "
            f"{m['idle_time'] * 1e3:.3f} ms, efficiency "
            f"{m['efficiency']:.2f}, imbalance {m['imbalance']:.2f}x, "
            f"{m['barriers']} barriers"
            + (f" ({m['relaxed_barriers']} relaxed)" if self.overlap else "")
        )
