"""Discrete-event SPMD execution simulator.

The machine layer's cost accounting collapses every operation into one
scalar clock update; this subpackage keeps the *timeline*.  The
engine, kernels and backends emit typed events through a recording
seam (:func:`record` on the network, ``Engine.record_events()`` one
layer up); :func:`simulate` replays the log against the machine's cost
model with either semantics:

- **blocking** — bit-for-bit the aggregate accounting (the anchor:
  with overlap disabled, the simulated per-processor clocks equal the
  network's exactly);
- **split-phase** — nonblocking post/wait with communication hidden
  behind independent computation (the optimistic bound a
  restructuring compiler could approach; see :mod:`repro.sim.overlap`).

On top of the replay: per-processor busy/idle interval histories with
imbalance and efficiency metrics (:class:`Timeline`), causal
critical-path extraction (:func:`critical_path`), and Gantt / JSON /
Chrome-trace export (:mod:`repro.sim.trace`).  ``python -m repro
trace <app>`` drives the whole pipeline from the command line, and the
planner's ``cost_mode="simulated"`` prices schedules against these
semantics instead of the closed-form aggregates.
"""

from .clock import BUSY_KINDS, Interval, ProcClock, Timeline
from .critical_path import CriticalPath, critical_path
from .events import Event, EventArrays, EventKind, EventLog, classify_tag, record
from .overlap import overlappable_phases, relaxed_barriers
from .replay import BlockingReplay, replay_blocking, replay_split_exchange
from .simulate import simulate
from .trace import (
    dump_json,
    gantt,
    to_chrome_trace,
    to_json,
    windowed_imbalance,
)

__all__ = [
    "Event",
    "EventArrays",
    "EventKind",
    "EventLog",
    "BlockingReplay",
    "replay_blocking",
    "replay_split_exchange",
    "classify_tag",
    "record",
    "Interval",
    "ProcClock",
    "Timeline",
    "BUSY_KINDS",
    "simulate",
    "relaxed_barriers",
    "overlappable_phases",
    "CriticalPath",
    "critical_path",
    "gantt",
    "to_json",
    "dump_json",
    "to_chrome_trace",
    "windowed_imbalance",
]
