"""The split-phase (nonblocking post/wait) transformation.

The run time's communication routines are *blocking*: every exchange
phase is followed by a ``synchronize()`` before any dependent kernel
runs (see e.g. :func:`repro.runtime.communication.shift_exchange`).
Split-phase communication — post the sends/recvs, compute, wait — is
the classic compiler transformation for hiding communication latency
behind independent computation; the Vienna Fortran performance
companion tools evaluated exactly this kind of restructuring from
traces rather than by rewriting the program.

This module performs that transformation *on the event trace*:
:func:`relaxed_barriers` identifies every barrier that only closes a
communication phase (messages but no kernels since the previous
barrier).  In split-phase mode the simulator skips those barriers —
the transfers stay in flight while subsequent kernels execute, and the
wait migrates to the next *computation* barrier (or the end of the
trace).  Message posts cost the startup latency ``alpha`` on each
endpoint; the ``beta * nbytes`` transfer proceeds in the background,
serialized per directed link (in-order delivery).

The result is the *maximal legal overlap* bound: all computation
between post and wait is treated as independent of the in-flight data
(a real split-phase lowering would only overlap the interior part of a
stencil, say).  Blocking mode is exact; split-phase mode is the
optimistic envelope a restructuring compiler could approach.
"""

from __future__ import annotations

from typing import Iterable

from .events import Event, EventKind

__all__ = ["relaxed_barriers", "overlappable_phases"]


def relaxed_barriers(events: Iterable[Event]) -> frozenset[int]:
    """Barrier ordinals the split-phase transform removes.

    A barrier is *relaxed* when the segment since the previous barrier
    contains at least one message but no kernel: it exists only to
    complete the communication it follows, which is precisely the wait
    a split-phase lowering defers.  Barriers guarding computation (a
    kernel ran in the segment) are kept — they are where the deferred
    waits land.

    Returns the set of barrier ordinals (0 for the first BARRIER event
    in the trace, 1 for the second, ...).
    """
    relaxed: set[int] = set()
    ordinal = 0
    seen_msg = False
    seen_kernel = False
    for ev in events:
        if ev.kind is EventKind.BARRIER:
            if seen_msg and not seen_kernel:
                relaxed.add(ordinal)
            ordinal += 1
            seen_msg = False
            seen_kernel = False
        elif ev.kind is EventKind.KERNEL:
            seen_kernel = True
        elif ev.kind is EventKind.SEND:
            seen_msg = True
    return frozenset(relaxed)


def overlappable_phases(events: Iterable[Event]) -> dict[int, bool]:
    """Which exchange phases the transform can overlap with compute.

    Returns ``{phase_id: True/False}``: a phase is overlappable when
    the barrier that closes its segment is relaxed — i.e. kernels
    follow before the next kept barrier.  Purely diagnostic (the
    benches report how much of the traffic is hideable).
    """
    relaxed = relaxed_barriers(events)
    out: dict[int, bool] = {}
    ordinal = 0
    open_phases: set[int] = set()
    for ev in events:
        if ev.kind is EventKind.BARRIER:
            for p in open_phases:
                out[p] = ordinal in relaxed
            open_phases.clear()
            ordinal += 1
        elif ev.kind is EventKind.SEND and ev.phase >= 0:
            open_phases.add(ev.phase)
    for p in open_phases:  # trailing phases never closed by a barrier
        out[p] = True
    return out
