"""Critical-path extraction from a simulated timeline.

Each interval of a :class:`~repro.sim.clock.Timeline` carries the
causal link the simulator recorded when it created it: the previous
interval on the same processor, the send whose completion a receive or
wait was blocked on, or the bottleneck processor of a barrier.
Walking those links backward from the interval that finishes at the
makespan yields the *critical path* — the chain of operations that
actually determines the finish time, and therefore the only chain
whose optimization can shorten it.

The breakdown (how much of the path is compute vs communication vs
waiting) answers the tuning question the aggregate accounting cannot:
a comm-dominated critical path says split-phase overlap or a better
distribution will pay; a compute-dominated one says the distribution
is already communication-optimal and only load balance is left.
"""

from __future__ import annotations

from dataclasses import dataclass

from .clock import Interval, Timeline

__all__ = ["CriticalPath", "critical_path"]


@dataclass
class CriticalPath:
    """The makespan-determining chain, in chronological order."""

    steps: list[tuple[int, Interval]]
    makespan: float

    def __len__(self) -> int:
        return len(self.steps)

    def breakdown(self) -> dict[str, float]:
        """Total path time per interval kind."""
        out: dict[str, float] = {}
        for _rank, iv in self.steps:
            out[iv.kind] = out.get(iv.kind, 0.0) + iv.duration
        return out

    def ranks(self) -> list[int]:
        """Processors visited along the path (chronological)."""
        return [rank for rank, _iv in self.steps]

    def summary(self) -> str:
        """One-line summary: length, rank hops, kind breakdown."""
        by_kind = self.breakdown()
        total = sum(by_kind.values()) or 1.0
        parts = ", ".join(
            f"{k} {v * 1e3:.3f} ms ({v / total:.0%})"
            for k, v in sorted(by_kind.items(), key=lambda kv: -kv[1])
        )
        hops = sum(
            1 for a, b in zip(self.ranks(), self.ranks()[1:]) if a != b
        )
        return (
            f"critical path: {len(self.steps)} intervals across "
            f"{len(set(self.ranks()))} processors ({hops} hops), "
            f"{parts}"
        )

    def to_dict(self, steps: bool = True) -> dict:
        """JSON form; ``steps=False`` keeps only the breakdown (the
        compact form mirroring a timeline export without intervals)."""
        out = {
            "makespan": self.makespan,
            "length": len(self.steps),
            "breakdown": self.breakdown(),
        }
        if steps:
            out["steps"] = [
                {"rank": rank, **iv.to_dict()} for rank, iv in self.steps
            ]
        return out


def critical_path(timeline: Timeline) -> CriticalPath:
    """Walk causal links backward from the makespan.

    Starts at the last interval of the processor that finishes last and
    follows each interval's ``pred`` link (falling back to the previous
    interval on the same processor when no explicit cause was
    recorded), until the chain reaches time zero.
    """
    procs = timeline.procs
    start_rank = max(range(timeline.nprocs), key=lambda r: procs[r].time)
    if not procs[start_rank].intervals:
        return CriticalPath([], timeline.makespan)

    steps: list[tuple[int, Interval]] = []
    cur: tuple[int, int] | None = (
        start_rank, len(procs[start_rank].intervals) - 1
    )
    # preds always point backward in time, so the walk is bounded by
    # the total interval count; guard anyway against malformed links
    limit = sum(len(p.intervals) for p in procs) + 1
    while cur is not None and limit > 0:
        limit -= 1
        rank, idx = cur
        iv = procs[rank].intervals[idx]
        steps.append((rank, iv))
        if iv.pred is not None:
            cur = iv.pred
        elif idx > 0:
            cur = (rank, idx - 1)
        else:
            cur = None
    steps.reverse()
    return CriticalPath(steps, timeline.makespan)
