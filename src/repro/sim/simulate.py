"""The discrete-event replay engine.

:func:`simulate` replays a recorded :class:`~repro.sim.events.EventLog`
against a :class:`~repro.machine.cost_model.CostModel`, producing a
:class:`~repro.sim.clock.Timeline` — per-processor busy/idle interval
histories with causal links — under one of two communication
semantics:

- **blocking** (``overlap=False``) — the exact semantics of the
  machine's aggregate accounting: a sequential ``send`` occupies both
  endpoints for ``alpha + beta*n`` (the receive completing no earlier
  than the send), an exchange phase occupies each endpoint for the sum
  of its own message costs, and every barrier advances all clocks to
  the maximum.  Replaying a log in this mode reproduces the network's
  per-processor clocks **bit for bit** — the simulator's conformance
  anchor (property-tested);
- **split-phase** (``overlap=True``) — nonblocking post/wait: each
  endpoint pays only the startup latency ``alpha`` to post, the
  ``beta * nbytes`` transfer proceeds in the background (in-order per
  directed link), and completions are awaited at the next *kept*
  barrier (see :mod:`repro.sim.overlap` — barriers that only close a
  communication phase are relaxed away, migrating the wait past the
  independent computation that follows).

The difference between the two makespans is the communication time a
split-phase restructuring could hide — the quantity bench E14 reports.

This per-event loop is the semantic reference: it builds the full
interval/causal structure.  Callers that only need final clocks or a
makespan (the planner's simulated pricing, inside the schedule
search's inner loop) use the array-backed vectorized replay in
:mod:`repro.sim.replay`, which is property-tested bitwise against
this loop.
"""

from __future__ import annotations

from typing import Iterable

from ..machine.cost_model import CostModel
from .clock import ProcClock, Timeline
from .events import Event, EventKind
from .overlap import relaxed_barriers

__all__ = ["simulate"]


def simulate(
    events: Iterable[Event],
    cost_model: CostModel,
    nprocs: int,
    overlap: bool = False,
) -> Timeline:
    """Replay ``events`` on ``nprocs`` per-processor clocks.

    ``events`` is an :class:`~repro.sim.events.EventLog` or any
    iterable of :class:`~repro.sim.events.Event` in program order.
    """
    evs = list(events)
    relaxed = relaxed_barriers(evs) if overlap else frozenset()
    procs = [ProcClock(r) for r in range(nprocs)]
    barriers: list[float] = []
    #: per-rank in-flight completions: (completion time, cause handle)
    pending: list[list[tuple[float, tuple[int, int]]]] = [
        [] for _ in range(nprocs)
    ]
    #: in-order delivery per directed link: (src, dst) -> free-at time
    link_free: dict[tuple[int, int], float] = {}
    alpha, beta = cost_model.alpha, cost_model.beta

    def post_message(m: Event) -> None:
        """Split-phase: post overhead now, transfer in the background."""
        src, dst = procs[m.rank], procs[m.peer]
        send_h = src.occupy(alpha, "post", m.tag, pred=src.last)
        dst.occupy(alpha, "post", m.tag, pred=dst.last)
        ready = max(
            src.time, dst.time, link_free.get((m.rank, m.peer), 0.0)
        )
        completion = ready + beta * m.nbytes
        link_free[(m.rank, m.peer)] = completion
        pending[m.rank].append((completion, send_h))
        pending[m.peer].append((completion, send_h))

    def drain_pending() -> None:
        """Wait, per rank, for every in-flight completion."""
        for p in procs:
            waiting = pending[p.rank]
            if waiting:
                completion, cause = max(waiting, key=lambda c: c[0])
                p.advance_to(completion, "msg-wait", pred=cause)
                waiting.clear()

    barrier_ordinal = 0
    relaxed_count = 0
    i, n = 0, len(evs)
    while i < n:
        ev = evs[i]
        kind = ev.kind

        if kind is EventKind.KERNEL:
            cost = cost_model.compute_time(ev.flops)
            p = procs[ev.rank]
            p.occupy(cost, "compute", ev.tag, pred=p.last)
            i += 1

        elif kind in (EventKind.ALLGATHER, EventKind.REDIST):
            # collective phase marker; the SEND/RECV events that follow
            # carry the actual traffic
            i += 1

        elif kind is EventKind.SEND and ev.phase < 0:
            # sequential blocking message (recorded by Network.send)
            if overlap:
                post_message(ev)
            else:
                cost = cost_model.message_time(ev.nbytes)
                src, dst = procs[ev.rank], procs[ev.peer]
                send_h = src.occupy(cost, "comm", ev.tag, pred=src.last)
                end = max(dst.time + cost, src.time)
                dst.occupy_until(end, cost, "comm", ev.tag, pred=send_h)
            i += 2  # the paired RECV event is consumed with the SEND

        elif kind is EventKind.SEND:
            # concurrent exchange phase: gather its contiguous messages
            pid = ev.phase
            msgs: list[Event] = []
            j = i
            while (
                j < n
                and evs[j].phase == pid
                and evs[j].kind in (EventKind.SEND, EventKind.RECV)
            ):
                if evs[j].kind is EventKind.SEND:
                    msgs.append(evs[j])
                j += 1
            if overlap:
                for m in msgs:
                    post_message(m)
            else:
                # mirror Network.exchange: each endpoint is busy for
                # the sum of its own message costs, accumulated in
                # message order (bitwise-identical floats)
                busy: dict[int, float] = {}
                for m in msgs:
                    cost = cost_model.message_time(m.nbytes)
                    busy[m.rank] = busy.get(m.rank, 0.0) + cost
                    busy[m.peer] = busy.get(m.peer, 0.0) + cost
                for rank, t in busy.items():
                    p = procs[rank]
                    p.occupy(t, "comm", msgs[0].tag, pred=p.last)
            i = j

        elif kind is EventKind.RECV:
            # only reachable on a truncated/reordered log; harmless
            i += 1

        elif kind is EventKind.BARRIER:
            if overlap and barrier_ordinal in relaxed:
                barrier_ordinal += 1
                relaxed_count += 1
                i += 1
                continue
            if overlap:
                drain_pending()
            t = max(p.time for p in procs)
            bottleneck = max(range(nprocs), key=lambda r: procs[r].time)
            cause = procs[bottleneck].last
            for p in procs:
                p.advance_to(
                    t, "barrier",
                    pred=cause if p.rank != bottleneck else None,
                )
            barriers.append(t)
            barrier_ordinal += 1
            i += 1

        else:  # pragma: no cover - exhaustive over EventKind
            raise ValueError(f"cannot replay event kind {kind!r}")

    if overlap:
        drain_pending()  # transfers still in flight at the end

    return Timeline(
        nprocs=nprocs,
        cost_model=cost_model.name,
        overlap=overlap,
        procs=procs,
        barriers=barriers,
        relaxed=relaxed_count,
    )
