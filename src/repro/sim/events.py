"""Typed execution events and the recording seam.

The machine's :class:`~repro.machine.network.Network` *accounts* every
operation as scalar clock arithmetic; the discrete-event simulator
needs the operations themselves.  An :class:`EventLog` taps the
network (install it with :func:`record` or
``Engine.record_events()``): every call to ``send`` / ``exchange`` /
``compute`` / ``synchronize`` — whichever layer issued it, including
the SPMD backends' master-side accounting — appends typed events in
program order:

- :attr:`EventKind.KERNEL` — local computation on one processor;
- :attr:`EventKind.SEND` / :attr:`EventKind.RECV` — the two endpoints
  of one message (paired by :attr:`Event.msg`; concurrent
  exchange-phase messages share an :attr:`Event.phase` id, sequential
  ``send`` traffic carries ``phase == -1``);
- :attr:`EventKind.BARRIER` — a global synchronize;
- :attr:`EventKind.ALLGATHER` / :attr:`EventKind.REDIST` — collective
  *phase markers* emitted ahead of an exchange phase whose message
  tags identify it as a gather/scatter/reduction collective or a
  DISTRIBUTE transfer; the per-message SEND/RECV events follow.

The log is the single input of :func:`repro.sim.simulate.simulate`;
replaying it in blocking mode reproduces the network's clock
arithmetic bit for bit (property-tested).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from ..machine.machine import Machine

__all__ = ["EventKind", "Event", "EventLog", "record", "classify_tag"]


class EventKind(Enum):
    """The event vocabulary of the execution simulator."""

    KERNEL = "kernel"
    SEND = "send"
    RECV = "recv"
    BARRIER = "barrier"
    ALLGATHER = "allgather"
    REDIST = "redistribute-transfer"


#: tag prefixes marking an exchange phase as a DISTRIBUTE transfer
_REDIST_PREFIXES = ("redistribute", "assign", "pic:reassign")
#: tag prefixes marking an exchange phase as a gather-class collective
_COLLECTIVE_PREFIXES = ("gather", "scatter", "reduce", "bcast", "allgather")


def classify_tag(tag: str) -> EventKind | None:
    """Collective classification of a message tag.

    Returns :attr:`EventKind.REDIST` for DISTRIBUTE / array-assignment
    transfers, :attr:`EventKind.ALLGATHER` for gather/scatter/reduce
    collectives, and ``None`` for plain point-to-point traffic (halo
    shifts, line-sweep pieces, single-element reads).
    """
    if tag.startswith(_REDIST_PREFIXES):
        return EventKind.REDIST
    if tag.startswith(_COLLECTIVE_PREFIXES):
        return EventKind.ALLGATHER
    return None


@dataclass(frozen=True)
class Event:
    """One typed execution event.

    ``rank`` is the processor the event occupies (the source for SEND,
    the destination for RECV, ``-1`` for global events); ``peer`` the
    other endpoint of a message; ``phase`` groups the messages of one
    concurrent exchange phase (``-1``: a sequential blocking send);
    ``msg`` pairs a SEND with its RECV.
    """

    seq: int
    kind: EventKind
    rank: int
    peer: int = -1
    nbytes: int = 0
    flops: float = 0.0
    tag: str = ""
    phase: int = -1
    msg: int = -1

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "rank": self.rank,
            "peer": self.peer,
            "nbytes": self.nbytes,
            "flops": self.flops,
            "tag": self.tag,
            "phase": self.phase,
            "msg": self.msg,
        }


class EventLog:
    """An append-only, program-ordered log of typed events.

    Instances implement the recorder protocol the network calls
    (:meth:`kernel`, :meth:`message`, :meth:`begin_phase`,
    :meth:`barrier`, :meth:`clear`); everything else is inspection.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._next_phase = 0
        self._next_msg = 0

    # -- the recorder protocol (called by Network) -----------------------
    def kernel(self, rank: int, flops: float, tag: str = "") -> None:
        """Record local computation charged to ``rank``."""
        self.events.append(
            Event(len(self.events), EventKind.KERNEL, rank, flops=flops, tag=tag)
        )

    def begin_phase(self, tag: str = "") -> int:
        """Open a concurrent exchange phase; returns its id.

        If ``tag`` classifies as a collective, a typed marker event
        (ALLGATHER or REDIST) is emitted ahead of the phase's
        SEND/RECV events.
        """
        phase = self._next_phase
        self._next_phase += 1
        kind = classify_tag(tag)
        if kind is not None:
            self.events.append(
                Event(len(self.events), kind, -1, tag=tag, phase=phase)
            )
        return phase

    def message(
        self, src: int, dst: int, nbytes: int, tag: str = "", phase: int = -1
    ) -> None:
        """Record one message: a SEND at ``src`` paired with a RECV at
        ``dst`` (shared ``msg`` id)."""
        msg = self._next_msg
        self._next_msg += 1
        self.events.append(
            Event(
                len(self.events), EventKind.SEND, src, peer=dst,
                nbytes=nbytes, tag=tag, phase=phase, msg=msg,
            )
        )
        self.events.append(
            Event(
                len(self.events), EventKind.RECV, dst, peer=src,
                nbytes=nbytes, tag=tag, phase=phase, msg=msg,
            )
        )

    def barrier(self, tag: str = "") -> None:
        """Record a global synchronize."""
        self.events.append(
            Event(len(self.events), EventKind.BARRIER, -1, tag=tag)
        )

    def clear(self) -> None:
        """Drop all events (the network calls this from ``reset()``)."""
        self.events.clear()
        self._next_phase = 0
        self._next_msg = 0

    # -- inspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def counts(self) -> dict[str, int]:
        """Event counts by kind (keys are the kind values)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind.value] = out.get(ev.kind.value, 0) + 1
        return out

    def messages(self) -> list[Event]:
        """The SEND side of every recorded message, in program order."""
        return [ev for ev in self.events if ev.kind is EventKind.SEND]

    def __repr__(self) -> str:
        return f"EventLog({len(self.events)} events, {self.counts()})"


@contextmanager
def record(machine: "Machine", log: EventLog | None = None):
    """Record every network operation of ``machine`` into an event log.

    The previous recorder (usually none) is restored on exit, so
    recording sessions nest cleanly::

        log = EventLog()
        with record(machine, log):
            run_adi(machine, 32, 32, 2, "dynamic")
        timeline = simulate(log, machine.cost_model, machine.nprocs)

    Note that a workload which calls ``machine.reset_network()``
    internally (ADI, PIC) also clears the log at that point — clocks
    and events stay consistent by construction.
    """
    if log is None:
        log = EventLog()
    network = machine.network
    previous = network.recorder
    network.recorder = log
    try:
        yield log
    finally:
        network.recorder = previous
