"""Typed execution events and the recording seam.

The machine's :class:`~repro.machine.network.Network` *accounts* every
operation as scalar clock arithmetic; the discrete-event simulator
needs the operations themselves.  An :class:`EventLog` taps the
network (install it with :func:`record` or
``Engine.record_events()``): every call to ``send`` / ``exchange`` /
``compute`` / ``synchronize`` — whichever layer issued it, including
the SPMD backends' master-side accounting — appends typed events in
program order:

- :attr:`EventKind.KERNEL` — local computation on one processor;
- :attr:`EventKind.SEND` / :attr:`EventKind.RECV` — the two endpoints
  of one message (paired by :attr:`Event.msg`; concurrent
  exchange-phase messages share an :attr:`Event.phase` id, sequential
  ``send`` traffic carries ``phase == -1``);
- :attr:`EventKind.BARRIER` — a global synchronize;
- :attr:`EventKind.ALLGATHER` / :attr:`EventKind.REDIST` — collective
  *phase markers* emitted ahead of an exchange phase whose message
  tags identify it as a gather/scatter/reduction collective or a
  DISTRIBUTE transfer; the per-message SEND/RECV events follow.

The log is the single input of :func:`repro.sim.simulate.simulate`;
replaying it in blocking mode reproduces the network's clock
arithmetic bit for bit (property-tested).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:
    from ..machine.machine import Machine

__all__ = [
    "EventKind",
    "Event",
    "EventArrays",
    "EventLog",
    "record",
    "classify_tag",
    "KIND_CODES",
]


class EventKind(Enum):
    """The event vocabulary of the execution simulator."""

    KERNEL = "kernel"
    SEND = "send"
    RECV = "recv"
    BARRIER = "barrier"
    ALLGATHER = "allgather"
    REDIST = "redistribute-transfer"


#: tag prefixes marking an exchange phase as a DISTRIBUTE transfer
_REDIST_PREFIXES = ("redistribute", "assign", "pic:reassign")
#: tag prefixes marking an exchange phase as a gather-class collective
_COLLECTIVE_PREFIXES = ("gather", "scatter", "reduce", "bcast", "allgather")


def classify_tag(tag: str) -> EventKind | None:
    """Collective classification of a message tag.

    Returns :attr:`EventKind.REDIST` for DISTRIBUTE / array-assignment
    transfers, :attr:`EventKind.ALLGATHER` for gather/scatter/reduce
    collectives, and ``None`` for plain point-to-point traffic (halo
    shifts, line-sweep pieces, single-element reads).
    """
    if tag.startswith(_REDIST_PREFIXES):
        return EventKind.REDIST
    if tag.startswith(_COLLECTIVE_PREFIXES):
        return EventKind.ALLGATHER
    return None


@dataclass(frozen=True)
class Event:
    """One typed execution event.

    ``rank`` is the processor the event occupies (the source for SEND,
    the destination for RECV, ``-1`` for global events); ``peer`` the
    other endpoint of a message; ``phase`` groups the messages of one
    concurrent exchange phase (``-1``: a sequential blocking send);
    ``msg`` pairs a SEND with its RECV.
    """

    seq: int
    kind: EventKind
    rank: int
    peer: int = -1
    nbytes: int = 0
    flops: float = 0.0
    tag: str = ""
    phase: int = -1
    msg: int = -1

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind.value,
            "rank": self.rank,
            "peer": self.peer,
            "nbytes": self.nbytes,
            "flops": self.flops,
            "tag": self.tag,
            "phase": self.phase,
            "msg": self.msg,
        }


#: integer codes of each :class:`EventKind` in structure-of-arrays form
KIND_CODES: dict[EventKind, int] = {
    EventKind.KERNEL: 0,
    EventKind.SEND: 1,
    EventKind.RECV: 2,
    EventKind.BARRIER: 3,
    EventKind.ALLGATHER: 4,
    EventKind.REDIST: 5,
}


class EventArrays:
    """Structure-of-arrays event storage for the vectorized replayer.

    One parallel numpy array per :class:`Event` field the replay
    arithmetic touches (``kind`` as the integer :data:`KIND_CODES`,
    ``rank``/``peer``/``phase`` as int64, ``nbytes`` int64, ``flops``
    float64).  Tags and message pairing are dropped — they label
    timelines but never move a clock, so the fast blocking replay of
    :func:`repro.sim.replay.replay_blocking` does not need them.

    Build from a log with :meth:`EventLog.to_arrays` (cached), or
    directly with :meth:`exchange` for synthetic single-phase traces
    (the planner's transition pricing).
    """

    __slots__ = ("kind", "rank", "peer", "nbytes", "flops", "phase")

    def __init__(
        self,
        kind: np.ndarray,
        rank: np.ndarray,
        peer: np.ndarray,
        nbytes: np.ndarray,
        flops: np.ndarray,
        phase: np.ndarray,
    ):
        self.kind = kind
        self.rank = rank
        self.peer = peer
        self.nbytes = nbytes
        self.flops = flops
        self.phase = phase

    def __len__(self) -> int:
        return len(self.kind)

    @classmethod
    def from_events(cls, events: "list[Event]") -> "EventArrays":
        """Pack a program-ordered event list into parallel arrays."""
        n = len(events)
        kind = np.empty(n, dtype=np.int8)
        rank = np.empty(n, dtype=np.int64)
        peer = np.empty(n, dtype=np.int64)
        nbytes = np.empty(n, dtype=np.int64)
        flops = np.empty(n, dtype=np.float64)
        phase = np.empty(n, dtype=np.int64)
        for i, ev in enumerate(events):
            kind[i] = KIND_CODES[ev.kind]
            rank[i] = ev.rank
            peer[i] = ev.peer
            nbytes[i] = ev.nbytes
            flops[i] = ev.flops
            phase[i] = ev.phase
        return cls(kind, rank, peer, nbytes, flops, phase)

    @classmethod
    def exchange(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        barrier: bool = True,
    ) -> "EventArrays":
        """One concurrent exchange phase (plus closing barrier) as
        arrays — the trace shape of a DISTRIBUTE all-to-all, built
        without materializing per-message :class:`Event` objects."""
        m = len(src)
        n = m + (1 if barrier else 0)
        kind = np.full(n, KIND_CODES[EventKind.SEND], dtype=np.int8)
        rank = np.empty(n, dtype=np.int64)
        peer = np.full(n, -1, dtype=np.int64)
        nb = np.zeros(n, dtype=np.int64)
        phase = np.full(n, 0, dtype=np.int64)
        rank[:m] = src
        peer[:m] = dst
        nb[:m] = nbytes
        if barrier:
            kind[m] = KIND_CODES[EventKind.BARRIER]
            rank[m] = -1
            phase[m] = -1
        return cls(kind, rank, peer, nb, np.zeros(n, dtype=np.float64), phase)


class EventLog:
    """An append-only, program-ordered log of typed events.

    Instances implement the recorder protocol the network calls
    (:meth:`kernel`, :meth:`message`, :meth:`begin_phase`,
    :meth:`barrier`, :meth:`clear`); everything else is inspection.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._next_phase = 0
        self._next_msg = 0
        self._arrays: EventArrays | None = None

    # -- the recorder protocol (called by Network) -----------------------
    def kernel(self, rank: int, flops: float, tag: str = "") -> None:
        """Record local computation charged to ``rank``."""
        self.events.append(
            Event(len(self.events), EventKind.KERNEL, rank, flops=flops, tag=tag)
        )

    def begin_phase(self, tag: str = "") -> int:
        """Open a concurrent exchange phase; returns its id.

        If ``tag`` classifies as a collective, a typed marker event
        (ALLGATHER or REDIST) is emitted ahead of the phase's
        SEND/RECV events.
        """
        phase = self._next_phase
        self._next_phase += 1
        kind = classify_tag(tag)
        if kind is not None:
            self.events.append(
                Event(len(self.events), kind, -1, tag=tag, phase=phase)
            )
        return phase

    def message(
        self, src: int, dst: int, nbytes: int, tag: str = "", phase: int = -1
    ) -> None:
        """Record one message: a SEND at ``src`` paired with a RECV at
        ``dst`` (shared ``msg`` id)."""
        msg = self._next_msg
        self._next_msg += 1
        self.events.append(
            Event(
                len(self.events), EventKind.SEND, src, peer=dst,
                nbytes=nbytes, tag=tag, phase=phase, msg=msg,
            )
        )
        self.events.append(
            Event(
                len(self.events), EventKind.RECV, dst, peer=src,
                nbytes=nbytes, tag=tag, phase=phase, msg=msg,
            )
        )

    def barrier(self, tag: str = "") -> None:
        """Record a global synchronize."""
        self.events.append(
            Event(len(self.events), EventKind.BARRIER, -1, tag=tag)
        )

    def clear(self) -> None:
        """Drop all events (the network calls this from ``reset()``)."""
        self.events.clear()
        self._next_phase = 0
        self._next_msg = 0
        self._arrays = None

    def to_arrays(self) -> EventArrays:
        """Structure-of-arrays view of the log (built once, cached).

        The log is append-only between ``clear()`` calls, so the cache
        is valid exactly when its length matches the event count.
        """
        if self._arrays is None or len(self._arrays) != len(self.events):
            self._arrays = EventArrays.from_events(self.events)
        return self._arrays

    # -- inspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def counts(self) -> dict[str, int]:
        """Event counts by kind (keys are the kind values)."""
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind.value] = out.get(ev.kind.value, 0) + 1
        return out

    def messages(self) -> list[Event]:
        """The SEND side of every recorded message, in program order."""
        return [ev for ev in self.events if ev.kind is EventKind.SEND]

    def __repr__(self) -> str:
        return f"EventLog({len(self.events)} events, {self.counts()})"


@contextmanager
def record(machine: "Machine", log: EventLog | None = None):
    """Record every network operation of ``machine`` into an event log.

    The previous recorder (usually none) is restored on exit, so
    recording sessions nest cleanly::

        log = EventLog()
        with record(machine, log):
            run_adi(machine, 32, 32, 2, "dynamic")
        timeline = simulate(log, machine.cost_model, machine.nprocs)

    Note that a workload which calls ``machine.reset_network()``
    internally (ADI, PIC) also clears the log at that point — clocks
    and events stay consistent by construction.
    """
    if log is None:
        log = EventLog()
    network = machine.network
    previous = network.recorder
    network.recorder = log
    try:
        yield log
    finally:
        network.recorder = previous
