"""Perf-regression harness for the vectorized hot paths.

Times each vectorized production path against its per-element /
per-event reference oracle on seeded, fixed-size problems and writes
``BENCH_PERF.json`` — the machine-readable perf trajectory of the
reproduction.  Four benches, one per hot path:

- ``forall`` — per-element :func:`~repro.runtime.forall.forall` vs the
  gather-batched :func:`~repro.runtime.batched.forall_batched`;
- ``halo_exchange`` — stencil steps re-deriving the slab plan every
  step vs the :class:`~repro.runtime.redistribute.PlanCache`-cached
  slice plan;
- ``redistribute_planning`` — the brute-force per-element transfer
  matrix vs the vectorized, interning-backed ``PlanCache`` path;
- ``simulated_cost_planning`` — schedule planning with the event-loop
  transition replayer vs the array-backed fast replay + trace memo.

Every bench records **op counts** (messages, bytes, remote reads,
events, plan costs) for both paths and a ``match`` flag asserting they
are identical — that flag is the CI regression gate (``--check``).
Wall-clock seconds and the speedup ratio are reported but
informational: machine-dependent numbers are never asserted in CI, so
the harness stays non-flaky.

Run ``python -m repro bench`` (add ``--smoke`` for the CI-sized run),
or import :func:`run_harness` directly.
"""

from __future__ import annotations

import json
import time
from typing import Callable

import numpy as np

__all__ = ["run_harness", "BENCHES", "PERF_SCHEMA"]


def _timed(fn: Callable[[], object]) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def bench_forall(smoke: bool = False) -> dict:
    """Per-element vs batched forall: a two-read shifted body."""
    from .core.distribution import dist_type
    from .machine import IPSC860, Machine, ProcessorArray
    from .runtime.batched import forall_batched
    from .runtime.engine import Engine
    from .runtime.forall import forall
    from .sim import EventLog, record

    n = 40 if smoke else 128
    grid = (2, 2)

    def setup():
        machine = Machine(ProcessorArray("R", grid), cost_model=IPSC860)
        engine = Engine._create(machine)
        a = engine.declare("A", (n, n), dist=dist_type("BLOCK", "BLOCK"))
        b = engine.declare("B", (n, n), dist=dist_type("BLOCK", "BLOCK"))
        rng = np.random.default_rng(11)
        b.from_global(rng.normal(size=(n, n)))
        return machine, a, b

    hi = n - 1

    def scalar_body(i, read):
        return read("B", (min(i[0] + 1, hi), i[1])) + 0.5 * read(
            "B", (i[0], min(i[1] + 1, hi))
        )

    def batched_body(cols, read):
        return read("B", (np.minimum(cols[0] + 1, hi), cols[1])) + 0.5 * read(
            "B", (cols[0], np.minimum(cols[1] + 1, hi))
        )

    m1, a1, b1 = setup()
    log1 = EventLog()
    with record(m1, log1):
        ref_s, counts1 = _timed(
            lambda: forall(a1, scalar_body, reads={"B": b1})
        )
    m2, a2, b2 = setup()
    log2 = EventLog()
    with record(m2, log2):
        vec_s, counts2 = _timed(
            lambda: forall_batched(a2, batched_body, reads={"B": b2})
        )

    def ops(machine, log, counts):
        s = machine.stats()
        return {
            "messages": s.messages,
            "bytes": s.bytes,
            "remote_reads": int(sum(counts.values())),
            "events": len(log),
        }

    ref_ops, vec_ops = ops(m1, log1, counts1), ops(m2, log2, counts2)
    match = (
        ref_ops == vec_ops
        and np.array_equal(a1.to_global(), a2.to_global())
        and m1.network.clocks == m2.network.clocks
    )
    return _result(
        "forall", {"n": n, "grid": list(grid)}, ref_s, vec_s,
        ref_ops, vec_ops, match,
    )


def bench_halo_exchange(smoke: bool = False) -> dict:
    """Stencil halo exchange: per-step plan re-derivation vs the
    PlanCache-memoized slice plan."""
    from .compiler.codegen import StencilKernel
    from .core.distribution import dist_type
    from .machine import IPSC860, Machine, ProcessorArray
    from .runtime.redistribute import PlanCache

    n = 64 if smoke else 192
    steps = 8 if smoke else 30
    grid = (4, 4)

    def five_point(pad, out, widths):
        w0, w1 = widths
        c = pad[w0:-w0 or None, w1:-w1 or None]
        out[...] = 0.25 * (
            pad[: -2 * w0 or None, w1:-w1 or None][: c.shape[0]]
            + pad[2 * w0:, w1:-w1 or None][: c.shape[0]]
            + pad[w0:-w0 or None, : -2 * w1 or None][:, : c.shape[1]]
            + pad[w0:-w0 or None, 2 * w1:][:, : c.shape[1]]
        )

    def run(cold: bool):
        machine = Machine(ProcessorArray("R", grid), cost_model=IPSC860)
        from .runtime.engine import Engine

        engine = Engine._create(machine)
        u = engine.declare("U", (n, n), dist=dist_type("BLOCK", "BLOCK"))
        rng = np.random.default_rng(13)
        u.from_global(rng.normal(size=(n, n)))
        cache = PlanCache()
        kernel = StencilKernel(u, (1, 1), five_point, plan_cache=cache)

        def body():
            for _ in range(steps):
                if cold:
                    cache.clear()  # reference: re-derive plans each step
                kernel.step()

        seconds, _ = _timed(body)
        s = machine.stats()
        return seconds, u.to_global(), {
            "messages": s.messages,
            "bytes": s.bytes,
            "steps": steps,
        }

    ref_s, ref_vals, ref_ops = run(cold=True)
    vec_s, vec_vals, vec_ops = run(cold=False)
    match = ref_ops == vec_ops and np.array_equal(ref_vals, vec_vals)
    return _result(
        "halo_exchange", {"n": n, "steps": steps, "grid": list(grid)},
        ref_s, vec_s, ref_ops, vec_ops, match,
    )


def bench_redistribute_planning(smoke: bool = False) -> dict:
    """Transfer-set planning: brute-force per-element matrix vs the
    vectorized PlanCache/interning path over recurring layout pairs."""
    from .core.interning import clear_interning_caches
    from .machine import ProcessorArray
    from .core.distribution import dist_type
    from .runtime.redistribute import (
        PlanCache,
        transfer_matrix_bruteforce,
    )

    n = 32 if smoke else 96
    nprocs = 8
    R = ProcessorArray("R", (nprocs,))
    specs = [
        (("BLOCK", ":"), (":", "BLOCK")),
        ((":", "BLOCK"), ("CYCLIC", ":")),
        (("CYCLIC", ":"), ("BLOCK", ":")),
        ((":", "CYCLIC"), (":", "BLOCK")),
    ]

    def pairs():
        # fresh (structurally equal) objects each round — what the
        # planner's candidate enumeration produces every run
        return [
            (dist_type(*o).apply((n, n), R), dist_type(*w).apply((n, n), R))
            for o, w in specs
        ]

    ref_s, ref_mats = _timed(
        lambda: [transfer_matrix_bruteforce(o, w, nprocs) for o, w in pairs()]
    )

    # headline: one COLD pass (empty plan cache, empty interning/owner
    # caches) — the same methodology as the reference, so the speedup
    # is vectorization alone, not memo amortization
    clear_interning_caches()
    cache = PlanCache()
    vec_s, vec_mats = _timed(
        lambda: [cache.transfer_matrix(o, w, nprocs) for o, w in pairs()]
    )
    # steady state: warm plan cache over recurring rounds, reported as
    # an extra (informational) figure
    rounds = 25
    warm_total, _ = _timed(
        lambda: [
            cache.transfer_matrix(o, w, nprocs)
            for _ in range(rounds)
            for o, w in pairs()
        ]
    )

    match = all(
        np.array_equal(a, b) for a, b in zip(ref_mats, vec_mats)
    )
    ref_ops = {
        "plans": len(specs),
        "elements_moved": int(sum(int(T.sum()) for T in ref_mats)),
    }
    vec_ops = {
        "plans": len(specs),
        "elements_moved": int(sum(int(T.sum()) for T in vec_mats)),
    }
    match = match and ref_ops == vec_ops
    res = _result(
        "redistribute_planning",
        {"n": n, "nprocs": nprocs, "pairs": len(specs), "rounds": rounds},
        ref_s, vec_s, ref_ops, vec_ops, match,
    )
    res["vectorized_warm_seconds"] = warm_total / rounds
    return res


def bench_simulated_cost_planning(smoke: bool = False) -> dict:
    """Schedule planning under ``cost_mode="simulated"``: event-loop
    transition replay vs array-backed fast replay + trace memo."""
    from .planner import SimulatedCostEngine, adi_workload
    from .planner.workloads import _plan_workload

    size = 32 if smoke else 96
    nprocs = 16 if smoke else 32
    iterations = 4

    def run(fast: bool):
        workload = adi_workload(size, size, iterations=iterations, nprocs=nprocs)
        engine = SimulatedCostEngine(workload.machine, fast_replay=fast)

        def body():
            plan = _plan_workload(workload, cost_engine=engine)
            # the schedule search's inner loop: every candidate pair
            trans = [
                engine.transition_cost(a, b)
                for a in workload.candidates
                for b in workload.candidates
            ]
            return plan, trans

        seconds, (plan, trans) = _timed(body)
        return seconds, plan, trans, len(workload.candidates)

    ref_s, ref_plan, ref_trans, m = run(fast=False)
    vec_s, vec_plan, vec_trans, _ = run(fast=True)
    match = (
        ref_trans == vec_trans  # bitwise: fast replay == event loop
        and ref_plan.total_cost == vec_plan.total_cost
        and [repr(d) for d in ref_plan.layouts()]
        == [repr(d) for d in vec_plan.layouts()]
    )
    ref_ops = {
        "candidates": m,
        "transitions_priced": len(ref_trans),
        "redistributions": len(ref_plan.redistributions),
    }
    vec_ops = {
        "candidates": m,
        "transitions_priced": len(vec_trans),
        "redistributions": len(vec_plan.redistributions),
    }
    match = match and ref_ops == vec_ops
    return _result(
        "simulated_cost_planning",
        {"size": size, "nprocs": nprocs, "iterations": iterations},
        ref_s, vec_s, ref_ops, vec_ops, match,
    )


def _result(name, size, ref_s, vec_s, ref_ops, vec_ops, match) -> dict:
    return {
        "name": name,
        "size": size,
        "reference_seconds": ref_s,
        "vectorized_seconds": vec_s,
        "speedup": (ref_s / vec_s) if vec_s > 0 else float("inf"),
        "reference_ops": ref_ops,
        "vectorized_ops": vec_ops,
        "match": bool(match),
    }


BENCHES: dict[str, Callable[[bool], dict]] = {
    "forall": bench_forall,
    "halo_exchange": bench_halo_exchange,
    "redistribute_planning": bench_redistribute_planning,
    "simulated_cost_planning": bench_simulated_cost_planning,
}


#: schema of the BENCH_PERF.json document (v2: env provenance stamp)
PERF_SCHEMA = "repro-bench-perf/2"


def run_harness(
    smoke: bool = False,
    out: str | None = "BENCH_PERF.json",
    check: bool = False,
    benches: list[str] | None = None,
    quiet: bool = False,
    trajectory: str | None = None,
) -> dict:
    """Run the perf benches; optionally write JSON and enforce the
    op-count gate.

    ``check=True`` raises ``SystemExit`` if any bench's vectorized op
    counts / results diverge from its reference — the CI regression
    gate.  Wall-clock numbers are reported but never asserted (the
    wall-clock gate lives in the regression sentinel,
    ``python -m repro bench --compare``).  ``trajectory`` names a JSONL
    file the report is appended to as one
    :class:`~repro.obs.trajectory.TrajectoryStore` entry, building the
    queryable perf history the sentinel diffs against.
    """
    from .obs.trajectory import TrajectoryStore, environment_fingerprint

    names = benches if benches is not None else list(BENCHES)
    unknown = [b for b in names if b not in BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es): {unknown}")
    results = []
    for name in names:
        res = BENCHES[name](smoke)
        results.append(res)
        if not quiet:
            print(
                f"  {res['name']:24s} ref {res['reference_seconds']*1e3:9.2f} ms"
                f"  vec {res['vectorized_seconds']*1e3:9.2f} ms"
                f"  speedup {res['speedup']:7.1f}x"
                f"  ops-match {res['match']}"
            )
    report = {
        "schema": PERF_SCHEMA,
        "smoke": bool(smoke),
        "env": environment_fingerprint(),
        "benches": results,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2)
        if not quiet:
            print(f"  wrote {out}")
    if trajectory:
        entry = TrajectoryStore(trajectory).append("perf", report)
        if not quiet:
            print(f"  appended to {trajectory} "
                  f"(env {entry['env_digest']})")
    if check:
        bad = [r["name"] for r in results if not r["match"]]
        if bad:
            raise SystemExit(
                f"op-count regression: vectorized path diverged from its "
                f"reference in {', '.join(bad)}"
            )
    return report
