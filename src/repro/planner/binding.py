"""Execution binding — planner stage 5.

Lowers a :class:`~repro.planner.search.Plan` onto the Vienna Fortran
Engine: before each phase the executor asserts the scheduled layout
with :meth:`~repro.runtime.engine.Engine.ensure_dist` (a no-op when
the layout is unchanged, a full DISTRIBUTE — sharing the engine's
transfer-plan cache — when it flips), then hands control to the
caller's phase body.

:func:`plan_program` is the surface-syntax entry point: it takes a
parsed :class:`~repro.compiler.ir.IRProgram` whose arrays carry the
``PLAN`` annotation, extracts phases, enumerates candidates (pruned by
each array's declared RANGE), and returns one plan per planned array.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..compiler.ir import IRProgram
from ..core.distribution import Distribution, DistributionType
from ..core.dimdist import DimDist
from ..core.query import TypePattern
from ..machine.machine import Machine
from ..machine.topology import grid_shapes
from ..runtime.engine import Engine
from .candidates import enumerate_layouts, section_for
from .costs import CostEngine
from .phases import PhaseSequence, extract_phases
from .search import Plan, plan_array

__all__ = ["PlanExecutor", "plan_program", "bind_pattern"]


class PlanExecutor:
    """Run a planned schedule on an engine.

    The planned array must already be declared DYNAMIC on ``engine``.
    ``run(body)`` iterates the schedule: for each step it asserts the
    scheduled layout, then calls ``body(index, phase)`` (when given)
    to perform that phase's actual computation.
    """

    def __init__(self, engine: Engine, plan: Plan):
        self.engine = engine
        self.plan = plan
        #: redistribution reports collected while running
        self.reports: list = []

    def run(
        self, body: Callable[[int, object], None] | None = None
    ) -> list:
        for step in self.plan.steps:
            self.reports.extend(
                self.engine.ensure_dist(self.plan.array, step.dist)
            )
            if body is not None:
                body(step.index, step.phase)
        return self.reports


def bind_pattern(
    pattern: TypePattern,
    shape: Sequence[int],
    machine: Machine,
) -> Distribution | None:
    """Bind a fully concrete type pattern to a distribution over the
    machine (None when the pattern has wildcards or does not fit)."""
    if pattern.dims is None:
        return None
    if not all(isinstance(d, DimDist) for d in pattern.dims):
        return None
    dtype = DistributionType(pattern.dims)
    k = len(dtype.distributed_dims)
    if k == 0:
        return None
    if machine.processors.ndim == k:
        gshape = machine.processors.shape
    else:
        shapes = grid_shapes(machine.nprocs, k)
        if not shapes:
            return None
        # the squarest factorization — what a declaration like
        # DIST (BLOCK, BLOCK) naturally means on p processors
        gshape = min(shapes, key=lambda s: max(s) / min(s))
    try:
        return dtype.apply(tuple(shape), section_for(machine, gshape))
    except (ValueError, IndexError):
        return None


def plan_program(
    program: IRProgram,
    machine: Machine,
    shapes: dict[str, Sequence[int]],
    arrays: Sequence[str] | None = None,
    cost_engine: CostEngine | None = None,
    default_trip: int = 4,
    method: str = "auto",
    candidates_kw: dict | None = None,
    seq: PhaseSequence | None = None,
) -> dict[str, Plan]:
    """Plan every ``PLAN``-annotated array of ``program``.

    ``shapes`` supplies the index-domain shape of each planned array
    (declarations in the mini-IR carry only patterns).  ``arrays``
    overrides the PLAN set; ``candidates_kw`` is forwarded to
    :func:`~repro.planner.candidates.enumerate_layouts`.
    """
    if seq is None:
        seq = extract_phases(program, default_trip=default_trip)
    if arrays is not None:
        targets = list(arrays)  # explicit override, even when empty
    else:
        targets = sorted(program.planned)
        if not targets:
            targets = sorted(seq.arrays() & set(shapes))
    engine = cost_engine or CostEngine(machine)
    kw = dict(candidates_kw or {})

    plans: dict[str, Plan] = {}
    for name in targets:
        if name not in shapes:
            raise KeyError(f"no shape given for planned array {name!r}")
        shape = tuple(int(s) for s in shapes[name])
        initial_pat, range_pats = program.declared.get(name, (None, None))
        initial = (
            bind_pattern(initial_pat, shape, machine)
            if initial_pat is not None
            else None
        )
        candidates = enumerate_layouts(
            shape, machine, range_=range_pats, **kw
        )
        plans[name] = plan_array(
            name,
            seq.phases,
            candidates,
            engine,
            initial=initial,
            method=method,
        )
    return plans
