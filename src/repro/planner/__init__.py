"""Automatic distribution planner.

The paper's DISTRIBUTE statement changes an array's layout between
computation phases — but *when and what to redistribute* is left
entirely to the programmer (Figure 1's hand-placed x-sweep/y-sweep
flip).  This subsystem closes that loop:

1. :mod:`~repro.planner.phases` — extract a phase sequence (array
   access summaries with execution weights) from the compiler IR;
2. :mod:`~repro.planner.candidates` — enumerate feasible candidate
   layouts per array from the §2.2 intrinsics, pruned by RANGE
   constraints and memory estimates;
3. :mod:`~repro.planner.costs` — price each (phase, layout) pair via
   the machine cost model and each layout transition via the
   DISTRIBUTE transfer-matrix path (memoized, plan-cache-shared);
4. :mod:`~repro.planner.search` — dynamic programming over the
   phase x layout lattice (greedy fallback for large lattices)
   decides where to insert redistributions;
5. :mod:`~repro.planner.binding` — lower the chosen schedule onto the
   Vienna Fortran Engine, and plan whole ``PLAN``-annotated programs.

:mod:`~repro.planner.workloads` packages the paper's §4 programs (ADI,
PIC, smoothing) as ready-made planning problems.

The headline guarantee (property-tested): a planned schedule's modeled
cost is never worse than the best static single-layout alternative.
"""

from .binding import PlanExecutor, bind_pattern, plan_program
from .candidates import dim_menu, enumerate_layouts
from .costs import CostEngine, SimulatedCostEngine
from .phases import (
    ArrayLoad,
    HandDistribute,
    Phase,
    PhaseSequence,
    extract_phases,
)
from .search import (
    Plan,
    ScheduleStep,
    dp_schedule,
    greedy_schedule,
    plan_array,
)
from .workloads import (
    WORKLOADS,
    Workload,
    adi_workload,
    get_workload,
    hand_schedule_cost,
    pic_workload,
    plan_workload,
    smoothing_workload,
)

__all__ = [
    "ArrayLoad",
    "Phase",
    "PhaseSequence",
    "HandDistribute",
    "extract_phases",
    "dim_menu",
    "enumerate_layouts",
    "CostEngine",
    "SimulatedCostEngine",
    "ScheduleStep",
    "Plan",
    "plan_array",
    "dp_schedule",
    "greedy_schedule",
    "PlanExecutor",
    "bind_pattern",
    "plan_program",
    "Workload",
    "adi_workload",
    "pic_workload",
    "smoothing_workload",
    "get_workload",
    "plan_workload",
    "hand_schedule_cost",
    "WORKLOADS",
]
