"""Schedule search — planner stage 4.

Given a phase sequence and a candidate-layout lattice, choose one
layout per phase so that the total modeled time — phase costs plus the
transition cost of every layout change — is minimal.  This is a
shortest path in the (phase x layout) lattice, solved by dynamic
programming in ``O(len(phases) * len(candidates)^2)``; for lattices
too large for that, a greedy one-step-lookahead fallback is used.

Tie-breaking is deterministic and deliberately conservative: when
costs are equal the search prefers *staying* in the current layout
(no spurious redistributions under e.g. a zero-cost model), and
otherwise the earliest candidate in enumeration order (``BLOCK``
before ``CYCLIC``, matching the paper's defaults).

By construction the DP result is never worse than the best *static*
single-layout alternative — every static layout is a path in the
lattice — which is the planner's headline guarantee (asserted by the
property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.distribution import Distribution
from ..obs import metrics as _obs
from ..obs.tracing import span as _span
from .costs import CostEngine
from .phases import Phase

__all__ = ["ScheduleStep", "Plan", "plan_array", "dp_schedule", "greedy_schedule"]

_DP_STATES = _obs.counter(
    "repro_planner_dp_states_total",
    "(phase, layout, predecessor) states expanded by the schedule "
    "search, by method.",
    ("method",),
)
_PLANS_TOTAL = _obs.counter(
    "repro_planner_plans_total",
    "Schedules produced by plan_array, by method actually used.",
    ("method",),
)


@dataclass
class ScheduleStep:
    """One scheduled phase: its layout and the costs the plan charges."""

    index: int
    phase: Phase
    dist: Distribution
    phase_cost: float
    transition_cost: float  # paid immediately before this phase
    prev: Distribution | None  # layout in effect before this phase


@dataclass
class Plan:
    """A complete redistribution schedule for one array."""

    array: str
    steps: list[ScheduleStep]
    total_cost: float
    method: str  # "dp" | "greedy"
    initial: Distribution | None = None
    static: dict[Distribution, float] = field(default_factory=dict)

    @property
    def redistributions(self) -> list[tuple[int, Distribution | None, Distribution]]:
        """``(phase_index, from, to)`` for every layout change."""
        return [
            (s.index, s.prev, s.dist)
            for s in self.steps
            if s.prev is not None and s.prev != s.dist
        ]

    def layouts(self) -> list[Distribution]:
        return [s.dist for s in self.steps]

    @property
    def best_static(self) -> tuple[Distribution, float] | None:
        """Cheapest no-redistribution alternative, if statics were priced."""
        if not self.static:
            return None
        best = min(self.static.items(), key=lambda kv: kv[1])
        return best

    def summary(self) -> str:
        """Human-readable schedule (one line per phase)."""
        lines = [
            f"plan for {self.array!r} ({self.method}, "
            f"{len(self.redistributions)} redistribution(s), "
            f"modeled cost {self.total_cost:.3e}s)"
        ]
        for s in self.steps:
            layout = _layout_str(s.dist)
            note = ""
            if s.prev is not None and s.prev != s.dist:
                note = (
                    f"  <- DISTRIBUTE from {_layout_str(s.prev)}"
                    f" (cost {s.transition_cost:.3e}s)"
                )
            reps = f" x{s.phase.repeat}" if s.phase.repeat != 1 else ""
            lines.append(
                f"  phase {s.index:3d} {s.phase.name:>14s}{reps:<5s} :: "
                f"{layout:<28s} cost {s.phase_cost:.3e}s{note}"
            )
        best = self.best_static
        if best is not None:
            lines.append(
                f"  best static alternative: {_layout_str(best[0])} "
                f"at {best[1]:.3e}s"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """The schedule as a JSON-serializable dict (the machine-
        readable form behind ``python -m repro plan --json``)."""
        best = self.best_static
        return {
            "array": self.array,
            "method": self.method,
            "total_cost": self.total_cost,
            "redistributions": len(self.redistributions),
            "initial": _layout_str(self.initial) if self.initial else None,
            "steps": [
                {
                    "index": s.index,
                    "phase": s.phase.name,
                    "repeat": s.phase.repeat,
                    "layout": _layout_str(s.dist),
                    "phase_cost": s.phase_cost,
                    "transition_cost": s.transition_cost,
                    "redistributed": bool(
                        s.prev is not None and s.prev != s.dist
                    ),
                }
                for s in self.steps
            ],
            "best_static": (
                {"layout": _layout_str(best[0]), "cost": best[1]}
                if best is not None
                else None
            ),
        }


def _layout_str(dist: Distribution) -> str:
    grid = "x".join(str(s) for s in dist.target.shape)
    return f"{dist.dtype!r}@{grid}"


def plan_array(
    array: str,
    phases,
    candidates: list[Distribution],
    engine: CostEngine,
    initial: Distribution | None = None,
    method: str = "auto",
    dp_state_limit: int = 200_000,
    price_statics: bool = True,
) -> Plan:
    """Plan a redistribution schedule for ``array``.

    ``phases`` is any iterable of :class:`Phase`; ``candidates`` the
    layout lattice (``initial``, when given and missing, is prepended
    so "never redistribute" is always available).  ``method`` is
    ``"dp"``, ``"greedy"`` or ``"auto"`` (DP unless
    ``len(phases) * len(candidates)^2`` exceeds ``dp_state_limit``).
    """
    with _span("planner.plan_array", array=array, method=method) as sp:
        plan = _plan_array(array, phases, candidates, engine, initial,
                           method, dp_state_limit, price_statics)
        _PLANS_TOTAL.inc(method=plan.method)
        if sp is not None:
            sp.attrs.update(resolved_method=plan.method,
                            phases=len(plan.steps),
                            redistributions=len(plan.redistributions))
        return plan


def _plan_array(
    array: str,
    phases,
    candidates: list[Distribution],
    engine: CostEngine,
    initial: Distribution | None,
    method: str,
    dp_state_limit: int,
    price_statics: bool,
) -> Plan:
    phases = list(phases)
    candidates = list(candidates)
    if not phases:
        raise ValueError("cannot plan an empty phase sequence")
    if initial is not None and initial not in candidates:
        candidates = [initial, *candidates]
    if not candidates:
        raise ValueError("need at least one candidate layout")

    if method == "auto":
        states = len(phases) * len(candidates) * len(candidates)
        method = "dp" if states <= dp_state_limit else "greedy"
    if method == "dp":
        steps, total = dp_schedule(array, phases, candidates, engine, initial)
    elif method == "greedy":
        steps, total = greedy_schedule(
            array, phases, candidates, engine, initial
        )
    else:
        raise ValueError(f"method must be dp|greedy|auto, got {method!r}")

    static = {}
    if price_statics or method == "greedy":
        static = {
            c: engine.static_cost(phases, array, c, initial=initial)
            for c in candidates
        }
    if method == "greedy" and static:
        # one-step lookahead has no optimality guarantee; clamp to the
        # best static candidate so the headline bound (planned <= best
        # static) holds for every method
        best_c, best_v = min(static.items(), key=lambda kv: kv[1])
        if best_v < total:
            idx = candidates.index(best_c)
            pc = [
                [engine.phase_cost(ph, array, c) for c in candidates]
                for ph in phases
            ]
            steps = _build_steps(
                array, phases, candidates, [idx] * len(phases), engine,
                initial, pc,
            )
            total = best_v
    if not price_statics:
        static = {}
    return Plan(array, steps, total, method, initial=initial, static=static)


def dp_schedule(
    array: str,
    phases: list[Phase],
    candidates: list[Distribution],
    engine: CostEngine,
    initial: Distribution | None,
) -> tuple[list[ScheduleStep], float]:
    """Exact DP over the phase x layout lattice."""
    n, m = len(phases), len(candidates)
    # first row expands m states, every later row m predecessors per
    # layout — aggregated into one counter bump to keep the loop tight
    _DP_STATES.inc(m + max(0, n - 1) * m * m, method="dp")
    pc = [
        [engine.phase_cost(ph, array, c) for c in candidates] for ph in phases
    ]

    cost = [0.0] * m
    back: list[list[int]] = [[-1] * m for _ in range(n)]
    for j in range(m):
        trans = (
            engine.transition_cost(initial, candidates[j])
            if initial is not None
            else 0.0
        )
        cost[j] = trans + pc[0][j]

    for i in range(1, n):
        new_cost = [0.0] * m
        for j in range(m):
            # consider "stay" first so ties keep the current layout
            best = cost[j] + engine.transition_cost(
                candidates[j], candidates[j]
            )
            best_j2 = j
            for j2 in range(m):
                if j2 == j:
                    continue
                c = cost[j2] + engine.transition_cost(
                    candidates[j2], candidates[j]
                )
                if c < best:
                    best, best_j2 = c, j2
            new_cost[j] = best + pc[i][j]
            back[i][j] = best_j2
        cost = new_cost

    # ties prefer the declared initial layout (no spurious flips under
    # e.g. a zero-cost model), then enumeration order
    last = min(
        range(m),
        key=lambda j: (
            cost[j],
            0 if initial is not None and candidates[j] == initial else 1,
            j,
        ),
    )
    total = cost[last]

    # reconstruct
    choice = [0] * n
    j = last
    for i in range(n - 1, -1, -1):
        choice[i] = j
        j = back[i][j] if i > 0 else j
    steps = _build_steps(array, phases, candidates, choice, engine, initial, pc)
    return steps, total


def greedy_schedule(
    array: str,
    phases: list[Phase],
    candidates: list[Distribution],
    engine: CostEngine,
    initial: Distribution | None,
) -> tuple[list[ScheduleStep], float]:
    """One-step-lookahead fallback for large lattices.

    One-step lookahead can pay a transition it never recoups (a later
    phase may favour the layout it just left), so the result is
    compared against staying on ``initial`` throughout and the cheaper
    of the two is returned.  (:func:`plan_array` additionally clamps a
    greedy result to the best *static* candidate, so the planner's
    headline bound holds even when DP is out of reach.)

    An ``initial`` outside ``candidates`` is admitted as an extra
    candidate, mirroring :func:`plan_array`.
    """
    if initial is not None and initial not in candidates:
        candidates = [initial, *candidates]
    n, m = len(phases), len(candidates)
    _DP_STATES.inc(n * m, method="greedy")
    choice: list[int] = []
    cur: int | None = (
        candidates.index(initial) if initial is not None else None
    )
    total = 0.0
    pc: list[list[float]] = []
    for i, ph in enumerate(phases):
        row = [engine.phase_cost(ph, array, c) for c in candidates]
        pc.append(row)
        if cur is None:
            j = min(range(m), key=lambda jj: (row[jj], jj))
            total += row[j]
        else:
            best = engine.transition_cost(
                candidates[cur], candidates[cur]
            ) + row[cur]
            j = cur
            for jj in range(m):
                if jj == cur:
                    continue
                c = engine.transition_cost(candidates[cur], candidates[jj]) + row[jj]
                if c < best:
                    best, j = c, jj
            total += best
        choice.append(j)
        cur = j
    if initial is not None:
        idx = candidates.index(initial)
        stay_total = sum(pc[i][idx] for i in range(n))
        if stay_total < total:
            choice = [idx] * n
            total = stay_total
    steps = _build_steps(array, phases, candidates, choice, engine, initial, pc)
    return steps, total


def _build_steps(
    array: str,
    phases: list[Phase],
    candidates: list[Distribution],
    choice: list[int],
    engine: CostEngine,
    initial: Distribution | None,
    pc: list[list[float]],
) -> list[ScheduleStep]:
    steps: list[ScheduleStep] = []
    prev = initial
    for i, (ph, j) in enumerate(zip(phases, choice)):
        dist = candidates[j]
        trans = (
            engine.transition_cost(prev, dist) if prev is not None else 0.0
        )
        steps.append(
            ScheduleStep(
                index=i,
                phase=ph,
                dist=dist,
                phase_cost=pc[i][j],
                transition_cost=trans,
                prev=prev,
            )
        )
        prev = dist
    return steps
