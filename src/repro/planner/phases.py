"""Phase extraction — planner stage 1.

The paper leaves *when and what to redistribute* to the programmer:
the ADI code of Figure 1 hand-places one DISTRIBUTE between the
x-sweep and the y-sweep.  To decide that automatically, the planner
first needs a summary of *what each program phase touches*: a
:class:`Phase` is a maximal region of computation with a homogeneous
set of array accesses, and a program becomes a sequence of phases.

Extraction walks the compiler IR (:mod:`repro.compiler.ir`):

- consecutive :class:`~repro.compiler.ir.Assign` statements accumulate
  into one phase (their :class:`~repro.compiler.ir.ArrayRef` access
  summaries are exactly what the communication analysis prices);
- a counted :class:`~repro.compiler.ir.Loop` whose body is a *single*
  phase collapses into that phase with ``repeat`` multiplied by the
  trip count (the inner ``DO J`` line loops of ADI);
- a counted loop whose body alternates between *several* phases is
  unrolled (bounded by ``max_phases``) so the schedule search can
  consider per-iteration redistribution — the ADI outer loop;
- an oversized loop falls back to repeat-weighting its body phases
  without unrolling (no intra-loop flips will be planned; the
  sequence is marked ``collapsed``);
- ``If``/``DCASE`` bodies are priced conservatively as if *every*
  branch executed in sequence (the analysis cannot know which arm
  runs; an upper bound preserves loop weights and loads, and is exact
  for the common case of one non-trivial arm);
- defined procedure calls are inlined with formal->actual renaming;
- ``DISTRIBUTE`` statements are *not* phases: they are recorded as
  the programmer's hand schedule (:class:`HandDistribute`) so benches
  can compare the planner's schedule against the paper's.

Phases are frozen (hashable): the cost engine memoizes on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..compiler.ir import (
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
)
from ..core.query import TypePattern

__all__ = [
    "ArrayLoad",
    "Phase",
    "HandDistribute",
    "PhaseSequence",
    "extract_phases",
]


@dataclass(frozen=True)
class ArrayLoad:
    """Per-index work attached to a phase along one array dimension.

    ``weights[i]`` units of work are performed by whichever processor
    owns index ``i`` of ``array`` along ``dim``; each unit costs
    ``flops_per_unit`` flops.  This is how the PIC workload expresses
    "work per processor proportional to local particle count" — the
    quantity the B_BLOCK rebalancing of Figure 2 equalizes.

    ``boundary_bytes_per_unit`` additionally charges communication for
    every weight unit sitting in an index adjacent to an *owner
    boundary* along ``dim`` (a neighbouring index with a different
    owner).  This models drift across processor boundaries: under a
    contiguous layout only block-edge indices pay it, under ``CYCLIC``
    every index does — the reason Figure 2 partitions cells into
    contiguous general blocks rather than dealing them round-robin.
    """

    array: str
    dim: int
    weights: tuple[float, ...]
    flops_per_unit: float = 1.0
    boundary_bytes_per_unit: float = 0.0

    def total(self) -> float:
        return float(sum(self.weights))


@dataclass(frozen=True)
class Phase:
    """One program phase: an access summary plus execution weight.

    ``repeat`` is how many times the phase executes back-to-back
    (collapsed counted loops); ``work`` is perfectly balanced flops per
    execution (layout-independent); ``load`` is optional
    layout-*dependent* work (see :class:`ArrayLoad`).
    """

    #: display label only — excluded from equality/hashing so that
    #: identical unrolled iterations share cost-engine memo entries
    name: str = field(compare=False)
    refs: tuple = ()
    repeat: int = 1
    work: float = 0.0
    load: ArrayLoad | None = None

    def refs_to(self, array: str) -> tuple:
        """The refs of this phase that touch ``array``."""
        return tuple(r for r in self.refs if r.array == array)

    def arrays(self) -> set[str]:
        out = {r.array for r in self.refs}
        if self.load is not None:
            out.add(self.load.array)
        return out

    def __repr__(self) -> str:
        reps = f" x{self.repeat}" if self.repeat != 1 else ""
        return f"Phase({self.name}{reps}, {len(self.refs)} refs)"


@dataclass(frozen=True)
class HandDistribute:
    """A programmer-written DISTRIBUTE, positioned before phase
    ``position`` of the extracted sequence."""

    position: int
    array: str
    pattern: TypePattern


@dataclass
class PhaseSequence:
    """The extracted phase sequence of one program."""

    phases: list[Phase] = field(default_factory=list)
    hand: list[HandDistribute] = field(default_factory=list)
    #: True when some loop was too large to unroll; the planner then
    #: cannot place redistributions *inside* that loop's iterations
    collapsed: bool = False

    def arrays(self) -> set[str]:
        out: set[str] = set()
        for ph in self.phases:
            out |= ph.arrays()
        return out

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.phases)


def extract_phases(
    program: IRProgram,
    proc: str | None = None,
    default_trip: int = 4,
    max_phases: int = 256,
    inline_calls: bool = True,
) -> PhaseSequence:
    """Extract the phase sequence of ``program`` (see module docstring).

    ``default_trip`` substitutes for loops with unknown trip counts;
    ``max_phases`` bounds unrolling (beyond it, loop bodies are
    repeat-weighted instead and ``collapsed`` is set).
    """
    extractor = _Extractor(program, default_trip, max_phases, inline_calls)
    return extractor.run(proc or program.entry)


class _Extractor:
    def __init__(
        self,
        program: IRProgram,
        default_trip: int,
        max_phases: int,
        inline_calls: bool,
    ):
        self.program = program
        self.default_trip = max(1, int(default_trip))
        self.max_phases = max(1, int(max_phases))
        self.inline_calls = inline_calls
        self._counter = 0
        self._call_stack: list[str] = []

    def run(self, proc: str) -> PhaseSequence:
        body = self.program.proc(proc).body
        phases, hand, collapsed = self._walk(body, {})
        return PhaseSequence(phases, hand, collapsed)

    # -- helpers ----------------------------------------------------------
    def _fresh_name(self, label: str = "") -> str:
        name = label or f"p{self._counter}"
        self._counter += 1
        return name

    def _rename_ref(self, ref, rename: dict[str, str]):
        if ref.array in rename:
            return replace(ref, array=rename[ref.array])
        return ref

    # -- the walk ---------------------------------------------------------
    def _walk(
        self, block: Block, rename: dict[str, str]
    ) -> tuple[list[Phase], list[HandDistribute], bool]:
        phases: list[Phase] = []
        hand: list[HandDistribute] = []
        collapsed = False
        pending: list = []  # accumulated refs of the open phase
        pending_label = ""

        def flush() -> None:
            nonlocal pending, pending_label
            if pending:
                phases.append(
                    Phase(self._fresh_name(pending_label), tuple(pending))
                )
            pending = []
            pending_label = ""

        for stmt in block:
            if isinstance(stmt, Assign):
                # the frontend models external calls as self-assignments
                # (lhs repeated among the reads): count the access once
                lhs = self._rename_ref(stmt.lhs, rename)
                pending.append(lhs)
                pending.extend(
                    ref
                    for ref in (
                        self._rename_ref(r, rename) for r in stmt.reads
                    )
                    if ref != lhs
                )
                if stmt.label and not pending_label:
                    pending_label = stmt.label
                continue

            if isinstance(stmt, DistributeStmt):
                flush()
                name = rename.get(stmt.array, stmt.array)
                hand.append(HandDistribute(len(phases), name, stmt.pattern))
                continue

            if isinstance(stmt, Loop):
                flush()
                sub, sub_hand, sub_collapsed = self._walk(stmt.body, rename)
                trip = stmt.trip if stmt.trip is not None else self.default_trip
                if trip <= 0:
                    continue  # never executes: body contributes nothing
                collapsed = collapsed or sub_collapsed
                if not sub:
                    # phase-free body (e.g. only DISTRIBUTEs): keep its
                    # hand entries once, at the current position
                    hand.extend(
                        replace(h, position=len(phases)) for h in sub_hand
                    )
                    continue
                if len(sub) == 1 and not sub_hand:
                    # a line loop over a single phase: weight, don't unroll
                    ph = sub[0]
                    phases.append(replace(ph, repeat=ph.repeat * trip))
                elif len(phases) + len(sub) * trip <= self.max_phases:
                    for it in range(trip):
                        for h in sub_hand:
                            hand.append(
                                replace(
                                    h,
                                    position=len(phases) + h.position,
                                )
                            )
                        phases.extend(
                            replace(ph, name=f"{ph.name}@{it}") for ph in sub
                        )
                else:
                    # too big to unroll: repeat-weight the body phases
                    collapsed = True
                    for h in sub_hand:
                        hand.append(
                            replace(h, position=len(phases) + h.position)
                        )
                    phases.extend(
                        replace(ph, repeat=ph.repeat * trip) for ph in sub
                    )
                continue

            if isinstance(stmt, If):
                flush()
                collapsed = self._emit_branches(
                    [stmt.then, stmt.orelse], rename, phases, hand
                ) or collapsed
                continue

            if isinstance(stmt, DCaseStmt):
                flush()
                collapsed = self._emit_branches(
                    [arm for _, arm in stmt.arms], rename, phases, hand
                ) or collapsed
                continue

            if isinstance(stmt, Call):
                flush()
                if (
                    self.inline_calls
                    and stmt.callee in self.program.procs
                    and stmt.callee not in self._call_stack
                ):
                    inner_rename = dict(rename)
                    for formal, actual in stmt.bindings.items():
                        inner_rename[formal] = rename.get(actual, actual)
                    self._call_stack.append(stmt.callee)
                    try:
                        sub, sub_hand, sub_collapsed = self._walk(
                            self.program.proc(stmt.callee).body, inner_rename
                        )
                    finally:
                        self._call_stack.pop()
                    collapsed = collapsed or sub_collapsed
                    for h in sub_hand:
                        hand.append(
                            replace(h, position=len(phases) + h.position)
                        )
                    phases.extend(sub)
                continue

            # unknown statement kinds are access-free: ignore

        flush()
        return phases, hand, collapsed

    def _emit_branches(
        self,
        blocks,
        rename: dict[str, str],
        phases: list[Phase],
        hand: list[HandDistribute],
    ) -> bool:
        """Append every branch's phases in sequence — the conservative
        upper bound of a region whose taken arm is unknown.  Phase
        repeats, loads, hand DISTRIBUTEs and the collapsed flag all
        survive; only exclusivity between arms is lost (an
        overestimate, exact when at most one arm does real work).
        Returns whether any branch collapsed an oversized loop."""
        collapsed = False
        for blk in blocks:
            sub, sub_hand, sub_collapsed = self._walk(blk, rename)
            collapsed = collapsed or sub_collapsed
            for h in sub_hand:
                hand.append(replace(h, position=len(phases) + h.position))
            phases.extend(sub)
        return collapsed
