"""Candidate layout enumeration — planner stage 2.

For every array the planner considers a finite lattice of *candidate
layouts*: bound :class:`~repro.core.distribution.Distribution` objects
built from the paper's §2.2 intrinsics — ``BLOCK``, ``CYCLIC(k)``,
``B_BLOCK`` (from caller-supplied size hints, e.g. the PIC ``balance``
output), ``REPLICATED`` and the elision ``:`` — over every processor
arrangement that can host them (grid factorizations of the machine's
processor count, :func:`~repro.machine.topology.grid_shapes`).

Pruning:

- a declared ``RANGE`` attribute (the alignment/constraint mechanism
  of §2.3) restricts candidates to the matching patterns;
- layouts whose per-processor memory need exceeds ``memory_limit``
  elements are dropped (the §3.1 memory estimate);
- duplicates (same type, same target) are removed, and the result is
  deterministic and capped at ``max_candidates``.

Enumeration order is meaningful: the schedule search breaks cost ties
in favour of earlier candidates, so the menu lists ``BLOCK`` first
(the paper's default choice), then general blocks, then cyclics, then
replication.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Sequence

from ..compiler.comm_analysis import estimate_memory
from ..core.dimdist import Block, Cyclic, DimDist, GenBlock, NoDist, Replicated
from ..core.distribution import Distribution, DistributionType
from ..core.query import TypePattern
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray, grid_shapes
from ..obs import metrics as _obs

__all__ = ["enumerate_layouts", "dim_menu", "section_for"]

_CANDIDATES_TOTAL = _obs.counter(
    "repro_planner_candidates_total",
    "Candidate layouts surviving enumeration, by pruning outcome.",
    ("outcome",),
)


def dim_menu(
    extent: int,
    slots: int,
    cyclic_blocks: Sequence[int] = (1,),
    genblock_hints: Sequence[Sequence[int]] = (),
    replicated: bool = False,
) -> list[DimDist]:
    """The intrinsics one distributed dimension may use, in preference
    order.  ``genblock_hints`` entries are kept only when they actually
    fit (``slots`` sizes summing to ``extent``)."""
    menu: list[DimDist] = [Block()]
    for sizes in genblock_hints:
        sizes = [int(s) for s in sizes]
        if len(sizes) == slots and sum(sizes) == extent:
            gb = GenBlock(sizes)
            if gb not in menu:
                menu.append(gb)
    for k in cyclic_blocks:
        cy = Cyclic(int(k))
        if cy not in menu:
            menu.append(cy)
    if replicated:
        menu.append(Replicated())
    return menu


def enumerate_layouts(
    shape: Sequence[int],
    machine: Machine,
    max_distributed_dims: int | None = None,
    cyclic_blocks: Sequence[int] = (1,),
    genblock_hints: dict[int, Sequence[Sequence[int]]] | None = None,
    replicated: bool = False,
    range_: Sequence[TypePattern] | None = None,
    memory_limit: int | None = None,
    max_candidates: int = 512,
    proc_name: str = "Q",
) -> list[Distribution]:
    """Enumerate candidate layouts for one array (see module docstring).

    Parameters
    ----------
    shape:
        Index-domain shape of the array.
    machine:
        The simulated machine; candidates use its processor array when
        the grid shape matches, otherwise fresh arrangements named
        ``proc_name`` over the same ranks.
    max_distributed_dims:
        Cap on how many array dimensions a candidate distributes
        (default: the array rank).
    cyclic_blocks:
        ``k`` values for ``CYCLIC(k)`` menu entries.
    genblock_hints:
        ``{array_dim: [sizes, ...]}`` — general-block size vectors
        (e.g. from ``balance``) offered along that dimension.
    replicated:
        Include ``REPLICATED`` dimension entries.
    range_:
        Declared RANGE patterns; when given, only matching types
        survive.
    memory_limit:
        Per-processor element budget (default: no limit).
    """
    shape = tuple(int(s) for s in shape)
    ndim = len(shape)
    if ndim == 0:
        raise ValueError("array shape needs at least one dimension")
    nprocs = machine.nprocs
    hints = genblock_hints or {}
    kmax = min(ndim, max_distributed_dims or ndim)

    out: list[Distribution] = []
    seen: set[tuple] = set()
    pruned = 0
    for k in range(1, kmax + 1):
        for ddims in combinations(range(ndim), k):
            for gshape in grid_shapes(nprocs, k):
                target = section_for(machine, gshape, proc_name)
                menus = []
                for j, d in enumerate(ddims):
                    menus.append(
                        dim_menu(
                            shape[d],
                            gshape[j],
                            cyclic_blocks=cyclic_blocks,
                            genblock_hints=hints.get(d, ()),
                            replicated=replicated,
                        )
                    )
                for combo in product(*menus):
                    dims: list[DimDist] = [NoDist()] * ndim
                    for d, dd in zip(ddims, combo):
                        dims[d] = dd
                    dtype = DistributionType(dims)
                    key = (dtype, target)
                    if key in seen:
                        continue
                    seen.add(key)
                    if range_ and not any(p.matches(dtype) for p in range_):
                        pruned += 1
                        continue
                    try:
                        dist = dtype.apply(shape, target)
                    except (ValueError, IndexError):
                        pruned += 1
                        continue  # infeasible binding (e.g. BLOCK(m) short)
                    if memory_limit is not None:
                        est = estimate_memory(
                            TypePattern(dtype.dims), shape, dist.proc_shape
                        )
                        if est.elements_per_proc > memory_limit:
                            pruned += 1
                            continue
                    out.append(dist)
                    if len(out) >= max_candidates:
                        return _count_candidates(out, pruned)
    return _count_candidates(out, pruned)


def _count_candidates(out: list[Distribution], pruned: int) -> list[Distribution]:
    _CANDIDATES_TOTAL.inc(len(out), outcome="kept")
    if pruned:
        _CANDIDATES_TOTAL.inc(pruned, outcome="pruned")
    return out


def section_for(
    machine: Machine, gshape: tuple[int, ...], proc_name: str = "Q"
):
    """A processor section of the given grid shape over the machine's
    ranks — the machine's own array when shapes agree, else a fresh
    arrangement (Vienna Fortran permits several PROCESSORS views of
    the same physical machine).  The single layout-to-section policy,
    shared by candidate enumeration and initial-pattern binding so
    both produce comparable targets."""
    if machine.processors.shape == gshape:
        return machine.full_section()
    return ProcessorArray(proc_name, gshape).full_section()
