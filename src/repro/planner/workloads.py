"""Named planner workloads — the paper's §4 programs as planning
problems.

Each factory returns a :class:`Workload`: a phase sequence, a
candidate-layout lattice, the declared initial layout, and (for
comparison) the *hand* schedule the paper's programmer would have
written.  They drive the ``python -m repro plan`` subcommand, the E12
bench, and the planner acceptance tests:

- :func:`adi_workload` — Figure 1, built end-to-end from Vienna
  Fortran surface text carrying the ``PLAN`` annotation: the x-sweep /
  y-sweep alternation whose optimal schedule is the paper's
  ``(:, BLOCK)`` / ``(BLOCK, :)`` flip whenever the flip is cheaper
  than sweeping against the layout;
- :func:`pic_workload` — Figure 2: a particle cluster drifting across
  a cell array, expressed as per-segment :class:`ArrayLoad` weights;
  candidates include the ``B_BLOCK`` size vectors ``balance`` would
  compute, so the planner can rediscover per-segment rebalancing;
- :func:`smoothing_workload` — the §4 smoothing choice: one stencil
  phase whose best layout (column strips vs 2-D blocks) depends on
  the machine's alpha/beta ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..compiler.ir import AccessKind, ArrayRef
from ..core.dimdist import NoDist
from ..core.distribution import Distribution, dist_type
from ..core.query import ANY, TypePattern
from ..machine.cost_model import PARAGON, CostModel
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray
from .candidates import enumerate_layouts
from .costs import CostEngine
from .phases import ArrayLoad, Phase, extract_phases
from .search import Plan, plan_array

__all__ = [
    "Workload",
    "adi_workload",
    "pic_workload",
    "smoothing_workload",
    "get_workload",
    "plan_workload",
    "hand_schedule_cost",
    "WORKLOADS",
]


@dataclass
class Workload:
    """A planning problem plus its reference points."""

    name: str
    array: str
    shape: tuple[int, ...]
    machine: Machine
    phases: list[Phase]
    candidates: list[Distribution] = field(default_factory=list)
    initial: Distribution | None = None
    #: the paper's hand-annotated schedule, one layout per phase
    hand: list[Distribution] | None = None
    description: str = ""


def plan_workload(
    workload: Workload,
    cost_engine: CostEngine | None = None,
    method: str = "auto",
    cost_mode: str = "model",
) -> Plan:
    """Deprecated free-function spelling of the schedule search.

    Use the session facade instead::

        with repro.session(nprocs=4) as sess:
            plan = sess.workload("adi", size=64).plan()

    (:func:`_plan_workload` is the implementation; results are
    bitwise-identical.)
    """
    import warnings

    warnings.warn(
        "plan_workload() is deprecated; use repro.session(...) and "
        "Session.workload(name).plan(...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _plan_workload(
        workload, cost_engine=cost_engine, method=method, cost_mode=cost_mode
    )


def _plan_workload(
    workload: Workload,
    cost_engine: CostEngine | None = None,
    method: str = "auto",
    cost_mode: str = "model",
) -> Plan:
    """Run the schedule search on a workload.

    ``cost_mode`` selects the pricing semantics when no explicit
    ``cost_engine`` is given: ``"model"`` (the closed-form aggregate
    :class:`CostEngine`) or ``"simulated"`` (the discrete-event
    :class:`SimulatedCostEngine` with split-phase overlap, letting the
    schedule search hide communication behind computation).
    """
    if cost_mode not in ("model", "simulated"):
        raise ValueError(
            f"cost_mode must be 'model' or 'simulated', got {cost_mode!r}"
        )
    if cost_engine is not None:
        engine = cost_engine
    elif cost_mode == "simulated":
        from .costs import SimulatedCostEngine

        engine = SimulatedCostEngine(workload.machine)
    else:
        engine = CostEngine(workload.machine)
    return plan_array(
        workload.array,
        workload.phases,
        workload.candidates,
        engine,
        initial=workload.initial,
        method=method,
    )


def hand_schedule_cost(
    workload: Workload, cost_engine: CostEngine | None = None
) -> float | None:
    """Modeled total cost of the workload's hand schedule (None if the
    workload has no hand schedule)."""
    if workload.hand is None:
        return None
    engine = cost_engine or CostEngine(workload.machine)
    total = 0.0
    prev = workload.initial
    for ph, dist in zip(workload.phases, workload.hand):
        if prev is not None:
            total += engine.transition_cost(prev, dist)
        total += engine.phase_cost(ph, workload.array, dist)
        prev = dist
    return total


# -- ADI (Figure 1) ----------------------------------------------------------

_ADI_SOURCE = """
PROGRAM ADI
REAL V(NX, NY) DYNAMIC,
&    RANGE ((:, BLOCK), (BLOCK, :), (:, CYCLIC), (CYCLIC, :)),
&    DIST (:, BLOCK)
PLAN V
DO ITER = 1, T
  DO J = 1, NY
    CALL TRIDIAG(V(:, J), NX)
  ENDDO
  DO I = 1, NX
    CALL TRIDIAG(V(I, :), NY)
  ENDDO
ENDDO
END
"""


def adi_workload(
    nx: int = 64,
    ny: int = 64,
    iterations: int = 4,
    nprocs: int = 4,
    cost_model: CostModel = PARAGON,
    machine: Machine | None = None,
) -> Workload:
    """Figure 1's ADI iteration as a planning problem.

    The phase sequence is extracted from Vienna Fortran source text
    (with the ``PLAN V`` annotation) — the full surface-to-schedule
    path.  The hand schedule alternates ``(:, BLOCK)`` (x-sweeps
    local) and ``(BLOCK, :)`` (y-sweeps local), exactly the paper's
    DISTRIBUTE placement.
    """
    from ..lang.frontend import parse_program

    if machine is None:
        machine = Machine(ProcessorArray("R", (nprocs,)), cost_model=cost_model)
    env = {"NX": nx, "NY": ny, "T": iterations}
    program = parse_program(_ADI_SOURCE, env)
    seq = extract_phases(program, max_phases=max(64, 2 * iterations))
    candidates = enumerate_layouts(
        (nx, ny), machine, range_=program.declared["V"][1]
    )
    by_cols = _find(candidates, dist_type(":", "BLOCK"))
    by_rows = _find(candidates, dist_type("BLOCK", ":"))
    hand = []
    for ph in seq.phases:
        sweep_dims = {r.dim for r in ph.refs if r.kind == AccessKind.ROW_SWEEP}
        hand.append(by_rows if sweep_dims == {1} else by_cols)
    return Workload(
        name="adi",
        array="V",
        shape=(nx, ny),
        machine=machine,
        phases=seq.phases,
        candidates=candidates,
        initial=by_cols,
        hand=hand,
        description=(
            f"ADI {nx}x{ny}, {iterations} iteration(s), {machine.nprocs} "
            f"procs, {machine.cost_model.name}"
        ),
    )


# -- PIC (Figure 2) ----------------------------------------------------------


def pic_workload(
    ncell: int = 128,
    npart: int = 4096,
    steps: int = 50,
    nprocs: int = 4,
    rebalance_every: int = 10,
    drift: float = 0.004,
    cluster_width: float = 0.08,
    flops_per_particle: float = 20.0,
    particle_bytes: int = 32,
    cost_model: CostModel = PARAGON,
    seed: int = 0,
    machine: Machine | None = None,
) -> Workload:
    """Figure 2's PIC load-balancing problem as a planning problem.

    Time is split into segments of ``rebalance_every`` steps; each
    segment is one phase whose :class:`ArrayLoad` holds the per-cell
    particle counts at the segment's midpoint (the drifting Gaussian
    cluster of the reproduction's ``initpos``).  Phase references
    model the field update (identity) and particle motion into
    neighbour cells (unit shift) — under ``CYCLIC`` nearly every move
    crosses processors, which is why the planner should prefer the
    contiguous ``B_BLOCK`` partitions offered as hints.
    """
    from ..apps.load_balance import balance_greedy
    from ..apps.pic import _cell_of, reflected_position

    if machine is None:
        machine = Machine(ProcessorArray("P", (nprocs,)), cost_model=cost_model)
    nfield = 4
    rng = np.random.default_rng(seed)
    pos0 = np.clip(
        rng.normal(0.2, cluster_width, size=npart),
        0.0,
        np.nextafter(1.0, 0.0),
    )

    def counts_at(step: float) -> np.ndarray:
        cells = _cell_of(reflected_position(pos0, drift * step), ncell)
        return np.bincount(cells, minlength=ncell)

    phases: list[Phase] = []
    hints: list[list[int]] = []
    refs = (
        ArrayRef("FIELD", AccessKind.IDENTITY),
        ArrayRef("FIELD", AccessKind.SHIFT, offsets=(1, 0)),
    )
    # fraction of a cell's particles that cross into a neighbour cell
    # per step — particles in owner-boundary cells pay reassignment
    crossing = min(1.0, abs(drift) * ncell)
    for start in range(0, steps, rebalance_every):
        length = min(rebalance_every, steps - start)
        counts = counts_at(start + length / 2.0)
        hints.append([int(s) for s in balance_greedy(counts, machine.nprocs)])
        phases.append(
            Phase(
                name=f"steps[{start}:{start + length}]",
                refs=refs,
                repeat=length,
                load=ArrayLoad(
                    "FIELD",
                    0,
                    tuple(float(c) for c in counts),
                    flops_per_unit=flops_per_particle,
                    boundary_bytes_per_unit=particle_bytes * crossing,
                ),
            )
        )

    # Figure 2 distributes the *cells* dimension; the small per-cell
    # record dimension stays on-processor (RANGE-style pruning).
    cells_only = TypePattern([ANY, NoDist()])
    candidates = enumerate_layouts(
        (ncell, nfield),
        machine,
        max_distributed_dims=1,
        genblock_hints={0: hints},
        range_=[cells_only],
    )
    initial = _find(candidates, dist_type("BLOCK", ":"))
    hand = [
        _find(candidates, dist_type(_genblock(h), ":")) for h in hints
    ]
    return Workload(
        name="pic",
        array="FIELD",
        shape=(ncell, nfield),
        machine=machine,
        phases=phases,
        candidates=candidates,
        initial=initial,
        hand=hand,
        description=(
            f"PIC {ncell} cells, {npart} particles, {steps} steps, "
            f"{machine.nprocs} procs, {machine.cost_model.name}"
        ),
    )


def _genblock(sizes):
    from ..core.dimdist import GenBlock

    return GenBlock(sizes)


# -- smoothing (§4 distribution choice) --------------------------------------


def smoothing_workload(
    n: int = 128,
    nprocs: int = 16,
    steps: int = 50,
    cost_model: CostModel = PARAGON,
    machine: Machine | None = None,
) -> Workload:
    """The §4 smoothing distribution choice as a planning problem.

    One phase of 4-nearest-neighbour shifts, repeated ``steps`` times;
    the candidate lattice spans 1-D strips and every 2-D grid
    factorization, so the planner reproduces the paper's N/p crossover
    (cf. :func:`repro.apps.smoothing.best_distribution`).
    """
    if machine is None:
        machine = Machine(ProcessorArray("P", (nprocs,)), cost_model=cost_model)
    refs = tuple(
        ArrayRef("U", AccessKind.SHIFT, offsets=off)
        for off in ((1, 0), (-1, 0), (0, 1), (0, -1))
    )
    phases = [Phase("smooth", refs, repeat=steps)]
    candidates = enumerate_layouts((n, n), machine)

    from ..apps.smoothing import best_distribution

    choice = best_distribution(n, machine.nprocs, machine.cost_model)
    if choice == "columns":
        hand_dist = _find(candidates, dist_type(":", "BLOCK"))
    else:
        side = int(round(machine.nprocs ** 0.5))
        hand_dist = _find(
            candidates, dist_type("BLOCK", "BLOCK"), grid=(side, side)
        )
    return Workload(
        name="smoothing",
        array="U",
        shape=(n, n),
        machine=machine,
        phases=phases,
        candidates=candidates,
        initial=None,
        hand=[hand_dist] if hand_dist is not None else None,
        description=(
            f"smoothing {n}x{n}, {steps} steps, {machine.nprocs} procs, "
            f"{machine.cost_model.name}"
        ),
    )


# -- registry ----------------------------------------------------------------

WORKLOADS = {
    "adi": adi_workload,
    "pic": pic_workload,
    "smoothing": smoothing_workload,
}


def get_workload(name: str, **kwargs) -> Workload:
    """Build a named workload (``adi`` | ``pic`` | ``smoothing``)."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"no workload named {name!r} (available: {sorted(WORKLOADS)})"
        ) from None
    return factory(**kwargs)


def _find(candidates, dtype, grid=None):
    for c in candidates:
        if c.dtype == dtype and (grid is None or c.target.shape == grid):
            return c
    return None
