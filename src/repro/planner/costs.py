"""The planner's cost engine — planner stage 3.

Prices the two kinds of modeled time a redistribution schedule trades
off:

- **phase cost** — what one phase costs under one candidate layout:
  per-reference communication from the compiler's §3.1 estimates
  (:func:`~repro.compiler.comm_analysis.estimate_ref`, converted to
  per-processor time through the machine's alpha/beta model), plus
  balanced compute, plus optional layout-*dependent* compute from an
  :class:`~repro.planner.phases.ArrayLoad` (the bottleneck processor's
  share — this is what makes imbalanced BLOCK layouts expensive in the
  PIC workload);
- **transition cost** — what moving an array between two layouts
  costs: the vectorized transfer matrix of the DISTRIBUTE
  implementation (shared, via the runtime's
  :class:`~repro.runtime.redistribute.PlanCache`, with the engine that
  will later execute the schedule), priced at the *bottleneck
  processor* — the maximum per-rank (messages, bytes) load, matching
  the network's serializing-endpoint semantics.

Both are memoized: the schedule search evaluates the same (phase,
layout) and (layout, layout) pairs many times.
"""

from __future__ import annotations

import numpy as np

from ..compiler.comm_analysis import estimate_ref
from ..core.distribution import Distribution
from ..core.query import TypePattern
from ..machine.machine import Machine
from ..obs import metrics as _obs
from ..runtime.redistribute import PlanCache
from .phases import ArrayLoad, Phase

__all__ = ["CostEngine", "SimulatedCostEngine"]

_MEMO_LOOKUPS = _obs.counter(
    "repro_planner_memo_lookups_total",
    "Cost-engine memo lookups, by memo table and outcome.",
    ("memo", "result"),
)


class CostEngine:
    """Memoized (phase, layout) and (layout, layout) pricing.

    Parameters
    ----------
    machine:
        Supplies the cost model and the processor count.
    itemsize:
        Bytes per array element (default: float64).
    plan_cache:
        Transfer-matrix cache to share with an executing
        :class:`~repro.runtime.engine.Engine` (pass its
        ``plan_cache``); a private one is created otherwise.
    """

    def __init__(
        self,
        machine: Machine,
        itemsize: int = 8,
        plan_cache: PlanCache | None = None,
    ):
        self.machine = machine
        self.cost_model = machine.cost_model
        self.itemsize = int(itemsize)
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache(capacity=256)
        )
        self._phase_memo: dict[tuple, float] = {}
        self._trans_memo: dict[tuple, float] = {}
        self._pattern_memo: dict[Distribution, TypePattern] = {}

    # -- phase pricing ---------------------------------------------------
    def phase_cost(self, phase: Phase, array: str, dist: Distribution) -> float:
        """Modeled time of ``phase`` (all repeats) for ``array`` under
        ``dist``; references to other arrays are not charged here."""
        key = (phase, array, dist)
        cached = self._phase_memo.get(key)
        if cached is not None:
            _MEMO_LOOKUPS.inc(memo="phase", result="hit")
            return cached
        _MEMO_LOOKUPS.inc(memo="phase", result="miss")
        comm, comp = self.comm_compute_split(phase, array, dist)
        total = (comm + comp) * phase.repeat
        self._phase_memo[key] = total
        return total

    def ref_cost(self, ref, dist: Distribution) -> float:
        """Per-execution communication time of one reference under
        ``dist`` — the §3.1 estimate averaged per processor."""
        pattern = self._pattern_memo.get(dist)
        if pattern is None:
            pattern = TypePattern(dist.dtype.dims)
            self._pattern_memo[dist] = pattern
        est = estimate_ref(ref, pattern, dist.shape, dist.proc_shape)
        if est.messages == 0 and est.volume == 0:
            return 0.0
        nprocs = max(1, dist.nprocs)
        return self.cost_model.transfer_time(
            est.messages / nprocs, est.volume * self.itemsize / nprocs
        )

    def load_cost(self, load: ArrayLoad, dist: Distribution) -> float:
        """Bottleneck compute time of a per-index load under ``dist``.

        The load's weights are assigned to owners along ``load.dim``;
        work within one slot is assumed evenly divisible across the
        processors that split the *other* dimensions.
        """
        d = load.dim
        dd = dist.dtype.dims[d]
        n = dist.shape[d]
        weights = np.asarray(load.weights, dtype=float)
        if len(weights) != n:
            raise ValueError(
                f"load has {len(weights)} weights, dimension extent is {n}"
            )
        if not dd.exclusive:
            # replicated: each replica does the full dim-work (divided
            # only by the processors splitting the other dimensions)
            # and nothing crosses an owner boundary
            p = dist.slots_along(d)
            other = max(1, dist.nprocs // max(1, p))
            bottleneck = float(weights.sum()) / other
            return self.cost_model.compute_time(
                bottleneck * load.flops_per_unit
            )
        p = dist.slots_along(d)
        owners = dd.owners_vec(n, p)
        per_slot = np.bincount(owners, weights=weights, minlength=p)
        other = max(1, dist.nprocs // max(1, p))
        bottleneck = float(per_slot.max()) / other
        time = self.cost_model.compute_time(bottleneck * load.flops_per_unit)
        if load.boundary_bytes_per_unit and n > 1:
            # owner-boundary traffic: weight units in indices adjacent
            # to a differently-owned neighbour pay the per-unit bytes;
            # messages aggregate per adjacent owner pair
            cut = owners[:-1] != owners[1:]
            edge = np.zeros(n, dtype=bool)
            edge[:-1] |= cut
            edge[1:] |= cut
            cross = float(weights[edge].sum())
            if cross > 0:
                pairs = {
                    (int(a), int(b))
                    for a, b in zip(owners[:-1][cut], owners[1:][cut])
                }
                msgs = 2 * len(pairs)
                nprocs = max(1, dist.nprocs)
                time += self.cost_model.transfer_time(
                    msgs / nprocs,
                    cross * load.boundary_bytes_per_unit / nprocs,
                )
        return time

    # -- transition pricing ----------------------------------------------
    def transition_cost(self, old: Distribution, new: Distribution) -> float:
        """Modeled time of ``DISTRIBUTE``-ing from ``old`` to ``new``:
        bottleneck-processor time of the aggregated all-to-all."""
        if old == new:
            return 0.0
        key = (old, new)
        cached = self._trans_memo.get(key)
        if cached is not None:
            _MEMO_LOOKUPS.inc(memo="transition", result="hit")
            return cached
        _MEMO_LOOKUPS.inc(memo="transition", result="miss")
        nprocs = self.machine.nprocs
        T = self.plan_cache.transfer_matrix(old, new, nprocs)
        sent_msgs = (T > 0).sum(axis=1)
        recv_msgs = (T > 0).sum(axis=0)
        sent_bytes = T.sum(axis=1) * self.itemsize
        recv_bytes = T.sum(axis=0) * self.itemsize
        time = max(
            self.cost_model.transfer_time(
                int(sent_msgs[r] + recv_msgs[r]),
                int(sent_bytes[r] + recv_bytes[r]),
            )
            for r in range(nprocs)
        )
        self._trans_memo[key] = time
        return time

    def comm_compute_split(
        self, phase: Phase, array: str, dist: Distribution
    ) -> tuple[float, float]:
        """Per-execution (communication, computation) times of one
        phase under ``dist`` — the decomposition the overlap-aware
        engine prices with split-phase semantics."""
        comm = 0.0
        for ref in phase.refs_to(array):
            comm += self.ref_cost(ref, dist)
        comp = 0.0
        if phase.load is not None and phase.load.array == array:
            comp += self.load_cost(phase.load, dist)
        if phase.work:
            comp += self.cost_model.compute_time(
                phase.work / self.machine.nprocs
            )
        return comm, comp

    # -- whole-sequence helpers -------------------------------------------
    def static_cost(
        self,
        phases,
        array: str,
        dist: Distribution,
        initial: Distribution | None = None,
    ) -> float:
        """Total cost of running every phase under the single layout
        ``dist`` (one up-front transition if ``initial`` differs)."""
        total = 0.0
        if initial is not None:
            total += self.transition_cost(initial, dist)
        for ph in phases:
            total += self.phase_cost(ph, array, dist)
        return total


class SimulatedCostEngine(CostEngine):
    """Timeline-aware pricing (the planner's ``cost_mode="simulated"``).

    The base engine charges every phase as communication *plus*
    computation and every transition as the bottleneck processor's
    serialized message sum — the aggregate (blocking) accounting.
    This engine prices against the discrete-event simulator's
    split-phase semantics instead:

    - **phases**: communication posted split-phase hides behind the
      phase's computation, so the per-execution time is
      ``max(comm, compute)`` rather than their sum — a layout whose
      traffic fits under its compute becomes as good as a
      communication-free one, which is exactly the freedom a schedule
      search needs to exploit overlap;
    - **transitions**: the DISTRIBUTE all-to-all is replayed through
      :func:`repro.sim.simulate` with ``overlap=True`` — message posts
      cost ``alpha`` per endpoint and the transfers pipeline in the
      background per link — so a transition costs its simulated
      split-phase makespan, not the blocking endpoint-serialized sum.

    With ``overlap=False`` both overrides degrade to blocking
    semantics: phases price as comm + compute and transitions as the
    blocking replay of the same exchange (equal, up to float
    association, to the base engine's closed form — asserted by the
    planner tests).

    Because this pricing runs inside the schedule search's inner loop,
    transitions are replayed through the vectorized array-backed
    replayer (:mod:`repro.sim.replay`) rather than the per-event loop,
    and memoized twice: per ``(old, new)`` layout pair, and — in the
    *trace memo* — per transfer-matrix content, so two transitions
    whose all-to-alls are identical (recurring phase pairs in a long
    schedule, mirrored workloads sharing a plan cache) simulate once.
    ``fast_replay=False`` forces the event-loop reference path (the
    bitwise oracle the property tests and the perf harness compare
    against).
    """

    def __init__(
        self,
        machine: Machine,
        itemsize: int = 8,
        plan_cache: PlanCache | None = None,
        overlap: bool = True,
        fast_replay: bool = True,
    ):
        super().__init__(machine, itemsize=itemsize, plan_cache=plan_cache)
        self.overlap = bool(overlap)
        self.fast_replay = bool(fast_replay)
        #: transfer-trace makespans keyed by (nprocs, T content): the
        #: per-(phase, layout-tuple) memo that stops the schedule
        #: search from re-simulating identical all-to-alls
        self._trace_memo: dict[tuple, float] = {}

    def phase_cost(self, phase: Phase, array: str, dist: Distribution) -> float:
        key = (phase, array, dist)
        cached = self._phase_memo.get(key)
        if cached is not None:
            _MEMO_LOOKUPS.inc(memo="phase", result="hit")
            return cached
        _MEMO_LOOKUPS.inc(memo="phase", result="miss")
        comm, comp = self.comm_compute_split(phase, array, dist)
        per_exec = max(comm, comp) if self.overlap else comm + comp
        total = per_exec * phase.repeat
        self._phase_memo[key] = total
        return total

    def transition_cost(self, old: Distribution, new: Distribution) -> float:
        if old == new:
            return 0.0
        key = (old, new)
        cached = self._trans_memo.get(key)
        if cached is not None:
            _MEMO_LOOKUPS.inc(memo="transition", result="hit")
            return cached
        _MEMO_LOOKUPS.inc(memo="transition", result="miss")
        nprocs = self.machine.nprocs
        T = self.plan_cache.transfer_matrix(old, new, nprocs)
        tkey = (nprocs, T.tobytes())
        time = self._trace_memo.get(tkey)
        if time is None:
            _MEMO_LOOKUPS.inc(memo="trace", result="miss")
            time = self._simulate_transfer(T, nprocs)
            self._trace_memo[tkey] = time
        else:
            _MEMO_LOOKUPS.inc(memo="trace", result="hit")
        self._trans_memo[key] = time
        return time

    def _simulate_transfer(self, T: np.ndarray, nprocs: int) -> float:
        """Makespan of one DISTRIBUTE all-to-all under this engine's
        semantics (split-phase or blocking)."""
        s, d = np.nonzero(T)
        nbytes = T[s, d] * self.itemsize
        if self.fast_replay:
            from ..sim.events import EventArrays
            from ..sim.replay import replay_blocking, replay_split_exchange

            if self.overlap:
                # every (s, d) pair occurs once in a transfer matrix,
                # so the single-phase fast path always applies
                return replay_split_exchange(
                    s.astype(np.int64), d.astype(np.int64), nbytes,
                    self.cost_model, nprocs,
                )
            arrays = EventArrays.exchange(s, d, nbytes)
            return replay_blocking(arrays, self.cost_model, nprocs).makespan
        # reference path: materialize the event log and replay it
        # through the per-event simulator (the bitwise oracle)
        from ..sim.events import EventLog
        from ..sim.simulate import simulate

        log = EventLog()
        phase = log.begin_phase("redistribute:plan")
        for q, r, nb in zip(s, d, nbytes):
            log.message(
                int(q), int(r), int(nb), "redistribute:plan", phase=phase
            )
        log.barrier()
        timeline = simulate(log, self.cost_model, nprocs, overlap=self.overlap)
        return timeline.makespan
