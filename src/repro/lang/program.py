"""Vienna Fortran program scopes over the engine.

:class:`VFProgram` is the surface-syntax front end: declaration
statements, executable DISTRIBUTE statements, IDT queries, and DCASE
constructs are given as (nearly) Vienna Fortran text and resolved
against an :class:`~repro.runtime.engine.Engine`.

Scoping rules implemented here (paper §2.3 item 5 and §5):

- each *procedure scope* has its own name space of declared arrays and
  its own connect classes — "the connect relation does not extend
  across procedure boundaries";
- a dynamic array redistributed inside a procedure keeps its new
  distribution when the procedure returns (Vienna Fortran semantics;
  "in contrast to Vienna Fortran, if an array is redistributed in a
  procedure, HPF does not permit the new distribution to be returned" —
  §5).  :class:`~repro.lang.procedures.Procedure` exposes both modes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.alignment import construct
from ..core.dynamic import DynamicAttr, Extraction
from ..core.query import DCase, Range
from ..machine.machine import Machine
from ..machine.topology import ProcessorArray, ProcessorSection
from ..runtime.engine import Engine
from .declarations import Declaration, parse_declaration
from .parser import (
    VFSyntaxError,
    parse_dist_expr,
    parse_pattern,
    parse_section,
)

__all__ = ["VFProgram", "Scope"]


class Scope:
    """One procedure scope: local array names mapped to engine names.

    Engine array names are mangled per scope (``main::V``,
    ``tridiag#1::X``) so that connect classes and declarations never
    leak between procedure activations.
    """

    def __init__(self, program: "VFProgram", name: str):
        self.program = program
        self.name = name
        self.local_names: dict[str, str] = {}  # local -> engine name

    def engine_name(self, local: str) -> str:
        try:
            return self.local_names[local]
        except KeyError:
            raise KeyError(
                f"array {local!r} is not declared in scope {self.name!r}"
            ) from None

    def bind(self, local: str, engine_name: str) -> None:
        if local in self.local_names:
            raise ValueError(f"{local!r} already declared in scope {self.name!r}")
        self.local_names[local] = engine_name


class VFProgram:
    """A Vienna Fortran program instance.

    Parameters
    ----------
    machine:
        The simulated machine to run on.
    env:
        Name bindings for PARAMETER-like constants used in declaration
        and distribution texts (e.g. ``{"N": 100, "NX": 64}``).
    """

    def __init__(self, machine: Machine, env: dict | None = None):
        self.machine = machine
        self.engine = Engine._create(machine)
        self.env = dict(env or {})
        self.env.setdefault("NP", machine.nprocs)  # the $NP intrinsic (§4)
        self._scopes: list[Scope] = [Scope(self, "main")]
        self._activation = 0

    # -- scope handling ---------------------------------------------------
    @property
    def scope(self) -> Scope:
        return self._scopes[-1]

    def push_scope(self, name: str) -> Scope:
        self._activation += 1
        s = Scope(self, f"{name}#{self._activation}")
        self._scopes.append(s)
        return s

    def pop_scope(self) -> None:
        if len(self._scopes) == 1:
            raise RuntimeError("cannot pop the main scope")
        self._scopes.pop()

    def _mangle(self, local: str) -> str:
        return f"{self.scope.name}::{local}"

    # -- the $NP intrinsic --------------------------------------------------
    @property
    def np_(self) -> int:
        """$NP: the number of executing processors (paper §4 footnote)."""
        return self.machine.nprocs

    # -- declarations ----------------------------------------------------------
    def declare(
        self, line: str, to: ProcessorSection | ProcessorArray | str | None = None
    ):
        """Execute a declaration statement; returns the declared arrays."""
        decl = parse_declaration(line, self.env)
        return self._apply_declaration(decl, to)

    def _resolve_to(
        self,
        to: ProcessorSection | ProcessorArray | str | None,
        decl_to: str | None = None,
    ) -> ProcessorSection | ProcessorArray | None:
        """Resolve a target section: explicit argument wins, then the
        declaration's ``TO`` clause text, parsed against this
        program's processor array."""
        if to is None and decl_to is not None:
            to = decl_to
        if isinstance(to, str):
            return parse_section(to, self.machine.processors, self.env)
        return to

    def _apply_declaration(
        self, decl: Declaration, to: ProcessorSection | ProcessorArray | str | None
    ):
        to = self._resolve_to(to, decl.to)
        arrays = []
        np_dtype = np.float64 if decl.type_name != "INTEGER" else np.int64
        for name, shape in zip(decl.names, decl.shapes):
            ename = self._mangle(name)
            if decl.connect_extraction is not None:
                primary = self.scope.engine_name(decl.connect_extraction)
                arr = self.engine.declare(
                    ename,
                    shape,
                    dynamic=DynamicAttr(
                        range_=Range(decl.range_) if decl.range_ else None
                    ),
                    connect=(primary, Extraction()),
                    dtype=np_dtype,
                )
            elif decl.connect_alignment is not None:
                target_local, alignment = decl.connect_alignment
                primary = self.scope.engine_name(target_local)
                if decl.dynamic:
                    arr = self.engine.declare(
                        ename,
                        shape,
                        dynamic=DynamicAttr(
                            range_=Range(decl.range_) if decl.range_ else None
                        ),
                        connect=(primary, alignment),
                        dtype=np_dtype,
                    )
                else:
                    # static ALIGN (paper Example 1): derive once, no class
                    target_arr = self.engine.arrays[primary]
                    derived = construct(alignment, target_arr.dist, shape)
                    arr = self.engine.declare(
                        ename, shape, dist=derived, dtype=np_dtype
                    )
            elif decl.dynamic:
                arr = self.engine.declare(
                    ename,
                    shape,
                    dynamic=DynamicAttr(
                        range_=Range(decl.range_) if decl.range_ else None,
                        initial=decl.dist,
                    ),
                    to=to,
                    dtype=np_dtype,
                )
            else:
                if decl.dist is None:
                    raise VFSyntaxError(
                        f"static array {name!r} needs a DIST clause", name, 0
                    )
                arr = self.engine.declare(
                    ename, shape, dist=decl.dist, to=to, dtype=np_dtype
                )
            self.scope.bind(name, ename)
            arrays.append(arr)
        return arrays if len(arrays) > 1 else arrays[0]

    # -- executable statements -----------------------------------------------------
    def distribute(
        self,
        names: str | Sequence[str],
        expr: str,
        to: ProcessorSection | ProcessorArray | str | None = None,
        notransfer: Sequence[str] = (),
    ):
        """``DISTRIBUTE B1, B2 :: (expr) [NOTRANSFER (...)]``.

        The paper's Example 3 distributes several primaries in one
        statement; each is redistributed independently (their classes
        stay independent).  Distribution extraction (``"=B1"``) and
        mixed forms like ``"(=B1, CYCLIC(3))"`` are resolved against
        the current scope: extraction *components* copy the referenced
        array's current per-dimension distributions.
        """
        if isinstance(names, str):
            names = [n.strip() for n in names.split(",")]
        expr = expr.strip()
        to = self._resolve_to(to)
        reports = []
        for name in names:
            ename = self.scope.engine_name(name)
            dist_arg = self._resolve_dist_arg(expr)
            reports.extend(
                self.engine.distribute(
                    ename,
                    dist_arg,
                    to=to,
                    notransfer=[self.scope.engine_name(n) for n in notransfer],
                )
            )
        return reports

    def _resolve_dist_arg(self, expr: str):
        """Resolve a distribute-statement RHS, expanding ``=NAME`` parts."""
        if expr.startswith("=") and "(" not in expr:
            return "=" + self.scope.engine_name(expr[1:].strip())
        if "=" in expr:
            # mixed form "(=B1, CYCLIC(3))": splice the referenced
            # array's dimension distributions into the expression.
            import re as _re

            def _sub(m: "_re.Match[str]") -> str:
                ref = self.scope.engine_name(m.group(1))
                dims = self.engine.arrays[ref].dist.dtype.dims
                return ", ".join(repr(d) for d in dims)

            expr = _re.sub(r"=\s*([A-Za-z_][A-Za-z_0-9]*)", _sub, expr)
        return parse_dist_expr(expr, self.env)

    # -- queries ------------------------------------------------------------------
    def idt(self, name: str, pattern: str, section=None) -> bool:
        return self.engine.idt(
            self.scope.engine_name(name), parse_pattern(pattern, self.env), section
        )

    def dcase(self, *names: str) -> DCase:
        """Open a DCASE; query lists given to ``.case`` may be pattern
        *strings* (they are parsed with this program's env)."""
        engine_names = [self.scope.engine_name(n) for n in names]
        selectors = [
            (local, self.engine.arrays[ename].dist)
            for local, ename in zip(names, engine_names)
        ]
        dc = DCase(selectors)
        original_case = dc.case

        def case_with_parsing(queries, action):
            if isinstance(queries, str):
                queries = [queries]
            if isinstance(queries, dict):
                queries = {
                    k: parse_pattern(v, self.env) if isinstance(v, str) else v
                    for k, v in queries.items()
                }
            elif isinstance(queries, (list, tuple)):
                queries = [
                    parse_pattern(q, self.env) if isinstance(q, str) else q
                    for q in queries
                ]
            return original_case(queries, action)

        dc.case = case_with_parsing  # type: ignore[method-assign]
        return dc

    # -- procedures -----------------------------------------------------------
    def procedure(
        self,
        name: str,
        formals: Sequence[tuple[str, str | None]] | Sequence[str],
        body,
        restore: str = "vf",
    ):
        """Define a procedure callable through :meth:`call`.

        ``formals`` is a list of ``(name, dist_expr_or_None)`` pairs
        (or bare names).  ``body(prog, **arrays)`` executes inside a
        fresh scope: the formal names are bound to the actual arrays
        there, any arrays the body declares are local to the call, and
        connect classes never leak (§2.3 item 5).  Entry/return
        distribution semantics follow :class:`~repro.lang.procedures.Procedure`.
        """
        from .procedures import FormalArg, Procedure

        args = []
        for f in formals:
            if isinstance(f, str):
                args.append(FormalArg(f))
            else:
                fname, fdist = f
                args.append(FormalArg(fname, fdist))

        program = self

        def wrapped_body(engine, **arrays):
            scope = program.push_scope(name)
            try:
                for local_name, arr in arrays.items():
                    scope.bind(local_name, arr.name)
                return body(program, **arrays)
            finally:
                program.pop_scope()

        proc = Procedure(name, args, wrapped_body, restore=restore)
        self._procedures = getattr(self, "_procedures", {})
        self._procedures[name] = proc
        return proc

    def call(self, name: str, **actuals_by_formal: str):
        """Call a defined procedure, naming actual arrays of the
        current scope: ``prog.call("TRIDIAG", X="V")``."""
        procedures = getattr(self, "_procedures", {})
        if name not in procedures:
            raise KeyError(f"no procedure named {name!r} defined")
        arrays = {
            formal: self.engine.arrays[self.scope.engine_name(actual)]
            for formal, actual in actuals_by_formal.items()
        }
        return procedures[name](self.engine, env=self.env, **arrays)

    # -- data access -------------------------------------------------------------
    def array(self, name: str):
        """The :class:`~repro.runtime.darray.DistributedArray` for a
        locally declared name."""
        return self.engine.arrays[self.scope.engine_name(name)]

    def __repr__(self) -> str:
        return (
            f"VFProgram(scope={self.scope.name!r}, "
            f"arrays={list(self.scope.local_names)})"
        )
