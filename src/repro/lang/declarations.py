"""Declaration-statement parsing.

Turns (slightly normalized) Vienna Fortran declaration lines into
structured :class:`Declaration` records, so the paper's examples can be
transcribed almost verbatim::

    REAL B2(N) DYNAMIC, DIST (BLOCK)
    REAL B3(N,N) DYNAMIC, RANGE ((BLOCK, BLOCK),(*,CYCLIC)), DIST (BLOCK, CYCLIC)
    REAL A1(N,N) DYNAMIC, CONNECT (=B4)
    REAL A2(N,N) DYNAMIC, CONNECT A2(I,J) WITH B4(I,J)
    REAL U(NX, NY) DIST (:, BLOCK)

Multiple array names per statement are supported (``REAL B3(N,N),
B4(N,N) DYNAMIC, ...``).  Shapes may use names bound in ``env``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.alignment import Alignment
from ..core.distribution import DistributionType
from ..core.query import TypePattern
from .parser import VFSyntaxError, parse_alignment, parse_dist_expr, parse_pattern

__all__ = ["Declaration", "parse_declaration"]


@dataclass
class Declaration:
    """One parsed declaration statement (possibly several arrays)."""

    type_name: str  # REAL | INTEGER
    names: list[str] = field(default_factory=list)
    shapes: list[tuple[int, ...]] = field(default_factory=list)
    dynamic: bool = False
    range_: list[TypePattern] | None = None
    dist: DistributionType | None = None
    to: str | None = None  # processor section text (resolved by the program)
    connect_extraction: str | None = None  # primary name for CONNECT (=B)
    connect_alignment: tuple[str, Alignment] | None = None  # (primary, alignment)


_HEAD_RE = re.compile(
    r"^\s*(REAL|INTEGER|DOUBLE\s+PRECISION|LOGICAL)\s+", re.IGNORECASE
)


def _split_top_commas(text: str) -> list[str]:
    """Split on commas not nested inside parentheses."""
    parts, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise VFSyntaxError("unbalanced ')'", text, 0)
        if ch == "," and depth == 0:
            parts.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if depth != 0:
        raise VFSyntaxError("unbalanced '('", text, 0)
    tail = "".join(cur).strip()
    if tail:
        parts.append(tail)
    return parts


def _eval_extent(token: str, env: dict) -> int:
    token = token.strip()
    if re.fullmatch(r"\d+", token):
        return int(token)
    if token in env:
        return int(env[token])
    raise VFSyntaxError(f"unbound extent {token!r}", token, 0)


def _parse_array_spec(spec: str, env: dict) -> tuple[str, tuple[int, ...]]:
    m = re.fullmatch(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^)]*)\)\s*", spec)
    if m is None:
        raise VFSyntaxError(f"bad array spec {spec!r}", spec, 0)
    name = m.group(1)
    extents = tuple(
        _eval_extent(t, env) for t in m.group(2).split(",") if t.strip()
    )
    if not extents:
        raise VFSyntaxError(f"array {name!r} has no dimensions", spec, 0)
    return name, extents


def parse_declaration(line: str, env: dict | None = None) -> Declaration:
    """Parse one declaration statement (continuation ``&`` stripped)."""
    env = env or {}
    line = " ".join(seg.strip().lstrip("&").strip() for seg in line.splitlines())
    m = _HEAD_RE.match(line)
    if m is None:
        raise VFSyntaxError("declaration must start with a type keyword", line, 0)
    decl = Declaration(type_name=m.group(1).upper())
    rest = line[m.end():]

    # The paper writes "REAL C(10,10,10) DIST (...)" with no comma
    # between the last array spec and the first keyword: split at the
    # first top-level keyword occurrence.
    keyword_re = re.compile(
        r"^\s*(DYNAMIC|RANGE|DIST|CONNECT|ALIGN)\b", re.IGNORECASE
    )
    split_at = len(rest)
    depth = 0
    kw_find = re.compile(r"\b(DYNAMIC|RANGE|DIST|CONNECT|ALIGN)\b", re.IGNORECASE)
    for mm in kw_find.finditer(rest):
        depth = rest[: mm.start()].count("(") - rest[: mm.start()].count(")")
        if depth == 0:
            split_at = mm.start()
            break
    array_part = rest[:split_at].rstrip().rstrip(",")
    clause_part = rest[split_at:].strip()

    for spec in _split_top_commas(array_part):
        name, shape = _parse_array_spec(spec, env)
        decl.names.append(name)
        decl.shapes.append(shape)
    if not decl.names:
        raise VFSyntaxError("no arrays declared", line, 0)

    clauses = _split_top_commas(clause_part) if clause_part else []
    for clause in clauses:
        kw_match = keyword_re.match(clause)
        if kw_match is None:
            raise VFSyntaxError(f"unexpected clause {clause!r}", line, 0)
        kw = kw_match.group(1).upper()
        body = clause[kw_match.end():].strip()
        if kw == "DYNAMIC":
            if body:
                raise VFSyntaxError("DYNAMIC takes no arguments", clause, 0)
            decl.dynamic = True
        elif kw == "RANGE":
            if not (body.startswith("(") and body.endswith(")")):
                raise VFSyntaxError("RANGE needs a parenthesized list", clause, 0)
            inner = body[1:-1]
            decl.range_ = [
                parse_pattern(p, env) for p in _split_top_commas(inner)
            ]
        elif kw == "DIST":
            # optional "TO section" suffix
            to_match = re.search(r"\bTO\b", body, re.IGNORECASE)
            if to_match:
                decl.to = body[to_match.end():].strip()
                body = body[: to_match.start()].strip()
            decl.dist = parse_dist_expr(body, env)
        elif kw in ("CONNECT", "ALIGN"):
            body_stripped = body.strip()
            ext = re.fullmatch(r"\(\s*=\s*([A-Za-z_][A-Za-z_0-9]*)\s*\)", body_stripped)
            if ext:
                decl.connect_extraction = ext.group(1)
            else:
                if kw == "ALIGN":
                    # ALIGN D(I,J,K) WITH C(J,I,K): source given explicitly
                    src, tgt, alignment = parse_alignment(body_stripped, env)
                    if src not in decl.names:
                        raise VFSyntaxError(
                            f"ALIGN source {src!r} is not a declared array",
                            clause,
                            0,
                        )
                else:
                    src, tgt, alignment = parse_alignment(body_stripped, env)
                    if src not in decl.names:
                        raise VFSyntaxError(
                            f"CONNECT source {src!r} is not a declared array",
                            clause,
                            0,
                        )
                decl.connect_alignment = (tgt, alignment)
    if decl.connect_extraction or decl.connect_alignment:
        if not decl.dynamic and decl.connect_extraction:
            raise VFSyntaxError("CONNECT requires DYNAMIC", line, 0)
    return decl
