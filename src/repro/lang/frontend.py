"""A Vienna Fortran program-text frontend for the compiler analyses.

The VFCS consumes whole Vienna Fortran programs; our compiler analyses
(:mod:`repro.compiler`) consume the mini-IR.  This module bridges
them: :func:`parse_program` turns (slightly normalized) Vienna Fortran
source into an :class:`~repro.compiler.ir.IRProgram`, so the paper's
code figures can be fed to the reaching-distribution analysis, the
partial evaluator and the optimizer as *text*.

Supported statement forms (line-oriented, ``&`` continuations folded,
``C``/``!`` comments stripped, keywords case-insensitive)::

    PROGRAM name ... END
    SUBROUTINE name(a, b) ... END
    REAL V(NX, NY) DYNAMIC, RANGE ((:, BLOCK), (BLOCK, :)), DIST (:, BLOCK)
    DISTRIBUTE V :: (BLOCK, :)
    PLAN V                         ! opt V into automatic planning

    DO [I = 1, N] ... ENDDO
    IF (IDT(V, (BLOCK, :))) THEN ... [ELSE ...] ENDIF
    IF (<anything else>) THEN ... [ELSE ...] ENDIF      ! opaque branch
    SELECT DCASE (B1, B2) / CASE (...),(...) / CASE B1: (...) /
        CASE DEFAULT / END SELECT
    CALL sub(V, U)                 ! whole-array actuals, defined callee
    CALL TRIDIAG(V(:, J), NX)      ! section actual -> ROW_SWEEP access
    U(I, J) = 0.25 * (U(I-1, J) + U(I+1, J) + ...)      ! assignment

Assignment right-hand sides are scanned for array references, which
are classified against the left-hand side's subscript variables:
identical subscripts -> IDENTITY; constant offsets -> SHIFT; ``:`` ->
ROW_SWEEP along that dimension; a nested array reference (``X(IX(I))``)
or any unrecognized subscript -> INDIRECT.  Scalars (names never
declared as arrays) are ignored.

The goal is analysis fidelity, not full Fortran: expressions are not
evaluated, only their array references matter (exactly the abstraction
the reaching-distribution problem needs).
"""

from __future__ import annotations

import re

from ..compiler.ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
)
from ..core.query import QueryList, TypePattern
from .declarations import _split_top_commas, parse_declaration
from .parser import VFSyntaxError, parse_pattern

__all__ = ["parse_program"]


_COMMENT_RE = re.compile(r"^(C\s|C$|!|\*)", re.IGNORECASE)


def _normalize_lines(text: str) -> list[str]:
    """Strip comments, fold `&` continuations, drop blanks."""
    raw = text.splitlines()
    lines: list[str] = []
    for line in raw:
        stripped = line.strip()
        if not stripped or _COMMENT_RE.match(stripped):
            continue
        bang = _find_trailing_comment(stripped)
        if bang is not None:
            stripped = stripped[:bang].rstrip()
            if not stripped:
                continue
        if stripped.startswith("&") and lines:
            lines[-1] += " " + stripped.lstrip("&").strip()
        else:
            lines.append(stripped)
    return lines


def _find_trailing_comment(line: str) -> int | None:
    depth = 0
    for i, ch in enumerate(line):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "!" and depth == 0:
            return i
    return None


_NAME = r"[A-Za-z_][A-Za-z_0-9]*"
_PROGRAM_RE = re.compile(rf"^PROGRAM\s+({_NAME})\s*$", re.IGNORECASE)
_SUBROUTINE_RE = re.compile(
    rf"^SUBROUTINE\s+({_NAME})\s*\(([^)]*)\)\s*$", re.IGNORECASE
)
_END_RE = re.compile(r"^END(\s+(PROGRAM|SUBROUTINE).*)?$", re.IGNORECASE)
_DECL_RE = re.compile(
    r"^(REAL|INTEGER|DOUBLE\s+PRECISION|LOGICAL)\b", re.IGNORECASE
)
_DISTRIBUTE_RE = re.compile(
    rf"^DISTRIBUTE\s+({_NAME}(?:\s*,\s*{_NAME})*)\s*::\s*(.+?)"
    r"(\s+NOTRANSFER\s*\((?P<nt>[^)]*)\))?$",
    re.IGNORECASE,
)
_PLAN_RE = re.compile(
    rf"^PLAN\s+({_NAME}(?:\s*,\s*{_NAME})*)\s*$", re.IGNORECASE
)
_DO_RE = re.compile(r"^DO\b(\s+.+)?$", re.IGNORECASE)
_ENDDO_RE = re.compile(r"^END\s*DO$", re.IGNORECASE)
_IF_RE = re.compile(r"^IF\s*\((?P<cond>.*)\)\s*THEN$", re.IGNORECASE)
_ELSE_RE = re.compile(r"^ELSE$", re.IGNORECASE)
_ENDIF_RE = re.compile(r"^END\s*IF$", re.IGNORECASE)
_SELECT_RE = re.compile(
    rf"^SELECT\s+DCASE\s*\(\s*({_NAME}(?:\s*,\s*{_NAME})*)\s*\)$",
    re.IGNORECASE,
)
_CASE_RE = re.compile(r"^CASE\s+(.*)$", re.IGNORECASE)
_ENDSELECT_RE = re.compile(r"^END\s*SELECT$", re.IGNORECASE)
_CALL_RE = re.compile(rf"^CALL\s+({_NAME})\s*\((.*)\)\s*$", re.IGNORECASE)
_ASSIGN_RE = re.compile(
    rf"^({_NAME})\s*(\(([^=]*)\))?\s*=\s*(.+)$"
)
_IDT_RE = re.compile(
    rf"^\s*IDT\s*\(\s*({_NAME})\s*,\s*(.+)\)\s*$", re.IGNORECASE
)
_ARRAY_REF_RE = re.compile(rf"({_NAME})\s*\(")


class _Frontend:
    def __init__(self, text: str, env: dict | None = None):
        self.lines = _normalize_lines(text)
        self.env = dict(env or {})
        self.pos = 0
        self.program = IRProgram()
        self.array_dims: dict[str, int] = {}  # known arrays -> rank
        self.loop_vars: list[str] = []

    # -- cursor ---------------------------------------------------------
    def peek(self) -> str | None:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next(self) -> str:
        line = self.peek()
        if line is None:
            raise VFSyntaxError("unexpected end of program", "", 0)
        self.pos += 1
        return line

    # -- top level ----------------------------------------------------------
    def parse(self) -> IRProgram:
        saw_unit = False
        while self.peek() is not None:
            line = self.next()
            m = _PROGRAM_RE.match(line)
            if m:
                body = self._parse_body()
                self.program.add_proc(ProcDef(m.group(1).lower(), (), body))
                if self.program.entry not in self.program.procs:
                    self.program.entry = m.group(1).lower()
                saw_unit = True
                continue
            m = _SUBROUTINE_RE.match(line)
            if m:
                formals = tuple(
                    a.strip() for a in m.group(2).split(",") if a.strip()
                )
                for f in formals:
                    self.array_dims.setdefault(f, 2)  # assume array formal
                body = self._parse_body()
                self.program.add_proc(ProcDef(m.group(1), formals, body))
                saw_unit = True
                continue
            raise VFSyntaxError(
                f"expected PROGRAM or SUBROUTINE, got {line!r}", line, 0
            )
        if not saw_unit:
            raise VFSyntaxError("empty program", "", 0)
        return self.program

    # -- statement blocks -------------------------------------------------------
    def _parse_body(self, terminators=(_END_RE,)) -> Block:
        stmts = []
        while True:
            line = self.peek()
            if line is None:
                raise VFSyntaxError("missing END", "", 0)
            if any(t.match(line) for t in terminators):
                self.next()
                return Block(stmts)
            stmt = self._parse_statement()
            if isinstance(stmt, _Compound):
                stmts.extend(stmt.stmts)
            elif stmt is not None:
                stmts.append(stmt)

    def _parse_block_until(self, *terminators) -> tuple[Block, str]:
        """Parse statements until one of the terminator regexes matches;
        returns (block, matched line) with the terminator consumed."""
        stmts = []
        while True:
            line = self.peek()
            if line is None:
                raise VFSyntaxError("unterminated block", "", 0)
            for t in terminators:
                if t.match(line):
                    self.next()
                    return Block(stmts), line
            stmt = self._parse_statement()
            if isinstance(stmt, _Compound):
                stmts.extend(stmt.stmts)
            elif stmt is not None:
                stmts.append(stmt)

    # -- single statements --------------------------------------------------------
    def _parse_statement(self):
        line = self.next()

        if _DECL_RE.match(line):
            decl = parse_declaration(line, self.env)
            for name, shape in zip(decl.names, decl.shapes):
                self.array_dims[name] = len(shape)
                initial = (
                    TypePattern(decl.dist.dims) if decl.dist is not None else None
                )
                range_ = decl.range_
                self.program.declare(name, initial=initial, range_=range_)
            return None

        m = _DISTRIBUTE_RE.match(line)
        if m:
            names = [n.strip() for n in m.group(1).split(",")]
            expr = m.group(2).strip()
            pattern = parse_pattern(expr, self.env)
            stmts = [DistributeStmt(n, pattern) for n in names]
            if len(stmts) == 1:
                return stmts[0]
            # several primaries: wrap in an inline block-equivalent by
            # queueing the extras (simplest: nest into a Block via If
            # with empty else is wrong; instead push back onto lines)
            # -> emit a synthetic compound using Loop-free chaining:
            return _Compound(stmts)

        m = _PLAN_RE.match(line)
        if m:
            # PLAN V [, U ...] — opt arrays into automatic distribution
            # planning.  Not executable: recorded on the program only.
            self.program.mark_planned(
                *(n.strip() for n in m.group(1).split(","))
            )
            return None

        if _DO_RE.match(line) and not _ENDDO_RE.match(line):
            header = line.split("=", 1)
            var = None
            if len(header) == 2:
                mvar = re.match(
                    rf"^DO\s+({_NAME})\s*$", header[0].strip(), re.IGNORECASE
                )
                if mvar:
                    var = mvar.group(1)
            trip = self._trip_count(header) if var else None
            if var:
                self.loop_vars.append(var)
            body, _ = self._parse_block_until(_ENDDO_RE)
            if var:
                self.loop_vars.pop()
            return Loop(body, trip=trip)

        m = _IF_RE.match(line)
        if m:
            cond = m.group("cond").strip()
            idt_cond = None
            midt = _IDT_RE.match(cond)
            if midt:
                idt_cond = (
                    midt.group(1),
                    parse_pattern(midt.group(2).strip(), self.env),
                )
            then, terminator = self._parse_block_until(_ELSE_RE, _ENDIF_RE)
            if _ELSE_RE.match(terminator):
                orelse, _ = self._parse_block_until(_ENDIF_RE)
            else:
                orelse = Block([])
            return If(then, orelse, idt_cond=idt_cond)

        m = _SELECT_RE.match(line)
        if m:
            selectors = tuple(s.strip() for s in m.group(1).split(","))
            return self._parse_dcase(selectors)

        m = _CALL_RE.match(line)
        if m:
            return self._parse_call(m.group(1), m.group(2))

        m = _ASSIGN_RE.match(line)
        if m and m.group(1) in self.array_dims:
            return self._parse_assignment(m)

        # unknown statements (scalar assignments, PARAMETER, etc.) are
        # irrelevant to the analysis and skipped
        return None

    def _trip_count(self, header: list[str]) -> int | None:
        """Trip count of ``DO I = lo, hi[, step]`` when the bounds
        resolve to integers (literals or ``env`` names); else None."""
        if len(header) != 2:
            return None
        bounds = [b.strip() for b in header[1].split(",")]
        if len(bounds) not in (2, 3):
            return None
        values = [self._scalar_int(b) for b in bounds]
        if any(v is None for v in values):
            return None
        lo, hi = values[0], values[1]
        step = values[2] if len(values) == 3 else 1
        if step == 0:
            return None
        return max(0, (hi - lo) // step + 1)

    def _scalar_int(self, text: str) -> int | None:
        text = text.strip()
        if re.fullmatch(r"[+-]?\d+", text):
            return int(text)
        if text in self.env:
            try:
                return int(self.env[text])
            except (TypeError, ValueError):
                return None
        return None

    # -- DCASE ---------------------------------------------------------------------
    def _parse_dcase(self, selectors) -> DCaseStmt:
        arms = []
        # first CASE line
        while True:
            line = self.peek()
            if line is None:
                raise VFSyntaxError("unterminated SELECT DCASE", "", 0)
            if _ENDSELECT_RE.match(line):
                self.next()
                return DCaseStmt(selectors, tuple(arms))
            mcase = _CASE_RE.match(self.next())
            if not mcase:
                raise VFSyntaxError(f"expected CASE, got {line!r}", line, 0)
            cond_text = mcase.group(1).strip()
            body, terminator = self._parse_block_until_case()
            if cond_text.upper() == "DEFAULT":
                arms.append((None, body))
            else:
                arms.append((self._parse_querylist(cond_text, selectors), body))
            if terminator is not None and _ENDSELECT_RE.match(terminator):
                return DCaseStmt(selectors, tuple(arms))

    def _parse_block_until_case(self):
        """Statements up to the next CASE (not consumed) or END SELECT
        (consumed; returned)."""
        stmts = []
        while True:
            line = self.peek()
            if line is None:
                raise VFSyntaxError("unterminated CASE block", "", 0)
            if _CASE_RE.match(line):
                return Block(stmts), None
            if _ENDSELECT_RE.match(line):
                self.next()
                return Block(stmts), line
            stmt = self._parse_statement()
            if isinstance(stmt, _Compound):
                stmts.extend(stmt.stmts)
            elif stmt is not None:
                stmts.append(stmt)

    def _parse_querylist(self, text: str, selectors) -> QueryList:
        # name-tagged if it contains "NAME:" prefixes
        if re.match(rf"^\s*{_NAME}\s*:", text):
            tagged: dict[str, object] = {}
            for part in _split_top_commas(text):
                mm = re.match(rf"^\s*({_NAME})\s*:\s*(.+)$", part)
                if not mm:
                    raise VFSyntaxError(f"bad tagged query {part!r}", text, 0)
                tagged[mm.group(1)] = parse_pattern(mm.group(2).strip(), self.env)
            return QueryList(tagged)
        queries = [
            parse_pattern(p, self.env) for p in _split_top_commas(text)
        ]
        return QueryList(queries)

    # -- CALL ------------------------------------------------------------------------
    def _parse_call(self, callee: str, argtext: str):
        args = [a.strip() for a in _split_top_commas(argtext) if a.strip()]
        bindings: dict[str, str] = {}
        section_refs: list[ArrayRef] = []
        whole_arrays: list[str] = []
        for arg in args:
            mref = re.match(rf"^({_NAME})\s*\((.*)\)$", arg)
            if mref and mref.group(1) in self.array_dims:
                # section actual like V(:, J): classify the sweep dim
                name = mref.group(1)
                subs = [s.strip() for s in _split_top_commas(mref.group(2))]
                sweep_dims = [d for d, s in enumerate(subs) if s == ":"]
                if sweep_dims:
                    section_refs.append(
                        ArrayRef(name, AccessKind.ROW_SWEEP, dim=sweep_dims[0])
                    )
                else:
                    section_refs.append(ArrayRef(name))
            elif arg in self.array_dims:
                whole_arrays.append(arg)
            # scalar arguments ignored
        if callee in self.program.procs and not section_refs:
            formals = self.program.procs[callee].formals
            for formal, actual in zip(formals, whole_arrays):
                bindings[formal] = actual
            return Call(callee, bindings)
        if section_refs or whole_arrays:
            # external routine: model as an assignment touching the refs
            refs = tuple(
                section_refs + [ArrayRef(a) for a in whole_arrays]
            )
            return Assign(refs[0], refs, label=f"call {callee}")
        return None

    # -- assignments --------------------------------------------------------------------
    def _parse_assignment(self, m: re.Match) -> Assign:
        lhs_name = m.group(1)
        lhs_subs_text = m.group(3) or ""
        rhs = m.group(4)
        lhs_subs = [
            s.strip() for s in _split_top_commas(lhs_subs_text) if s.strip()
        ]
        lhs_ref = ArrayRef(lhs_name)
        reads = self._extract_refs(rhs, lhs_subs)
        return Assign(lhs_ref, tuple(reads))

    def _extract_refs(self, expr: str, lhs_subs: list[str]) -> list[ArrayRef]:
        refs: list[ArrayRef] = []
        for m in _ARRAY_REF_RE.finditer(expr):
            name = m.group(1)
            if name not in self.array_dims:
                continue  # intrinsic function or scalar
            # find the balanced subscript text
            depth = 0
            start = m.end() - 1
            end = start
            for i in range(start, len(expr)):
                if expr[i] == "(":
                    depth += 1
                elif expr[i] == ")":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            subs = [
                s.strip()
                for s in _split_top_commas(expr[start + 1 : end])
                if s.strip()
            ]
            refs.append(self._classify_ref(name, subs, lhs_subs))
        return refs

    def _classify_ref(
        self, name: str, subs: list[str], lhs_subs: list[str]
    ) -> ArrayRef:
        sweep_dims = [d for d, s in enumerate(subs) if s == ":"]
        if sweep_dims:
            return ArrayRef(name, AccessKind.ROW_SWEEP, dim=sweep_dims[0])
        offsets: list[int] = []
        for d, s in enumerate(subs):
            base = lhs_subs[d] if d < len(lhs_subs) else None
            off = self._offset_of(s, base)
            if off is None:
                return ArrayRef(name, AccessKind.INDIRECT)
            offsets.append(off)
        if any(offsets):
            return ArrayRef(name, AccessKind.SHIFT, offsets=tuple(offsets))
        return ArrayRef(name)

    def _offset_of(self, sub: str, base: str | None) -> int | None:
        """Constant offset of ``sub`` relative to the lhs subscript
        variable ``base``; None when not an affine-by-1 form."""
        sub = sub.replace(" ", "")
        if base is None:
            return None
        base = base.replace(" ", "")
        if sub == base:
            return 0
        m = re.match(rf"^{re.escape(base)}([+-]\d+)$", sub)
        if m:
            return int(m.group(1))
        return None


class _Compound(Block):
    """Internal marker: several statements from one source line."""


def parse_program(text: str, env: dict | None = None) -> IRProgram:
    """Parse Vienna Fortran program text into an IRProgram."""
    return _Frontend(text, env).parse()
