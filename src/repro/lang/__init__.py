"""Vienna Fortran surface-syntax layer.

A parser for distribution expressions / patterns / alignments /
processor declarations, declaration-statement parsing, program scopes
(connect classes do not cross procedure boundaries), and procedure
calls with implicit argument redistribution.
"""

from .declarations import Declaration, parse_declaration
from .frontend import parse_program
from .parser import (
    VFSyntaxError,
    parse_alignment,
    parse_dist_expr,
    parse_pattern,
    parse_processors,
    parse_section,
)
from .procedures import FormalArg, Procedure
from .program import Scope, VFProgram

__all__ = [
    "VFSyntaxError",
    "parse_dist_expr",
    "parse_pattern",
    "parse_alignment",
    "parse_processors",
    "parse_section",
    "parse_program",
    "Declaration",
    "parse_declaration",
    "VFProgram",
    "Scope",
    "Procedure",
    "FormalArg",
]
