"""Parser for Vienna Fortran distribution and alignment syntax.

The engine's Python API takes structured objects; this module accepts
the paper's *surface syntax* so examples can be written nearly verbatim:

- distribution expressions (§2.2)::

      parse_dist_expr("(BLOCK, CYCLIC(3), :)")
      parse_dist_expr("B_BLOCK(BOUNDS)", env={"BOUNDS": [3, 5, 2]})
      parse_dist_expr("(CYCLIC(K))", env={"K": 4})

- distribution *patterns* with wildcards, for RANGE / DCASE / IDT::

      parse_pattern("(BLOCK, *)")
      parse_pattern("(CYCLIC(*), CYCLIC)")
      parse_pattern("*")

- alignment specifications (§2.2, Example 1)::

      parse_alignment("D(I,J,K) WITH C(J,I,K)")
      parse_alignment("A(I) WITH B(2*I+1)")

- processor declarations::

      parse_processors("R(1:4, 1:4)")   # PROCESSORS R(1:4,1:4)

The parser is a hand-written tokenizer + recursive descent; it is
deliberately small and raises :class:`VFSyntaxError` with positions.
"""

from __future__ import annotations

import re
from typing import Sequence

from ..core.alignment import Alignment, AxisMap
from ..core.dimdist import Block, Cyclic, GenBlock, NoDist, Replicated, SBlock
from ..core.distribution import DistributionType
from ..core.query import ANY, TypePattern, Wild
from ..machine.topology import ProcessorArray

__all__ = [
    "VFSyntaxError",
    "parse_dist_expr",
    "parse_pattern",
    "parse_alignment",
    "parse_processors",
    "parse_section",
]


class VFSyntaxError(ValueError):
    """A syntax error in Vienna Fortran surface text."""

    def __init__(self, message: str, text: str, pos: int):
        super().__init__(f"{message} at position {pos}: {text!r}")
        self.text = text
        self.pos = pos


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<sym>[(),:*+\-=/]))"
)


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens: list[tuple[str, str, int]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise VFSyntaxError("unexpected character", text, pos)
        if m.group("num"):
            tokens.append(("num", m.group("num"), m.start()))
        elif m.group("name"):
            tokens.append(("name", m.group("name"), m.start()))
        else:
            tokens.append(("sym", m.group("sym"), m.start()))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, text: str, env: dict | None = None):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0
        self.env = env or {}

    # -- token helpers ---------------------------------------------------
    def peek(self) -> tuple[str, str, int] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> tuple[str, str, int]:
        tok = self.peek()
        if tok is None:
            raise VFSyntaxError("unexpected end of input", self.text, len(self.text))
        self.i += 1
        return tok

    def expect(self, value: str) -> None:
        tok = self.next()
        if tok[1] != value:
            raise VFSyntaxError(f"expected {value!r}, got {tok[1]!r}", self.text, tok[2])

    def at_end(self) -> bool:
        return self.i >= len(self.tokens)

    def require_end(self) -> None:
        tok = self.peek()
        if tok is not None:
            raise VFSyntaxError(f"trailing input {tok[1]!r}", self.text, tok[2])

    # -- scalar / array values from env ------------------------------------
    def _int_value(self) -> int:
        tok = self.next()
        if tok[0] == "num":
            return int(tok[1])
        if tok[0] == "name":
            if tok[1] not in self.env:
                raise VFSyntaxError(f"unbound name {tok[1]!r}", self.text, tok[2])
            return int(self.env[tok[1]])
        raise VFSyntaxError(f"expected an integer, got {tok[1]!r}", self.text, tok[2])

    def _array_value(self) -> Sequence[int]:
        """An array argument: a bound name or a literal integer list
        (``B_BLOCK(3, 5, 2)`` — what ``repr`` of a GenBlock prints)."""
        tok = self.peek()
        if tok is not None and tok[0] == "num":
            values = [self._int_value()]
            while self.peek() is not None and self.peek()[1] == ",":  # type: ignore[index]
                self.next()
                values.append(self._int_value())
            return values
        tok = self.next()
        if tok[0] == "name":
            if tok[1] not in self.env:
                raise VFSyntaxError(f"unbound name {tok[1]!r}", self.text, tok[2])
            return self.env[tok[1]]
        raise VFSyntaxError(
            f"expected an array-valued name or literal list, got {tok[1]!r}",
            self.text,
            tok[2],
        )

    # -- dimension distributions ---------------------------------------------
    def dim_spec(self, allow_wild: bool):
        tok = self.next()
        if tok[1] == ":":
            return NoDist()
        if tok[1] == "*":
            if not allow_wild:
                raise VFSyntaxError(
                    "'*' wildcard not allowed in a concrete distribution",
                    self.text,
                    tok[2],
                )
            return ANY
        if tok[0] != "name":
            raise VFSyntaxError(
                f"expected a distribution keyword, got {tok[1]!r}", self.text, tok[2]
            )
        kw = tok[1].upper()
        if kw == "BLOCK":
            nxt = self.peek()
            if nxt is not None and nxt[1] == "(":
                self.expect("(")
                inner = self.peek()
                if inner is not None and inner[1] == "*":
                    if not allow_wild:
                        raise VFSyntaxError(
                            "BLOCK(*) only allowed in patterns", self.text, inner[2]
                        )
                    self.next()
                    self.expect(")")
                    return Wild(Block)
                m = self._int_value()
                self.expect(")")
                return Block(m)
            return Block()
        if kw == "REPLICATED":
            return Replicated()
        if kw == "CYCLIC":
            nxt = self.peek()
            if nxt is not None and nxt[1] == "(":
                self.expect("(")
                inner = self.peek()
                if inner is not None and inner[1] == "*":
                    if not allow_wild:
                        raise VFSyntaxError(
                            "CYCLIC(*) only allowed in patterns", self.text, inner[2]
                        )
                    self.next()
                    self.expect(")")
                    return Wild(Cyclic)
                k = self._int_value()
                self.expect(")")
                return Cyclic(k)
            return Cyclic(1)
        if kw == "B_BLOCK":
            self.expect("(")
            sizes = self._array_value()
            self.expect(")")
            return GenBlock(sizes)
        if kw == "S_BLOCK":
            self.expect("(")
            starts = self._array_value()
            self.expect(")")
            return SBlock(starts)
        if kw == "INDIRECT":
            self.expect("(")
            owners = self._array_value()
            self.expect(")")
            from ..core.dimdist import Indirect

            return Indirect(owners)
        raise VFSyntaxError(f"unknown distribution {kw!r}", self.text, tok[2])

    def dist_list(self, allow_wild: bool) -> list:
        dims = [self.dim_spec(allow_wild)]
        while not self.at_end() and self.peek()[1] == ",":  # type: ignore[index]
            self.next()
            dims.append(self.dim_spec(allow_wild))
        return dims

    # -- alignment ---------------------------------------------------------------
    def subscript_names(self) -> list[str]:
        """Parse ``(I, J, K)`` — the source subscript list."""
        self.expect("(")
        names = []
        while True:
            tok = self.next()
            if tok[0] != "name":
                raise VFSyntaxError(
                    f"expected a subscript variable, got {tok[1]!r}",
                    self.text,
                    tok[2],
                )
            names.append(tok[1])
            tok = self.next()
            if tok[1] == ")":
                break
            if tok[1] != ",":
                raise VFSyntaxError(
                    f"expected ',' or ')', got {tok[1]!r}", self.text, tok[2]
                )
        if len(set(names)) != len(names):
            raise VFSyntaxError(
                "duplicate subscript variable in alignment source",
                self.text,
                0,
            )
        return names

    def axis_expr(self, var_dims: dict[str, int]) -> AxisMap:
        """Parse one target subscript: ``J``, ``2*I``, ``I+1``, ``3``, ``-I+N``."""
        sign = 1
        tok = self.peek()
        if tok is not None and tok[1] == "-":
            self.next()
            sign = -1
        tok = self.next()
        stride = 1
        dim: int | None = None
        offset = 0
        if tok[0] == "num":
            value = int(tok[1])
            nxt = self.peek()
            if nxt is not None and nxt[1] == "*":
                self.next()
                stride = sign * value
                vtok = self.next()
                if vtok[0] != "name" or vtok[1] not in var_dims:
                    raise VFSyntaxError(
                        "expected a subscript variable after '*'",
                        self.text,
                        vtok[2],
                    )
                dim = var_dims[vtok[1]]
            else:
                return AxisMap(None, offset=sign * value)
        elif tok[0] == "name":
            if tok[1] in var_dims:
                dim = var_dims[tok[1]]
                stride = sign
            elif tok[1] in self.env:
                return AxisMap(None, offset=sign * int(self.env[tok[1]]))
            else:
                raise VFSyntaxError(f"unbound name {tok[1]!r}", self.text, tok[2])
        else:
            raise VFSyntaxError(
                f"expected a subscript expression, got {tok[1]!r}", self.text, tok[2]
            )
        nxt = self.peek()
        if nxt is not None and nxt[1] in "+-":
            op = self.next()[1]
            val = self._int_value()
            offset = val if op == "+" else -val
        return AxisMap(dim, stride, offset)


def parse_dist_expr(text: str, env: dict | None = None) -> DistributionType:
    """Parse a concrete distribution expression to a :class:`DistributionType`."""
    p = _Parser(text, env)
    tok = p.peek()
    if tok is None:
        raise VFSyntaxError("empty distribution expression", text, 0)
    if tok[1] == "(":
        p.next()
        dims = p.dist_list(allow_wild=False)
        p.expect(")")
    else:
        dims = p.dist_list(allow_wild=False)
    p.require_end()
    return DistributionType(dims)


def parse_pattern(text: str, env: dict | None = None) -> TypePattern:
    """Parse a distribution pattern (wildcards allowed) to a
    :class:`~repro.core.query.TypePattern`."""
    p = _Parser(text, env)
    tok = p.peek()
    if tok is None:
        raise VFSyntaxError("empty pattern", text, 0)
    if tok[1] == "*":
        p.next()
        p.require_end()
        return TypePattern(ANY)
    if tok[1] == "(":
        p.next()
        dims = p.dist_list(allow_wild=True)
        p.expect(")")
    else:
        dims = p.dist_list(allow_wild=True)
    p.require_end()
    return TypePattern(dims)


def parse_alignment(text: str, env: dict | None = None) -> tuple[str, str, Alignment]:
    """Parse ``A(I,J) WITH B(J,I+1)``.

    Returns ``(source_name, target_name, alignment)``.
    """
    p = _Parser(text, env)
    src_tok = p.next()
    if src_tok[0] != "name":
        raise VFSyntaxError("expected source array name", text, src_tok[2])
    source_name = src_tok[1]
    names = p.subscript_names()
    var_dims = {n: d for d, n in enumerate(names)}
    with_tok = p.next()
    if with_tok[0] != "name" or with_tok[1].upper() != "WITH":
        raise VFSyntaxError("expected WITH", text, with_tok[2])
    tgt_tok = p.next()
    if tgt_tok[0] != "name":
        raise VFSyntaxError("expected target array name", text, tgt_tok[2])
    target_name = tgt_tok[1]
    p.expect("(")
    maps = [p.axis_expr(var_dims)]
    while True:
        tok = p.next()
        if tok[1] == ")":
            break
        if tok[1] != ",":
            raise VFSyntaxError(f"expected ',' or ')', got {tok[1]!r}", text, tok[2])
        maps.append(p.axis_expr(var_dims))
    p.require_end()
    return source_name, target_name, Alignment(len(names), maps)


def parse_section(text: str, processors: ProcessorArray, env: dict | None = None):
    """Parse a processor-section reference like ``R(1:2, :)`` or
    ``R(2, 1:4:2)`` against a declared processor array.

    Fortran-style 1-based inclusive bounds; ``:`` selects the whole
    dimension; an integer subscript collapses it.  Returns a
    :class:`~repro.machine.topology.ProcessorSection`.  The bare name
    ``R`` denotes the full section.
    """
    p = _Parser(text, env)
    name_tok = p.next()
    if name_tok[0] != "name":
        raise VFSyntaxError("expected processor array name", text, name_tok[2])
    if name_tok[1] != processors.name:
        raise VFSyntaxError(
            f"unknown processor array {name_tok[1]!r} "
            f"(declared: {processors.name!r})",
            text,
            name_tok[2],
        )
    if p.at_end():
        return processors.full_section()
    p.expect("(")
    subs: list[slice | int] = []
    dim = 0
    while True:
        if dim >= processors.ndim:
            raise VFSyntaxError(
                f"too many subscripts for {processors!r}", text, 0
            )
        tok = p.peek()
        if tok is not None and tok[1] == ":":
            p.next()
            subs.append(slice(None))
        else:
            lo = p._int_value()
            tok = p.peek()
            if tok is not None and tok[1] == ":":
                p.next()
                hi = p._int_value()
                step = 1
                tok = p.peek()
                if tok is not None and tok[1] == ":":
                    p.next()
                    step = p._int_value()
                # 1-based inclusive -> 0-based half-open
                subs.append(slice(lo - 1, hi, step))
            else:
                subs.append(lo - 1)  # collapsing subscript
        dim += 1
        tok = p.next()
        if tok[1] == ")":
            break
        if tok[1] != ",":
            raise VFSyntaxError(f"expected ',' or ')', got {tok[1]!r}", text, tok[2])
    if dim != processors.ndim:
        raise VFSyntaxError(
            f"section needs {processors.ndim} subscripts, got {dim}", text, 0
        )
    p.require_end()
    return processors.section(*subs)


def parse_processors(text: str, env: dict | None = None) -> ProcessorArray:
    """Parse ``R(1:M, 1:M)`` (Fortran 1-based bounds) to a
    :class:`~repro.machine.topology.ProcessorArray`."""
    p = _Parser(text, env)
    name_tok = p.next()
    if name_tok[0] != "name":
        raise VFSyntaxError("expected processor array name", text, name_tok[2])
    p.expect("(")
    shape = []
    while True:
        lo = p._int_value()
        p.expect(":")
        hi = p._int_value()
        if hi < lo:
            raise VFSyntaxError(f"empty bound {lo}:{hi}", text, 0)
        shape.append(hi - lo + 1)
        tok = p.next()
        if tok[1] == ")":
            break
        if tok[1] != ",":
            raise VFSyntaxError(f"expected ',' or ')', got {tok[1]!r}", text, tok[2])
    p.require_end()
    return ProcessorArray(name_tok[1], tuple(shape))
