"""Procedure-boundary distribution semantics (paper §4, §5).

Vienna Fortran "allows procedure arguments to be declared with a
specific distribution.  When the procedure is called, it is the
compiler's responsibility to redistribute the actual argument to match
the specified distribution."  This module implements that *implicit
redistribution* path, which §4 discusses as the alternative to the
explicit DISTRIBUTE statement (benchmarked against it in E7):

- a formal argument may carry a declared distribution type; on entry,
  if the actual's current type differs, the actual is redistributed
  (a real COMMUNICATE with message accounting);
- a formal without a declared distribution *inherits* the actual's
  distribution (the paper: several arrays with distinct distributions
  may be bound to the same formal — the reaching-distribution analysis
  must cope);
- on return, Vienna Fortran lets a new distribution propagate back to
  the caller; HPF does not ("HPF does not permit the new distribution
  to be returned to the calling procedure", §5).  ``restore="vf"``
  (default) keeps the callee's final distribution; ``restore="hpf"``
  redistributes back to the entry distribution on exit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.distribution import DistributionType
from ..runtime.engine import Engine
from .parser import parse_dist_expr

__all__ = ["FormalArg", "Procedure"]


@dataclass
class FormalArg:
    """One formal (dummy) argument of a procedure.

    ``dist`` is the declared distribution expression text (or a
    :class:`DistributionType`), or ``None`` to inherit the actual's.
    """

    name: str
    dist: DistributionType | str | None = None

    def resolved(self, env: dict) -> DistributionType | None:
        if self.dist is None or isinstance(self.dist, DistributionType):
            return self.dist
        return parse_dist_expr(self.dist, env)


class Procedure:
    """A callable with Vienna Fortran argument-distribution semantics.

    Parameters
    ----------
    name:
        Procedure name (reporting only).
    formals:
        The dummy-argument declarations.
    body:
        ``body(engine, **arrays)`` — receives the engine and the actual
        :class:`~repro.runtime.darray.DistributedArray` objects, keyed
        by formal name.
    restore:
        ``"vf"``: a redistribution performed inside the body (or by
        entry matching) survives the call — Vienna Fortran semantics.
        ``"hpf"``: the entry distribution of each actual is restored on
        exit (one more redistribution if the body changed it).
    """

    def __init__(
        self,
        name: str,
        formals: Sequence[FormalArg],
        body: Callable[..., object],
        restore: str = "vf",
    ):
        if restore not in ("vf", "hpf"):
            raise ValueError("restore must be 'vf' or 'hpf'")
        self.name = str(name)
        self.formals = list(formals)
        self.body = body
        self.restore = restore

    def __call__(self, engine: Engine, env: dict | None = None, **actuals):
        """Call with actual arrays keyed by formal name."""
        env = env or {}
        expected = {f.name for f in self.formals}
        if set(actuals) != expected:
            raise TypeError(
                f"procedure {self.name!r} expects arguments {sorted(expected)}, "
                f"got {sorted(actuals)}"
            )
        entry_dists = {}
        # entry: redistribute actuals to declared formal distributions
        for f in self.formals:
            arr = actuals[f.name]
            entry_dists[f.name] = arr.dist
            want = f.resolved(env)
            if want is not None and arr.dist.dtype != want:
                engine.distribute(
                    arr.name, want, to=arr.dist.target
                ) if arr.descriptor.is_dynamic else self._redistribute_static(
                    engine, arr, want
                )
        try:
            result = self.body(engine, **actuals)
        finally:
            if self.restore == "hpf":
                for f in self.formals:
                    arr = actuals[f.name]
                    entry = entry_dists[f.name]
                    if arr.dist != entry:
                        if arr.descriptor.is_dynamic:
                            engine.distribute(arr.name, entry)
                        else:
                            self._redistribute_static(engine, arr, entry.dtype)
        return result

    @staticmethod
    def _redistribute_static(engine: Engine, arr, want) -> None:
        """Implicit redistribution of a *static* actual at a boundary.

        The invariant-association rule of §2.3 applies to user-level
        DISTRIBUTE statements; the compiler may still move a static
        actual to match a formal's declared distribution (and back).
        We therefore bypass the descriptor's staticness check.
        """
        from ..core.distribution import Distribution, DistributionType
        from ..runtime.redistribute import communicate

        if isinstance(want, DistributionType):
            new = Distribution(want, arr.descriptor.index_dom, arr.dist.target)
        else:
            new = want
        dyn, arr.descriptor.dynamic = arr.descriptor.dynamic, _ALWAYS_DYNAMIC
        try:
            communicate(arr, new, transfer=True)
        finally:
            arr.descriptor.dynamic = dyn

    def __repr__(self) -> str:
        args = ", ".join(
            f.name + (f" DIST {f.dist}" if f.dist is not None else "")
            for f in self.formals
        )
        return f"Procedure {self.name}({args}) [restore={self.restore}]"


class _AlwaysDynamic:
    """Internal stand-in DynamicAttr for compiler-driven redistribution."""

    class _AnyRange:
        @staticmethod
        def check(dtype, name="?"):
            return None

        unrestricted = True

    range = _AnyRange()
    initial = None


_ALWAYS_DYNAMIC = _AlwaysDynamic()
