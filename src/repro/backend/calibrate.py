"""Measured-cost calibration of the execution transport.

The planner's whole cost machinery is parameterized by two network
constants — alpha (startup) and beta (per byte) — and a flop rate.
The presets guess them from 1993 literature; this module *measures*
them on the multiprocess backend's real transport:

1. ping-pong microbenchmark: one-way times for a ladder of message
   sizes between two workers (minimum over repeats);
2. linear least-squares fit ``t(n) = alpha + beta * n``;
3. daxpy microbenchmark for the per-worker flop rate;

and packages the fit as a :class:`~repro.machine.measured.Calibration`
/ :class:`~repro.machine.measured.MeasuredMachine`, which every layer
above (cost engine, planner, benches) accepts as an ordinary machine.
The modeled-vs-measured comparison bench (E13) closes the loop by
pricing real redistributions with both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..machine.machine import Machine
from ..machine.measured import Calibration, MeasuredMachine
from ..machine.topology import ProcessorArray
from .multiprocess import MultiprocessBackend
from .ops import op_flop_bench, op_pingpong

__all__ = [
    "DEFAULT_SIZES",
    "fit_alpha_beta",
    "calibrate",
    "measured_machine",
]

#: message-size ladder: spans the latency-dominated and the
#: bandwidth-dominated regimes so the linear fit is well conditioned.
DEFAULT_SIZES = (8, 512, 4096, 32768, 262144, 1048576)


def fit_alpha_beta(
    samples: Sequence[tuple[int, float]]
) -> tuple[float, float, float]:
    """Least-squares fit of ``t = alpha + beta * n`` to the samples.

    Returns ``(alpha, beta, rms_residual)``; both constants are
    clamped to be non-negative (a noisy fit on a fast transport can
    cross zero).
    """
    if len(samples) < 2:
        raise ValueError("need at least two (nbytes, seconds) samples")
    n = np.asarray([s[0] for s in samples], dtype=float)
    t = np.asarray([s[1] for s in samples], dtype=float)
    A = np.stack([np.ones_like(n), n], axis=1)
    (alpha, beta), *_ = np.linalg.lstsq(A, t, rcond=None)
    alpha = max(float(alpha), 1e-9)
    beta = max(float(beta), 0.0)
    resid = t - (alpha + beta * n)
    return alpha, beta, float(np.sqrt(np.mean(resid**2)))


def calibrate(
    nprocs: int = 2,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 7,
    flop_n: int = 1_000_000,
    backend: MultiprocessBackend | None = None,
) -> Calibration:
    """Microbenchmark the multiprocess transport and fit the constants.

    A throwaway machine with ``nprocs`` workers is spun up (unless an
    attached ``backend`` is supplied); rank 0 ping-pongs rank 1 over
    the size ladder and every worker runs the flop benchmark (the
    fleet-minimum daxpy rate is used, matching the cost model's
    single-processor ``flop_rate``).
    """
    own_backend = backend is None
    if own_backend:
        if nprocs < 2:
            raise ValueError("calibration needs at least two workers")
        backend = MultiprocessBackend()
        backend.attach(Machine(ProcessorArray("CAL", (nprocs,))))
    try:
        nprocs = backend.nprocs
        if nprocs < 2:
            raise ValueError("calibration needs at least two workers")
        samples = backend.run_op(
            op_pingpong,
            [
                dict(src=0, dst=1, sizes=tuple(sizes), repeats=repeats)
                for _ in range(nprocs)
            ],
        )[0]
        flop_rates = backend.run_op(
            op_flop_bench,
            [dict(n=flop_n, repeats=3) for _ in range(nprocs)],
        )
    finally:
        if own_backend:
            backend.close()
    alpha, beta, resid = fit_alpha_beta(samples)
    return Calibration(
        alpha=alpha,
        beta=beta,
        flop_rate=float(min(flop_rates)),
        samples=tuple((int(n), float(t)) for n, t in samples),
        source="multiprocess",
        residual=resid,
    )


def measured_machine(
    processors: ProcessorArray | Sequence[int] | int,
    calibration: Calibration | None = None,
    **calibrate_kwargs,
) -> MeasuredMachine:
    """A :class:`MeasuredMachine` over ``processors``, calibrating the
    transport first if no fit is supplied."""
    if calibration is None:
        calibration = calibrate(**calibrate_kwargs)
    return MeasuredMachine(processors, calibration)
