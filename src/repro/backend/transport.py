"""Message-passing transport between SPMD workers.

The explicit communication layer of the multiprocess backend: each
worker owns an inbox queue; point-to-point :meth:`Transport.send`
posts ``(src, tag, payload)`` into the destination's inbox, and
:meth:`Transport.recv` pulls from the own inbox, stashing messages
that arrive ahead of the one being waited for (queues preserve
per-sender order, so a matching ``(src, tag)`` stream is FIFO).
Collectives — :meth:`barrier` and :meth:`allgather` — are built from a
``multiprocessing.Barrier`` and point-to-point exchange.

This is the layer the :mod:`~repro.backend.calibrate` microbenchmarks
measure: a ``send``/``recv`` round trip *is* the machine's alpha/beta
for this backend.
"""

from __future__ import annotations

import time
from typing import Any

from ..obs import metrics as _obs

__all__ = ["TransportTimeout", "Transport"]

# NOTE: a Transport lives inside its worker *process*, so these
# instruments record into that process's registry — scrape them there
# (or read the master-side repro_backend_* series, which aggregate the
# op traffic the workers execute).  In-process uses (tests, calibrate
# harnesses running rank 0 inline) land in the main registry directly.
_TRANSPORT_MESSAGES = _obs.counter(
    "repro_transport_messages_total",
    "Point-to-point transport messages at this process, by direction.",
    ("direction",),
)
_TRANSPORT_BARRIER_SECONDS = _obs.histogram(
    "repro_transport_barrier_seconds",
    "Seconds spent waiting in transport barriers at this process.",
)

#: default seconds to wait on a receive/barrier before giving up — a
#: wedged peer fails loudly instead of hanging the suite.
DEFAULT_TIMEOUT = 120.0


class TransportTimeout(RuntimeError):
    """A receive or barrier did not complete within the timeout."""


class Transport:
    """One worker's endpoint of the backend interconnect.

    Parameters
    ----------
    rank, nprocs:
        This endpoint's identity.
    inbox:
        ``multiprocessing.Queue`` this worker receives on.
    outboxes:
        Inbox queues of every worker, indexed by rank.
    barrier_obj:
        ``multiprocessing.Barrier`` over all ``nprocs`` workers.
    timeout:
        Seconds to wait in :meth:`recv`/:meth:`barrier`.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        inbox,
        outboxes,
        barrier_obj,
        timeout: float = DEFAULT_TIMEOUT,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self._inbox = inbox
        self._outboxes = outboxes
        self._barrier = barrier_obj
        self.timeout = timeout
        self._stash: dict[tuple[int, Any], list[Any]] = {}
        self.sent_messages = 0
        self.received_messages = 0

    # -- point to point --------------------------------------------------
    def send(self, dst: int, tag: Any, payload: Any) -> None:
        """Post ``payload`` to worker ``dst`` under ``tag``."""
        if not 0 <= dst < self.nprocs:
            raise IndexError(f"destination rank {dst} out of range")
        if dst == self.rank:
            # local delivery without touching the queue
            self._stash.setdefault((dst, tag), []).append(payload)
        else:
            self._outboxes[dst].put((self.rank, tag, payload))
        self.sent_messages += 1
        _TRANSPORT_MESSAGES.inc(direction="sent")

    def recv(self, src: int, tag: Any) -> Any:
        """Receive the next ``(src, tag)`` message (FIFO per sender)."""
        key = (src, tag)
        stashed = self._stash.get(key)
        if stashed:
            self.received_messages += 1
            _TRANSPORT_MESSAGES.inc(direction="received")
            return stashed.pop(0)
        from queue import Empty

        while True:
            try:
                msg_src, msg_tag, payload = self._inbox.get(
                    timeout=self.timeout
                )
            except Empty:
                raise TransportTimeout(
                    f"worker {self.rank}: no message from {src} tagged "
                    f"{tag!r} within {self.timeout}s"
                ) from None
            if msg_src == src and msg_tag == tag:
                self.received_messages += 1
                _TRANSPORT_MESSAGES.inc(direction="received")
                return payload
            self._stash.setdefault((msg_src, msg_tag), []).append(payload)

    # -- collectives -----------------------------------------------------
    def barrier(self) -> None:
        """Block until every worker reaches the barrier."""
        t0 = time.perf_counter() if _obs.enabled() else None
        try:
            self._barrier.wait(timeout=self.timeout)
        except Exception as exc:  # BrokenBarrierError and friends
            raise TransportTimeout(
                f"worker {self.rank}: barrier broken or timed out "
                f"({exc})"
            ) from exc
        if t0 is not None:
            _TRANSPORT_BARRIER_SECONDS.observe(time.perf_counter() - t0)

    def allgather(self, value: Any, tag: Any = "allgather") -> list[Any]:
        """Every worker contributes ``value``; all receive all, by rank."""
        for peer in range(self.nprocs):
            if peer != self.rank:
                self.send(peer, tag, value)
        out = []
        for peer in range(self.nprocs):
            out.append(
                value if peer == self.rank else self.recv(peer, tag)
            )
        return out
