"""Message-passing transport between SPMD workers.

The explicit communication layer of the multiprocess backend: each
worker owns an inbox queue; point-to-point :meth:`Transport.send`
posts ``(src, tag, payload)`` into the destination's inbox, and
:meth:`Transport.recv` pulls from the own inbox, stashing messages
that arrive ahead of the one being waited for (queues preserve
per-sender order, so a matching ``(src, tag)`` stream is FIFO).
Collectives — :meth:`barrier` and :meth:`allgather` — are built from a
``multiprocessing.Barrier`` and point-to-point exchange.

Failure taxonomy (ISSUE 9): a barrier can end two ways and they mean
different things to the fleet supervisor.  A **timeout** (nobody
aborted, the full wait elapsed) means a peer is *hung*; a **break**
(some rank aborted, or the master tore the barrier down) means a peer
*died or errored*.  The former raises :class:`TransportTimeout`, the
latter the sharper :class:`TransportBroken` carrying the aborting
ranks read off the shared *abort board* — a ``nprocs``-slot shared
array each worker stamps before calling ``Barrier.abort()``.

This is the layer the :mod:`~repro.backend.calibrate` microbenchmarks
measure: a ``send``/``recv`` round trip *is* the machine's alpha/beta
for this backend.  Fault injection (:mod:`repro.faults`) hooks
:meth:`send`: an active plan can delay or drop the nth message on a
specific ``(src, dst)`` link.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from ..obs import metrics as _obs

__all__ = ["TransportTimeout", "TransportBroken", "Transport"]

# NOTE: a Transport lives inside its worker *process*, so these
# instruments record into that process's registry — scrape them there
# (or read the master-side repro_backend_* series, which aggregate the
# op traffic the workers execute).  In-process uses (tests, calibrate
# harnesses running rank 0 inline) land in the main registry directly.
_TRANSPORT_MESSAGES = _obs.counter(
    "repro_transport_messages_total",
    "Point-to-point transport messages at this process, by direction.",
    ("direction",),
)
_TRANSPORT_BARRIER_SECONDS = _obs.histogram(
    "repro_transport_barrier_seconds",
    "Seconds spent waiting in transport barriers at this process.",
)

#: default seconds to wait on a receive/barrier before giving up — a
#: wedged peer fails loudly instead of hanging the suite.
DEFAULT_TIMEOUT = 120.0


class TransportTimeout(RuntimeError):
    """A receive or barrier did not complete within the timeout."""


class TransportBroken(TransportTimeout):
    """A collective was *aborted* — a peer died or errored, as opposed
    to silently running long.  ``aborted_ranks`` lists the ranks that
    stamped the abort board before breaking the barrier (empty when
    the break came from outside, e.g. a master-side teardown)."""

    def __init__(self, message: str, aborted_ranks: tuple[int, ...] = ()):
        super().__init__(message)
        self.aborted_ranks = tuple(aborted_ranks)


class Transport:
    """One worker's endpoint of the backend interconnect.

    Parameters
    ----------
    rank, nprocs:
        This endpoint's identity.
    inbox:
        ``multiprocessing.Queue`` this worker receives on.
    outboxes:
        Inbox queues of every worker, indexed by rank.
    barrier_obj:
        ``multiprocessing.Barrier`` over all ``nprocs`` workers.
    timeout:
        Seconds to wait in :meth:`recv`/:meth:`barrier`.
    abort_board:
        Optional shared ``nprocs``-slot int array; a worker stamps its
        slot before aborting the barrier so peers can name the culprit.
    faults:
        Optional :class:`~repro.faults.FaultPlan` applied to outgoing
        messages (link delay/drop).  ``None`` disables injection.
    """

    def __init__(
        self,
        rank: int,
        nprocs: int,
        inbox,
        outboxes,
        barrier_obj,
        timeout: float = DEFAULT_TIMEOUT,
        *,
        abort_board=None,
        faults=None,
    ):
        self.rank = rank
        self.nprocs = nprocs
        self._inbox = inbox
        self._outboxes = outboxes
        self._barrier = barrier_obj
        self.timeout = timeout
        self._abort_board = abort_board
        self._faults = faults
        self._stash: dict[tuple[int, Any], list[Any]] = {}
        #: messages sent per destination rank (1-based ordinal stream
        #: per link — the coordinate fault plans address links by)
        self._link_sent: dict[int, int] = {}
        self.sent_messages = 0
        self.received_messages = 0
        self.dropped_messages = 0

    # -- failure signalling ----------------------------------------------
    def mark_aborted(self) -> None:
        """Stamp this rank on the abort board (call before
        ``barrier.abort()`` so peers can tell who broke the collective)."""
        if self._abort_board is not None:
            self._abort_board[self.rank] = 1

    def aborted_ranks(self) -> tuple[int, ...]:
        if self._abort_board is None:
            return ()
        return tuple(
            r for r in range(self.nprocs) if self._abort_board[r]
        )

    # -- point to point --------------------------------------------------
    def send(self, dst: int, tag: Any, payload: Any) -> None:
        """Post ``payload`` to worker ``dst`` under ``tag``."""
        if not 0 <= dst < self.nprocs:
            raise IndexError(f"destination rank {dst} out of range")
        nth = self._link_sent.get(dst, 0) + 1
        self._link_sent[dst] = nth
        if self._faults is not None:
            delay = self._faults.link_delay(self.rank, dst, nth)
            if delay > 0:
                time.sleep(delay)
            if self._faults.drops_message(self.rank, dst, nth):
                # vanishes in flight: the sender believes it was sent
                self.dropped_messages += 1
                self.sent_messages += 1
                _TRANSPORT_MESSAGES.inc(direction="dropped")
                return
        if dst == self.rank:
            # local delivery without touching the queue
            self._stash.setdefault((dst, tag), []).append(payload)
        else:
            self._outboxes[dst].put((self.rank, tag, payload))
        self.sent_messages += 1
        _TRANSPORT_MESSAGES.inc(direction="sent")

    def recv(self, src: int, tag: Any) -> Any:
        """Receive the next ``(src, tag)`` message (FIFO per sender)."""
        key = (src, tag)
        stashed = self._stash.get(key)
        if stashed:
            self.received_messages += 1
            _TRANSPORT_MESSAGES.inc(direction="received")
            return stashed.pop(0)
        from queue import Empty

        while True:
            try:
                msg_src, msg_tag, payload = self._inbox.get(
                    timeout=self.timeout
                )
            except Empty:
                raise TransportTimeout(
                    f"worker {self.rank}: no message from {src} tagged "
                    f"{tag!r} within {self.timeout}s"
                ) from None
            if msg_src == src and msg_tag == tag:
                self.received_messages += 1
                _TRANSPORT_MESSAGES.inc(direction="received")
                return payload
            self._stash.setdefault((msg_src, msg_tag), []).append(payload)

    # -- collectives -----------------------------------------------------
    def barrier(self) -> None:
        """Block until every worker reaches the barrier.

        Raises :class:`TransportBroken` when a peer aborted the
        collective (died or errored — retryable by a fleet restart)
        and :class:`TransportTimeout` when the full wait genuinely
        elapsed with nobody aborting (a hung peer).
        """
        t0 = time.perf_counter() if _obs.enabled() else None
        start = time.monotonic()
        try:
            self._barrier.wait(timeout=self.timeout)
        except threading.BrokenBarrierError as exc:
            elapsed = time.monotonic() - start
            aborted = self.aborted_ranks()
            if aborted or elapsed < self.timeout - 0.05:
                # broken from within (peer aborted) or torn down from
                # outside well before the deadline — not a slow peer
                who = (f"aborted by rank(s) {list(aborted)}"
                       if aborted else "aborted by a peer or the master")
                raise TransportBroken(
                    f"worker {self.rank}: barrier broken after "
                    f"{elapsed:.3f}s ({who})",
                    aborted_ranks=aborted,
                ) from exc
            raise TransportTimeout(
                f"worker {self.rank}: barrier timed out after "
                f"{self.timeout}s (no peer aborted — a rank is hung)"
            ) from exc
        except Exception as exc:  # pragma: no cover - unexpected failure
            raise TransportTimeout(
                f"worker {self.rank}: barrier broken or timed out "
                f"({exc})"
            ) from exc
        if t0 is not None:
            _TRANSPORT_BARRIER_SECONDS.observe(time.perf_counter() - t0)

    def allgather(self, value: Any, tag: Any = "allgather") -> list[Any]:
        """Every worker contributes ``value``; all receive all, by rank."""
        for peer in range(self.nprocs):
            if peer != self.rank:
                self.send(peer, tag, value)
        out = []
        for peer in range(self.nprocs):
            out.append(
                value if peer == self.rank else self.recv(peer, tag)
            )
        return out
