"""The SPMD worker process of the multiprocess backend.

One worker per processor of the :class:`~repro.machine.topology.ProcessorArray`.
Each worker runs :func:`worker_main`: an endless command loop that
receives ``(op, kwargs)`` pairs from the master, executes the op
against its rank's shared-memory segments and the message-passing
:class:`~repro.backend.transport.Transport`, and acknowledges on the
shared result queue.  Ops are module-level functions from
:mod:`~repro.backend.ops` (picklable by reference), so the command
stream works under both ``fork`` and ``spawn`` start methods.

Liveness and fault hooks (ISSUE 9): the worker stamps a shared
*heartbeat* slot at every command receipt and completion, which is
what lets the master's :class:`~repro.backend.multiprocess.FleetSupervisor`
tell a hung worker (stale heartbeat, process alive) from a dead one
(exitcode set).  When a :class:`~repro.faults.FaultPlan` is threaded
in, the loop consults it before each op: a matching
:class:`~repro.faults.WorkerCrash` hard-exits the process
(``os._exit`` — no goodbye, exactly like a segfaulted node), a
matching :class:`~repro.faults.KernelStall` sleeps before executing
(a slow node).  With no plan, the hooks are a ``None`` check.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Any

import numpy as np

from .shm import BlockMeta, attach
from .transport import Transport

__all__ = ["WorkerContext", "worker_main"]


class WorkerContext:
    """What an op sees: its rank, the transport, and segment access."""

    def __init__(self, rank: int, nprocs: int, transport: Transport):
        self.rank = rank
        self.nprocs = nprocs
        self.transport = transport
        #: the master's command sequence number of the op currently
        #: executing — identical on every worker, so ops can scope
        #: their transport tags to the op (a failed op's unconsumed
        #: messages then never match a later op's receives)
        self.seq = 0
        self._attached: list = []

    def attach(self, meta: BlockMeta | None) -> np.ndarray | None:
        """Map a shared block; the view is valid until :meth:`release`."""
        if meta is None:
            return None
        shm, arr = attach(meta)
        self._attached.append((shm, arr))
        return arr

    def release(self) -> None:
        """Drop every mapping taken since the last release."""
        views = self._attached
        self._attached = []
        while views:
            shm, arr = views.pop()
            del arr
            shm.close()


def worker_main(
    rank: int,
    nprocs: int,
    cmd_queue,
    result_queue,
    inbox,
    outboxes,
    barrier_obj,
    timeout: float,
    unregister_on_attach: bool = True,
    heartbeat=None,
    abort_board=None,
    faults=None,
) -> None:
    """Command loop body of one worker process."""
    from . import shm as _shm

    _shm.unregister_on_attach = unregister_on_attach
    transport = Transport(
        rank, nprocs, inbox, outboxes, barrier_obj, timeout=timeout,
        abort_board=abort_board, faults=faults,
    )
    ctx = WorkerContext(rank, nprocs, transport)
    while True:
        cmd = cmd_queue.get()
        if cmd is None:  # shutdown
            break
        op, kwargs, seq = cmd
        ctx.seq = seq
        if heartbeat is not None:
            heartbeat[rank] = time.monotonic()
        if faults is not None:
            crash = faults.crash_for(rank, seq)
            if crash is not None:
                # a hard node failure: no ack, no barrier abort, no
                # cleanup — the master finds out from the exitcode
                os._exit(crash.exit_code)
            stall = faults.stall_for(rank, seq)
            if stall is not None:
                time.sleep(stall.seconds)
        try:
            payload: Any = op(ctx, **kwargs)
            result_queue.put((rank, seq, "ok", payload))
        except BaseException as exc:  # report, never wedge the master
            # break the collective barrier so peers waiting on this
            # worker fail fast instead of riding out their timeout;
            # stamp the abort board first so their TransportBroken
            # names this rank (the master resets both after acks)
            transport.mark_aborted()
            try:
                barrier_obj.abort()
            except Exception:  # pragma: no cover
                pass
            result_queue.put(
                (
                    rank,
                    seq,
                    "error",
                    f"{type(exc).__name__}: {exc}\n"
                    f"{traceback.format_exc()}",
                )
            )
        finally:
            if heartbeat is not None:
                heartbeat[rank] = time.monotonic()
            ctx.release()
