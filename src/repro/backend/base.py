"""The execution-backend seam.

The paper's object programs "execute on distributed-memory machines in
SPMD mode"; the reproduction historically executed everything in one
Python process against the simulated machine.  A :class:`Backend`
makes that execution tier pluggable:

- :class:`SerialBackend` — today's in-process semantics, unchanged;
  it is the bitwise *reference* every other backend must match;
- :class:`~repro.backend.multiprocess.MultiprocessBackend` — one real
  OS process per simulated processor, segments in shared memory,
  transfer plans / halo exchanges / kernels executed through an
  explicit message-passing transport.

A backend **executes**; the simulated :class:`~repro.machine.network.Network`
still **accounts**.  Both backends drive the same accounting code, so
messages/bytes/modeled-time reports are identical by construction and
only the physical execution differs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from ..machine.machine import Machine
    from ..runtime.darray import DistributedArray

__all__ = [
    "Backend",
    "SerialBackend",
    "serial_move",
    "resolve_backend",
    "attached_backend",
]


def serial_move(array: "DistributedArray", new_dist) -> None:
    """The reference data motion of a redistribution: global
    reassembly, descriptor update, reallocation, scatter.

    This single implementation IS the bitwise baseline — both the
    run time's in-process path (:func:`repro.runtime.redistribute.communicate`
    without an SPMD backend) and :class:`SerialBackend` call it, so
    the conformance oracle cannot drift from the executed semantics.
    """
    gvals = array.to_global()
    array.descriptor.set_dist(new_dist)
    array._allocate_segments(fill=None)
    array.from_global(gvals)


class Backend:
    """Abstract SPMD execution backend.

    Lifecycle: construct, :meth:`attach` to one machine (the
    :class:`~repro.runtime.engine.Engine` does this), run, and
    :meth:`close`.  Backends are context managers.
    """

    #: short name used by CLIs and reports
    name = "abstract"
    #: True if operations execute in per-processor workers (and the
    #: run time must route bulk data motion through the backend).
    executes_spmd = False

    def __init__(self) -> None:
        self.machine: "Machine | None" = None

    # -- lifecycle -------------------------------------------------------
    def attach(self, machine: "Machine") -> "Backend":
        """Bind to ``machine`` (idempotent; one machine per backend)."""
        if self.machine is machine:
            return self
        if self.machine is not None:
            raise RuntimeError(
                f"{self.name} backend is already attached to a machine"
            )
        if machine.backend is not None and machine.backend is not self:
            raise RuntimeError(
                f"machine already has a {machine.backend.name} backend"
            )
        self.machine = machine
        machine.backend = self
        try:
            self._on_attach(machine)
        except BaseException:
            # roll back completely: a machine must never be left
            # pointing at a half-initialized backend (and a partially
            # spawned worker fleet must not leak)
            self.close()
            raise
        return self

    def _on_attach(self, machine: "Machine") -> None:
        """Subclass hook: spawn workers, install allocators, ..."""

    def close(self) -> None:
        """Release workers and shared resources; detach the machine."""
        machine, self.machine = self.machine, None
        if machine is not None and machine.backend is self:
            machine.backend = None
            machine.set_segment_allocator(None)

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- event recording ---------------------------------------------------
    @property
    def recorder(self):
        """The event recorder of the attached machine's network.

        Every backend drives the same master-side accounting code the
        serial reference does, so an installed
        :class:`repro.sim.events.EventLog` captures an identical
        typed-event stream regardless of which backend physically
        moves the data — the simulator's backend seam.
        """
        return self.machine.network.recorder if self.machine is not None else None

    def record_events(self, log=None):
        """Record this backend's execution as typed events (context
        manager; requires an attached machine).  See
        :func:`repro.sim.record`."""
        if self.machine is None:
            raise RuntimeError("backend is not attached to a machine")
        from ..sim.events import record

        return record(self.machine, log)

    # -- operations ------------------------------------------------------
    def move(self, array: "DistributedArray", new_dist, plan_cache=None) -> None:
        """Physically move ``array`` to ``new_dist`` (descriptor update
        and segment reallocation included).  Network accounting is the
        caller's job; ``plan_cache`` lets backends share memoized
        transfer plans with the run time."""
        raise NotImplementedError

    def run_kernel(
        self, array: "DistributedArray", fn: Callable,
    ) -> None:
        """Owner-computes kernel: ``fn(rank, local, idx)`` mutates each
        owning rank's local segment in place (``idx`` = per-dimension
        global index arrays)."""
        raise NotImplementedError

    @staticmethod
    def can_ship(fn) -> bool:
        """True if ``fn`` can be dispatched to this backend's workers
        (serial execution can run anything in-process)."""
        return True

    def __repr__(self) -> str:
        state = "attached" if self.machine is not None else "detached"
        return f"{type(self).__name__}({state})"


class SerialBackend(Backend):
    """The in-process reference backend — today's semantics, verbatim.

    Redistribution moves data by global reassembly, kernels run as a
    rank-ordered loop in the master process.  This is the behaviour
    every other backend is conformance-tested against, bit for bit.
    """

    name = "serial"
    executes_spmd = False

    def move(self, array: "DistributedArray", new_dist, plan_cache=None) -> None:
        serial_move(array, new_dist)

    def run_kernel(self, array: "DistributedArray", fn: Callable) -> None:
        for rank in array.owning_ranks():
            idx = array.local_indices(rank)
            fn(rank, array.local(rank), idx)


@contextmanager
def attached_backend(machine: "Machine", spec):
    """Attach a backend spec to ``machine`` for the duration of a run.

    ``None`` reuses whatever is already attached (possibly nothing);
    an already-constructed :class:`Backend` is attached but its
    lifecycle stays with the caller; a *name* (``"serial"``,
    ``"multiprocess"``) constructs a fresh backend and closes it on
    exit — the convenience path of the apps' ``backend=`` parameters.
    """
    if spec is None:
        yield machine.backend
        return
    owns = not isinstance(spec, Backend)
    backend = resolve_backend(spec)
    backend.attach(machine)
    try:
        yield backend
    finally:
        if owns:
            backend.close()


def resolve_backend(spec) -> Backend:
    """Turn a backend spec (instance, name, or ``None``) into a backend.

    ``None`` and ``"serial"`` give a fresh :class:`SerialBackend`;
    ``"multiprocess"`` gives a fresh
    :class:`~repro.backend.multiprocess.MultiprocessBackend` (the
    caller owns its lifecycle); an instance passes through.
    """
    if spec is None or spec == "serial":
        return SerialBackend()
    if isinstance(spec, Backend):
        return spec
    if spec == "multiprocess":
        from .multiprocess import MultiprocessBackend

        return MultiprocessBackend()
    raise ValueError(
        f"unknown backend {spec!r} (expected 'serial', 'multiprocess', "
        f"or a Backend instance)"
    )
