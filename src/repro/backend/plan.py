"""Deterministic data-motion plans shared by master and workers.

SPMD execution only works if every process derives *the same* plan
from the same distribution metadata: the sender enumerates the
elements it ships to each peer in exactly the order the receiver
expects them.  This module holds those pure planning functions:

- :func:`transfer_plan` — the redistribution plan: for each (source,
  destination) processor pair, the ascending global flat indices of
  the elements the old primary owner sends to each new owner (the
  per-pair expansion of the run time's transfer matrix — summing the
  index counts for ``s != d`` reproduces ``transfer_matrix`` exactly);
- :func:`segment_moves` — the same plan lowered to per-processor
  *local segment positions* (what a worker actually indexes);
- :func:`shift_plan` / :func:`halo_dest_slice` — the halo-exchange
  plan of :func:`~repro.runtime.communication.shift_exchange`, as
  data so both the in-process path and the worker op can execute it.

Everything here is metadata-only: no numpy payload moves, no machine
state is touched, and all outputs are picklable.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid importing upper layers at run time
    from ..core.distribution import Distribution

__all__ = [
    "segment_gflat",
    "transfer_plan",
    "segment_moves",
    "SegmentMoves",
    "shift_plan",
    "halo_dest_slice",
    "SweepPlan",
    "sweep_plan",
]


def segment_gflat(dist: "Distribution", rank: int) -> np.ndarray:
    """Global flat (C-order) indices of ``rank``'s segment, in the
    segment's own C storage order.

    This is the bridge between a worker's local buffer and global
    index space: position ``i`` of the flattened local segment holds
    global element ``segment_gflat(dist, rank)[i]``.
    """
    idx = dist.local_index_arrays(rank)
    if idx is None or any(len(a) == 0 for a in idx):
        return np.empty(0, dtype=np.int64)
    grids = np.meshgrid(*idx, indexing="ij")
    return np.ravel_multi_index(
        tuple(g.ravel() for g in grids), dist.shape
    ).astype(np.int64)


def transfer_plan(
    old: "Distribution", new: "Distribution", nprocs: int
) -> list[tuple[int, int, np.ndarray]]:
    """Per-pair element index sets of a redistribution.

    Returns ``[(src, dst, gflat_indices), ...]`` where data is sourced
    from the *old primary* owner and delivered to *every* new owner
    (one entry group per replica rank map, matching
    :func:`~repro.runtime.redistribute.transfer_matrix`); ``src ==
    dst`` entries are the elements a processor keeps locally.  Index
    arrays are ascending; entry order is deterministic, so sender and
    receiver agree on message order by construction.
    """
    if old.domain != new.domain:
        raise ValueError(
            f"redistribution must preserve the index domain: "
            f"{old.domain!r} vs {new.domain!r}"
        )
    src = np.asarray(old.rank_map()).ravel().astype(np.int64)
    entries: list[tuple[int, int, np.ndarray]] = []
    for new_rm in new.owner_rank_maps():
        dst = np.asarray(new_rm).ravel().astype(np.int64)
        pair = src * nprocs + dst
        order = np.argsort(pair, kind="stable")
        sorted_pair = pair[order]
        cuts = np.nonzero(np.diff(sorted_pair))[0] + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [len(pair)]))
        for st, en in zip(starts, ends):
            s, d = divmod(int(sorted_pair[st]), nprocs)
            entries.append((s, d, np.sort(order[st:en])))
    return entries


class SegmentMoves:
    """One processor's share of a redistribution, in local positions.

    ``sends``/``recvs`` are ``(peer, positions)`` lists in plan order —
    positions index the *flattened* old/new local segment; ``keeps``
    are ``(old_positions, new_positions)`` pairs copied locally.
    """

    __slots__ = ("rank", "sends", "recvs", "keeps")

    def __init__(self, rank: int):
        self.rank = rank
        self.sends: list[tuple[int, np.ndarray]] = []
        self.recvs: list[tuple[int, np.ndarray]] = []
        self.keeps: list[tuple[np.ndarray, np.ndarray]] = []


def _positions(
    dist: "Distribution",
    rank: int,
    gidx: np.ndarray,
    cache: dict[int, tuple[np.ndarray, np.ndarray]],
) -> np.ndarray:
    """Local flat positions of the global flat indices ``gidx`` inside
    ``rank``'s segment (robust to any segment storage order)."""
    entry = cache.get(rank)
    if entry is None:
        gflat = segment_gflat(dist, rank)
        order = np.argsort(gflat, kind="stable")
        entry = (gflat[order], order)
        cache[rank] = entry
    sorted_gflat, order = entry
    where = np.searchsorted(sorted_gflat, gidx)
    if where.size and (
        where.max(initial=0) >= len(order)
        or not np.array_equal(sorted_gflat[where], gidx)
    ):
        raise AssertionError(
            f"transfer plan references elements outside processor "
            f"{rank}'s segment"
        )
    return order[where]


def segment_moves(
    old: "Distribution", new: "Distribution", nprocs: int
) -> dict[int, SegmentMoves]:
    """Lower :func:`transfer_plan` to per-rank local segment moves."""
    plan = transfer_plan(old, new, nprocs)
    old_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    new_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    moves: dict[int, SegmentMoves] = defaultdict(
        lambda: SegmentMoves(-1)
    )

    def of(rank: int) -> SegmentMoves:
        m = moves[rank]
        if m.rank < 0:
            m.rank = rank
        return m

    for s, d, gidx in plan:
        opos = _positions(old, s, gidx, old_cache)
        npos = _positions(new, d, gidx, new_cache)
        if s == d:
            of(s).keeps.append((opos, npos))
        else:
            of(s).sends.append((d, opos))
            of(d).recvs.append((s, npos))
    return dict(moves)


# -- halo exchange planning ------------------------------------------------

def shift_plan(
    dist: "Distribution", dim: int, width: int
) -> list[tuple[int, int, str, tuple[slice, ...], int]]:
    """The slab-exchange plan of one boundary shift along ``dim``.

    Returns ``[(src, dst, key, src_slices, count), ...]``: ``src``
    sends the ``src_slices`` slab of its local segment to ``dst``,
    which stores it as its ``key`` (``"lo"``/``"hi"``) halo; ``count``
    is the slab's element count.  Mirrors the neighbour discovery of
    :func:`~repro.runtime.communication.shift_exchange` exactly.
    """
    if width < 1:
        raise ValueError("exchange width must be >= 1")
    segs: dict[int, tuple[tuple[int, int], ...]] = {}
    for rank in range(dist.nprocs):
        if dist.local_size(rank) <= 0:
            continue
        if dist.local_index_arrays(rank) is None:
            continue
        seg = dist.segment(rank)
        if seg is None:
            raise ValueError(
                f"not contiguously distributed on processor {rank}; "
                f"shift exchange requires BLOCK-family distributions"
            )
        segs[rank] = seg

    ndim = len(dist.shape)
    entries: list[tuple[int, int, str, tuple[slice, ...], int]] = []
    for rank, seg in segs.items():
        lo, hi = seg[dim]
        n = hi - lo
        if n <= 0:
            continue
        shape = tuple(h - l for l, h in seg)
        cross = int(
            np.prod(
                [s for d, s in enumerate(shape) if d != dim],
                dtype=np.int64,
            )
        )
        w = min(width, n)
        for other, oseg in segs.items():
            olo, ohi = oseg[dim]
            if other == rank or ohi - olo <= 0:
                continue
            if any(
                seg[d] != oseg[d] for d in range(ndim) if d != dim
            ):
                continue
            if ohi == lo:
                # other is the lower neighbour: our low slab is its "hi"
                key, slab = "hi", slice(0, w)
            elif olo == hi:
                # other is the upper neighbour: our high slab is its "lo"
                key, slab = "lo", slice(n - w, n)
            else:
                continue
            sl = [slice(None)] * ndim
            sl[dim] = slab
            entries.append((rank, other, key, tuple(sl), w * cross))
    return entries


class SweepPlan:
    """Grouped line-ownership plan of one distributed line sweep.

    A line sweep along array dimension ``dim`` touches one line per
    index combination of the *other* dimensions.  Because every
    intrinsic distributes dimensions independently, two lines whose
    other-dimension indices land on the same processor slots have
    *identical* ownership structure — so instead of slicing the rank
    map and running ``np.unique`` per line (the per-element reference),
    the plan computes head, piece counts and message templates once per
    *group* (at most ``prod(slots)`` groups) and maps each line to its
    group.

    Attributes
    ----------
    group_of_line:
        int64 array, one entry per line in row-major (product) order
        over the other dimensions — the group index of that line.
    head:
        per group, the rank owning the line's first element (where the
        solve runs).
    remote:
        per group, whether the line spans more than one owner.
    gather / scatter:
        per group, the ``(src, dst, element_count)`` message template
        of one line's gather-to-head / scatter-back (ascending peer
        rank — the ``np.unique`` order of the reference).
    """

    __slots__ = ("dim", "n_line", "group_of_line", "head", "remote",
                 "gather", "scatter")

    def __init__(self, dim, n_line, group_of_line, head, remote, gather, scatter):
        self.dim = dim
        self.n_line = n_line
        self.group_of_line = group_of_line
        self.head = head
        self.remote = remote
        self.gather = gather
        self.scatter = scatter

    @property
    def nlines(self) -> int:
        return len(self.group_of_line)


def sweep_plan(dist: "Distribution", dim: int) -> SweepPlan:
    """Build the :class:`SweepPlan` of sweeping ``dist`` along ``dim``.

    Requires array dimension ``dim`` to consume a processor dimension
    (a sweep along an undistributed dimension is communication-free
    and needs no plan).
    """
    shape = dist.shape
    ndim = len(shape)
    if not dist.dtype.dims[dim].consumes_proc_dim:
        raise ValueError(f"dimension {dim} is not distributed")
    other_dims = [d for d in range(ndim) if d != dim]
    maps = dist.owner_maps()  # per-dim primary slot vectors (read-only)
    slots = [dist._slots(d) for d in range(ndim)]

    # group id per line, row-major over the other dimensions
    group_shape = tuple(slots[d] for d in other_dims)
    if other_dims:
        grids = np.meshgrid(*(maps[d] for d in other_dims), indexing="ij")
        group_of_line = np.ravel_multi_index(
            tuple(g.ravel() for g in grids), group_shape
        ).astype(np.int64)
    else:
        group_of_line = np.zeros(1, dtype=np.int64)
        group_shape = ()

    # per-group line-rank vectors: rank_array indexed by the group's
    # other-dim slots broadcast against dim's owner vector
    ngroups = int(np.prod(group_shape, dtype=np.int64)) if group_shape else 1
    group_mi = np.unravel_index(np.arange(ngroups), group_shape or (1,))
    index_arrays: list[np.ndarray | None] = [None] * dist.target.ndim
    for pos, d in enumerate(other_dims):
        if dist.dtype.dims[d].consumes_proc_dim:
            index_arrays[dist._secdim_of[d]] = group_mi[pos].reshape(-1, 1)
    index_arrays[dist._secdim_of[dim]] = maps[dim].reshape(1, -1)
    line_ranks = np.broadcast_to(
        dist._rank_array[tuple(index_arrays)], (ngroups, shape[dim])
    )

    head = np.ascontiguousarray(line_ranks[:, 0]).astype(np.int64)
    remote = np.zeros(ngroups, dtype=bool)
    gather: list[list[tuple[int, int, int]]] = []
    scatter: list[list[tuple[int, int, int]]] = []
    for g in range(ngroups):
        qs, counts = np.unique(line_ranks[g], return_counts=True)
        h = int(head[g])
        remote[g] = len(qs) > 1
        gather.append(
            [(int(q), h, int(c)) for q, c in zip(qs, counts) if int(q) != h]
        )
        scatter.append(
            [(h, int(q), int(c)) for q, c in zip(qs, counts) if int(q) != h]
        )
    return SweepPlan(
        dim, shape[dim], group_of_line, head, remote, gather, scatter
    )


def halo_dest_slice(
    local_shape: tuple[int, ...],
    widths: tuple[int, ...],
    dim: int,
    key: str,
) -> tuple[slice, ...]:
    """Where a received slab lands inside the halo-padded buffer."""
    sl = [
        slice(w, w + s) for s, w in zip(local_shape, widths)
    ]
    w = widths[dim]
    if key == "lo":
        sl[dim] = slice(0, w)
    elif key == "hi":
        n = local_shape[dim]
        sl[dim] = slice(w + n, 2 * w + n)
    else:
        raise ValueError(f"halo key must be 'lo' or 'hi', got {key!r}")
    return tuple(sl)
