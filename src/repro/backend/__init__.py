"""Pluggable SPMD execution backends (the real-execution tier).

The paper's Vienna Fortran Engine is "an abstract machine that
executes Vienna Fortran object programs" SPMD on distributed
hardware.  This subpackage gives the reproduction that execution
path:

- :class:`~repro.backend.base.SerialBackend` — the in-process
  reference semantics (bitwise ground truth);
- :class:`~repro.backend.multiprocess.MultiprocessBackend` — one
  worker process per simulated processor, local segments in
  ``multiprocessing.shared_memory``, transfer plans / halo exchanges
  / owner-computes kernels executed through an explicit
  message-passing :class:`~repro.backend.transport.Transport`
  (send/recv + barrier/allgather);
- :mod:`~repro.backend.calibrate` — microbenchmarks the transport and
  fits real alpha/beta/flop-rate constants into a
  :class:`~repro.machine.measured.MeasuredMachine`, so the planner
  schedules against *measured* rather than assumed costs.

Attach a backend through the session facade::

    import repro

    with repro.session(nprocs=4, backend="multiprocess") as sess:
        vfe = sess.engine()
        ...  # DISTRIBUTE / kernels now execute in worker processes
"""

from . import calibrate  # noqa: F401  (the calibration namespace)
from .base import Backend, SerialBackend, attached_backend, resolve_backend
from .calibrate import fit_alpha_beta, measured_machine
from .multiprocess import BackendError, FleetSupervisor, MultiprocessBackend
from .plan import segment_moves, shift_plan, transfer_plan
from .shm import BlockMeta, SharedSegmentAllocator
from .transport import Transport, TransportBroken, TransportTimeout

__all__ = [
    "Backend",
    "SerialBackend",
    "MultiprocessBackend",
    "BackendError",
    "FleetSupervisor",
    "resolve_backend",
    "attached_backend",
    "calibrate",
    "fit_alpha_beta",
    "measured_machine",
    "transfer_plan",
    "segment_moves",
    "shift_plan",
    "Transport",
    "TransportTimeout",
    "TransportBroken",
    "BlockMeta",
    "SharedSegmentAllocator",
]
