"""Real SPMD execution: one worker process per simulated processor.

The :class:`MultiprocessBackend` is the "object program" tier the
paper's abstract machine compiles to, realized with the Python
standard library: per-processor worker processes, local segments in
``multiprocessing.shared_memory`` (see :mod:`~repro.backend.shm`),
and an explicit message-passing transport with point-to-point
send/recv and barrier/allgather collectives
(:mod:`~repro.backend.transport`).  Transfer plans, halo exchanges
and owner-computes kernels execute *in the workers*
(:mod:`~repro.backend.ops`); the master only plans, accounts on the
simulated network, and reads results back through shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import sys
from collections import defaultdict
from queue import Empty
from typing import TYPE_CHECKING, Callable

from ..obs import metrics as _obs
from .base import Backend
from .ops import (
    op_local_kernel,
    op_noop,
    op_redistribute,
    op_stencil_step,
)
from .plan import halo_dest_slice, segment_moves, shift_plan
from .shm import SharedSegmentAllocator
from .worker import worker_main

if TYPE_CHECKING:
    from ..machine.machine import Machine
    from ..runtime.darray import DistributedArray

__all__ = ["BackendError", "MultiprocessBackend"]


class BackendError(RuntimeError):
    """A worker failed or did not respond."""


_BACKEND_OPS = _obs.counter(
    "repro_backend_ops_total",
    "SPMD ops broadcast by the master, by op name and outcome.",
    ("op", "status"),
)
_BACKEND_COMMANDS = _obs.counter(
    "repro_backend_commands_total",
    "Per-worker command sends and acknowledgements at the master.",
    ("direction",),
)


def _pick_start_method(requested: str | None) -> str:
    if requested is not None:
        return requested
    methods = mp.get_all_start_methods()
    # fork keeps startup fast, but is only safe on Linux (macOS's
    # Objective-C runtime and Accelerate-backed numpy can abort in
    # forked children — the reason CPython switched that platform's
    # default to spawn); everything here is spawn-safe regardless
    if sys.platform.startswith("linux") and "fork" in methods:
        return "fork"
    return mp.get_start_method(allow_none=False)


class MultiprocessBackend(Backend):
    """SPMD execution over ``nprocs`` worker processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    timeout:
        Seconds the master waits for worker acknowledgements and
        workers wait on receives/barriers before failing loudly.
    """

    name = "multiprocess"
    executes_spmd = True

    def __init__(self, start_method: str | None = None, timeout: float = 120.0):
        super().__init__()
        self._ctx = mp.get_context(_pick_start_method(start_method))
        self.timeout = float(timeout)
        self.nprocs = 0
        self.allocator: SharedSegmentAllocator | None = None
        self._procs: list = []
        self._cmd_queues: list = []
        self._inboxes: list = []
        self._result_queue = None
        self._barrier = None
        self._op_counter = 0
        self._seq = 0  # command sequence number (stale-ack fencing)
        self._shipped_plans: set[int] = set()
        self._plan_ids: dict = {}
        #: ops dispatched to the worker fleet (for tests/reports)
        self.ops_executed = 0

    # -- lifecycle -------------------------------------------------------
    def _on_attach(self, machine: "Machine") -> None:
        if machine.total_memory_used() > 0:
            raise RuntimeError(
                "attach the multiprocess backend before declaring "
                "arrays: existing segments are not in shared memory"
            )
        self.nprocs = machine.nprocs
        self.allocator = SharedSegmentAllocator(tag=f"{id(self):x}")
        machine.set_segment_allocator(self.allocator)
        ctx = self._ctx
        # Start the master's resource tracker *before* forking so the
        # workers inherit (and share) it instead of lazily spawning
        # their own — the premise of the fork branch of
        # shm.unregister_on_attach.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        self._inboxes = [ctx.Queue() for _ in range(self.nprocs)]
        self._cmd_queues = [ctx.Queue() for _ in range(self.nprocs)]
        self._result_queue = ctx.Queue()
        barrier = ctx.Barrier(self.nprocs)
        self._barrier = barrier
        start_method = getattr(ctx, "_name", None) or mp.get_start_method()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    rank,
                    self.nprocs,
                    self._cmd_queues[rank],
                    self._result_queue,
                    self._inboxes[rank],
                    self._inboxes,
                    barrier,
                    self.timeout,
                    start_method != "fork",
                ),
                daemon=True,
                name=f"vfe-worker-{rank}",
            )
            for rank in range(self.nprocs)
        ]
        for p in self._procs:
            p.start()
        # health check: every worker answers and the barrier works
        ranks = self.run_op(op_noop, [{} for _ in range(self.nprocs)])
        if sorted(ranks) != list(range(self.nprocs)):
            raise BackendError(f"worker fleet failed to start: {ranks}")

    def close(self) -> None:
        for q in self._cmd_queues:
            try:
                q.put(None)
            except Exception:  # pragma: no cover - queue already gone
                pass
        for p in self._procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - wedged worker
                p.terminate()
                p.join(timeout=1.0)
        self._procs = []
        for q in [*self._cmd_queues, *self._inboxes]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover
                pass
        self._cmd_queues = []
        self._inboxes = []
        self._result_queue = None
        if self.allocator is not None:
            # Copy every still-registered block into ordinary process
            # memory BEFORE unlinking: the simulated LocalMemory still
            # holds ndarray views over the shared buffers, and reading
            # one after the unmap would be a hard segfault.  After
            # close(), arrays keep their contents with serial
            # semantics.
            if self.machine is not None:
                for rank, name in self.allocator.registered():
                    self.machine.memory(rank).materialize(name)
            self.allocator.close()
            self.allocator = None
        super().close()

    # -- command dispatch ------------------------------------------------
    def run_op(self, op: Callable, per_rank_kwargs: list[dict]) -> list:
        """Broadcast one SPMD op; block until every worker acks.

        ``per_rank_kwargs[r]`` is worker ``r``'s keyword arguments.
        Returns per-rank payloads; raises :class:`BackendError` if any
        worker errored or went silent.
        """
        if len(per_rank_kwargs) != self.nprocs:
            raise ValueError(
                f"need kwargs for every worker ({self.nprocs}), "
                f"got {len(per_rank_kwargs)}"
            )
        if not self._procs:
            raise BackendError("backend is not attached / already closed")
        self._seq += 1
        seq = self._seq
        for rank, kwargs in enumerate(per_rank_kwargs):
            self._cmd_queues[rank].put((op, kwargs, seq))
        _BACKEND_COMMANDS.inc(self.nprocs, direction="sent")
        results = [None] * self.nprocs
        errors = []
        acked = 0
        while acked < self.nprocs:
            try:
                rank, ack_seq, status, payload = self._result_queue.get(
                    timeout=self.timeout
                )
            except Empty:
                self._recover_barrier()
                dead = [p.name for p in self._procs if not p.is_alive()]
                raise BackendError(
                    f"worker acknowledgement timed out after "
                    f"{self.timeout}s (dead workers: {dead or 'none'})"
                ) from None
            if ack_seq != seq:
                # stale ack from an op that previously timed out on
                # the master side — drop it, keep the streams aligned
                continue
            acked += 1
            if status == "error":
                errors.append((rank, payload))
            else:
                results[rank] = payload
        _BACKEND_COMMANDS.inc(acked, direction="acked")
        op_name = getattr(op, "__name__", str(op))
        if errors:
            # a failing worker aborts the collective barrier so its
            # peers bail out fast; re-arm it for the next op
            self._recover_barrier()
            _BACKEND_OPS.inc(op=op_name, status="error")
            detail = "\n".join(
                f"-- worker {rank} --\n{msg}" for rank, msg in errors
            )
            raise BackendError(f"{len(errors)} worker(s) failed:\n{detail}")
        self.ops_executed += 1
        _BACKEND_OPS.inc(op=op_name, status="ok")
        return results

    def _recover_barrier(self) -> None:
        if self._barrier is not None:
            try:
                self._barrier.reset()
            except Exception:  # pragma: no cover - already usable
                pass

    # -- operations ------------------------------------------------------
    def move(
        self,
        array: "DistributedArray",
        new_dist,
        plan_cache=None,
    ) -> None:
        """Execute a DISTRIBUTE transfer plan in the worker fleet.

        The per-pair index plan is derived once (and shared through
        the engine's :class:`~repro.runtime.redistribute.PlanCache`
        when given); workers only ship values — both endpoints address
        them through the same deterministic plan.
        """
        machine = array.machine
        nprocs = machine.nprocs
        old_dist = array.descriptor.dist
        block = array._block_name()

        # recurring layout pairs ship their position arrays to the
        # fleet once; afterwards only the plan id crosses the queues
        plan_key = (old_dist, new_dist, nprocs)
        plan_id = self._plan_ids.get(plan_key)
        if plan_id is None:
            plan_id = len(self._plan_ids) + 1
            self._plan_ids[plan_key] = plan_id
        ship = plan_id not in self._shipped_plans
        if ship:
            if plan_cache is not None:
                moves = plan_cache.segment_moves(old_dist, new_dist, nprocs)
            else:
                moves = segment_moves(old_dist, new_dist, nprocs)
        else:
            moves = {}
            if plan_cache is not None:
                # count the replay as a cache hit: the fleet IS the cache
                plan_cache.hits += 1

        # keep old physical segments alive across the reallocation
        stashed = {}
        for rank in range(nprocs):
            st = self.allocator.stash(rank, block)
            if st is not None:
                stashed[rank] = st
        try:
            array.descriptor.set_dist(new_dist)
            array._allocate_segments(fill=None)

            self._op_counter += 1
            tag = f"redist:{array.name}:{self._op_counter}"
            per_rank = []
            for rank in range(nprocs):
                m = moves.get(rank)
                per_rank.append(
                    dict(
                        old_meta=stashed[rank][1] if rank in stashed else None,
                        new_meta=self.allocator.meta(rank, block),
                        plan_id=plan_id,
                        sends=(m.sends if m is not None else []) if ship else None,
                        recvs=(m.recvs if m is not None else []) if ship else None,
                        keeps=(m.keeps if m is not None else []) if ship else None,
                        tag=tag,
                    )
                )
            self.run_op(op_redistribute, per_rank)
            self._shipped_plans.add(plan_id)
        finally:
            # release the old physical segments even if reallocation
            # or the worker op failed — never orphan /dev/shm blocks
            for shm, _meta in stashed.values():
                shm.close()
                shm.unlink()

    def run_kernel(self, array: "DistributedArray", fn: Callable) -> None:
        owning = set(array.owning_ranks())
        block = array._block_name()
        per_rank = []
        for rank in range(self.nprocs):
            if rank in owning:
                per_rank.append(
                    dict(
                        meta=self.allocator.meta(rank, block),
                        fn=fn,
                        idx=array.local_indices(rank),
                    )
                )
            else:
                per_rank.append(dict(meta=None, fn=fn, idx=None))
        self.run_op(op_local_kernel, per_rank)

    def stencil_step(
        self,
        array: "DistributedArray",
        overlap,
        func: Callable,
        dim_entries=None,
    ) -> None:
        """One halo-exchanged stencil sweep across the worker fleet.

        ``overlap`` is the array's
        :class:`~repro.runtime.overlap.OverlapManager` (its padded
        buffers are shared-memory blocks like any other allocation).
        ``dim_entries`` — ``[(dim, shift_plan entries), ...]`` — lets
        a caller that already planned the exchange for accounting
        (``StencilKernel._step_spmd``) reuse the plan here.
        """
        dist = array.dist
        widths = overlap.widths
        seg_block = array._block_name()
        pad_block = overlap._buf_name()
        if dim_entries is None:
            dim_entries = [
                (dim, shift_plan(dist, dim, w))
                for dim, w in enumerate(widths)
                if w > 0
            ]
        local_shapes = {
            rank: dist.local_shape(rank) for rank in range(self.nprocs)
        }
        dim_plans: dict[int, list] = {r: [] for r in range(self.nprocs)}
        for dim, entries in dim_entries:
            sends = defaultdict(list)
            recvs = defaultdict(list)
            for src, dst, key, src_sl, _count in entries:
                sends[src].append((dst, key, src_sl))
                recvs[dst].append(
                    (
                        src,
                        key,
                        halo_dest_slice(local_shapes[dst], widths, dim, key),
                    )
                )
            for rank in range(self.nprocs):
                dim_plans[rank].append(
                    (dim, sends.get(rank, []), recvs.get(rank, []))
                )
        per_rank = [
            dict(
                seg_meta=self.allocator.meta(rank, seg_block),
                pad_meta=self.allocator.meta(rank, pad_block),
                widths=tuple(widths),
                dim_plans=dim_plans[rank],
                func=func,
            )
            for rank in range(self.nprocs)
        ]
        self.run_op(op_stencil_step, per_rank)

    # -- introspection ---------------------------------------------------
    @staticmethod
    def can_ship(fn) -> bool:
        """True if ``fn`` can be sent to workers (pickles by value/ref)."""
        try:
            pickle.dumps(fn)
            return True
        except Exception:
            return False
