"""Real SPMD execution: one worker process per simulated processor.

The :class:`MultiprocessBackend` is the "object program" tier the
paper's abstract machine compiles to, realized with the Python
standard library: per-processor worker processes, local segments in
``multiprocessing.shared_memory`` (see :mod:`~repro.backend.shm`),
and an explicit message-passing transport with point-to-point
send/recv and barrier/allgather collectives
(:mod:`~repro.backend.transport`).  Transfer plans, halo exchanges
and owner-computes kernels execute *in the workers*
(:mod:`~repro.backend.ops`); the master only plans, accounts on the
simulated network, and reads results back through shared memory.

Fault tolerance (ISSUE 9): every op boundary is a consistent cut —
workers are quiescent between acks, and all array state lives in the
master-owned shared segments.  :meth:`run_op` therefore snapshots the
segments before dispatch; if the :class:`FleetSupervisor` detects a
dead worker (exitcode) or a hung one (stale heartbeat) mid-op, it
tears the fleet down, respawns it, restores the snapshot, and replays
the op under a fresh sequence number — bitwise-identical to an
uninterrupted run, because the replayed op starts from the same bytes
and ops themselves are deterministic.  Deterministic worker errors
(an op raising) are **not** retried: they would fail identically, so
they surface as a non-retryable :class:`BackendError` and the session
layer degrades to the serial backend instead.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import sys
import time
from collections import defaultdict
from queue import Empty
from typing import TYPE_CHECKING, Callable

from ..faults import plan as _faults
from ..obs import flight as _flight
from ..obs import metrics as _obs
from .base import Backend
from .ops import (
    op_local_kernel,
    op_noop,
    op_redistribute,
    op_stencil_step,
)
from .plan import halo_dest_slice, segment_moves, shift_plan
from .shm import SharedSegmentAllocator
from .worker import worker_main

if TYPE_CHECKING:
    from ..machine.machine import Machine
    from ..runtime.darray import DistributedArray

__all__ = ["BackendError", "FleetSupervisor", "MultiprocessBackend"]


class BackendError(RuntimeError):
    """A worker failed or did not respond.

    ``retryable`` marks fleet-level faults (dead/hung workers) that a
    fleet restart plus op replay can recover from, as opposed to
    deterministic op errors that would fail identically on replay.
    ``dead_ranks``/``hung_ranks`` name the detected culprits.
    """

    def __init__(
        self,
        message: str,
        *,
        retryable: bool = False,
        dead_ranks: tuple = (),
        hung_ranks: tuple = (),
    ):
        super().__init__(message)
        self.retryable = bool(retryable)
        self.dead_ranks = tuple(dead_ranks)
        self.hung_ranks = tuple(hung_ranks)


_BACKEND_OPS = _obs.counter(
    "repro_backend_ops_total",
    "SPMD ops broadcast by the master, by op name and outcome.",
    ("op", "status"),
)
_BACKEND_COMMANDS = _obs.counter(
    "repro_backend_commands_total",
    "Per-worker command sends and acknowledgements at the master.",
    ("direction",),
)
_FLEET_RESTARTS = _obs.counter(
    "repro_backend_fleet_restarts_total",
    "Worker-fleet teardown/respawn recoveries at the master, by cause.",
    ("cause",),
)


def _pick_start_method(requested: str | None) -> str:
    if requested is not None:
        return requested
    methods = mp.get_all_start_methods()
    # fork keeps startup fast, but is only safe on Linux (macOS's
    # Objective-C runtime and Accelerate-backed numpy can abort in
    # forked children — the reason CPython switched that platform's
    # default to spawn); everything here is spawn-safe regardless
    if sys.platform.startswith("linux") and "fork" in methods:
        return "fork"
    return mp.get_start_method(allow_none=False)


class FleetSupervisor:
    """Detects dead/hung workers and restarts the fleet.

    Death is an OS fact (``Process.exitcode``); hang is a liveness
    judgement (a worker that received the current command — or was
    sent it — more than ``hang_timeout`` seconds ago and has neither
    stamped its heartbeat nor acked).  :meth:`recover` is the
    restart-and-restore path :meth:`MultiprocessBackend.run_op`
    invokes between replay attempts: terminate everything, respawn
    fresh queues/barrier/processes, restore the op-boundary segment
    snapshot, and force transfer plans to re-ship (the new workers'
    plan memos are empty).
    """

    def __init__(self, backend: "MultiprocessBackend", max_restarts: int = 2):
        self.backend = backend
        self.max_restarts = int(max_restarts)
        #: lifetime fleet restarts performed by this supervisor
        self.restarts = 0

    # -- detection -------------------------------------------------------
    def fleet_health(
        self, acked_ranks=(), dispatch_time: float | None = None
    ) -> tuple[list, list]:
        """``(dead, hung)`` among ranks still owing an ack.

        ``dead`` is ``[(rank, exitcode), ...]``; ``hung`` is
        ``[rank, ...]``.  Hang detection references the later of the
        worker's heartbeat and the op dispatch time, so idle-but-
        healthy workers (stale heartbeat *between* ops) are never
        misjudged.
        """
        b = self.backend
        acked = set(acked_ranks)
        dead = [
            (rank, proc.exitcode)
            for rank, proc in enumerate(b._procs)
            if rank not in acked and not proc.is_alive()
        ]
        hung: list[int] = []
        hang_timeout = b.effective_hang_timeout
        if (
            b._heartbeat is not None
            and dispatch_time is not None
            and hang_timeout < b.timeout
        ):
            now = time.monotonic()
            for rank, proc in enumerate(b._procs):
                if rank in acked or not proc.is_alive():
                    continue
                last_sign_of_life = max(b._heartbeat[rank], dispatch_time)
                if now - last_sign_of_life > hang_timeout:
                    hung.append(rank)
        return dead, hung

    # -- recovery --------------------------------------------------------
    def recover(self, *, cause: str, snapshot, detail: str = "") -> None:
        """Terminate, respawn, restore the snapshot, re-arm plan
        shipping.  Raises (propagating) if the new fleet fails its
        health check — the caller's replay then surfaces the failure."""
        b = self.backend
        self.restarts += 1
        _FLEET_RESTARTS.inc(cause=cause)
        _flight.incident(
            "backend fleet restart",
            attrs={
                "cause": cause,
                "detail": detail,
                "restart": self.restarts,
                "nprocs": b.nprocs,
            },
        )
        b._teardown_fleet(terminate=True)
        # new workers have empty plan memos: recurring transfer plans
        # must ship their index arrays again
        b._shipped_plans.clear()
        b._spawn_fleet()
        b._restore_segments(snapshot)


class MultiprocessBackend(Backend):
    """SPMD execution over ``nprocs`` worker processes.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else the platform default).
    timeout:
        Seconds the master waits for worker acknowledgements and
        workers wait on receives/barriers before failing loudly.
    max_restarts:
        Fleet restarts the supervisor may spend *per op* recovering
        from dead/hung workers (0 disables recovery and the
        op-boundary snapshots that feed it).
    hang_timeout:
        Seconds of heartbeat silence after which a live worker is
        judged hung (default ``None`` = only the full ``timeout``
        declares it, i.e. hang detection adds nothing).  Set well
        above the longest legitimate single-op runtime.
    """

    name = "multiprocess"
    executes_spmd = True

    def __init__(
        self,
        start_method: str | None = None,
        timeout: float = 120.0,
        *,
        max_restarts: int = 2,
        hang_timeout: float | None = None,
    ):
        super().__init__()
        self._ctx = mp.get_context(_pick_start_method(start_method))
        self.timeout = float(timeout)
        self.hang_timeout = None if hang_timeout is None else float(hang_timeout)
        self.nprocs = 0
        self.allocator: SharedSegmentAllocator | None = None
        self.supervisor = FleetSupervisor(self, max_restarts=max_restarts)
        self._procs: list = []
        self._cmd_queues: list = []
        self._inboxes: list = []
        self._result_queue = None
        self._barrier = None
        self._heartbeat = None
        self._abort_board = None
        self._fault_plan = None
        self._op_counter = 0
        self._seq = 0  # command sequence number (stale-ack fencing)
        self._shipped_plans: set[int] = set()
        self._plan_ids: dict = {}
        #: shipped transfer-plan payloads by plan id, kept master-side
        #: so a replay after a fleet restart can re-ship what the dead
        #: workers' memos knew
        self._plan_payloads: dict[int, dict] = {}
        #: ops dispatched to the worker fleet (for tests/reports)
        self.ops_executed = 0

    @property
    def effective_hang_timeout(self) -> float:
        return self.timeout if self.hang_timeout is None else self.hang_timeout

    # -- lifecycle -------------------------------------------------------
    def _on_attach(self, machine: "Machine") -> None:
        if machine.total_memory_used() > 0:
            raise RuntimeError(
                "attach the multiprocess backend before declaring "
                "arrays: existing segments are not in shared memory"
            )
        self.nprocs = machine.nprocs
        self.allocator = SharedSegmentAllocator(tag=f"{id(self):x}")
        machine.set_segment_allocator(self.allocator)
        # Start the master's resource tracker *before* forking so the
        # workers inherit (and share) it instead of lazily spawning
        # their own — the premise of the fork branch of
        # shm.unregister_on_attach.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception as exc:  # pragma: no cover - tracker internals vary
            _flight.note(
                "backend.swallowed",
                site="attach.resource_tracker",
                error=repr(exc),
            )
        # the fault plan is latched at attach so every spawned fleet of
        # this backend instance (including post-recovery respawns) runs
        # under the same injected faults
        self._fault_plan = _faults.active_plan()
        self._spawn_fleet()

    def _spawn_fleet(self) -> None:
        """Create queues, barrier, liveness state, and worker
        processes; health-check the fleet before returning."""
        ctx = self._ctx
        self._inboxes = [ctx.Queue() for _ in range(self.nprocs)]
        self._cmd_queues = [ctx.Queue() for _ in range(self.nprocs)]
        self._result_queue = ctx.Queue()
        barrier = ctx.Barrier(self.nprocs)
        self._barrier = barrier
        self._heartbeat = ctx.Array("d", self.nprocs, lock=False)
        self._abort_board = ctx.Array("i", self.nprocs, lock=False)
        now = time.monotonic()
        for rank in range(self.nprocs):
            self._heartbeat[rank] = now
            self._abort_board[rank] = 0
        start_method = getattr(ctx, "_name", None) or mp.get_start_method()
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(
                    rank,
                    self.nprocs,
                    self._cmd_queues[rank],
                    self._result_queue,
                    self._inboxes[rank],
                    self._inboxes,
                    barrier,
                    self.timeout,
                    start_method != "fork",
                    self._heartbeat,
                    self._abort_board,
                    self._fault_plan,
                ),
                daemon=True,
                name=f"vfe-worker-{rank}",
            )
            for rank in range(self.nprocs)
        ]
        for p in self._procs:
            p.start()
        # health check: every worker answers and the barrier works
        ranks = self._run_op_once(op_noop, [{} for _ in range(self.nprocs)])
        if sorted(ranks) != list(range(self.nprocs)):
            raise BackendError(f"worker fleet failed to start: {ranks}")

    def _teardown_fleet(self, terminate: bool = False) -> None:
        """Stop workers and drop fleet plumbing; segments stay alive.

        ``terminate=False`` asks workers to exit via the command
        queues (normal close); ``terminate=True`` kills them (the
        recovery path — the fleet is known broken, nobody listens)."""
        if not terminate:
            for q in self._cmd_queues:
                try:
                    q.put(None)
                except Exception as exc:  # pragma: no cover - queue gone
                    _flight.note(
                        "backend.swallowed",
                        site="teardown.cmd_queue.put",
                        error=repr(exc),
                    )
        for p in self._procs:
            if terminate and p.is_alive():
                p.terminate()
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - wedged worker
                p.terminate()
                p.join(timeout=1.0)
        self._procs = []
        for q in [*self._cmd_queues, *self._inboxes]:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception as exc:  # pragma: no cover
                _flight.note(
                    "backend.swallowed",
                    site="teardown.queue.close",
                    error=repr(exc),
                )
        self._cmd_queues = []
        self._inboxes = []
        self._result_queue = None
        self._barrier = None
        self._heartbeat = None
        self._abort_board = None

    def close(self) -> None:
        self._teardown_fleet(terminate=False)
        if self.allocator is not None:
            # Copy every still-registered block into ordinary process
            # memory BEFORE unlinking: the simulated LocalMemory still
            # holds ndarray views over the shared buffers, and reading
            # one after the unmap would be a hard segfault.  After
            # close(), arrays keep their contents with serial
            # semantics.
            if self.machine is not None:
                for rank, name in self.allocator.registered():
                    self.machine.memory(rank).materialize(name)
            self.allocator.close()
            self.allocator = None
        super().close()

    # -- op-boundary checkpoints -----------------------------------------
    def _snapshot_segments(self) -> list:
        """Copy every registered shared block into process memory —
        the op-boundary checkpoint replays restore from."""
        if self.allocator is None:
            return []
        snapshot = []
        for key in self.allocator.registered():
            view = self.allocator.view(*key)
            if view is not None:
                snapshot.append((key, view.copy()))
        return snapshot

    def _restore_segments(self, snapshot: list) -> None:
        for key, data in snapshot:
            view = self.allocator.view(*key) if self.allocator else None
            if view is not None and view.shape == data.shape:
                view[...] = data

    # -- command dispatch ------------------------------------------------
    def run_op(self, op: Callable, per_rank_kwargs: list[dict]) -> list:
        """Broadcast one SPMD op; block until every worker acks.

        ``per_rank_kwargs[r]`` is worker ``r``'s keyword arguments.
        Returns per-rank payloads; raises :class:`BackendError` if any
        worker errored or went silent.  Fleet-level faults (dead/hung
        workers) are recovered in place: snapshot → restart → replay,
        up to ``max_restarts`` times per op.
        """
        if len(per_rank_kwargs) != self.nprocs:
            raise ValueError(
                f"need kwargs for every worker ({self.nprocs}), "
                f"got {len(per_rank_kwargs)}"
            )
        if not self._procs:
            raise BackendError("backend is not attached / already closed")
        max_restarts = self.supervisor.max_restarts
        snapshot = self._snapshot_segments() if max_restarts > 0 else []
        attempt = 0
        while True:
            try:
                return self._run_op_once(op, per_rank_kwargs)
            except BackendError as exc:
                if not exc.retryable or attempt >= max_restarts:
                    raise
                attempt += 1
                cause = "dead" if exc.dead_ranks else (
                    "hung" if exc.hung_ranks else "timeout"
                )
                self.supervisor.recover(
                    cause=cause, snapshot=snapshot, detail=str(exc)
                )
                per_rank_kwargs = self._rehydrated(op, per_rank_kwargs)

    def _rehydrated(self, op: Callable, per_rank_kwargs: list[dict]) -> list[dict]:
        """Fix up a replayed op for a freshly restarted fleet.

        Redistribute replays that relied on the dead workers' plan
        memos (``sends=None``) get the stored plan payload back."""
        if op is not op_redistribute:
            return per_rank_kwargs
        out = []
        for rank, kwargs in enumerate(per_rank_kwargs):
            if kwargs.get("sends") is None:
                moves = self._plan_payloads.get(
                    kwargs.get("plan_id"), {}
                ).get(rank)
                kwargs = dict(
                    kwargs,
                    sends=moves.sends if moves is not None else [],
                    recvs=moves.recvs if moves is not None else [],
                    keeps=moves.keeps if moves is not None else [],
                )
            out.append(kwargs)
        return out

    def _run_op_once(self, op: Callable, per_rank_kwargs: list[dict]) -> list:
        """One dispatch/collect cycle, with mid-op fault detection."""
        self._seq += 1
        seq = self._seq
        for rank, kwargs in enumerate(per_rank_kwargs):
            self._cmd_queues[rank].put((op, kwargs, seq))
        _BACKEND_COMMANDS.inc(self.nprocs, direction="sent")
        op_name = getattr(op, "__name__", str(op))
        dispatched = time.monotonic()
        deadline = dispatched + self.timeout
        # poll the result queue in short slices so dead workers are
        # detected in ~poll seconds, not after the full op timeout
        poll = min(0.25, self.timeout)
        results = [None] * self.nprocs
        errors = []
        acked_ranks: set[int] = set()
        while len(acked_ranks) < self.nprocs:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._recover_barrier()
                dead = [p.name for p in self._procs if not p.is_alive()]
                raise BackendError(
                    f"worker acknowledgement timed out after "
                    f"{self.timeout}s (dead workers: {dead or 'none'})",
                    retryable=bool(dead),
                    dead_ranks=tuple(
                        r for r, p in enumerate(self._procs)
                        if not p.is_alive()
                    ),
                )
            try:
                rank, ack_seq, status, payload = self._result_queue.get(
                    timeout=min(poll, remaining)
                )
            except Empty:
                dead, hung = self.supervisor.fleet_health(
                    acked_ranks, dispatched
                )
                if dead or hung:
                    self._recover_barrier()
                    dead_desc = [
                        f"{self._procs[r].name} (exit {code})"
                        for r, code in dead
                    ]
                    hung_desc = [self._procs[r].name for r in hung]
                    _flight.note(
                        "backend.fleet_fault",
                        op=op_name,
                        seq=seq,
                        dead=dead_desc,
                        hung=hung_desc,
                    )
                    raise BackendError(
                        f"worker fleet failed during {op_name} "
                        f"(dead workers: {dead_desc or 'none'}; "
                        f"hung workers: {hung_desc or 'none'})",
                        retryable=True,
                        dead_ranks=tuple(r for r, _ in dead),
                        hung_ranks=tuple(hung),
                    )
                continue
            if ack_seq != seq:
                # stale ack from an op that previously timed out on
                # the master side — drop it, keep the streams aligned
                continue
            acked_ranks.add(rank)
            if status == "error":
                errors.append((rank, payload))
            else:
                results[rank] = payload
        _BACKEND_COMMANDS.inc(len(acked_ranks), direction="acked")
        if errors:
            # a failing worker aborts the collective barrier so its
            # peers bail out fast; re-arm it (and the abort board) for
            # the next op.  Deterministic op errors are NOT retryable:
            # a replay would fail identically.
            self._recover_barrier()
            _BACKEND_OPS.inc(op=op_name, status="error")
            detail = "\n".join(
                f"-- worker {rank} --\n{msg}" for rank, msg in errors
            )
            raise BackendError(f"{len(errors)} worker(s) failed:\n{detail}")
        self.ops_executed += 1
        _BACKEND_OPS.inc(op=op_name, status="ok")
        return results

    def _recover_barrier(self) -> None:
        if self._barrier is not None:
            try:
                self._barrier.reset()
            except Exception as exc:  # pragma: no cover - already usable
                _flight.note(
                    "backend.swallowed",
                    site="recover_barrier.reset",
                    error=repr(exc),
                )
        if self._abort_board is not None:
            for rank in range(self.nprocs):
                self._abort_board[rank] = 0

    # -- operations ------------------------------------------------------
    def move(
        self,
        array: "DistributedArray",
        new_dist,
        plan_cache=None,
    ) -> None:
        """Execute a DISTRIBUTE transfer plan in the worker fleet.

        The per-pair index plan is derived once (and shared through
        the engine's :class:`~repro.runtime.redistribute.PlanCache`
        when given); workers only ship values — both endpoints address
        them through the same deterministic plan.
        """
        machine = array.machine
        nprocs = machine.nprocs
        old_dist = array.descriptor.dist
        block = array._block_name()

        # recurring layout pairs ship their position arrays to the
        # fleet once; afterwards only the plan id crosses the queues
        plan_key = (old_dist, new_dist, nprocs)
        plan_id = self._plan_ids.get(plan_key)
        if plan_id is None:
            plan_id = len(self._plan_ids) + 1
            self._plan_ids[plan_key] = plan_id
        ship = plan_id not in self._shipped_plans
        if ship:
            if plan_cache is not None:
                moves = plan_cache.segment_moves(old_dist, new_dist, nprocs)
            else:
                moves = segment_moves(old_dist, new_dist, nprocs)
            self._plan_payloads[plan_id] = moves
        else:
            moves = {}
            if plan_cache is not None:
                # count the replay as a cache hit: the fleet IS the cache
                plan_cache.hits += 1

        # keep old physical segments alive across the reallocation
        stashed = {}
        for rank in range(nprocs):
            st = self.allocator.stash(rank, block)
            if st is not None:
                stashed[rank] = st
        try:
            array.descriptor.set_dist(new_dist)
            array._allocate_segments(fill=None)

            self._op_counter += 1
            tag = f"redist:{array.name}:{self._op_counter}"
            per_rank = []
            for rank in range(nprocs):
                m = moves.get(rank)
                per_rank.append(
                    dict(
                        old_meta=stashed[rank][1] if rank in stashed else None,
                        new_meta=self.allocator.meta(rank, block),
                        plan_id=plan_id,
                        sends=(m.sends if m is not None else []) if ship else None,
                        recvs=(m.recvs if m is not None else []) if ship else None,
                        keeps=(m.keeps if m is not None else []) if ship else None,
                        tag=tag,
                    )
                )
            self.run_op(op_redistribute, per_rank)
            self._shipped_plans.add(plan_id)
        finally:
            # release the old physical segments even if reallocation
            # or the worker op failed — never orphan /dev/shm blocks
            for shm, _meta in stashed.values():
                shm.close()
                shm.unlink()

    def run_kernel(self, array: "DistributedArray", fn: Callable) -> None:
        owning = set(array.owning_ranks())
        block = array._block_name()
        per_rank = []
        for rank in range(self.nprocs):
            if rank in owning:
                per_rank.append(
                    dict(
                        meta=self.allocator.meta(rank, block),
                        fn=fn,
                        idx=array.local_indices(rank),
                    )
                )
            else:
                per_rank.append(dict(meta=None, fn=fn, idx=None))
        self.run_op(op_local_kernel, per_rank)

    def stencil_step(
        self,
        array: "DistributedArray",
        overlap,
        func: Callable,
        dim_entries=None,
    ) -> None:
        """One halo-exchanged stencil sweep across the worker fleet.

        ``overlap`` is the array's
        :class:`~repro.runtime.overlap.OverlapManager` (its padded
        buffers are shared-memory blocks like any other allocation).
        ``dim_entries`` — ``[(dim, shift_plan entries), ...]`` — lets
        a caller that already planned the exchange for accounting
        (``StencilKernel._step_spmd``) reuse the plan here.
        """
        dist = array.dist
        widths = overlap.widths
        seg_block = array._block_name()
        pad_block = overlap._buf_name()
        if dim_entries is None:
            dim_entries = [
                (dim, shift_plan(dist, dim, w))
                for dim, w in enumerate(widths)
                if w > 0
            ]
        local_shapes = {
            rank: dist.local_shape(rank) for rank in range(self.nprocs)
        }
        dim_plans: dict[int, list] = {r: [] for r in range(self.nprocs)}
        for dim, entries in dim_entries:
            sends = defaultdict(list)
            recvs = defaultdict(list)
            for src, dst, key, src_sl, _count in entries:
                sends[src].append((dst, key, src_sl))
                recvs[dst].append(
                    (
                        src,
                        key,
                        halo_dest_slice(local_shapes[dst], widths, dim, key),
                    )
                )
            for rank in range(self.nprocs):
                dim_plans[rank].append(
                    (dim, sends.get(rank, []), recvs.get(rank, []))
                )
        per_rank = [
            dict(
                seg_meta=self.allocator.meta(rank, seg_block),
                pad_meta=self.allocator.meta(rank, pad_block),
                widths=tuple(widths),
                dim_plans=dim_plans[rank],
                func=func,
            )
            for rank in range(self.nprocs)
        ]
        self.run_op(op_stencil_step, per_rank)

    # -- introspection ---------------------------------------------------
    @staticmethod
    def can_ship(fn) -> bool:
        """True if ``fn`` can be sent to workers (pickles by value/ref)."""
        try:
            pickle.dumps(fn)
            return True
        except Exception:
            return False
