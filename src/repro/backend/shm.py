"""Shared-memory segment storage for SPMD worker processes.

The multiprocess backend keeps every local-memory block (array
segments, overlap buffers) in ``multiprocessing.shared_memory`` so
that the master process and the worker owning the segment see the same
bytes with zero copying.  The master allocates through
:class:`SharedSegmentAllocator` (installed into each simulated
:class:`~repro.machine.memory.LocalMemory` via the machine's
``set_segment_allocator`` hook); workers attach by :class:`BlockMeta`
shipped inside op commands.

CPython < 3.13 registers *attached* segments with the resource
tracker, which then unlinks them when the attaching process exits
(bpo-38119); :func:`attach` undoes that registration so only the
creating master owns cleanup.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..faults import plan as _faults

__all__ = ["BlockMeta", "SharedSegmentAllocator", "attach"]

#: Whether :func:`attach` should undo the resource-tracker
#: registration CPython < 3.13 performs on attach.  ``fork`` workers
#: share the master's tracker — there the registration is a no-op
#: re-add and must NOT be undone (the master's own registration would
#: vanish); ``spawn`` workers own a fresh tracker that would unlink
#: the segment when the worker exits, so there it must be undone.
#: Set per worker by :func:`repro.backend.worker.worker_main`.
unregister_on_attach = True


@dataclass(frozen=True)
class BlockMeta:
    """Picklable handle to one shared-memory block."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.np_dtype.itemsize


def attach(meta: BlockMeta) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a block from another process.

    Returns the (kept-alive) ``SharedMemory`` and an ndarray view; the
    caller must drop the array before closing the handle.
    """
    shm = shared_memory.SharedMemory(name=meta.shm_name)
    if unregister_on_attach:
        try:  # the creator owns tracking; see module docstring
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    arr = np.ndarray(meta.shape, dtype=meta.np_dtype, buffer=shm.buf)
    return shm, arr


class SharedSegmentAllocator:
    """Allocates named local-memory blocks in shared memory.

    Implements the ``alloc(rank, name, shape, dtype)`` /
    ``free(rank, name)`` protocol of
    :class:`~repro.machine.memory.LocalMemory`.  Shared segment names
    are unique per allocation (a monotonic counter), so a re-allocation
    under the same logical block name — the DISTRIBUTE reallocation
    path — never aliases the block it replaces; :meth:`stash` lets the
    redistribution keep the *old* physical block alive while the new
    one is filled.
    """

    def __init__(self, tag: str):
        # shm names are a global namespace: include the pid and a tag
        self._prefix = f"vfe-{os.getpid()}-{tag}"
        self._counter = 0
        self._blocks: dict[tuple[int, str], shared_memory.SharedMemory] = {}
        self._metas: dict[tuple[int, str], BlockMeta] = {}

    # -- LocalMemory protocol -------------------------------------------
    def alloc(
        self, rank: int, name: str, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        key = (rank, name)
        if key in self._blocks:
            self.free(rank, name)
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes == 0:
            # zero-size blocks hold no worker-visible data
            return np.empty(shape, dtype=dtype)
        self._counter += 1
        plan = _faults.active_plan()
        if plan is not None and plan.shm_failure(self._counter) is not None:
            # injected allocation failure: surface it exactly as a real
            # exhausted /dev/shm would (MemoryError keeps this module
            # free of backend-layer imports); the degradation tier in
            # repro.api.handles treats it as recoverable
            raise MemoryError(
                f"injected shm allocation failure "
                f"(allocation #{self._counter}, block {name!r} rank {rank})"
            )
        shm_name = f"{self._prefix}-{self._counter}"
        shm = shared_memory.SharedMemory(
            name=shm_name, create=True, size=nbytes
        )
        self._blocks[key] = shm
        self._metas[key] = BlockMeta(shm_name, tuple(shape), dtype.str)
        return np.ndarray(shape, dtype=dtype, buffer=shm.buf)

    def free(self, rank: int, name: str) -> None:
        """Release a block; unknown names are ignored (blocks adopted
        into a LocalMemory from outside this allocator)."""
        key = (rank, name)
        shm = self._blocks.pop(key, None)
        self._metas.pop(key, None)
        if shm is not None:
            shm.close()
            shm.unlink()

    # -- backend-side access --------------------------------------------
    def meta(self, rank: int, name: str) -> BlockMeta | None:
        """Worker-shippable handle for ``rank``'s block, if it exists."""
        return self._metas.get((rank, name))

    def view(self, rank: int, name: str) -> np.ndarray | None:
        """Master-side ndarray view of a live block (``None`` if the
        block is unknown).  The backbone of op-boundary checkpoints:
        the fleet supervisor snapshots every registered block through
        this before an op and restores through it after a restart."""
        key = (rank, name)
        shm = self._blocks.get(key)
        meta = self._metas.get(key)
        if shm is None or meta is None:
            return None
        return np.ndarray(meta.shape, dtype=meta.np_dtype, buffer=shm.buf)

    def stash(
        self, rank: int, name: str
    ) -> tuple[shared_memory.SharedMemory, BlockMeta] | None:
        """Detach a block from the registry *without* unlinking it.

        The caller becomes responsible for ``close()``/``unlink()``.
        Used to keep an array's old segments alive across the
        same-name reallocation a redistribution performs.
        """
        key = (rank, name)
        shm = self._blocks.pop(key, None)
        meta = self._metas.pop(key, None)
        if shm is None or meta is None:
            return None
        return shm, meta

    def registered(self) -> list[tuple[int, str]]:
        """(rank, block name) of every live allocation."""
        return list(self._blocks)

    def close(self) -> None:
        """Unlink every block still registered."""
        for key in list(self._blocks):
            self.free(*key)

    def __len__(self) -> int:
        return len(self._blocks)
