"""SPMD worker operations.

Every function here runs *inside a worker process* with a
:class:`~repro.backend.worker.WorkerContext`: attach the rank's
shared-memory segments, move real bytes through the message-passing
transport, compute on local data, acknowledge.  The master never
moves array data on these paths — if an op mis-addresses a send, the
array contents diverge from the serial reference and the conformance
suite fails, which is exactly the point.

All ops are module-level (picklable by reference), and every payload
they exchange is a numpy array or plain Python data.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = [
    "op_noop",
    "op_redistribute",
    "op_local_kernel",
    "op_stencil_step",
    "op_pingpong",
    "op_flop_bench",
    "line_sweep_kernel",
]


def op_noop(ctx) -> int:
    """Health check: barrier with the fleet, return own rank."""
    ctx.transport.barrier()
    return ctx.rank


#: per-worker memo of received move plans, keyed by the master's plan
#: id — a recurring redistribution (the ADI steady state) ships its
#: position arrays once and replays them by id afterwards.  Bounded in
#: practice by the number of distinct layout pairs a program uses.
_PLAN_MEMO: dict[int, tuple] = {}


def op_redistribute(
    ctx,
    old_meta,
    new_meta,
    plan_id,
    sends,
    recvs,
    keeps,
    tag,
) -> dict:
    """Execute this rank's share of a DISTRIBUTE transfer plan.

    ``sends``/``recvs`` are ``(peer, positions)`` lists in plan order
    (positions index the flattened old/new segment); ``keeps`` is a
    list of ``(old_positions, new_positions)`` local copies.  Values
    ship as raw numpy arrays over the transport — the receiver derives
    *where* they land from the same deterministic plan.  ``sends is
    None`` means "replay the memoized plan ``plan_id``" (shipped by a
    previous op for the same layout pair).
    """
    if sends is None:
        sends, recvs, keeps = _PLAN_MEMO[plan_id]
    else:
        _PLAN_MEMO[plan_id] = (sends, recvs, keeps)
    old = ctx.attach(old_meta)
    new = ctx.attach(new_meta)
    old_flat = old.reshape(-1) if old is not None else None
    new_flat = new.reshape(-1) if new is not None else None
    sent = 0
    received = 0
    for dst, positions in sends:
        ctx.transport.send(dst, tag, old_flat[positions].copy())
        sent += len(positions)
    for old_pos, new_pos in keeps:
        new_flat[new_pos] = old_flat[old_pos]
    for src, positions in recvs:
        values = ctx.transport.recv(src, tag)
        new_flat[positions] = values
        received += len(positions)
    ctx.transport.barrier()
    return {"sent": sent, "received": received}


def op_local_kernel(ctx, meta, fn, idx) -> None:
    """Apply an owner-computes kernel to this rank's local segment.

    ``fn(rank, local, idx)`` mutates ``local`` in place; ``idx`` is
    the per-dimension global index arrays of the segment.  Ranks that
    own nothing just hit the barrier.
    """
    local = ctx.attach(meta)
    if local is not None:
        fn(ctx.rank, local, idx)
    ctx.transport.barrier()


def line_sweep_kernel(rank, local, idx, dim, line_func) -> None:
    """The local line-sweep body (ADI's TRIDIAG over local lines)."""
    moved = np.moveaxis(local, dim, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    for i in range(flat.shape[0]):
        flat[i, :] = line_func(flat[i, :])


def op_stencil_step(
    ctx,
    seg_meta,
    pad_meta,
    widths,
    dim_plans,
    func,
) -> None:
    """One halo-exchanged stencil sweep on this rank's segment.

    ``dim_plans`` is a list over haloed dimensions of
    ``(dim, sends, recvs)`` where sends are ``(peer, key, src_slices)``
    slabs of the *segment* and recvs are ``(peer, key, dest_slices)``
    positions in the *padded* buffer.  Out-of-domain halo cells keep
    the boundary fill the master allocated them with.
    """
    seg = ctx.attach(seg_meta)
    pad = ctx.attach(pad_meta)
    if seg is None:
        # non-owner: participate in the per-dimension barriers only
        for _ in dim_plans:
            ctx.transport.barrier()
        ctx.transport.barrier()
        return
    interior = tuple(
        slice(w, w + s) for s, w in zip(seg.shape, widths)
    )
    pad[interior] = seg
    for dim, sends, recvs in dim_plans:
        # ctx.seq scopes the tag to this op: slabs a failed step left
        # behind can never satisfy a later step's receives
        for peer, key, src_sl in sends:
            ctx.transport.send(
                peer, ("halo", ctx.seq, dim, key), seg[src_sl].copy()
            )
        for peer, key, dest_sl in recvs:
            pad[dest_sl] = ctx.transport.recv(
                peer, ("halo", ctx.seq, dim, key)
            )
        ctx.transport.barrier()
    new = np.empty_like(seg)
    func(pad, new, tuple(widths))
    seg[...] = new
    pad[interior] = new
    ctx.transport.barrier()


def op_pingpong(ctx, src, dst, sizes, repeats, tag=None) -> list:
    """Time one-way message latency between two ranks.

    Rank ``src`` bounces a payload of each size off rank ``dst``
    ``repeats`` times and returns ``(nbytes, seconds_one_way)``
    samples (minimum over repeats, halved round trips — the standard
    microbenchmark estimator).  Other ranks idle at the barrier.
    """
    if tag is None:
        tag = ("pingpong", ctx.seq)
    samples = []
    if ctx.rank == src:
        for nbytes in sizes:
            payload = np.zeros(max(1, nbytes // 8), dtype=np.float64)
            best = float("inf")
            for rep in range(repeats + 1):  # first round is warmup
                t0 = time.perf_counter()
                ctx.transport.send(dst, tag, payload)
                ctx.transport.recv(dst, tag)
                dt = time.perf_counter() - t0
                if rep > 0:
                    best = min(best, dt)
            samples.append((int(payload.nbytes), best / 2.0))
    elif ctx.rank == dst:
        for nbytes in sizes:
            for _ in range(repeats + 1):
                echo = ctx.transport.recv(src, tag)
                ctx.transport.send(src, tag, echo)
    ctx.transport.barrier()
    return samples


def op_flop_bench(ctx, n, repeats) -> float:
    """Measure this worker's sustained flop rate (daxpy, 2 flops/elt)."""
    x = np.linspace(0.0, 1.0, n)
    y = np.linspace(1.0, 2.0, n)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        y = 1.000001 * x + y
        dt = time.perf_counter() - t0
        best = min(best, dt)
    ctx.transport.barrier()
    return (2.0 * n) / max(best, 1e-9)
