"""repro — a reproduction of *Dynamic Data Distributions in Vienna
Fortran* (Chapman, Mehrotra, Moritsch, Zima; Supercomputing '93).

Layers (bottom-up):

- :mod:`repro.machine` — simulated distributed-memory multicomputer
  (processor grids, local memories, alpha+beta*n message cost model);
- :mod:`repro.core` — the distribution model: BLOCK / CYCLIC(k) /
  B_BLOCK / S_BLOCK / ``:`` intrinsics, alignments and CONSTRUCT,
  DYNAMIC arrays with connect classes, RANGE / IDT / DCASE queries;
- :mod:`repro.runtime` — the Vienna Fortran Engine: distributed
  arrays, access functions, translation tables, overlap areas, the
  DISTRIBUTE algorithm, and a PARTI-style inspector/executor;
- :mod:`repro.lang` — Vienna Fortran-flavoured surface syntax
  (distribution-expression parser, declarations, program scopes,
  procedure-boundary redistribution, the ``PLAN`` annotation);
- :mod:`repro.compiler` — reaching-distribution analysis over a mini
  IR, partial evaluation of queries, communication analysis, SPMD
  lowering;
- :mod:`repro.planner` — the automatic distribution planner: phase
  extraction from the IR, candidate-layout enumeration, cost-model
  pricing, and a dynamic program over the phase x layout lattice that
  decides where to insert redistributions (the decision the paper
  leaves to the programmer);
- :mod:`repro.backend` — pluggable SPMD execution backends: the
  serial in-process reference and a multiprocess backend (one worker
  per processor, segments in shared memory, message-passing
  transport), plus transport calibration that fits *measured*
  alpha/beta/flop-rate constants into a ``MeasuredMachine`` the
  planner schedules against;
- :mod:`repro.sim` — the discrete-event execution simulator: the
  engine/backends emit typed events (kernel, send/recv, barrier,
  allgather, redistribute-transfer) through a recording seam, and the
  simulator replays them with blocking semantics (bit-for-bit the
  aggregate accounting) or split-phase nonblocking post/wait —
  per-processor timelines, idle/imbalance metrics, critical-path
  extraction, Gantt/JSON trace export (``python -m repro trace``);
- :mod:`repro.apps` — the paper's §4 workloads: ADI (Figure 1),
  particle-in-cell with B_BLOCK load balancing (Figure 2), and the
  grid-smoothing distribution-choice example — each with a
  planner-backed ``"planned"`` variant and ``backend=`` execution
  variants.

Quickstart::

    from repro import *

    R = ProcessorArray("R", (4,))
    machine = Machine(R, cost_model=PARAGON)
    vfe = Engine(machine)
    V = vfe.declare("V", (100, 100), dist=dist_type(":", "BLOCK"),
                    dynamic=DynamicAttr())
    # ... x-sweep (columns local) ...
    vfe.distribute("V", dist_type("BLOCK", ":"))
    # ... y-sweep (rows local) ...

or let the planner decide (``python -m repro plan adi``)::

    from repro import adi_workload, plan_workload

    print(plan_workload(adi_workload(64, 64, iterations=4)).summary())
"""

from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all
from .machine import *  # noqa: F401,F403
from .machine import __all__ as _machine_all
from .runtime import *  # noqa: F401,F403
from .runtime import __all__ as _runtime_all

# The upper layers are re-exported defensively: a handful of their
# names collide with the data-model layers (e.g. the compiler IR's
# ``Block`` vs the BLOCK intrinsic), and the established lower-layer
# bindings must win.
from . import backend as backend  # noqa: F401
from . import compiler as compiler  # noqa: F401
from . import lang as lang  # noqa: F401
from . import perf as perf  # noqa: F401
from . import planner as planner  # noqa: F401
from . import sim as sim  # noqa: F401

_upper_all: list = []
for _mod in (lang, compiler, planner, backend, sim):
    for _name in _mod.__all__:
        if _name not in globals():
            globals()[_name] = getattr(_mod, _name)
            _upper_all.append(_name)

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "backend",
    "compiler",
    "lang",
    "perf",
    "planner",
    "sim",
    *_core_all,
    *_machine_all,
    *_runtime_all,
    *_upper_all,
]

del _mod, _name
