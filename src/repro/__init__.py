"""repro — a reproduction of *Dynamic Data Distributions in Vienna
Fortran* (Chapman, Mehrotra, Moritsch, Zima; Supercomputing '93).

Layers (bottom-up):

- :mod:`repro.machine` — simulated distributed-memory multicomputer
  (processor grids, local memories, alpha+beta*n message cost model);
- :mod:`repro.core` — the distribution model: BLOCK / CYCLIC(k) /
  B_BLOCK / S_BLOCK / ``:`` intrinsics, alignments and CONSTRUCT,
  DYNAMIC arrays with connect classes, RANGE / IDT / DCASE queries;
- :mod:`repro.runtime` — the Vienna Fortran Engine: distributed
  arrays, access functions, translation tables, overlap areas, the
  DISTRIBUTE algorithm, and a PARTI-style inspector/executor;
- :mod:`repro.lang` — Vienna Fortran-flavoured surface syntax
  (distribution-expression parser, declarations, program scopes,
  procedure-boundary redistribution, the ``PLAN`` annotation);
- :mod:`repro.compiler` — reaching-distribution analysis over a mini
  IR, partial evaluation of queries, communication analysis, SPMD
  lowering;
- :mod:`repro.planner` — the automatic distribution planner: phase
  extraction from the IR, candidate-layout enumeration, cost-model
  pricing, and a dynamic program over the phase x layout lattice that
  decides where to insert redistributions (the decision the paper
  leaves to the programmer);
- :mod:`repro.backend` — pluggable SPMD execution backends: the
  serial in-process reference and a multiprocess backend (one worker
  per processor, segments in shared memory, message-passing
  transport), plus transport calibration that fits *measured*
  alpha/beta/flop-rate constants into a ``MeasuredMachine`` the
  planner schedules against;
- :mod:`repro.sim` — the discrete-event execution simulator: the
  engine/backends emit typed events (kernel, send/recv, barrier,
  allgather, redistribute-transfer) through a recording seam, and the
  simulator replays them with blocking semantics (bit-for-bit the
  aggregate accounting) or split-phase nonblocking post/wait —
  per-processor timelines, idle/imbalance metrics, critical-path
  extraction, Gantt/JSON trace export (``python -m repro trace``);
- :mod:`repro.apps` — the paper's §4 workloads: ADI (Figure 1),
  particle-in-cell with B_BLOCK load balancing (Figure 2), the
  grid-smoothing distribution-choice example, and the irregular-mesh
  relaxation;
- :mod:`repro.obs` — cross-layer observability: a process-wide
  metrics registry (Counter/Gauge/Histogram, Prometheus text
  exposition, off by default and near-zero-cost when off), structured
  tracing spans carrying request/trace IDs through every tier, and a
  Chrome-trace exporter that merges runtime spans with simulated
  timelines;
- :mod:`repro.faults` — deterministic, seedable fault injection
  (:class:`~repro.faults.FaultPlan`: worker crashes, transport
  delays/drops, shm allocation failures, request faults) and the
  resilience primitives built against it — fleet supervision with
  restart-and-replay, circuit breakers, graceful degradation to the
  serial backend;
- :mod:`repro.api` — the session facade over all of the above: one
  :func:`session` owns the machine policy, backend, plan cache,
  event recording and RNG seeding, and hands out fluent workload
  handles with typed ``plan`` / ``run`` / ``trace`` / ``bench``
  stages, driven by a decorator-based workload registry.

Quickstart::

    import repro

    with repro.session(nprocs=4, cost_model="Paragon") as sess:
        result = sess.workload("adi", size=64, iterations=4).run()
        print(result.summary())
        plan = sess.workload("adi", size=64, iterations=4).plan()
        print(plan.summary())

or, for the raw Vienna Fortran Engine (declare / DISTRIBUTE / IDT /
DCASE)::

    with repro.session(nprocs=4) as sess:
        vfe = sess.engine(name="R")
        V = vfe.declare("V", (100, 100), dist=repro.dist_type(":", "BLOCK"),
                        dynamic=repro.DynamicAttr())
        # ... x-sweep (columns local) ...
        vfe.distribute("V", repro.dist_type("BLOCK", ":"))
        # ... y-sweep (rows local) ...

The CLI mirrors the facade: ``python -m repro
plan|run|trace|bench|calibrate`` (see ``python -m repro --help``).
"""

# Every name is imported and exported explicitly: the curated __all__
# below IS the public surface, pinned by tests/test_public_api.py so
# changes to it are deliberate.  (The compiler IR's ``Block`` is the
# one name intentionally *not* re-exported at the root — it collides
# with the BLOCK distribution intrinsic; reach it as
# ``repro.compiler.Block``.)

from . import adapt as adapt
from . import api as api
from . import apps as apps
from . import backend as backend
from . import compiler as compiler
from . import faults as faults
from . import lang as lang
from . import obs as obs
from . import perf as perf
from . import planner as planner
from . import serve as serve
from . import sim as sim
from .adapt import (
    AdaptiveController,
    LoadMonitor,
    PolicyLibrary,
    run_adapt_bench,
)
from .api import (
    AdaptResult,
    BenchResult,
    PlanResult,
    RunResult,
    Session,
    SessionClosedError,
    SessionConfig,
    SessionResult,
    TraceResult,
    WorkloadHandle,
    WorkloadRegistry,
    WorkloadSpec,
    available_workloads,
    config_fingerprint,
    register_workload,
    session,
)
from .backend import (
    Backend,
    BackendError,
    BlockMeta,
    FleetSupervisor,
    MultiprocessBackend,
    SerialBackend,
    SharedSegmentAllocator,
    Transport,
    TransportBroken,
    TransportTimeout,
    attached_backend,
    calibrate,
    fit_alpha_beta,
    measured_machine,
    resolve_backend,
    segment_moves,
    shift_plan,
    transfer_plan,
)
from .compiler import (
    ALWAYS,
    MAYBE,
    NEVER,
    TOP,
    AccessKind,
    AnalysisResult,
    ArrayRef,
    Assign,
    Call,
    CFG,
    CFGEdge,
    CFGNode,
    CommEstimate,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    LineSweepKernel,
    Loop,
    MemoryEstimate,
    OptimizeStats,
    PlausibleSet,
    ProcDef,
    ReachingDistributions,
    StencilKernel,
    Stmt,
    analyze,
    build_cfg,
    decide_pattern,
    decide_querylist,
    dim_implies,
    dim_overlaps,
    estimate_memory,
    estimate_ref,
    infer_overlap,
    lower_line_sweep,
    lower_stencil,
    optimize,
    pattern_implies,
    pattern_overlaps,
    refine_pattern,
)
from .core import (
    ANY,
    DEFAULT,
    Aligned,
    Alignment,
    ArrayDescriptor,
    AxisMap,
    Block,
    ConnectClass,
    Connection,
    Cyclic,
    DCase,
    DimDist,
    Distribution,
    DistributionGenerator,
    DistributionType,
    DistributionUndefinedError,
    DynamicAttr,
    Extraction,
    GenBlock,
    IndexDomain,
    Indirect,
    NoDist,
    QueryList,
    Range,
    Replicated,
    SBlock,
    TypePattern,
    Wild,
    clear_interning_caches,
    construct,
    dist_type,
    get_generator,
    idt,
    intern_dimdist,
    intern_distribution,
    owners_cache_stats,
    register_generator,
)
from .defaults import DEFAULT_SEED
from .lang import (
    Declaration,
    FormalArg,
    Procedure,
    Scope,
    VFProgram,
    VFSyntaxError,
    parse_alignment,
    parse_declaration,
    parse_dist_expr,
    parse_pattern,
    parse_processors,
    parse_program,
    parse_section,
)
from .machine import (
    AllocationRecord,
    Calibration,
    CostModel,
    IPSC860,
    LocalMemory,
    Machine,
    MeasuredMachine,
    MemoryError_,
    MessageRecord,
    MODERN_CLUSTER,
    Network,
    NetworkStats,
    PARAGON,
    PRESETS,
    ProcessorArray,
    ProcessorSection,
    ZERO_COST,
    grid_shapes,
    link_matrix,
    per_processor_table,
    summary,
    timeline_summary,
    timeline_table,
)
from .planner import (
    ArrayLoad,
    CostEngine,
    HandDistribute,
    Phase,
    PhaseSequence,
    Plan,
    PlanExecutor,
    ScheduleStep,
    SimulatedCostEngine,
    Workload,
    WORKLOADS,
    adi_workload,
    bind_pattern,
    dim_menu,
    dp_schedule,
    enumerate_layouts,
    extract_phases,
    get_workload,
    greedy_schedule,
    hand_schedule_cost,
    pic_workload,
    plan_array,
    plan_program,
    plan_workload,
    smoothing_workload,
)
from .runtime import (
    BatchedReadAccessor,
    CommSchedule,
    DimTranslationTable,
    DistributedArray,
    Engine,
    Inspector,
    OverlapManager,
    PlanCache,
    ReadAccessor,
    RedistributionReport,
    TranslationTable,
    broadcast_from,
    communicate,
    default_plan_cache,
    forall,
    forall_batched,
    forall_gathered,
    gather_to,
    reduce_scalar,
    shift_exchange,
    transfer_matrix,
    transfer_matrix_bruteforce,
    transfer_matrix_naive,
)
from .sim import (
    BlockingReplay,
    BUSY_KINDS,
    CriticalPath,
    Event,
    EventArrays,
    EventKind,
    EventLog,
    Interval,
    ProcClock,
    Timeline,
    classify_tag,
    critical_path,
    dump_json,
    gantt,
    overlappable_phases,
    record,
    relaxed_barriers,
    replay_blocking,
    replay_split_exchange,
    simulate,
    to_chrome_trace,
    to_json,
)

from .obs import (
    Attribution,
    MetricsRegistry,
    TrajectoryStore,
    attribution,
    compare_adapt_reports,
    compare_perf_reports,
    flight_recorder,
    get_request_id,
    get_trace_id,
    registry as metrics_registry,
    span,
)
from .faults import CircuitBreaker, FaultPlan
from .serve import PlanningService, run_loadtest

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # subpackages
    "adapt",
    "api",
    "apps",
    "backend",
    "compiler",
    "faults",
    "lang",
    "obs",
    "perf",
    "planner",
    "serve",
    "sim",
    # the session facade (repro.api)
    "DEFAULT_SEED",
    "SessionConfig",
    "Session",
    "SessionClosedError",
    "session",
    "config_fingerprint",
    # the serving tier (repro.serve)
    "PlanningService",
    "run_loadtest",
    # fault injection + resilience (repro.faults)
    "FaultPlan",
    "CircuitBreaker",
    # observability (repro.obs)
    "MetricsRegistry",
    "metrics_registry",
    "span",
    "get_request_id",
    "get_trace_id",
    "Attribution",
    "TrajectoryStore",
    "attribution",
    "compare_adapt_reports",
    "compare_perf_reports",
    "flight_recorder",
    # adaptive redistribution (repro.adapt)
    "AdaptiveController",
    "LoadMonitor",
    "PolicyLibrary",
    "run_adapt_bench",
    "SessionResult",
    "PlanResult",
    "RunResult",
    "TraceResult",
    "BenchResult",
    "AdaptResult",
    "WorkloadHandle",
    "WorkloadRegistry",
    "WorkloadSpec",
    "register_workload",
    "available_workloads",
    # distribution model (repro.core)
    "IndexDomain",
    "DimDist",
    "Block",
    "Cyclic",
    "GenBlock",
    "SBlock",
    "NoDist",
    "Replicated",
    "Indirect",
    "DistributionType",
    "Distribution",
    "dist_type",
    "Alignment",
    "AxisMap",
    "construct",
    "DynamicAttr",
    "ConnectClass",
    "Connection",
    "Extraction",
    "Aligned",
    "ArrayDescriptor",
    "DistributionUndefinedError",
    "DistributionGenerator",
    "register_generator",
    "get_generator",
    "ANY",
    "DEFAULT",
    "Wild",
    "TypePattern",
    "Range",
    "idt",
    "DCase",
    "QueryList",
    "intern_dimdist",
    "intern_distribution",
    "owners_cache_stats",
    "clear_interning_caches",
    # machine substrate (repro.machine)
    "CostModel",
    "IPSC860",
    "PARAGON",
    "MODERN_CLUSTER",
    "ZERO_COST",
    "PRESETS",
    "Machine",
    "MeasuredMachine",
    "Calibration",
    "LocalMemory",
    "MemoryError_",
    "AllocationRecord",
    "Network",
    "NetworkStats",
    "MessageRecord",
    "ProcessorArray",
    "ProcessorSection",
    "grid_shapes",
    "per_processor_table",
    "link_matrix",
    "summary",
    "timeline_table",
    "timeline_summary",
    # run time (repro.runtime)
    "DistributedArray",
    "Engine",
    "forall",
    "forall_gathered",
    "forall_batched",
    "ReadAccessor",
    "BatchedReadAccessor",
    "Inspector",
    "CommSchedule",
    "OverlapManager",
    "RedistributionReport",
    "PlanCache",
    "communicate",
    "default_plan_cache",
    "transfer_matrix",
    "transfer_matrix_naive",
    "transfer_matrix_bruteforce",
    "TranslationTable",
    "DimTranslationTable",
    "shift_exchange",
    "gather_to",
    "broadcast_from",
    "reduce_scalar",
    # surface syntax (repro.lang)
    "VFSyntaxError",
    "parse_dist_expr",
    "parse_pattern",
    "parse_alignment",
    "parse_processors",
    "parse_section",
    "parse_program",
    "Declaration",
    "parse_declaration",
    "VFProgram",
    "Scope",
    "Procedure",
    "FormalArg",
    # compiler (repro.compiler; IR `Block` deliberately omitted)
    "AccessKind",
    "ArrayRef",
    "Assign",
    "Call",
    "DCaseStmt",
    "DistributeStmt",
    "If",
    "IRProgram",
    "Loop",
    "ProcDef",
    "Stmt",
    "CFG",
    "CFGEdge",
    "CFGNode",
    "build_cfg",
    "ALWAYS",
    "MAYBE",
    "NEVER",
    "TOP",
    "PlausibleSet",
    "decide_pattern",
    "decide_querylist",
    "dim_implies",
    "dim_overlaps",
    "pattern_implies",
    "pattern_overlaps",
    "refine_pattern",
    "AnalysisResult",
    "ReachingDistributions",
    "analyze",
    "CommEstimate",
    "MemoryEstimate",
    "estimate_ref",
    "estimate_memory",
    "infer_overlap",
    "OptimizeStats",
    "optimize",
    "StencilKernel",
    "LineSweepKernel",
    "lower_stencil",
    "lower_line_sweep",
    # planner (repro.planner)
    "ArrayLoad",
    "Phase",
    "PhaseSequence",
    "HandDistribute",
    "extract_phases",
    "dim_menu",
    "enumerate_layouts",
    "CostEngine",
    "SimulatedCostEngine",
    "ScheduleStep",
    "Plan",
    "plan_array",
    "dp_schedule",
    "greedy_schedule",
    "PlanExecutor",
    "bind_pattern",
    "plan_program",
    "Workload",
    "adi_workload",
    "pic_workload",
    "smoothing_workload",
    "get_workload",
    "plan_workload",
    "hand_schedule_cost",
    "WORKLOADS",
    # execution backends (repro.backend)
    "Backend",
    "SerialBackend",
    "MultiprocessBackend",
    "BackendError",
    "FleetSupervisor",
    "resolve_backend",
    "attached_backend",
    "calibrate",
    "fit_alpha_beta",
    "measured_machine",
    "transfer_plan",
    "segment_moves",
    "shift_plan",
    "Transport",
    "TransportTimeout",
    "TransportBroken",
    "BlockMeta",
    "SharedSegmentAllocator",
    # discrete-event simulator (repro.sim)
    "Event",
    "EventArrays",
    "EventKind",
    "EventLog",
    "BlockingReplay",
    "replay_blocking",
    "replay_split_exchange",
    "classify_tag",
    "record",
    "Interval",
    "ProcClock",
    "Timeline",
    "BUSY_KINDS",
    "simulate",
    "relaxed_barriers",
    "overlappable_phases",
    "CriticalPath",
    "critical_path",
    "gantt",
    "to_json",
    "dump_json",
    "to_chrome_trace",
]
