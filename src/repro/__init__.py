"""repro — a reproduction of *Dynamic Data Distributions in Vienna
Fortran* (Chapman, Mehrotra, Moritsch, Zima; Supercomputing '93).

Layers (bottom-up):

- :mod:`repro.machine` — simulated distributed-memory multicomputer
  (processor grids, local memories, alpha+beta*n message cost model);
- :mod:`repro.core` — the distribution model: BLOCK / CYCLIC(k) /
  B_BLOCK / S_BLOCK / ``:`` intrinsics, alignments and CONSTRUCT,
  DYNAMIC arrays with connect classes, RANGE / IDT / DCASE queries;
- :mod:`repro.runtime` — the Vienna Fortran Engine: distributed
  arrays, access functions, translation tables, overlap areas, the
  DISTRIBUTE algorithm, and a PARTI-style inspector/executor;
- :mod:`repro.lang` — Vienna Fortran-flavoured surface syntax
  (distribution-expression parser, declarations, program scopes,
  procedure-boundary redistribution);
- :mod:`repro.compiler` — reaching-distribution analysis over a mini
  IR, partial evaluation of queries, communication analysis, SPMD
  lowering;
- :mod:`repro.apps` — the paper's §4 workloads: ADI (Figure 1),
  particle-in-cell with B_BLOCK load balancing (Figure 2), and the
  grid-smoothing distribution-choice example.

Quickstart::

    from repro import *

    R = ProcessorArray("R", (4,))
    machine = Machine(R, cost_model=PARAGON)
    vfe = Engine(machine)
    V = vfe.declare("V", (100, 100), dist=dist_type(":", "BLOCK"),
                    dynamic=DynamicAttr())
    # ... x-sweep (columns local) ...
    vfe.distribute("V", dist_type("BLOCK", ":"))
    # ... y-sweep (rows local) ...
"""

from .core import *  # noqa: F401,F403
from .core import __all__ as _core_all
from .machine import *  # noqa: F401,F403
from .machine import __all__ as _machine_all
from .runtime import *  # noqa: F401,F403
from .runtime import __all__ as _runtime_all

__version__ = "1.0.0"

__all__ = ["__version__", *_core_all, *_machine_all, *_runtime_all]
