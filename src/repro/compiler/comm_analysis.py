"""Communication analysis (§3.1).

"An extensive communication analysis provides not only information on
the communication associated with each plausible distribution for an
array, but also the memory requirements of the array under that
distribution."

Given the reaching-distribution results, this module estimates — per
array reference and per plausible distribution type — the messages and
data volume an owner-computes lowering would generate, plus the
per-processor memory the array needs under that type.  The estimates
are the closed-form expressions of the paper's §4 analysis (e.g. a
shift reference under a 1-D BLOCK distribution costs 2 messages of one
boundary slab per processor per sweep; under CYCLIC it costs the whole
local segment).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dimdist import Block, Cyclic, GenBlock, NoDist, SBlock
from ..core.query import ANY, TypePattern, Wild
from .ir import AccessKind, ArrayRef

__all__ = [
    "CommEstimate",
    "MemoryEstimate",
    "estimate_ref",
    "estimate_memory",
    "infer_overlap",
]


@dataclass(frozen=True)
class CommEstimate:
    """Estimated traffic of one reference under one distribution type,
    for a single execution of the enclosing statement."""

    messages: int          # total messages across all processors
    volume: int            # total elements transferred
    irregular: bool = False  # needs the inspector/executor path
    note: str = ""

    def __add__(self, other: "CommEstimate") -> "CommEstimate":
        return CommEstimate(
            self.messages + other.messages,
            self.volume + other.volume,
            self.irregular or other.irregular,
            "; ".join(n for n in (self.note, other.note) if n),
        )


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-processor elements an array needs under a distribution type."""

    elements_per_proc: int
    replicated: bool = False


ZERO = CommEstimate(0, 0)


def _dims_of_pattern(pattern: TypePattern, ndim: int) -> list[object]:
    if pattern.dims is None:
        return [ANY] * ndim
    return list(pattern.dims)


def _proc_count_along(dim_index: int, distributed_dims: list[int], proc_shape: tuple[int, ...]) -> int:
    """Processor slots along array dim ``dim_index`` (1 if undistributed)."""
    if dim_index not in distributed_dims:
        return 1
    k = distributed_dims.index(dim_index)
    if k >= len(proc_shape):
        return proc_shape[-1] if proc_shape else 1
    return proc_shape[k]


def _is_blockish(dp: object) -> bool:
    if isinstance(dp, (Block, GenBlock, SBlock)):
        return True
    if isinstance(dp, Wild):
        return issubclass(dp.cls, (Block, GenBlock, SBlock))
    return False


def _is_cyclicish(dp: object) -> bool:
    if isinstance(dp, Cyclic):
        return True
    if isinstance(dp, Wild):
        return issubclass(dp.cls, Cyclic)
    return False


def _is_distributed(dp: object) -> bool:
    """Conservatively: could this dim pattern place data off-processor?"""
    if isinstance(dp, NoDist):
        return False
    return True  # ANY / Wild / any concrete distributing intrinsic


def estimate_ref(
    ref: ArrayRef,
    pattern: TypePattern,
    shape: tuple[int, ...],
    proc_shape: tuple[int, ...],
) -> CommEstimate:
    """Traffic estimate of one read reference under one plausible type.

    ``shape`` is the referenced array's index-domain shape and
    ``proc_shape`` the processor-grid extents assigned (in order) to
    the distributed dimensions of ``pattern``.
    """
    ndim = len(shape)
    dims = _dims_of_pattern(pattern, ndim)
    if len(dims) != ndim:
        raise ValueError(
            f"pattern {pattern!r} rank {len(dims)} != array rank {ndim}"
        )
    ddims = [d for d, dp in enumerate(dims) if _is_distributed(dp)]
    nprocs = 1
    for d in ddims:
        nprocs *= _proc_count_along(d, ddims, proc_shape)

    if ref.kind == AccessKind.IDENTITY:
        # aligned with the owner-computes iteration: local
        return ZERO

    if ref.kind == AccessKind.SHIFT:
        total = CommEstimate(0, 0)
        offsets = ref.offsets + (0,) * (ndim - len(ref.offsets))
        for d, off in enumerate(offsets):
            if off == 0 or not _is_distributed(dims[d]):
                continue
            p_d = _proc_count_along(d, ddims, proc_shape)
            if p_d <= 1:
                continue
            slab = 1
            for e in range(ndim):
                if e == d:
                    continue
                p_e = _proc_count_along(e, ddims, proc_shape)
                slab *= -(-shape[e] // p_e)
            if _is_blockish(dims[d]) or dims[d] is ANY:
                # one boundary message per processor per shifted dim,
                # in the offset's direction; |off| deep
                msgs = nprocs
                vol = nprocs * slab * abs(off)
                note = f"boundary exchange dim {d}"
            elif _is_cyclicish(dims[d]):
                # a shift under CYCLIC moves (nearly) every element
                local = -(-shape[d] // p_d)
                msgs = nprocs
                vol = nprocs * slab * local
                note = f"cyclic shift dim {d} (full segment)"
            else:
                msgs = nprocs
                vol = nprocs * slab * abs(off)
                note = f"shift dim {d}"
            total = total + CommEstimate(msgs, vol, note=note)
        return total

    if ref.kind == AccessKind.ROW_SWEEP:
        d = ref.dim
        assert d is not None
        if not _is_distributed(dims[d]):
            return ZERO  # every line is local: the ADI good case
        p_d = _proc_count_along(d, ddims, proc_shape)
        if p_d <= 1:
            return ZERO
        nlines = 1
        for e in range(ndim):
            if e != d:
                nlines *= shape[e]
        # each line crosses p_d processors: gather + scatter pipeline
        msgs = nlines * 2 * (p_d - 1)
        vol = nlines * 2 * (shape[d] - -(-shape[d] // p_d))
        return CommEstimate(msgs, vol, note=f"line sweep across dim {d}")

    if ref.kind == AccessKind.INDIRECT:
        # worst case: every element referenced once, all off-processor;
        # PARTI aggregates to one message per processor pair
        n = 1
        for s in shape:
            n *= s
        return CommEstimate(
            nprocs * max(nprocs - 1, 0),
            n,
            irregular=True,
            note="inspector/executor",
        )

    if ref.kind == AccessKind.WHOLE:
        n = 1
        for s in shape:
            n *= s
        return CommEstimate(max(nprocs - 1, 0), n, note="gather/broadcast")

    raise ValueError(f"unknown access kind {ref.kind!r}")


def infer_overlap(refs, ndim: int) -> dict[str, tuple[int, ...]]:
    """Overlap (ghost) widths the compiler would allocate per array.

    §3.1: the compiler "generates code to create and maintain data
    structures describing ... the associated overlap areas".  The halo
    an array needs along each dimension is the maximum |offset| over
    all SHIFT references to it; arrays referenced only by identity (or
    by sweeps, which gather whole lines instead) need none.

    Returns ``{array_name: per-dimension widths}`` for every array
    that needs a halo.
    """
    out: dict[str, list[int]] = {}
    for ref in refs:
        if ref.kind != AccessKind.SHIFT:
            continue
        widths = out.setdefault(ref.array, [0] * ndim)
        for d, off in enumerate(ref.offsets[:ndim]):
            widths[d] = max(widths[d], abs(int(off)))
    return {name: tuple(w) for name, w in out.items() if any(w)}


def estimate_memory(
    pattern: TypePattern, shape: tuple[int, ...], proc_shape: tuple[int, ...]
) -> MemoryEstimate:
    """Per-processor memory need of an array under one plausible type."""
    ndim = len(shape)
    dims = _dims_of_pattern(pattern, ndim)
    from ..core.dimdist import Replicated

    replicated = any(isinstance(dp, Replicated) for dp in dims)
    ddims = [d for d, dp in enumerate(dims) if _is_distributed(dp)]
    per_proc = 1
    for d in range(ndim):
        if d in ddims and not isinstance(dims[d], Replicated):
            p_d = _proc_count_along(d, ddims, proc_shape)
            per_proc *= -(-shape[d] // p_d)
        else:
            per_proc *= shape[d]
    return MemoryEstimate(per_proc, replicated)
