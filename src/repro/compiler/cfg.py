"""Control-flow graphs over the mini-IR.

The reaching-distribution analysis (§3.1) is a forward dataflow
problem; this module linearizes the structured IR into basic blocks
and edges.  Edges may carry *refinements* — (array, pattern) pairs
asserting that along this edge the array's distribution matched the
pattern.  DCASE arms and IDT-conditioned branches produce refined
edges, which is how the analysis narrows plausible sets inside guarded
blocks (the basis of the compiler's partial evaluation of queries).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.query import QueryList, TypePattern
from .ir import Assign, Block, Call, DCaseStmt, DistributeStmt, If, Loop, Stmt

__all__ = ["CFGNode", "CFGEdge", "CFG", "build_cfg"]


@dataclass
class CFGEdge:
    """A directed edge, optionally refining arrays' plausible sets."""

    src: int
    dst: int
    refinements: tuple[tuple[str, TypePattern], ...] = ()


@dataclass
class CFGNode:
    """A basic block of straight-line statements.

    ``branch_stmt`` is set on nodes whose outgoing edges realize a
    control statement (If/Loop/DCase); the dataflow records the state
    at the end of such a node as the state *before* that statement,
    which is what query partial evaluation needs.
    """

    id: int
    stmts: list[Stmt] = field(default_factory=list)
    succs: list[CFGEdge] = field(default_factory=list)
    preds: list[CFGEdge] = field(default_factory=list)
    branch_stmt: Stmt | None = None


class CFG:
    """A control-flow graph with unique entry and exit nodes."""

    def __init__(self) -> None:
        self.nodes: dict[int, CFGNode] = {}
        self._next = 0
        self.entry = self.new_node().id
        self.exit = self.new_node().id

    def new_node(self) -> CFGNode:
        node = CFGNode(self._next)
        self.nodes[self._next] = node
        self._next += 1
        return node

    def add_edge(
        self,
        src: int,
        dst: int,
        refinements: tuple[tuple[str, TypePattern], ...] = (),
    ) -> None:
        edge = CFGEdge(src, dst, refinements)
        self.nodes[src].succs.append(edge)
        self.nodes[dst].preds.append(edge)

    def __len__(self) -> int:
        return len(self.nodes)


def _refinements_of_querylist(
    selectors: tuple[str, ...], ql: QueryList
) -> tuple[tuple[str, TypePattern], ...]:
    """The (array, pattern) assertions a matched query list implies."""
    out: list[tuple[str, TypePattern]] = []
    if ql.tagged is not None:
        for name, pat in ql.tagged.items():
            out.append((name, pat))
    else:
        for name, pat in zip(selectors, ql.positional or ()):
            out.append((name, pat))
    return tuple(out)


def build_cfg(block: Block) -> CFG:
    """Build the CFG of one procedure body."""
    cfg = CFG()
    first = cfg.new_node()
    cfg.add_edge(cfg.entry, first.id)
    last = _build_block(cfg, block, first)
    cfg.add_edge(last.id, cfg.exit)
    return cfg


def _build_block(cfg: CFG, block: Block, current: CFGNode) -> CFGNode:
    """Append ``block`` starting at ``current``; return the final node."""
    for stmt in block:
        if isinstance(stmt, (Assign, DistributeStmt, Call)):
            current.stmts.append(stmt)
        elif isinstance(stmt, If):
            current.branch_stmt = stmt
            then_entry = cfg.new_node()
            else_entry = cfg.new_node()
            join = cfg.new_node()
            then_ref: tuple[tuple[str, TypePattern], ...] = ()
            if stmt.idt_cond is not None:
                then_ref = (stmt.idt_cond,)
            cfg.add_edge(current.id, then_entry.id, then_ref)
            cfg.add_edge(current.id, else_entry.id)
            then_exit = _build_block(cfg, stmt.then, then_entry)
            else_exit = _build_block(cfg, stmt.orelse, else_entry)
            cfg.add_edge(then_exit.id, join.id)
            cfg.add_edge(else_exit.id, join.id)
            current = join
        elif isinstance(stmt, Loop):
            current.branch_stmt = stmt
            head = cfg.new_node()
            body_entry = cfg.new_node()
            follow = cfg.new_node()
            cfg.add_edge(current.id, head.id)
            cfg.add_edge(head.id, body_entry.id)
            cfg.add_edge(head.id, follow.id)  # zero-trip exit
            body_exit = _build_block(cfg, stmt.body, body_entry)
            cfg.add_edge(body_exit.id, head.id)  # back edge
            current = follow
        elif isinstance(stmt, DCaseStmt):
            current.branch_stmt = stmt
            join = cfg.new_node()
            has_default = False
            for ql, arm in stmt.arms:
                arm_entry = cfg.new_node()
                if ql is None:  # DEFAULT
                    has_default = True
                    cfg.add_edge(current.id, arm_entry.id)
                else:
                    cfg.add_edge(
                        current.id,
                        arm_entry.id,
                        _refinements_of_querylist(stmt.selectors, ql),
                    )
                arm_exit = _build_block(cfg, arm, arm_entry)
                cfg.add_edge(arm_exit.id, join.id)
            if not has_default:
                # "If no match occurs, the execution of the construct is
                # completed without executing an action" (§2.5.1).
                cfg.add_edge(current.id, join.id)
            current = join
        else:
            raise TypeError(f"unknown IR statement {stmt!r}")
    return current
