"""Compile-time support (paper §3.1).

A mini-IR for Vienna Fortran-shaped programs, CFG construction, the
reaching-distributions dataflow analysis (plausible-distribution
sets), partial evaluation of IDT/DCASE queries, per-reference
communication and memory estimates, and SPMD lowering of the paper's
access patterns into executable kernels.
"""

from .cfg import CFG, CFGEdge, CFGNode, build_cfg
from .codegen import LineSweepKernel, StencilKernel, lower_line_sweep, lower_stencil
from .comm_analysis import (
    CommEstimate,
    MemoryEstimate,
    estimate_memory,
    estimate_ref,
    infer_overlap,
)
from .optimize import OptimizeStats, optimize
from .ir import (
    AccessKind,
    ArrayRef,
    Assign,
    Block,
    Call,
    DCaseStmt,
    DistributeStmt,
    If,
    IRProgram,
    Loop,
    ProcDef,
    Stmt,
)
from .partial_eval import (
    ALWAYS,
    MAYBE,
    NEVER,
    TOP,
    PlausibleSet,
    decide_pattern,
    decide_querylist,
    dim_implies,
    dim_overlaps,
    pattern_implies,
    pattern_overlaps,
    refine_pattern,
)
from .reaching import AnalysisResult, ReachingDistributions, analyze

__all__ = [
    "AccessKind",
    "ArrayRef",
    "Assign",
    "Block",
    "Call",
    "DCaseStmt",
    "DistributeStmt",
    "If",
    "IRProgram",
    "Loop",
    "ProcDef",
    "Stmt",
    "CFG",
    "CFGEdge",
    "CFGNode",
    "build_cfg",
    "ALWAYS",
    "MAYBE",
    "NEVER",
    "TOP",
    "PlausibleSet",
    "decide_pattern",
    "decide_querylist",
    "dim_implies",
    "dim_overlaps",
    "pattern_implies",
    "pattern_overlaps",
    "refine_pattern",
    "AnalysisResult",
    "ReachingDistributions",
    "analyze",
    "CommEstimate",
    "MemoryEstimate",
    "estimate_ref",
    "estimate_memory",
    "infer_overlap",
    "OptimizeStats",
    "optimize",
    "StencilKernel",
    "LineSweepKernel",
    "lower_stencil",
    "lower_line_sweep",
]
