"""Partial evaluation of distribution queries (§3.1).

"The compiler also performs a partial evaluation of distribution
queries (both IDT and the dcase construct), by checking whether there
is a plausible distribution which will match."

The analysis represents each array's plausible distributions as a
:class:`PlausibleSet` — either TOP (statically unknown / any type the
RANGE admits) or a finite set of :class:`~repro.core.query.TypePattern`
elements (concrete types or wildcarded families, e.g. ``B_BLOCK(*)``
for a distribute with run-time bounds).

Pattern relations:

- ``dim_implies(a, b)`` — every concrete distribution matching ``a``
  also matches ``b``;
- ``dim_overlaps(a, b)`` — some concrete distribution matches both.

From these, :func:`decide_pattern` classifies a query against a
plausible set as ``ALWAYS`` / ``NEVER`` / ``MAYBE``; ``NEVER`` arms of
a DCASE are dead code (pruned in E6), ``ALWAYS`` arms let the compiler
specialize without a run-time test.
"""

from __future__ import annotations

from typing import Iterable

from ..core.dimdist import DimDist
from ..core.query import ANY, QueryList, TypePattern, Wild

__all__ = [
    "ALWAYS",
    "NEVER",
    "MAYBE",
    "PlausibleSet",
    "TOP",
    "dim_implies",
    "dim_overlaps",
    "pattern_implies",
    "pattern_overlaps",
    "refine_pattern",
    "decide_pattern",
    "decide_querylist",
]

ALWAYS = "always"
NEVER = "never"
MAYBE = "maybe"


# -- dimension-pattern relations ------------------------------------------

def dim_implies(a: object, b: object) -> bool:
    """Every concrete dim-dist matching ``a`` also matches ``b``."""
    if b is ANY:
        return True
    if a is ANY:
        return False
    if isinstance(b, Wild):
        if isinstance(a, Wild):
            return issubclass(a.cls, b.cls)
        return isinstance(a, b.cls)
    # b concrete
    if isinstance(a, Wild):
        return False
    return a == b


def dim_overlaps(a: object, b: object) -> bool:
    """Some concrete dim-dist matches both ``a`` and ``b``."""
    if a is ANY or b is ANY:
        return True
    if isinstance(a, Wild) and isinstance(b, Wild):
        return issubclass(a.cls, b.cls) or issubclass(b.cls, a.cls)
    if isinstance(a, Wild):
        return isinstance(b, DimDist) and isinstance(b, a.cls)
    if isinstance(b, Wild):
        return isinstance(a, DimDist) and isinstance(a, b.cls)
    return a == b


def _dim_refine(a: object, b: object) -> object | None:
    """The most specific of two overlapping dim patterns (None = empty)."""
    if not dim_overlaps(a, b):
        return None
    if dim_implies(a, b):
        return a
    if dim_implies(b, a):
        return b
    # two overlapping wildcard families: keep the narrower class
    if isinstance(a, Wild) and isinstance(b, Wild):
        return a if issubclass(a.cls, b.cls) else b
    return a


# -- type-pattern relations ---------------------------------------------------

def pattern_implies(a: TypePattern, b: TypePattern) -> bool:
    if b.dims is None:
        return True
    if a.dims is None:
        return False
    if len(a.dims) != len(b.dims):
        return False
    return all(dim_implies(x, y) for x, y in zip(a.dims, b.dims))


def pattern_overlaps(a: TypePattern, b: TypePattern) -> bool:
    if a.dims is None or b.dims is None:
        return True
    if len(a.dims) != len(b.dims):
        return False
    return all(dim_overlaps(x, y) for x, y in zip(a.dims, b.dims))


def refine_pattern(a: TypePattern, b: TypePattern) -> TypePattern | None:
    """Intersection of two patterns (None when disjoint)."""
    if not pattern_overlaps(a, b):
        return None
    if a.dims is None:
        return b
    if b.dims is None:
        return a
    dims = []
    for x, y in zip(a.dims, b.dims):
        r = _dim_refine(x, y)
        if r is None:
            return None
        dims.append(r)
    return TypePattern(dims)


# -- plausible sets ------------------------------------------------------------

class PlausibleSet:
    """The set of plausible distributions of one array at one point.

    ``TOP`` (``patterns is None``) means statically unknown — "if the
    full code is not available, the compiler will have to ... make
    worst case assumptions".  Otherwise a finite set of patterns.
    """

    __slots__ = ("patterns",)

    def __init__(self, patterns: Iterable[TypePattern] | None):
        if patterns is None:
            self.patterns: frozenset[TypePattern] | None = None
        else:
            self.patterns = frozenset(patterns)

    @property
    def is_top(self) -> bool:
        return self.patterns is None

    @property
    def is_empty(self) -> bool:
        return self.patterns is not None and not self.patterns

    def union(self, other: "PlausibleSet") -> "PlausibleSet":
        if self.is_top or other.is_top:
            return TOP
        return PlausibleSet(self.patterns | other.patterns)  # type: ignore[operator]

    def refine(self, pattern: TypePattern) -> "PlausibleSet":
        """Keep only the part of the set compatible with ``pattern``."""
        if self.is_top:
            return PlausibleSet([pattern])
        out = []
        for p in self.patterns:  # type: ignore[union-attr]
            r = refine_pattern(p, pattern)
            if r is not None:
                out.append(r)
        return PlausibleSet(out)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlausibleSet) and self.patterns == other.patterns

    def __hash__(self) -> int:
        return hash(self.patterns)

    def __repr__(self) -> str:
        if self.is_top:
            return "{TOP}"
        return "{" + ", ".join(sorted(repr(p) for p in self.patterns)) + "}"  # type: ignore[union-attr]


TOP = PlausibleSet(None)


# -- decisions --------------------------------------------------------------------

def decide_pattern(plausible: PlausibleSet, pattern: TypePattern) -> str:
    """Classify ``IDT(A, pattern)`` given A's plausible set."""
    if plausible.is_top:
        return MAYBE
    if plausible.is_empty:
        return NEVER
    assert plausible.patterns is not None
    if all(pattern_implies(p, pattern) for p in plausible.patterns):
        return ALWAYS
    if not any(pattern_overlaps(p, pattern) for p in plausible.patterns):
        return NEVER
    return MAYBE


def decide_querylist(
    state: dict[str, PlausibleSet],
    selectors: tuple[str, ...],
    ql: QueryList,
) -> str:
    """Classify one DCASE condition against the current analysis state.

    ``ALWAYS`` iff every per-selector query is ALWAYS; ``NEVER`` iff
    some query is NEVER; otherwise ``MAYBE``.
    """
    pairs: list[tuple[str, TypePattern]] = []
    if ql.tagged is not None:
        pairs = list(ql.tagged.items())
    else:
        pairs = list(zip(selectors, ql.positional or ()))
    verdicts = [
        decide_pattern(state.get(name, TOP), pat) for name, pat in pairs
    ]
    if any(v == NEVER for v in verdicts):
        return NEVER
    if all(v == ALWAYS for v in verdicts):
        return ALWAYS
    return MAYBE
