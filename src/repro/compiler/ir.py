"""Mini intermediate representation for the compiler analyses (§3.1).

The VFCS analysis phase solves the *reaching distribution problem*:
"the compiler must determine the range of distribution types which may
reach a specific array access in the code, by intra- and
inter-procedural analysis."  To reproduce the analysis we need programs
to analyse; this IR models the statements that matter to it:

- :class:`ArrayRef` — one array access with an access-pattern summary
  (enough for the communication analysis);
- :class:`Assign` — a computation reading/writing arrays;
- :class:`DistributeStmt` — an executable DISTRIBUTE; the new type may
  be *symbolic* (e.g. ``B_BLOCK(BOUNDS)`` with run-time bounds), which
  the analysis represents as a wildcard pattern;
- :class:`If` / :class:`Loop` — structured control flow, with optional
  IDT conditions the partial evaluator understands;
- :class:`DCaseStmt` — the DCASE construct as IR;
- :class:`Call` — procedure call with formal/actual binding (the
  inter-procedural part).

Programs are structured (no goto), matching Vienna Fortran's
block-oriented constructs; the CFG builder linearizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.query import QueryList, TypePattern, as_pattern

__all__ = [
    "AccessKind",
    "ArrayRef",
    "Stmt",
    "Assign",
    "DistributeStmt",
    "If",
    "Loop",
    "DCaseStmt",
    "Call",
    "Block",
    "ProcDef",
    "IRProgram",
]


class AccessKind:
    """Access-pattern summaries used by the communication analysis."""

    IDENTITY = "identity"  # A(i, j)        — aligned with the lhs iteration
    SHIFT = "shift"        # A(i-1, j+1)    — constant offsets
    ROW_SWEEP = "row"      # A(i, :)        — full line along given dim
    INDIRECT = "indirect"  # A(ix(i))       — irregular (inspector/executor)
    WHOLE = "whole"        # A              — the entire array


@dataclass(frozen=True)
class ArrayRef:
    """One array access: name + access-pattern summary.

    ``offsets`` is used with ``SHIFT`` (per-dimension constant offsets)
    and ``dim`` with ``ROW_SWEEP`` (the swept dimension).
    """

    array: str
    kind: str = AccessKind.IDENTITY
    offsets: tuple[int, ...] = ()
    dim: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in (
            AccessKind.IDENTITY,
            AccessKind.SHIFT,
            AccessKind.ROW_SWEEP,
            AccessKind.INDIRECT,
            AccessKind.WHOLE,
        ):
            raise ValueError(f"unknown access kind {self.kind!r}")
        if self.kind == AccessKind.SHIFT and not self.offsets:
            raise ValueError("SHIFT access needs offsets")
        if self.kind == AccessKind.ROW_SWEEP and self.dim is None:
            raise ValueError("ROW_SWEEP access needs the swept dim")


class Stmt:
    """Base class of IR statements."""

    #: unique id assigned by the program builder (for analysis keys)
    sid: int = -1


@dataclass
class Assign(Stmt):
    """``lhs(...) = f(reads...)`` — the owner-computes unit."""

    lhs: ArrayRef
    reads: tuple[ArrayRef, ...] = ()
    label: str = ""


@dataclass
class DistributeStmt(Stmt):
    """``DISTRIBUTE array :: pattern``.

    ``pattern`` is a :class:`~repro.core.query.TypePattern`; a concrete
    pattern models a statically known distribute, a wildcarded one a
    run-time-valued distribute (``CYCLIC(K)``, ``B_BLOCK(BOUNDS)``).
    ``connected`` lists secondary arrays redistributed with it.
    """

    array: str
    pattern: TypePattern
    connected: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.pattern = as_pattern(self.pattern)


@dataclass
class If(Stmt):
    """Two-way branch.  ``idt_cond`` optionally names an IDT test
    ``(array, pattern)`` that the partial evaluator can decide."""

    then: "Block"
    orelse: "Block"
    idt_cond: tuple[str, TypePattern] | None = None

    def __post_init__(self) -> None:
        if self.idt_cond is not None:
            arr, pat = self.idt_cond
            self.idt_cond = (arr, as_pattern(pat))


@dataclass
class Loop(Stmt):
    """A loop with optional statically known trip count.

    ``trip`` is ``None`` when the count is unknown to the analysis
    (the reaching-distribution lattice treats both the same: >= 0
    iterations).  The frontend fills it in for counted ``DO`` loops
    whose bounds resolve; the distribution planner's phase extraction
    uses it to weight per-phase costs and to unroll loop bodies."""

    body: "Block"
    trip: int | None = None


@dataclass
class DCaseStmt(Stmt):
    """The DCASE construct in IR form."""

    selectors: tuple[str, ...]
    arms: tuple[tuple[QueryList | None, "Block"], ...]  # None = DEFAULT


@dataclass
class Call(Stmt):
    """Procedure call: ``callee(actual_for_formal...)``."""

    callee: str
    bindings: dict[str, str] = field(default_factory=dict)  # formal -> actual


class Block:
    """A statement sequence."""

    def __init__(self, stmts: Sequence[Stmt] = ()):
        self.stmts: list[Stmt] = list(stmts)

    def __iter__(self):
        return iter(self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)


@dataclass
class ProcDef:
    """One procedure: formals (names only; distributions arrive through
    call bindings) and a body block."""

    name: str
    formals: tuple[str, ...]
    body: Block
    #: declared formal distributions (formal -> TypePattern), for the
    #: implicit-redistribution-at-boundary semantics
    formal_dists: dict[str, TypePattern] = field(default_factory=dict)


class IRProgram:
    """A whole program: procedures plus entry declarations.

    ``declared[name]`` gives each array's declaration-time information
    for the analysis: an initial :class:`TypePattern` (or None) and a
    RANGE (list of patterns, or None = unrestricted).
    """

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self.procs: dict[str, ProcDef] = {}
        self.declared: dict[str, tuple[TypePattern | None, list[TypePattern] | None]] = {}
        #: arrays opted into automatic distribution planning (the
        #: ``PLAN`` annotation of the surface syntax)
        self.planned: set[str] = set()
        self._next_sid = 0

    def add_proc(self, proc: ProcDef) -> ProcDef:
        if proc.name in self.procs:
            raise ValueError(f"procedure {proc.name!r} already defined")
        self.procs[proc.name] = proc
        self._number(proc.body)
        return proc

    def declare(
        self,
        name: str,
        initial: object | None = None,
        range_: Sequence[object] | None = None,
    ) -> None:
        init_pat = as_pattern(initial) if initial is not None else None
        range_pats = [as_pattern(r) for r in range_] if range_ is not None else None
        self.declared[name] = (init_pat, range_pats)

    def mark_planned(self, *names: str) -> None:
        """Opt the named arrays into automatic distribution planning."""
        self.planned.update(str(n) for n in names)

    def _number(self, block: Block) -> None:
        for stmt in block:
            stmt.sid = self._next_sid
            self._next_sid += 1
            if isinstance(stmt, If):
                self._number(stmt.then)
                self._number(stmt.orelse)
            elif isinstance(stmt, Loop):
                self._number(stmt.body)
            elif isinstance(stmt, DCaseStmt):
                for _, arm in stmt.arms:
                    self._number(arm)

    def proc(self, name: str) -> ProcDef:
        try:
            return self.procs[name]
        except KeyError:
            raise KeyError(f"no procedure named {name!r}") from None
